//! The paper's motivating scenario (§I): several medical institutions
//! discover correlations between symptoms and diagnoses from patients'
//! records — *horizontally* partitioned data (each hospital holds complete
//! records for its own patients).
//!
//! This example runs the **nonlinear** trainer on an actual simulated
//! MapReduce cluster: one data node per hospital, patient records pinned to
//! their hospital's node, kernel consensus through landmark projections,
//! and the §V masking protocol at the Reduce step. A task failure is
//! injected mid-training to show re-execution does not disturb the result.
//!
//! ```text
//! cargo run --example hospitals_horizontal --release
//! ```

use ppml::core::jobs::{train_kernel_on_cluster, ClusterTuning};
use ppml::core::AdmmConfig;
use ppml::data::{synth, Partition};
use ppml::kernel::Kernel;
use ppml::mapreduce::{BlockId, FaultPlan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Patient records with a nonlinearly separable diagnosis boundary.
    let records = synth::xor_like(600, 11);
    let (train, test) = records.split(0.5, 3)?;
    let hospitals = Partition::horizontal(&train, 4, 5)?;
    for (i, h) in hospitals.iter().enumerate() {
        let (pos, neg) = h.class_counts();
        println!(
            "hospital {i}: {} patients ({pos} positive, {neg} negative)",
            h.len()
        );
    }

    let cfg = AdmmConfig::default()
        .with_kernel(Kernel::Rbf { gamma: 0.5 })
        .with_landmarks(20)
        .with_max_iter(40);

    // Inject a map-task failure at iteration 3 on hospital 2's node: the
    // scheduler re-executes the attempt elsewhere and training proceeds.
    let tuning = ClusterTuning {
        fault_plan: FaultPlan::new().fail_first_attempts(3, BlockId(2), 1),
        max_attempts: Some(3),
    };

    let (outcome, metrics) = train_kernel_on_cluster(&hospitals, &cfg, Some(&test), tuning)?;

    println!(
        "\nkernel consensus accuracy: {:.3}",
        outcome.model.accuracy(&test)
    );
    println!("accuracy by iteration (every 5th):");
    for (i, a) in outcome.history.accuracy.iter().enumerate() {
        if i % 5 == 0 {
            println!("  iter {:>3}: {a:.3}", i + 1);
        }
    }

    println!("\ncluster metrics over {} iterations:", metrics.iterations);
    println!("  data-local map tasks : {}", metrics.locality_hits);
    println!("  remote reads         : {}", metrics.remote_reads);
    println!("  task retries (fault) : {}", metrics.task_retries);
    println!("  bytes shuffled       : {}", metrics.bytes_shuffled);
    println!("  bytes broadcast      : {}", metrics.bytes_broadcast);
    let raw = 8 * train.len() * (train.features() + 1);
    println!(
        "  raw training data    : {raw} bytes (never moved; locality ratio {:.2})",
        metrics.locality_ratio()
    );
    Ok(())
}
