//! The paper's second motivating scenario (§I): several banks conduct a
//! joint credit-risk analysis over the **same customers** but with
//! *different feature sets* — vertically partitioned data (Fig. 3). Labels
//! (defaulted / repaid) are shared; each bank's feature columns are not.
//!
//! ```text
//! cargo run --example banks_vertical --release
//! ```

use ppml::core::{AdmmConfig, VerticalKernelSvm, VerticalLinearSvm};
use ppml::data::{synth, Partition};
use ppml::kernel::Kernel;
use ppml::svm::LinearSvm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Customer records: 28 behavioural features, heavily overlapping
    // classes (credit risk is genuinely hard to separate).
    let customers = synth::higgs_like(1200, 17);
    let (train, test) = customers.split(0.5, 9)?;

    // Three banks hold complementary feature subsets of every customer.
    let banks = Partition::vertical(&train, 3, 4)?;
    for b in 0..banks.learners() {
        println!(
            "bank {b}: {} customers x {} features (columns {:?}...)",
            banks.rows(),
            banks.features_of(b).len(),
            &banks.features_of(b)[..banks.features_of(b).len().min(5)]
        );
    }

    // Upper bound: one bank hypothetically holding every feature.
    let centralized = LinearSvm::train(&train, 50.0)?;
    println!(
        "\ncentralized baseline accuracy: {:.3}",
        centralized.accuracy(&test)
    );

    // Privacy-preserving joint training: each bank only ever reveals its
    // masked contribution X_m·w_m to the secure sum.
    let cfg = AdmmConfig::default().with_max_iter(60);
    let linear = VerticalLinearSvm::train(&banks, &cfg, Some(&test))?;
    println!(
        "vertical linear accuracy:     {:.3}",
        linear.model.accuracy(&test)
    );

    let cfg_k = cfg.with_kernel(Kernel::Rbf { gamma: 0.05 });
    let kernel = VerticalKernelSvm::train(&banks, &cfg_k, Some(&test))?;
    println!(
        "vertical kernel accuracy:     {:.3}",
        kernel.model.accuracy(&test)
    );

    println!("\nconvergence ‖z(t+1) − z(t)‖² (linear, every 10th iteration):");
    for (i, d) in linear.history.z_delta.iter().enumerate() {
        if i % 10 == 0 {
            println!("  iter {:>3}: {d:>12.3e}", i + 1);
        }
    }
    Ok(())
}
