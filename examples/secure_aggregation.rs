//! The Reduce-step protocols of §V, side by side.
//!
//! Shows that (1) every backend computes the exact same sum, (2) an
//! individual masked share reveals nothing about its value, and (3) the
//! communication/computation costs differ by orders of magnitude — the
//! quantitative form of the paper's "only a limited number of
//! cryptographic operations" claim.
//!
//! ```text
//! cargo run --example secure_aggregation --release
//! ```

use std::time::Instant;

use ppml::crypto::{
    AdditiveSharing, FixedPointCodec, MaskingParty, PaillierAggregation, PairwiseMasking, PlainSum,
    SecureSum, ThresholdSharing,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four learners' local models (e.g. SVM weight vectors of length 64).
    let inputs: Vec<Vec<f64>> = (0..4)
        .map(|m| {
            (0..64)
                .map(|i| ((m * 64 + i) as f64 * 0.37).sin())
                .collect()
        })
        .collect();

    let plain = PlainSum.aggregate(&inputs)?;

    let backends: Vec<Box<dyn SecureSum>> = vec![
        Box::new(PairwiseMasking::new(1)),
        Box::new(AdditiveSharing::new(2)),
        Box::new(ThresholdSharing::new(3, 4)),
        Box::new(PaillierAggregation::keygen(512, 3)?),
    ];

    println!(
        "{:<20} {:>12} {:>10} {:>12}",
        "protocol", "max |err|", "messages", "bytes"
    );
    println!(
        "{:<20} {:>12} {:>10} {:>12}",
        "plain (insecure)",
        "0",
        4,
        4 * 64 * 8
    );
    for backend in &backends {
        let t = Instant::now();
        let sum = backend.aggregate(&inputs)?;
        let elapsed = t.elapsed();
        let err = sum
            .iter()
            .zip(&plain)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        let (messages, bytes) = backend.cost(4, 64);
        println!(
            "{:<20} {:>12.2e} {:>10} {:>12}   ({elapsed:?})",
            backend.name(),
            err,
            messages,
            bytes
        );
    }

    // Peek inside the paper's protocol: the share a learner actually sends.
    println!("\ninside pairwise masking (what the reducer sees from learner 0):");
    let codec = FixedPointCodec::default();
    let parties: Vec<MaskingParty> = (0..3)
        .map(|i| MaskingParty::new(i, 3, 1, 100 + i as u64, codec))
        .collect();
    let secret = 0.123_456;
    let received: Vec<&[u64]> = (1..3)
        .map(|p| {
            let k = parties[p].peers().iter().position(|&q| q == 0).unwrap();
            parties[p].outgoing(k)
        })
        .collect();
    let share = parties[0].masked_share(&[secret], &received)?;
    println!("  secret value     : {secret}");
    println!("  fixed-point code : {:#018x}", codec.encode_u64(secret)?);
    println!(
        "  masked share     : {:#018x}  (statistically independent of the secret)",
        share.payload[0]
    );
    Ok(())
}
