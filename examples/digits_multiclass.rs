//! Multiclass extension: privacy-preserving recognition of all ten digit
//! classes (the paper's OCR workload is natively 10-class; §VI reduces it
//! to binary — this example runs the full task with one-vs-rest on top of
//! the horizontal consensus trainer).
//!
//! ```text
//! cargo run --example digits_multiclass --release
//! ```

use ppml::core::multiclass::OneVsRestSvm;
use ppml::core::AdmmConfig;
use ppml::data::multiclass::digits_like;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let digits = digits_like(1000, 10, 2026);
    let (train, test) = digits.split(0.5, 3)?;
    println!(
        "digits: {} samples x {} features, {} classes; histogram {:?}",
        digits.len(),
        digits.features(),
        digits.classes(),
        train.class_histogram()
    );

    // Privacy-free upper bound.
    let central = OneVsRestSvm::train_centralized(&train, 50.0)?;
    println!(
        "centralized one-vs-rest accuracy: {:.3}",
        central.accuracy(&test)
    );

    // Four learners; ten consensus runs (one per digit) over the same fixed
    // partitions — records never move between runs.
    let cfg = AdmmConfig::default().with_max_iter(40);
    let distributed = OneVsRestSvm::train_horizontal(&train, 4, &cfg)?;
    println!(
        "distributed one-vs-rest accuracy: {:.3}",
        distributed.accuracy(&test)
    );

    // Show a few predictions with their per-class scores.
    for i in 0..3 {
        let scores = distributed.decisions(test.sample(i))?;
        let pred = distributed.predict(test.sample(i))?;
        let top: Vec<String> = scores
            .iter()
            .enumerate()
            .map(|(c, s)| format!("{c}:{s:+.2}"))
            .collect();
        println!(
            "sample {i}: true {} -> predicted {pred}   [{}]",
            test.labels()[i],
            top.join(" ")
        );
    }
    Ok(())
}
