//! Multi-process MapReduce driver: spawns `--workers N` real
//! `ppml-worker` processes, drives one job round through a fault-tolerant
//! [`TaskScheduler`], and checks the distributed result bit for bit
//! against the in-process `run_local` reference.
//!
//! ```text
//! cargo build --bin ppml-worker        # the worker binary must exist
//! cargo run --example mapreduce_workers [-- --workers 3] [--blocks 6]
//!           [--job <wordcount|spin>] [--straggler-ms 300] [--kill-ms 150]
//!           [--no-speculation] [--telemetry events.jsonl]
//! ```
//!
//! Fault drills, composable:
//! * `--straggler-ms N` slows the last worker by N ms per task — bait for
//!   the scheduler's speculative re-execution (watch `task_speculated`);
//! * `--kill-ms N` SIGKILLs worker 1 N ms into the round — its tasks
//!   re-queue on the survivors (watch `worker_dead`), so at least two
//!   workers are required.
//!
//! Whatever is injected, the job result must not change: the final line
//! only prints after the distributed output matched `run_local` exactly.
//!
//! The worker binary is found next to this example in the target dir;
//! `PPML_WORKER_BIN` overrides the path outright.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::sync::Arc;
use std::time::Duration;

use ppml::mapreduce::{process_job, run_local, TaskPolicy, TaskScheduler};
use ppml::telemetry::{self, Event, FanoutSink, JsonlSink, Sink, SummarySink};
use ppml::transport::{Courier, EventTransport, RetryPolicy};

const SEED: u64 = 42;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{flag} needs a value"))
            .clone()
    })
}

fn numeric_flag(args: &[String], flag: &str, default: u64) -> u64 {
    flag_value(args, flag)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag}: bad value {v}"))
        })
        .unwrap_or(default)
}

/// Locates the `ppml-worker` binary: `PPML_WORKER_BIN` if set, else the
/// sibling of this example in the cargo target directory.
fn worker_bin() -> PathBuf {
    if let Ok(path) = std::env::var("PPML_WORKER_BIN") {
        return PathBuf::from(path);
    }
    let exe = std::env::current_exe().expect("current exe");
    // target/<profile>/examples/mapreduce_workers -> target/<profile>/ppml-worker
    let candidate = exe
        .parent()
        .and_then(Path::parent)
        .map(|dir| dir.join(format!("ppml-worker{}", std::env::consts::EXE_SUFFIX)))
        .expect("target directory layout");
    assert!(
        candidate.exists(),
        "worker binary {} not found — run `cargo build --bin ppml-worker` first \
         (or point PPML_WORKER_BIN at it)",
        candidate.display()
    );
    candidate
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workers = numeric_flag(&args, "--workers", 3) as usize;
    assert!(workers >= 1, "--workers must be at least 1");
    let blocks_total = numeric_flag(&args, "--blocks", 2 * workers as u64);
    let job_name = flag_value(&args, "--job").unwrap_or_else(|| "wordcount".to_string());
    let straggler_ms = numeric_flag(&args, "--straggler-ms", 0);
    let kill_ms = numeric_flag(&args, "--kill-ms", 0);
    let speculate = !args.iter().any(|a| a == "--no-speculation");
    let telemetry_path = flag_value(&args, "--telemetry");
    if kill_ms > 0 {
        assert!(workers >= 2, "--kill-ms needs a survivor: use --workers 2+");
    }

    let summary = telemetry_path.as_deref().map(|path| {
        let jsonl = JsonlSink::create(Path::new(path)).expect("create telemetry file");
        let summary = SummarySink::new();
        let sinks: Vec<Arc<dyn Sink>> = vec![jsonl, summary.clone()];
        telemetry::install(FanoutSink::new(sinks));
        summary
    });

    let job = process_job(&job_name).expect("unknown job (use wordcount or spin)");
    let blocks: Vec<u64> = (0..blocks_total).collect();
    let reference = run_local(job.as_ref(), SEED, &blocks, &[]);

    let transport = EventTransport::bind(
        0,
        "127.0.0.1:0".parse().expect("loopback addr"),
        HashMap::new(),
        RetryPolicy::tcp_link(),
        Duration::from_secs(5),
    )
    .expect("bind driver transport");
    let addr = transport.local_addr();
    println!(
        "driver (pid {}) listening on {addr}: job {job_name}, {blocks_total} blocks, {workers} workers",
        std::process::id()
    );

    let bin = worker_bin();
    let mut children: Vec<Child> = (1..=workers)
        .map(|party| {
            let mut cmd = Command::new(&bin);
            cmd.args([
                "--party",
                &party.to_string(),
                "--workers",
                &workers.to_string(),
                "--blocks",
                &blocks_total.to_string(),
                "--driver",
                &addr.to_string(),
                "--job",
                &job_name,
                "--data-seed",
                &SEED.to_string(),
            ]);
            if party == workers && straggler_ms > 0 {
                cmd.args(["--lag-ms", &straggler_ms.to_string()]);
            }
            // The kill victim is slowed past the kill instant so the
            // signal reliably catches it mid-task; wordcount maps are
            // otherwise too fast to still be running at +kill_ms.
            if party == 1 && kill_ms > 0 {
                cmd.args(["--lag-ms", &(kill_ms + 250).to_string()]);
            }
            cmd.spawn().expect("spawn ppml-worker")
        })
        .collect();

    let policy = TaskPolicy {
        speculate,
        // When a kill is armed the attempt timeout is the detection
        // latency; keep it tight so the drill finishes promptly.
        attempt_timeout: if kill_ms > 0 {
            Duration::from_secs(1)
        } else {
            TaskPolicy::default().attempt_timeout
        },
        ..TaskPolicy::default()
    };
    let courier = Courier::new(transport, RetryPolicy::tcp_default());
    let mut sched = TaskScheduler::new(courier, job, policy.clone());
    sched
        .register_workers(workers, Duration::from_secs(30))
        .expect("workers never registered");
    println!("all {workers} workers registered");

    let killer = (kill_ms > 0).then(|| {
        let pid = children[0].id();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(kill_ms));
            let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
            println!("SIGKILLed worker 1 (pid {pid}) {kill_ms}ms into the round");
        })
    });

    let result = sched.run_round(&blocks, &[]).expect("round failed");
    if let Some(handle) = killer {
        handle.join().expect("killer thread");
    }
    assert_eq!(
        result, reference,
        "distributed result diverged from run_local"
    );
    if kill_ms > 0 {
        // Round 1 usually finishes through a speculative copy before the
        // victim's attempt times out — speculation masks the death, and
        // the cancelled attempt leaves a zombie slot on its liveness
        // clock. Wait out that clock, then run a degraded round: its
        // first liveness sweep expires the zombie, declares the worker
        // dead, and the survivors absorb its blocks.
        std::thread::sleep(policy.attempt_timeout + Duration::from_millis(100));
        let again = sched
            .run_round(&blocks, &[])
            .expect("degraded round failed");
        assert_eq!(again, reference, "degraded round diverged from run_local");
    }

    let m = &sched.metrics;
    println!(
        "round done: {} local / {} remote attempts, {} retries, {} speculations, \
         {} cancels sent, {} workers lost, {} workers alive",
        m.locality_hits,
        m.remote_reads,
        m.task_retries,
        m.task_speculations,
        sched.cancels_sent,
        m.workers_lost,
        sched.alive_workers()
    );
    if kill_ms > 0 {
        assert!(m.workers_lost >= 1, "the kill drill lost no worker");
    }

    sched.shutdown();
    for (i, child) in children.iter_mut().enumerate() {
        let status = child.wait().expect("wait for worker");
        let party = i + 1;
        if kill_ms > 0 && party == 1 {
            assert!(!status.success(), "worker 1 should have died by signal");
        } else {
            assert!(status.success(), "worker {party} failed");
        }
    }

    if let Some(path) = telemetry_path.as_deref() {
        telemetry::uninstall();
        let text = std::fs::read_to_string(path).expect("read telemetry file");
        let events: Vec<Event> = text
            .lines()
            .map(|line| Event::from_json(line).unwrap_or_else(|e| panic!("{path}: {e:?}: {line}")))
            .collect();
        assert!(!events.is_empty(), "{path}: telemetry stream is empty");
        print!("{}", summary.expect("summary sink").render());
        println!(
            "telemetry: {} machine-parseable events in {path}",
            events.len()
        );
    }
    println!("multi-process MapReduce matches the in-process reference bit for bit");
}
