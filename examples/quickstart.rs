//! Quickstart: four organizations jointly train a linear SVM without
//! sharing their rows.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use ppml::core::{AdmmConfig, HorizontalLinearSvm};
use ppml::data::{synth, Partition};
use ppml::svm::LinearSvm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A joint dataset the organizations could assemble *if* they were
    // willing to pool raw data (they are not).
    let dataset = synth::cancer_like(569, 42);
    let (train, test) = dataset.split(0.5, 7)?;
    println!(
        "dataset: {} samples x {} features ({} train / {} test)",
        dataset.len(),
        dataset.features(),
        train.len(),
        test.len()
    );

    // What pooling the data would buy (the privacy-free upper bound).
    let centralized = LinearSvm::train(&train, 50.0)?;
    println!(
        "centralized baseline accuracy: {:.3}",
        centralized.accuracy(&test)
    );

    // The privacy-preserving alternative: each organization keeps its rows,
    // per-iteration local models are aggregated through the paper's
    // coalition-resistant masking protocol.
    let learners = Partition::horizontal(&train, 4, 1)?;
    let cfg = AdmmConfig::default().with_max_iter(100);
    let outcome = HorizontalLinearSvm::train(&learners, &cfg, Some(&test))?;

    println!(
        "distributed (private) accuracy: {:.3}",
        outcome.model.accuracy(&test)
    );
    println!("\nconvergence ‖z(t+1) − z(t)‖² (every 10th iteration):");
    for (i, d) in outcome.history.z_delta.iter().enumerate() {
        if i % 10 == 0 {
            println!(
                "  iter {:>3}: {:>12.3e}   accuracy {:.3}",
                i + 1,
                d,
                outcome.history.accuracy[i]
            );
        }
    }
    println!(
        "\nfinal: Δz² = {:.3e} after {} iterations",
        outcome.history.final_delta().unwrap_or(f64::NAN),
        outcome.history.len()
    );
    Ok(())
}
