//! Distributed horizontal-linear SVM across real OS processes.
//!
//! Re-runs the Fig. 2 star topology with three learner *processes*
//! talking TCP on localhost to an in-process coordinator, then checks the
//! result against `train_linear_on_cluster` (the simulated-cluster path):
//! because the protocol aggregates fixed-point wrapping sums, the two
//! must agree to well below 1e-6 — in fact bit for bit.
//!
//! ```text
//! cargo run --example distributed_hl [-- --telemetry events.jsonl]
//!                                    [--metrics-addr 127.0.0.1:0]
//! ```
//!
//! With `--telemetry PATH`, the coordinator streams structured events to
//! `PATH` and each learner process to `PATH.learner<i>`; every file is
//! re-parsed at the end (machine-readability is part of the check).
//!
//! With `--metrics-addr HOST:PORT`, the coordinator serves its live
//! metrics registry in Prometheus text format (`metrics on ADDR` is
//! printed) and a scraper thread polls the endpoint *during* the run,
//! asserting it observes at least one closed round mid-flight.
//!
//! The example re-executes itself with `learner <party> <addr> [path]`
//! for the child role, so it needs no other binary to be built.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppml::core::distributed::{coordinate_linear, feature_count, learn_linear};
use ppml::core::jobs::{train_linear_on_cluster, ClusterTuning};
use ppml::core::AdmmConfig;
use ppml::core::DistributedTiming;
use ppml::data::{synth, Dataset, Partition};
use ppml::telemetry::{
    self, Event, FanoutSink, JsonlSink, MetricsServer, MetricsSink, Sink, SummarySink,
};
use ppml::transport::{Courier, EventTransport, Message, PartyId, RetryPolicy, TcpTransport};

const LEARNERS: usize = 3;

/// Every process regenerates the same dataset and config from these
/// constants — no training data crosses the wire.
fn shared_setup() -> (Vec<Dataset>, AdmmConfig) {
    let ds = synth::blobs(96, 5);
    let parts = Partition::horizontal(&ds, LEARNERS, 1).expect("partition");
    let cfg = AdmmConfig::default().with_max_iter(12).with_seed(11);
    (parts, cfg)
}

/// Re-parses a JSONL telemetry file, asserting it is non-empty and every
/// line round-trips through [`Event::from_json`].
fn validate_jsonl(path: &str) -> Vec<Event> {
    let text = std::fs::read_to_string(path).expect("read telemetry file");
    let events: Vec<Event> = text
        .lines()
        .map(|line| Event::from_json(line).unwrap_or_else(|e| panic!("{path}: {e:?}: {line}")))
        .collect();
    assert!(!events.is_empty(), "{path}: telemetry stream is empty");
    events
}

fn learner_process(party: usize, coordinator: SocketAddr, telemetry_path: Option<&str>) {
    if let Some(path) = telemetry_path {
        let jsonl = JsonlSink::create(Path::new(path)).expect("create learner telemetry");
        telemetry::install(jsonl);
    }
    let (parts, cfg) = shared_setup();
    let transport = TcpTransport::bind(
        party as PartyId,
        "127.0.0.1:0".parse().expect("loopback addr"),
        HashMap::from([(LEARNERS as PartyId, coordinator)]),
        RetryPolicy::tcp_link(),
        Duration::from_secs(5),
    )
    .expect("bind learner");
    let mut courier = Courier::new(transport, RetryPolicy::tcp_default());
    // Dial in so the coordinator counts this learner as connected.
    courier
        .send_unreliable(
            LEARNERS as PartyId,
            &Message::Heartbeat {
                nonce: party as u64,
            },
        )
        .expect("announce");
    let timing = DistributedTiming::default()
        .with_round_deadline(Duration::from_secs(15))
        .with_learner_patience(Duration::from_secs(30));
    let model = learn_linear(&mut courier, LEARNERS, &parts[party], &cfg, timing).expect("learner");
    println!(
        "learner {party} (pid {}): consensus bias {:+.6}",
        std::process::id(),
        model.bias()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if (args.len() == 4 || args.len() == 5) && args[1] == "learner" {
        let party: usize = args[2].parse().expect("party index");
        let addr: SocketAddr = args[3].parse().expect("coordinator addr");
        learner_process(party, addr, args.get(4).map(String::as_str));
        return;
    }
    let telemetry_path = args
        .iter()
        .position(|a| a == "--telemetry")
        .map(|i| args.get(i + 1).expect("--telemetry needs a path").clone());
    let metrics_addr = args.iter().position(|a| a == "--metrics-addr").map(|i| {
        args.get(i + 1)
            .expect("--metrics-addr needs an addr")
            .clone()
    });

    let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
    let summary = telemetry_path.as_deref().map(|path| {
        let jsonl = JsonlSink::create(Path::new(path)).expect("create telemetry file");
        let summary = SummarySink::new();
        sinks.push(jsonl);
        sinks.push(summary.clone());
        summary
    });
    let metrics_server = metrics_addr.as_deref().map(|addr| {
        let sink = MetricsSink::new();
        let server =
            MetricsServer::serve(addr, Arc::clone(sink.registry())).expect("metrics server");
        sinks.push(sink);
        println!("metrics on {}", server.local_addr());
        server
    });
    if !sinks.is_empty() {
        telemetry::install(FanoutSink::new(sinks));
    }

    let (parts, cfg) = shared_setup();
    let features = feature_count(&parts).expect("partitions");

    // Reference: the same protocol on the in-process simulated cluster.
    let (reference, _) =
        train_linear_on_cluster(&parts, &cfg, None, ClusterTuning::default()).expect("cluster run");

    // The coordinator runs the event-loop backend (one I/O thread for
    // all learners); the learner children stay on the thread-per-conn
    // backend, demonstrating that the two interoperate on one wire.
    let transport = EventTransport::bind(
        LEARNERS as PartyId,
        "127.0.0.1:0".parse().expect("loopback addr"),
        HashMap::new(),
        RetryPolicy::tcp_link(),
        Duration::from_secs(5),
    )
    .expect("bind coordinator");
    let addr = transport.local_addr();
    println!(
        "coordinator (pid {}) listening on {addr}",
        std::process::id()
    );

    let exe = std::env::current_exe().expect("current exe");
    let children: Vec<Child> = (0..LEARNERS)
        .map(|party| {
            let mut cmd = Command::new(&exe);
            cmd.args(["learner", &party.to_string(), &addr.to_string()]);
            if let Some(path) = telemetry_path.as_deref() {
                cmd.arg(format!("{path}.learner{party}"));
            }
            cmd.spawn().expect("spawn learner process")
        })
        .collect();

    let deadline = Instant::now() + Duration::from_secs(30);
    while transport.connected_parties().len() < LEARNERS {
        assert!(Instant::now() < deadline, "learners never connected");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Mid-run scrape: poll the live endpoint while training runs, until
    // it shows at least one closed round — proof the registry is being
    // populated in flight, not rendered post-hoc.
    let scraper = metrics_server.as_ref().map(|server| {
        let addr = server.local_addr().to_string();
        std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(60);
            loop {
                if let Ok(body) = telemetry::http::scrape(&addr) {
                    let live = body
                        .lines()
                        .any(|l| l.starts_with("ppml_rounds_closed_total") && !l.ends_with(" 0"));
                    if live {
                        return body;
                    }
                }
                assert!(
                    Instant::now() < deadline,
                    "metrics endpoint never showed a closed round"
                );
                std::thread::sleep(Duration::from_millis(25));
            }
        })
    });

    let mut courier = Courier::new(transport, RetryPolicy::tcp_default());
    let timing = DistributedTiming::default()
        .with_round_deadline(Duration::from_secs(15))
        .with_learner_patience(Duration::from_secs(30));
    let outcome = coordinate_linear(&mut courier, LEARNERS, features, &cfg, None, timing)
        .expect("coordinate");

    if let Some(handle) = scraper {
        let body = handle.join().expect("scraper thread");
        let frames = body
            .lines()
            .find(|l| l.starts_with("ppml_frames_sent_total"))
            .expect("scrape must include the frame counter")
            .to_string();
        assert!(
            !frames.ends_with(" 0"),
            "no frames counted mid-run: {frames}"
        );
        // CI greps this line to prove the endpoint was live during the run.
        println!("mid-run scrape saw live metrics: {frames}");
    }

    for mut child in children {
        let status = child.wait().expect("wait for learner");
        assert!(status.success(), "learner process failed");
    }

    println!(
        "distributed run: {} rounds, {} bytes on the wire",
        outcome.metrics.iterations,
        outcome.metrics.total_network_bytes()
    );

    // The distributed protocol must reproduce the simulated cluster.
    let max_dev = outcome
        .model
        .weights()
        .iter()
        .zip(reference.model.weights())
        .map(|(a, b)| (a - b).abs())
        .fold(
            (outcome.model.bias() - reference.model.bias()).abs(),
            f64::max,
        );
    println!("max deviation from in-process cluster run: {max_dev:.3e}");
    assert!(
        max_dev < 1e-6,
        "distributed and in-process runs disagree: {max_dev}"
    );
    println!("distributed TCP training matches the in-process cluster result");

    if let Some(path) = telemetry_path.as_deref() {
        telemetry::uninstall();
        let coord_events = validate_jsonl(path);
        assert!(
            coord_events
                .iter()
                .any(|e| matches!(e.kind, telemetry::EventKind::RoundClose { .. })),
            "coordinator stream is missing round closes"
        );
        let mut total = coord_events.len();
        for party in 0..LEARNERS {
            total += validate_jsonl(&format!("{path}.learner{party}")).len();
        }
        print!("{}", summary.expect("summary sink").render());
        println!("telemetry: {total} machine-parseable events across 4 streams");
    }
}
