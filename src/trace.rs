//! Cross-process trace correlation (ISSUE 4 tentpole, piece 3): merge
//! the per-process JSONL telemetry streams of one distributed run into a
//! single causal timeline on the coordinator's clock.
//!
//! Telemetry timestamps are nanoseconds since a *per-process* epoch
//! ([`ppml_telemetry::now_ns`]), so the raw streams of a coordinator and
//! its learners are mutually incomparable. The coordinator closes that
//! gap at run start: it probes each learner over the transport and emits
//! one [`EventKind::ClockSync`] per answering peer with the estimated
//! `offset ≈ peer_clock − coordinator_clock` (minimum-RTT sample, NTP
//! style). This module replays those offsets: given N parsed streams it
//! identifies the coordinator, rebases every learner event by
//! `t − offset`, merges, and derives the per-round views an operator
//! actually asks for — round critical path (slowest learner per
//! iteration), retransmit hot spots, deadline-miss → dropout → re-key
//! sequences, and per-phase span summaries. The `ppml-trace` binary is a
//! thin CLI over [`Stream::load`] + [`Timeline::correlate`] +
//! [`Timeline::render`].
//!
//! Clock rebasing has a causal fallback (ISSUE 9): a stream whose owner
//! has no `ClockSync` offset — its process outlived the probe window, or
//! the probes were lost — is anchored on the earliest `RoundOpen`
//! iteration it shares with the coordinator. The coordinator's open is
//! the broadcast that *caused* the learner's, so the anchor aligns the
//! two clocks to within one network delivery: coarser than the NTP-style
//! probe offset, but enough for causal ordering, and derived entirely
//! from ids both sides already stamp.
//!
//! Parsing is forward-compatible: a line whose `kind` this build does
//! not know ([`ParseError::UnknownKind`]) is skipped and counted, never
//! fatal — a trace reader must survive streams written by a newer build.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use ppml_telemetry::{Event, EventKind, ParseError, NO_PARTY};

/// One parsed JSONL telemetry stream (one process of the run).
#[derive(Debug, Clone)]
pub struct Stream {
    /// Display name (usually the file name).
    pub name: String,
    /// Events that parsed, in file order.
    pub events: Vec<Event>,
    /// Lines skipped because their `kind` is unknown to this build.
    pub skipped_unknown: usize,
    /// Lines skipped because they were structurally malformed.
    pub skipped_malformed: usize,
}

impl Stream {
    /// Parses a JSONL stream, skipping-and-counting undecodable lines
    /// instead of failing: unknown kinds are expected from newer builds,
    /// malformed lines from truncated writes at process death.
    pub fn parse(name: impl Into<String>, text: &str) -> Stream {
        let mut events = Vec::new();
        let mut skipped_unknown = 0;
        let mut skipped_malformed = 0;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match Event::from_json(line) {
                Ok(event) => events.push(event),
                Err(ParseError::UnknownKind(_)) => skipped_unknown += 1,
                Err(ParseError::Malformed(_)) => skipped_malformed += 1,
            }
        }
        Stream {
            name: name.into(),
            events,
            skipped_unknown,
            skipped_malformed,
        }
    }

    /// Reads and parses the JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from reading the file (parse defects are
    /// not errors — see [`Stream::parse`]).
    pub fn load(path: &Path) -> std::io::Result<Stream> {
        let text = std::fs::read_to_string(path)?;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        Ok(Stream::parse(name, &text))
    }

    /// The protocol party this stream belongs to: every instrumented
    /// call site stamps events with the owning process's party id, so
    /// the most frequent non-[`NO_PARTY`] id is the owner.
    pub fn owner(&self) -> Option<u32> {
        let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
        for e in &self.events {
            if e.party != NO_PARTY {
                *counts.entry(e.party).or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            .max_by_key(|&(_, count)| count)
            .map(|(party, _)| party)
    }

    /// The run id stamped on this stream, if any.
    pub fn run_id(&self) -> Option<u64> {
        self.events.iter().find_map(|e| match e.kind {
            EventKind::RunInfo { run_id } => Some(run_id),
            _ => None,
        })
    }
}

/// One event on the merged timeline.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Timestamp rebased onto the coordinator's clock (signed: a learner
    /// event can rebase to before the coordinator's own epoch).
    pub t_ns: i64,
    /// False when no clock offset was known for the source stream (its
    /// events stay on their own clock and cross-stream order against
    /// them is unreliable).
    pub rebased: bool,
    /// Index of the source stream in [`Timeline::streams`].
    pub stream: usize,
    /// The event itself.
    pub event: Event,
}

/// Per-iteration view assembled from the coordinator's stream plus the
/// rebased learner streams.
#[derive(Debug, Clone)]
pub struct RoundView {
    /// ADMM iteration number.
    pub iteration: u64,
    /// Coordinator `RoundOpen` time (coordinator clock).
    pub open_t_ns: i64,
    /// Coordinator `RoundClose` time; `None` for a round cut short.
    pub close_t_ns: Option<i64>,
    /// Coordinator-measured open→close wall clock.
    pub elapsed_ns: Option<u64>,
    /// The round's critical path: the learner whose own `RoundClose`
    /// (share sent, rebased to coordinator clock) came last, with that
    /// time. `None` when no rebased learner closes exist for the round.
    pub slowest_learner: Option<(u32, i64)>,
    /// Deadline misses the coordinator recorded within the round.
    pub deadline_misses: u32,
    /// Learners declared dropped in this round, in declaration order.
    pub dropped: Vec<u32>,
    /// Re-keys in this round as `(epoch, survivors)`.
    pub rekeys: Vec<(u64, u32)>,
}

/// The merged, clock-rebased view over all streams of one run.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// The input streams, as given.
    pub streams: Vec<Stream>,
    /// Index into [`Timeline::streams`] of the coordinator's stream.
    pub coordinator_stream: Option<usize>,
    /// The coordinator's party id.
    pub coordinator_party: Option<u32>,
    /// `party → offset_ns` (peer clock − coordinator clock) from the
    /// coordinator's `ClockSync` events; rebasing subtracts this.
    pub offsets: BTreeMap<u32, i64>,
    /// Causal fallback offsets for parties absent from [`Timeline::offsets`]:
    /// derived from the earliest `RoundOpen` iteration the party's stream
    /// shares with the coordinator's. Good to within one network delivery.
    pub derived_offsets: BTreeMap<u32, i64>,
    /// Winning-probe RTT per party, for the report.
    pub rtts: BTreeMap<u32, u64>,
    /// All events of all streams, rebased where possible, sorted by
    /// rebased time.
    pub events: Vec<TraceEvent>,
    /// Rounds reconstructed from the coordinator's stream, ascending.
    pub rounds: Vec<RoundView>,
}

/// One deadline-miss → dropout → re-key sequence on the coordinator's
/// clock, as `(miss_t, (dropped_party, drop_t), rekey_t)`.
pub type DropoutSequence = (Option<i64>, (u32, i64), Option<i64>);

/// One re-admission: the rejoining party, the round it re-enters at, and
/// the re-key `(epoch, survivors)` that sealed it (if recorded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejoinStory {
    /// The returning learner.
    pub party: u32,
    /// Round the coordinator originally dropped it in, when recorded.
    pub dropped_at: Option<u64>,
    /// Round it re-enters the protocol at.
    pub iteration: u64,
    /// The re-key that admitted it, as `(epoch, survivors)`.
    pub rekey: Option<(u64, u32)>,
}

impl Timeline {
    /// Correlates `streams` into one timeline: identifies the
    /// coordinator (the stream carrying `ClockSync` events; falling back
    /// to the highest owner party, which is the coordinator's slot in
    /// the star topology), collects its offset table, rebases and merges
    /// every event, and reconstructs the per-round views.
    pub fn correlate(streams: Vec<Stream>) -> Timeline {
        let coordinator_stream = streams
            .iter()
            .position(|s| {
                s.events
                    .iter()
                    .any(|e| matches!(e.kind, EventKind::ClockSync { .. }))
            })
            .or_else(|| {
                let owners: Vec<Option<u32>> = streams.iter().map(Stream::owner).collect();
                owners
                    .iter()
                    .enumerate()
                    .filter_map(|(i, o)| o.map(|p| (i, p)))
                    .max_by_key(|&(_, p)| p)
                    .map(|(i, _)| i)
            });
        let coordinator_party = coordinator_stream.and_then(|i| streams[i].owner());

        let mut offsets = BTreeMap::new();
        let mut rtts = BTreeMap::new();
        if let Some(ci) = coordinator_stream {
            for e in &streams[ci].events {
                if let EventKind::ClockSync {
                    peer,
                    offset_ns,
                    rtt_ns,
                } = e.kind
                {
                    offsets.insert(peer, offset_ns);
                    rtts.insert(peer, rtt_ns);
                }
            }
        }

        // Causal fallback: a party with no probe offset is anchored on
        // the earliest RoundOpen iteration its stream shares with the
        // coordinator's — the coordinator's open *causes* the learner's,
        // so the difference of the two stamps is the clock offset plus
        // one network delivery.
        let mut derived_offsets: BTreeMap<u32, i64> = BTreeMap::new();
        if let Some(ci) = coordinator_stream {
            let mut coordinator_opens: BTreeMap<u64, i64> = BTreeMap::new();
            for e in &streams[ci].events {
                if Some(e.party) == coordinator_party {
                    if let EventKind::RoundOpen { iteration, .. } = e.kind {
                        coordinator_opens.entry(iteration).or_insert(e.t_ns as i64);
                    }
                }
            }
            for (si, stream) in streams.iter().enumerate() {
                if Some(si) == coordinator_stream {
                    continue;
                }
                let Some(owner) = stream.owner() else {
                    continue;
                };
                if offsets.contains_key(&owner) || derived_offsets.contains_key(&owner) {
                    continue;
                }
                let anchor = stream
                    .events
                    .iter()
                    .filter(|e| e.party == owner)
                    .filter_map(|e| match e.kind {
                        EventKind::RoundOpen { iteration, .. } => coordinator_opens
                            .get(&iteration)
                            .map(|&ct| (iteration, (e.t_ns as i64).wrapping_sub(ct))),
                        _ => None,
                    })
                    .min_by_key(|&(iteration, _)| iteration);
                if let Some((_, off)) = anchor {
                    derived_offsets.insert(owner, off);
                }
            }
        }
        let mut all_offsets = offsets.clone();
        all_offsets.extend(derived_offsets.iter().map(|(&p, &o)| (p, o)));

        let mut events: Vec<TraceEvent> = Vec::new();
        for (si, stream) in streams.iter().enumerate() {
            let is_coordinator = Some(si) == coordinator_stream;
            let offset = stream.owner().and_then(|p| all_offsets.get(&p).copied());
            for &event in &stream.events {
                let (t_ns, rebased) = if is_coordinator {
                    (event.t_ns as i64, true)
                } else if let Some(off) = offset {
                    ((event.t_ns as i64).wrapping_sub(off), true)
                } else {
                    (event.t_ns as i64, false)
                };
                events.push(TraceEvent {
                    t_ns,
                    rebased,
                    stream: si,
                    event,
                });
            }
        }
        events.sort_by_key(|e| e.t_ns);

        let rounds = build_rounds(
            &streams,
            coordinator_stream,
            coordinator_party,
            &all_offsets,
        );

        Timeline {
            streams,
            coordinator_stream,
            coordinator_party,
            offsets,
            derived_offsets,
            rtts,
            events,
            rounds,
        }
    }

    /// Rounds the coordinator both opened and closed.
    pub fn complete_rounds(&self) -> usize {
        self.rounds
            .iter()
            .filter(|r| r.close_t_ns.is_some())
            .count()
    }

    /// Total lines skipped across all streams as `(unknown, malformed)`.
    pub fn skipped(&self) -> (usize, usize) {
        self.streams.iter().fold((0, 0), |(u, m), s| {
            (u + s.skipped_unknown, m + s.skipped_malformed)
        })
    }

    /// The deadline-miss → dropout → re-key sequences on the
    /// coordinator's clock: for every dropout declaration, the nearest
    /// preceding deadline miss and nearest following re-key (if any).
    pub fn dropout_sequences(&self) -> Vec<DropoutSequence> {
        let coordinator = self.coordinator_party;
        let on_coordinator = |e: &&TraceEvent| Some(e.event.party) == coordinator;
        let mut out = Vec::new();
        for drop_event in self.events.iter().filter(on_coordinator) {
            let EventKind::Dropout { party, .. } = drop_event.event.kind else {
                continue;
            };
            let miss = self
                .events
                .iter()
                .filter(on_coordinator)
                .filter(|e| {
                    matches!(e.event.kind, EventKind::DeadlineMiss { .. })
                        && e.t_ns <= drop_event.t_ns
                })
                .map(|e| e.t_ns)
                .next_back();
            let rekey = self
                .events
                .iter()
                .filter(on_coordinator)
                .find(|e| {
                    matches!(e.event.kind, EventKind::RekeyEpoch { .. })
                        && e.t_ns >= drop_event.t_ns
                })
                .map(|e| e.t_ns);
            out.push((miss, (party, drop_event.t_ns), rekey));
        }
        out
    }

    /// Recovery counts across all streams as
    /// `(checkpoint writes, resumes, rejoins)`. Rejoins are counted on
    /// the coordinator side only (the learner logs a mirror event).
    pub fn recovery_counts(&self) -> (usize, usize, usize) {
        let coordinator = self.coordinator_party;
        let mut checkpoints = 0;
        let mut resumes = 0;
        let mut rejoins = 0;
        for e in &self.events {
            match e.event.kind {
                EventKind::CheckpointWrite { .. } => checkpoints += 1,
                EventKind::ResumeFromCheckpoint { .. } => resumes += 1,
                EventKind::Rejoin { .. } if Some(e.event.party) == coordinator => rejoins += 1,
                _ => {}
            }
        }
        (checkpoints, resumes, rejoins)
    }

    /// The re-admission stories, coordinator side: each `Rejoin` paired
    /// with the party's nearest preceding `Dropout` and the first
    /// following `RekeyEpoch` *from the same stream* — a resumed run can
    /// contribute a second coordinator stream whose clock is its own, so
    /// cross-stream time pairing would lie.
    pub fn rejoin_stories(&self) -> Vec<RejoinStory> {
        let coordinator = self.coordinator_party;
        let mut out = Vec::new();
        for rejoin in &self.events {
            let EventKind::Rejoin { party, iteration } = rejoin.event.kind else {
                continue;
            };
            if Some(rejoin.event.party) != coordinator {
                continue;
            }
            let same_stream = |e: &&TraceEvent| e.stream == rejoin.stream;
            let dropped_at = self
                .events
                .iter()
                .filter(same_stream)
                .filter(|e| {
                    e.t_ns <= rejoin.t_ns
                        && matches!(e.event.kind, EventKind::Dropout { party: p, .. } if p == party)
                })
                .map(|e| match e.event.kind {
                    EventKind::Dropout { iteration, .. } => iteration,
                    _ => unreachable!(),
                })
                .next_back();
            let rekey = self
                .events
                .iter()
                .filter(same_stream)
                .find(|e| {
                    e.t_ns >= rejoin.t_ns && matches!(e.event.kind, EventKind::RekeyEpoch { .. })
                })
                .map(|e| match e.event.kind {
                    EventKind::RekeyEpoch {
                        epoch, survivors, ..
                    } => (epoch, survivors),
                    _ => unreachable!(),
                });
            out.push(RejoinStory {
                party,
                dropped_at,
                iteration,
                rekey,
            });
        }
        out
    }

    /// Renders the human report: identity block, offset table, per-round
    /// causal timeline with critical path, the dropout story, retransmit
    /// hot spots and per-phase span summaries. The `rounds: N complete`
    /// line is a stable interface — CI greps for it.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);
        let (unknown, malformed) = self.skipped();
        let total: usize = self.streams.iter().map(|s| s.events.len()).sum();
        let _ = writeln!(
            out,
            "ppml-trace: {} streams, {total} events merged \
             ({unknown} unknown-kind lines skipped, {malformed} malformed lines skipped)",
            self.streams.len()
        );

        // Identity: run ids must agree across streams.
        let run_ids: Vec<(String, Option<u64>)> = self
            .streams
            .iter()
            .map(|s| (s.name.clone(), s.run_id()))
            .collect();
        let known: Vec<u64> = run_ids.iter().filter_map(|(_, id)| *id).collect();
        match (
            known.first(),
            known.iter().all(|&id| Some(&id) == known.first()),
        ) {
            (Some(id), true) => {
                let _ = writeln!(
                    out,
                    "run id: {id:#018x} ({} of {} streams stamped)",
                    known.len(),
                    self.streams.len()
                );
            }
            (Some(_), false) => {
                let _ = writeln!(
                    out,
                    "WARNING: run ids disagree — these streams may be from different runs:"
                );
                for (name, id) in &run_ids {
                    let _ = writeln!(out, "  {name}: {:?}", id.map(|v| format!("{v:#018x}")));
                }
            }
            (None, _) => {
                let _ = writeln!(out, "run id: none recorded");
            }
        }

        match (self.coordinator_stream, self.coordinator_party) {
            (Some(ci), Some(party)) => {
                let _ = writeln!(
                    out,
                    "coordinator: party {party} ({})",
                    self.streams[ci].name
                );
            }
            _ => {
                let _ = writeln!(out, "coordinator: not identified (no ClockSync events)");
            }
        }
        for (&party, &offset) in &self.offsets {
            let rtt = self.rtts.get(&party).copied().unwrap_or(0);
            let _ = writeln!(
                out,
                "clock offset: party {party} {}{:.3}ms (winning rtt {:.3}ms)",
                if offset >= 0 { "+" } else { "-" },
                offset.unsigned_abs() as f64 / 1e6,
                rtt as f64 / 1e6
            );
        }
        for (&party, &offset) in &self.derived_offsets {
            let _ = writeln!(
                out,
                "causal offset: party {party} {}{:.3}ms (derived from shared round opens; \
                 no ClockSync)",
                if offset >= 0 { "+" } else { "-" },
                offset.unsigned_abs() as f64 / 1e6
            );
        }
        let unrebased: Vec<&str> = self
            .streams
            .iter()
            .enumerate()
            .filter(|&(si, _)| {
                Some(si) != self.coordinator_stream
                    && self.streams[si].owner().is_none_or(|p| {
                        !self.offsets.contains_key(&p) && !self.derived_offsets.contains_key(&p)
                    })
            })
            .map(|(_, s)| s.name.as_str())
            .collect();
        if !unrebased.is_empty() {
            let _ = writeln!(
                out,
                "WARNING: no clock offset for {} — their timestamps stay on their own clocks",
                unrebased.join(", ")
            );
        }

        // Rounds + critical path.
        let _ = writeln!(out, "rounds: {} complete", self.complete_rounds());
        let origin = self.rounds.first().map(|r| r.open_t_ns).unwrap_or(0);
        let ms = |t: i64| (t - origin) as f64 / 1e6;
        for round in &self.rounds {
            let mut line = format!(
                "round {:>3}: open +{:.3}ms",
                round.iteration,
                ms(round.open_t_ns)
            );
            match (round.close_t_ns, round.elapsed_ns) {
                (Some(close), Some(elapsed)) => {
                    let _ = write!(
                        line,
                        ", close +{:.3}ms ({:.3}ms)",
                        ms(close),
                        elapsed as f64 / 1e6
                    );
                }
                _ => line.push_str(", never closed"),
            }
            if let Some((party, t)) = round.slowest_learner {
                let _ = write!(
                    line,
                    "; critical path: learner {party} (share sent +{:.3}ms)",
                    ms(t)
                );
            }
            let _ = writeln!(out, "{line}");
            if round.deadline_misses > 0 {
                let _ = writeln!(
                    out,
                    "  deadline missed {}x; dropped {:?}; re-keyed {:?}",
                    round.deadline_misses, round.dropped, round.rekeys
                );
            }
        }

        // Dropout story on the coordinator clock.
        for (miss, (party, drop_t), rekey) in self.dropout_sequences() {
            let fmt = |t: Option<i64>| match t {
                Some(t) => format!("+{:.3}ms", ms(t)),
                None => "—".to_string(),
            };
            let _ = writeln!(
                out,
                "dropout story: deadline miss {} → party {party} dropped {} → re-key {}",
                fmt(miss),
                fmt(Some(drop_t)),
                fmt(rekey)
            );
        }

        // Recovery story: checkpoints, resume, rejoins. The `recovery:`
        // counts line is a stable interface — CI greps for it.
        let (checkpoints, resumes, rejoins) = self.recovery_counts();
        if checkpoints + resumes + rejoins > 0 {
            let _ = writeln!(
                out,
                "recovery: {checkpoints} checkpoints, {resumes} resumes, {rejoins} rejoins"
            );
        }
        // Highest-round checkpoint, not last-by-time: a resumed run adds
        // a second coordinator stream on its own clock, but checkpoint
        // rounds are monotone across incarnations.
        let last_ckpt = self
            .events
            .iter()
            .filter_map(|e| match e.event.kind {
                EventKind::CheckpointWrite {
                    iteration,
                    epoch,
                    bytes,
                } => Some((iteration, epoch, bytes)),
                _ => None,
            })
            .max_by_key(|&(iteration, ..)| iteration);
        if let Some((iteration, epoch, bytes)) = last_ckpt {
            let _ = writeln!(
                out,
                "last checkpoint: resumable at round {iteration} (epoch {epoch}, {bytes} bytes)"
            );
        }
        for e in &self.events {
            if let EventKind::ResumeFromCheckpoint {
                iteration,
                epoch,
                survivors,
            } = e.event.kind
            {
                let _ = writeln!(
                    out,
                    "resume story: coordinator re-entered at round {iteration} \
                     (epoch {epoch}, {survivors} survivors)"
                );
            }
        }
        for story in self.rejoin_stories() {
            let dropped = match story.dropped_at {
                Some(round) => format!("dropped round {round}"),
                None => "restarted".to_string(),
            };
            let sealed = match story.rekey {
                Some((epoch, survivors)) => {
                    format!("re-key epoch {epoch} over {survivors} survivors")
                }
                None => "re-key not recorded".to_string(),
            };
            let _ = writeln!(
                out,
                "rejoin story: party {} {dropped} → re-admitted at round {} → {sealed}",
                story.party, story.iteration
            );
        }

        // Straggler story: the coordinator's per-round slow-learner
        // verdicts (collect lag scored against the round median).
        for e in &self.events {
            if let EventKind::SlowLearner {
                party,
                iteration,
                lag_ns,
                median_ns,
                score,
            } = e.event.kind
            {
                let _ = writeln!(
                    out,
                    "straggler: party {party} round {iteration} score {score:.2} \
                     (lag {:.3}ms vs median {:.3}ms)",
                    lag_ns as f64 / 1e6,
                    median_ns as f64 / 1e6
                );
            }
        }

        // Retransmit hot spots: per (sender party, destination).
        let mut retransmits: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        for e in &self.events {
            if let EventKind::ArqRetransmit { to, .. } = e.event.kind {
                *retransmits.entry((e.event.party, to)).or_insert(0) += 1;
            }
        }
        if !retransmits.is_empty() {
            let mut pairs: Vec<((u32, u32), u64)> = retransmits.into_iter().collect();
            pairs.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
            let text: Vec<String> = pairs
                .iter()
                .take(8)
                .map(|&((from, to), n)| format!("{from}→{to}: {n}"))
                .collect();
            let _ = writeln!(out, "retransmit hot spots: {}", text.join(", "));
        }

        // Per-phase span summaries, per party.
        let mut phases: BTreeMap<(u32, &'static str), (u64, u64)> = BTreeMap::new();
        for e in &self.events {
            if let EventKind::PhaseElapsed { phase, elapsed_ns } = e.event.kind {
                let slot = phases.entry((e.event.party, phase)).or_insert((0, 0));
                slot.0 += 1;
                slot.1 += elapsed_ns;
            }
        }
        for ((party, phase), (count, total_ns)) in phases {
            let _ = writeln!(
                out,
                "phase {phase} [party {party}]: {count} spans, {:.3}s total",
                total_ns as f64 / 1e9
            );
        }
        out
    }
}

/// Reconstructs [`RoundView`]s: coordinator opens/closes/faults keyed by
/// iteration, then the critical path from rebased learner closes.
fn build_rounds(
    streams: &[Stream],
    coordinator_stream: Option<usize>,
    coordinator_party: Option<u32>,
    offsets: &BTreeMap<u32, i64>,
) -> Vec<RoundView> {
    let Some(ci) = coordinator_stream else {
        return Vec::new();
    };
    let mut rounds: BTreeMap<u64, RoundView> = BTreeMap::new();
    for e in &streams[ci].events {
        if Some(e.party) != coordinator_party {
            continue;
        }
        let t = e.t_ns as i64;
        match e.kind {
            EventKind::RoundOpen { iteration, .. } => {
                rounds.entry(iteration).or_insert(RoundView {
                    iteration,
                    open_t_ns: t,
                    close_t_ns: None,
                    elapsed_ns: None,
                    slowest_learner: None,
                    deadline_misses: 0,
                    dropped: Vec::new(),
                    rekeys: Vec::new(),
                });
            }
            EventKind::RoundClose {
                iteration,
                elapsed_ns,
                ..
            } => {
                if let Some(round) = rounds.get_mut(&iteration) {
                    round.close_t_ns = Some(t);
                    round.elapsed_ns = Some(elapsed_ns);
                }
            }
            EventKind::DeadlineMiss { iteration, .. } => {
                if let Some(round) = rounds.get_mut(&iteration) {
                    round.deadline_misses += 1;
                }
            }
            EventKind::Dropout { party, iteration } => {
                if let Some(round) = rounds.get_mut(&iteration) {
                    round.dropped.push(party);
                }
            }
            EventKind::RekeyEpoch {
                iteration,
                epoch,
                survivors,
            } => {
                if let Some(round) = rounds.get_mut(&iteration) {
                    round.rekeys.push((epoch, survivors));
                }
            }
            _ => {}
        }
    }

    // Critical path: latest rebased learner RoundClose per iteration.
    for (si, stream) in streams.iter().enumerate() {
        if Some(si) == coordinator_stream {
            continue;
        }
        let Some(owner) = stream.owner() else {
            continue;
        };
        let Some(&offset) = offsets.get(&owner) else {
            continue;
        };
        for e in &stream.events {
            if e.party != owner {
                continue;
            }
            if let EventKind::RoundClose { iteration, .. } = e.kind {
                if let Some(round) = rounds.get_mut(&iteration) {
                    let t = (e.t_ns as i64).wrapping_sub(offset);
                    if round.slowest_learner.is_none_or(|(_, best)| t > best) {
                        round.slowest_learner = Some((owner, t));
                    }
                }
            }
        }
    }
    rounds.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jsonl(events: &[Event]) -> String {
        let mut out = String::new();
        for e in events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    fn ev(t_ns: u64, party: u32, kind: EventKind) -> Event {
        Event { t_ns, party, kind }
    }

    /// Two-learner run scripted on paper: the coordinator's clock is the
    /// reference; learner 0's epoch started 1 s earlier (its clock reads
    /// 1 s *more*, offset +1 s) and learner 1's 2 s earlier (offset
    /// +2 s). Events are placed so the true coordinator-clock order
    /// interleaves the streams.
    fn scripted() -> Vec<Stream> {
        let run = 0xABCD;
        let coordinator = vec![
            ev(1_000, 2, EventKind::RunInfo { run_id: run }),
            ev(
                2_000,
                2,
                EventKind::ClockSync {
                    peer: 0,
                    offset_ns: 1_000_000_000,
                    rtt_ns: 50_000,
                },
            ),
            ev(
                3_000,
                2,
                EventKind::ClockSync {
                    peer: 1,
                    offset_ns: 2_000_000_000,
                    rtt_ns: 60_000,
                },
            ),
            ev(
                10_000,
                2,
                EventKind::RoundOpen {
                    iteration: 0,
                    epoch: 0,
                },
            ),
            ev(
                900_000,
                2,
                EventKind::RoundClose {
                    iteration: 0,
                    epoch: 0,
                    shares: 2,
                    elapsed_ns: 890_000,
                },
            ),
            ev(
                1_000_000,
                2,
                EventKind::RoundOpen {
                    iteration: 1,
                    epoch: 0,
                },
            ),
            ev(
                5_000_000,
                2,
                EventKind::DeadlineMiss {
                    iteration: 1,
                    epoch: 0,
                    missing: 1,
                },
            ),
            ev(
                5_100_000,
                2,
                EventKind::Dropout {
                    party: 1,
                    iteration: 1,
                },
            ),
            ev(
                5_200_000,
                2,
                EventKind::RekeyEpoch {
                    iteration: 1,
                    epoch: 1,
                    survivors: 1,
                },
            ),
            ev(
                6_000_000,
                2,
                EventKind::RoundClose {
                    iteration: 1,
                    epoch: 1,
                    shares: 1,
                    elapsed_ns: 5_000_000,
                },
            ),
        ];
        // Learner 0 clock = coordinator clock + 1e9 (its epoch began 1 s
        // before the coordinator's): raw t = true + 1e9, and rebasing
        // subtracts the +1e9 offset back out.
        let learner0 = vec![
            ev(
                1_000_000_000 + 20_000,
                0,
                EventKind::RunInfo { run_id: run },
            ),
            ev(
                1_000_000_000 + 100_000,
                0,
                EventKind::RoundOpen {
                    iteration: 0,
                    epoch: 0,
                },
            ),
            ev(
                1_000_000_000 + 500_000,
                0,
                EventKind::RoundClose {
                    iteration: 0,
                    epoch: 0,
                    shares: 1,
                    elapsed_ns: 400_000,
                },
            ),
        ];
        // Learner 1 clock = coordinator clock + 2e9; it closed round 0
        // *later* than learner 0 (true +800_000) — the critical path.
        let learner1 = vec![
            ev(
                2_000_000_000 + 30_000,
                1,
                EventKind::RunInfo { run_id: run },
            ),
            ev(
                2_000_000_000 + 200_000,
                1,
                EventKind::RoundOpen {
                    iteration: 0,
                    epoch: 0,
                },
            ),
            ev(
                2_000_000_000 + 800_000,
                1,
                EventKind::RoundClose {
                    iteration: 0,
                    epoch: 0,
                    shares: 1,
                    elapsed_ns: 600_000,
                },
            ),
            ev(
                2_000_000_000 + 900_000,
                1,
                EventKind::ArqRetransmit {
                    to: 2,
                    seq: 7,
                    attempt: 1,
                },
            ),
        ];
        vec![
            Stream::parse("coordinator.jsonl", &jsonl(&coordinator)),
            Stream::parse("learner0.jsonl", &jsonl(&learner0)),
            Stream::parse("learner1.jsonl", &jsonl(&learner1)),
        ]
    }

    #[test]
    fn identifies_coordinator_and_offsets() {
        let tl = Timeline::correlate(scripted());
        assert_eq!(tl.coordinator_stream, Some(0));
        assert_eq!(tl.coordinator_party, Some(2));
        assert_eq!(tl.offsets.get(&0), Some(&1_000_000_000));
        assert_eq!(tl.offsets.get(&1), Some(&2_000_000_000));
    }

    #[test]
    fn rebasing_restores_true_cross_stream_order() {
        let tl = Timeline::correlate(scripted());
        assert!(tl.events.iter().all(|e| e.rebased));
        // After rebasing, learner closes land inside the coordinator's
        // round-0 window (open 10_000, close 900_000).
        let learner_closes: Vec<(u32, i64)> = tl
            .events
            .iter()
            .filter(|e| {
                matches!(e.event.kind, EventKind::RoundClose { iteration: 0, .. })
                    && e.event.party != 2
            })
            .map(|e| (e.event.party, e.t_ns))
            .collect();
        assert_eq!(learner_closes, vec![(0, 500_000), (1, 800_000)]);
        // Merged order is by rebased time, interleaving the streams.
        let order: Vec<i64> = tl.events.iter().map(|e| e.t_ns).collect();
        assert!(order.windows(2).all(|w| w[0] <= w[1]), "{order:?}");
    }

    #[test]
    fn rounds_carry_critical_path_and_fault_story() {
        let tl = Timeline::correlate(scripted());
        assert_eq!(tl.rounds.len(), 2);
        assert_eq!(tl.complete_rounds(), 2);
        // Round 0: learner 1's share (true +800_000) is the critical path.
        assert_eq!(tl.rounds[0].slowest_learner, Some((1, 800_000)));
        // Round 1: deadline miss → dropout of 1 → re-key to 1 survivor.
        assert_eq!(tl.rounds[1].deadline_misses, 1);
        assert_eq!(tl.rounds[1].dropped, vec![1]);
        assert_eq!(tl.rounds[1].rekeys, vec![(1, 1)]);
        let sequences = tl.dropout_sequences();
        assert_eq!(sequences.len(), 1);
        let (miss, (party, drop_t), rekey) = sequences[0];
        assert_eq!(party, 1);
        assert!(miss.expect("miss") <= drop_t);
        assert!(rekey.expect("rekey") >= drop_t);
    }

    #[test]
    fn render_reports_the_story() {
        let tl = Timeline::correlate(scripted());
        let text = tl.render();
        assert!(text.contains("rounds: 2 complete"), "{text}");
        assert!(text.contains("coordinator: party 2"), "{text}");
        assert!(text.contains("critical path: learner 1"), "{text}");
        assert!(text.contains("dropout story: deadline miss"), "{text}");
        assert!(text.contains("retransmit hot spots: 1→2: 1"), "{text}");
        assert!(text.contains("run id: 0x000000000000abcd"), "{text}");
    }

    #[test]
    fn unknown_kinds_are_skipped_and_counted() {
        let text = "{\"t_ns\":1,\"party\":0,\"kind\":\"from_the_future\",\"x\":1}\n\
                    {\"t_ns\":2,\"party\":0,\"kind\":\"worker_up\",\"node\":0}\n\
                    {\"t_ns\":3,\"party\":0,\"kind\":\"truncated\n\
                    \n";
        let stream = Stream::parse("future.jsonl", text);
        assert_eq!(stream.events.len(), 1);
        assert_eq!(stream.skipped_unknown, 1);
        assert_eq!(stream.skipped_malformed, 1);
        let tl = Timeline::correlate(vec![stream]);
        assert_eq!(tl.skipped(), (1, 1));
        assert!(tl.render().contains("1 unknown-kind lines skipped"));
    }

    #[test]
    fn missing_clock_sync_falls_back_to_causal_round_anchoring() {
        let mut streams = scripted();
        // Strip the ClockSync for learner 1 from the coordinator stream.
        streams[0]
            .events
            .retain(|e| !matches!(e.kind, EventKind::ClockSync { peer: 1, .. }));
        let tl = Timeline::correlate(streams);
        // The shared round-0 opens anchor the stream: learner 1's open
        // (raw 2e9+200_000) vs the coordinator's (10_000) derives the
        // true +2e9 offset plus the 190_000 ns delivery skew.
        assert_eq!(tl.derived_offsets.get(&1), Some(&2_000_190_000));
        assert!(tl.events.iter().all(|e| e.rebased));
        let text = tl.render();
        assert!(text.contains("causal offset: party 1"), "{text}");
        assert!(!text.contains("WARNING: no clock offset"), "{text}");
        // Rebased via the anchor, learner 1 is still the critical path.
        assert_eq!(tl.rounds[0].slowest_learner, Some((1, 610_000)));
    }

    #[test]
    fn streams_without_any_anchor_are_flagged_not_dropped() {
        let mut streams = scripted();
        // No ClockSync *and* no shared round opens: nothing to anchor on.
        streams[0]
            .events
            .retain(|e| !matches!(e.kind, EventKind::ClockSync { peer: 1, .. }));
        streams[2]
            .events
            .retain(|e| !matches!(e.kind, EventKind::RoundOpen { .. }));
        let tl = Timeline::correlate(streams);
        assert!(tl.derived_offsets.is_empty());
        // Learner 1's events survive, but unrebased.
        assert!(tl.events.iter().any(|e| e.event.party == 1 && !e.rebased));
        assert!(
            tl.render().contains("WARNING: no clock offset"),
            "report must flag it"
        );
        // And it cannot be a critical-path witness.
        assert_eq!(tl.rounds[0].slowest_learner, Some((0, 500_000)));
    }

    #[test]
    fn render_reports_the_straggler_story() {
        let mut streams = scripted();
        streams[0].events.push(ev(
            5_900_000,
            2,
            EventKind::SlowLearner {
                party: 1,
                iteration: 1,
                lag_ns: 4_800_000,
                median_ns: 1_200_000,
                score: 4.0,
            },
        ));
        let text = Timeline::correlate(streams).render();
        assert!(
            text.contains("straggler: party 1 round 1 score 4.00 (lag 4.800ms vs median 1.200ms)"),
            "{text}"
        );
    }

    /// A run with the full recovery arc: checkpoints every round, a
    /// dropout, the party's re-admission (Rejoin → RekeyEpoch), and a
    /// second incarnation that resumed from the round-1 checkpoint.
    fn scripted_recovery() -> Vec<Stream> {
        let mut coordinator = vec![
            ev(1_000, 2, EventKind::RunInfo { run_id: 0x77 }),
            ev(
                2_000,
                2,
                EventKind::ClockSync {
                    peer: 0,
                    offset_ns: 0,
                    rtt_ns: 10_000,
                },
            ),
            ev(
                10_000,
                2,
                EventKind::CheckpointWrite {
                    iteration: 1,
                    epoch: 0,
                    bytes: 200,
                },
            ),
            ev(
                20_000,
                2,
                EventKind::Dropout {
                    party: 1,
                    iteration: 1,
                },
            ),
            ev(
                30_000,
                2,
                EventKind::Rejoin {
                    party: 1,
                    iteration: 2,
                },
            ),
            ev(
                40_000,
                2,
                EventKind::RekeyEpoch {
                    iteration: 2,
                    epoch: 3,
                    survivors: 2,
                },
            ),
            ev(
                50_000,
                2,
                EventKind::CheckpointWrite {
                    iteration: 3,
                    epoch: 3,
                    bytes: 220,
                },
            ),
        ];
        let resumed = vec![
            ev(500, 2, EventKind::RunInfo { run_id: 0x77 }),
            ev(
                1_500,
                2,
                EventKind::ResumeFromCheckpoint {
                    iteration: 3,
                    epoch: 6,
                    survivors: 2,
                },
            ),
            ev(
                9_000,
                2,
                EventKind::CheckpointWrite {
                    iteration: 4,
                    epoch: 6,
                    bytes: 220,
                },
            ),
        ];
        // The learner mirrors its own Rejoin — must not double-count.
        let learner = vec![
            ev(5_000, 1, EventKind::RunInfo { run_id: 0x77 }),
            ev(
                6_000,
                1,
                EventKind::Rejoin {
                    party: 1,
                    iteration: 2,
                },
            ),
        ];
        coordinator.sort_by_key(|e| e.t_ns);
        vec![
            Stream::parse("coordinator.jsonl", &jsonl(&coordinator)),
            Stream::parse("coordinator-resumed.jsonl", &jsonl(&resumed)),
            Stream::parse("learner1.jsonl", &jsonl(&learner)),
        ]
    }

    #[test]
    fn recovery_counts_span_incarnations_without_double_counting_rejoins() {
        let tl = Timeline::correlate(scripted_recovery());
        assert_eq!(tl.recovery_counts(), (3, 1, 1));
    }

    #[test]
    fn rejoin_stories_pair_dropout_and_rekey_from_the_same_stream() {
        let tl = Timeline::correlate(scripted_recovery());
        let stories = tl.rejoin_stories();
        assert_eq!(
            stories,
            vec![RejoinStory {
                party: 1,
                dropped_at: Some(1),
                iteration: 2,
                rekey: Some((3, 2)),
            }]
        );
    }

    #[test]
    fn render_reports_the_recovery_story() {
        let tl = Timeline::correlate(scripted_recovery());
        let text = tl.render();
        assert!(
            text.contains("recovery: 3 checkpoints, 1 resumes, 1 rejoins"),
            "{text}"
        );
        assert!(
            text.contains("last checkpoint: resumable at round 4 (epoch 6, 220 bytes)"),
            "{text}"
        );
        assert!(
            text.contains("resume story: coordinator re-entered at round 3 (epoch 6, 2 survivors)"),
            "{text}"
        );
        assert!(
            text.contains(
                "rejoin story: party 1 dropped round 1 → re-admitted at round 2 \
                 → re-key epoch 3 over 2 survivors"
            ),
            "{text}"
        );
    }

    #[test]
    fn runs_without_recovery_events_omit_the_recovery_block() {
        let tl = Timeline::correlate(scripted());
        let text = tl.render();
        assert!(!text.contains("recovery:"), "{text}");
        assert!(!text.contains("resume story"), "{text}");
    }

    #[test]
    fn run_id_disagreement_is_reported() {
        let mut streams = scripted();
        let idx = streams[1]
            .events
            .iter()
            .position(|e| matches!(e.kind, EventKind::RunInfo { .. }))
            .expect("run info");
        streams[1].events[idx].kind = EventKind::RunInfo { run_id: 0x9999 };
        let tl = Timeline::correlate(streams);
        assert!(tl.render().contains("WARNING: run ids disagree"));
    }
}
