//! # ppml — privacy-preserving machine learning for big-data systems
//!
//! A full Rust implementation of *Xu, Yue, Guo, Guo, Fang,
//! "Privacy-preserving Machine Learning Algorithms for Big Data Systems",
//! IEEE ICDCS 2015*: consensus-ADMM support vector machines trained over an
//! iterative MapReduce substrate, where raw training data never leaves its
//! owner's node and the per-iteration local models are aggregated through a
//! coalition-resistant secure summation protocol.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `ppml-core` | the four distributed trainers + MapReduce drivers |
//! | [`data`] | `ppml-data` | datasets, partitioners, calibrated synthetic workloads |
//! | [`svm`] | `ppml-svm` | the centralized SVM baseline (§VI's benchmark) |
//! | [`crypto`] | `ppml-crypto` | secure summation, Paillier, fixed-point codec |
//! | [`mapreduce`] | `ppml-mapreduce` | the Twister-style iterative MapReduce engine |
//! | [`kernel`] | `ppml-kernel` | kernels + landmark sets |
//! | [`qp`] | `ppml-qp` | the dual QP solvers |
//! | [`linalg`] | `ppml-linalg` | dense linear algebra |
//! | [`serve`] | `ppml-serve` | batched, hot-reloading inference over HTTP + frame fronts |
//! | [`transport`] | `ppml-transport` | wire format, loopback + TCP transports, ARQ courier |
//! | [`telemetry`] | `ppml-telemetry` | structured events, span timing, JSONL/ring/summary sinks, metrics registry + exposition |
//! | [`trace`] | *(this crate)* | cross-process trace correlation: merge + clock-rebase JSONL streams |
//! | [`cli`] | *(this crate)* | shared binary plumbing: typed exit codes + one-line stderr reasons |
//!
//! # Quickstart
//!
//! ```
//! use ppml::core::{AdmmConfig, HorizontalLinearSvm};
//! use ppml::data::{synth, Partition};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Four organizations hold disjoint rows of a joint training set.
//! let dataset = synth::cancer_like(400, 7);
//! let (train, test) = dataset.split(0.5, 1)?;
//! let learners = Partition::horizontal(&train, 4, 2)?;
//!
//! // Train collaboratively; only masked model averages ever leave a node.
//! let cfg = AdmmConfig::default().with_max_iter(50);
//! let outcome = HorizontalLinearSvm::train(&learners, &cfg, Some(&test))?;
//!
//! println!("accuracy: {:.3}", outcome.model.accuracy(&test));
//! assert!(outcome.model.accuracy(&test) > 0.85);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for the paper's motivating scenarios (collaborating
//! hospitals, banks with complementary features) and `ppml-bench` for the
//! harness regenerating every figure of the paper's evaluation.

#![forbid(unsafe_code)]
pub mod cli;
pub mod trace;

pub use ppml_core as core;
pub use ppml_crypto as crypto;
pub use ppml_data as data;
pub use ppml_kernel as kernel;
pub use ppml_linalg as linalg;
pub use ppml_mapreduce as mapreduce;
pub use ppml_qp as qp;
pub use ppml_serve as serve;
pub use ppml_svm as svm;
pub use ppml_telemetry as telemetry;
pub use ppml_transport as transport;
