//! Shared plumbing for the `ppml-*` binaries: typed exit codes with a
//! one-line stderr reason.
//!
//! Scripts and CI drive these daemons and need to distinguish *why* a
//! process died without parsing prose — a learner that exited because the
//! whole run lost quorum is a different signal than one that hit a bad
//! flag. The contract, shared by `ppml-coordinator` and `ppml-learner`:
//!
//! | code | meaning |
//! |---|---|
//! | 0 | success |
//! | 1 | anything not covered below (solver failures, internal errors) |
//! | 2 | usage or configuration error (bad flag, bad dataset, bad range) |
//! | 3 | I/O or checkpoint error (unreadable/incompatible snapshot, sink) |
//! | 4 | transport or protocol error (timeout, dead peer, bad frame) |
//! | 5 | the run lost quorum — every learner was declared dropped |
//!
//! Exactly one `binary-name: reason` line is printed to stderr on any
//! nonzero exit (usage errors additionally print the usage block).

use std::process::ExitCode;

use ppml_core::TrainError;

/// Usage or configuration error.
pub const EXIT_USAGE: u8 = 2;
/// I/O or checkpoint error.
pub const EXIT_IO: u8 = 3;
/// Transport or protocol error.
pub const EXIT_TRANSPORT: u8 = 4;
/// The run lost quorum (every learner dropped).
pub const EXIT_DROPPED: u8 = 5;

/// A failure carrying the exit code it should terminate the process with
/// and the one-line reason to print on stderr.
#[derive(Debug)]
pub struct CliError {
    /// Process exit code, per the table in the module docs.
    pub code: u8,
    /// One-line human reason.
    pub msg: String,
}

impl CliError {
    /// Usage/configuration error (exit 2).
    pub fn usage(msg: impl Into<String>) -> Self {
        Self {
            code: EXIT_USAGE,
            msg: msg.into(),
        }
    }

    /// I/O or checkpoint error (exit 3).
    pub fn io(msg: impl Into<String>) -> Self {
        Self {
            code: EXIT_IO,
            msg: msg.into(),
        }
    }

    /// Transport or protocol error (exit 4).
    pub fn transport(msg: impl Into<String>) -> Self {
        Self {
            code: EXIT_TRANSPORT,
            msg: msg.into(),
        }
    }

    /// The exit code as [`ExitCode`].
    pub fn exit_code(&self) -> ExitCode {
        ExitCode::from(self.code)
    }
}

impl From<TrainError> for CliError {
    fn from(e: TrainError) -> Self {
        let code = match &e {
            TrainError::BadConfig { .. } | TrainError::BadPartition { .. } => EXIT_USAGE,
            TrainError::Checkpoint { .. } => EXIT_IO,
            TrainError::Transport(_) | TrainError::Protocol { .. } => EXIT_TRANSPORT,
            TrainError::Dropped { .. } => EXIT_DROPPED,
            _ => 1,
        };
        Self {
            code,
            msg: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_errors_map_to_the_documented_exit_codes() {
        let cases: Vec<(TrainError, u8)> = vec![
            (
                TrainError::BadConfig {
                    reason: "rho".into(),
                },
                EXIT_USAGE,
            ),
            (
                TrainError::BadPartition {
                    reason: "empty".into(),
                },
                EXIT_USAGE,
            ),
            (
                TrainError::Checkpoint {
                    reason: "crc".into(),
                },
                EXIT_IO,
            ),
            (
                TrainError::Transport(ppml_transport::TransportError::Timeout),
                EXIT_TRANSPORT,
            ),
            (
                TrainError::Protocol {
                    reason: "bad frame".into(),
                },
                EXIT_TRANSPORT,
            ),
            (TrainError::Dropped { parties: vec![0] }, EXIT_DROPPED),
        ];
        for (err, want) in cases {
            let cli = CliError::from(err);
            assert_eq!(cli.code, want, "{}", cli.msg);
            assert!(!cli.msg.is_empty());
        }
    }

    #[test]
    fn uncategorized_errors_fall_back_to_one() {
        let cli = CliError::from(TrainError::Qp(ppml_qp::QpError::InvalidBounds {
            lo: 1.0,
            hi: 0.0,
        }));
        assert_eq!(cli.code, 1);
    }

    #[test]
    fn constructors_carry_their_codes() {
        assert_eq!(CliError::usage("x").code, EXIT_USAGE);
        assert_eq!(CliError::io("x").code, EXIT_IO);
        assert_eq!(CliError::transport("x").code, EXIT_TRANSPORT);
    }
}
