//! `ppml` command-line interface: generate workloads, train
//! privacy-preserving SVMs over CSV data, and evaluate saved models.
//!
//! ```text
//! ppml gen   --dataset cancer --n 569 --seed 1 --out data.csv
//! ppml train --mode hl --data data.csv --learners 4 --iters 100 \
//!            --c 50 --rho 100 --out model.txt [--model-out model.bin] \
//!            [--cluster] [--telemetry events.jsonl]
//! ppml eval  --model model.bin --data test.csv
//! ```
//!
//! `train --telemetry PATH` streams structured events (rounds, ADMM
//! residuals, cluster task attempts, phase timings) as JSONL to `PATH`
//! and prints a human summary at exit — sizes, timings and counts only,
//! never data or model coordinates.
//!
//! Training modes: `hl` (horizontal linear), `vl` (vertical linear),
//! `central` (the baseline), and `kernel` (centralized kernel SVM —
//! nonlinear, so it has no flat-text format and requires `--model-out`).
//! `--model-out` writes the checksummed binary `PPMLMODL` format that
//! `ppml-serve` loads and hot-reloads; `--out` writes the legacy
//! flat-text linear format. `ppml eval` accepts either.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use ppml::core::jobs::{train_linear_on_cluster, ClusterTuning};
use ppml::core::{AdmmConfig, HorizontalLinearSvm, VerticalLinearSvm};
use ppml::data::{synth, Dataset, Partition};
use ppml::kernel::Kernel;
use ppml::serve::SavedModel;
use ppml::svm::{KernelSvm, LinearSvm, SvmParams};
use ppml::telemetry::{self, FanoutSink, JsonlSink, Sink, SummarySink};

fn usage() -> String {
    "usage:\n  ppml gen   --dataset <cancer|higgs|ocr|blobs|xor> --n <N> [--seed S] --out FILE\n  \
     ppml split --data FILE [--fraction F] [--seed S] --train FILE --test FILE\n  \
     ppml train --mode <hl|vl|central|kernel> --data FILE [--learners M] [--iters T]\n             \
     [--c C] [--rho RHO] [--seed S] [--cluster] [--telemetry EVENTS.jsonl]\n             \
     [--kernel <linear|rbf|poly|sigmoid>] [--gamma G] [--degree D] [--coef0 R]\n             \
     [--out MODEL.txt] [--model-out MODEL.bin]\n  \
     ppml eval  --model MODEL --data FILE\n\n\
     note: each `gen` seed draws a fresh task distribution — create one file\n\
     and `split` it, rather than generating train and test separately"
        .to_string()
}

fn cmd_split(flags: BTreeMap<String, String>) -> Result<(), String> {
    let data = load_dataset(required(&flags, "data")?)?;
    let fraction: f64 = numeric(&flags, "fraction", 0.5)?;
    let seed: u64 = numeric(&flags, "seed", 1)?;
    let (train, test) = data.split(fraction, seed).map_err(|e| e.to_string())?;
    let train_path = required(&flags, "train")?;
    let test_path = required(&flags, "test")?;
    std::fs::write(train_path, train.to_csv()).map_err(|e| e.to_string())?;
    std::fs::write(test_path, test.to_csv()).map_err(|e| e.to_string())?;
    println!(
        "split {} samples into {} train ({train_path}) / {} test ({test_path})",
        data.len(),
        train.len(),
        test.len()
    );
    Ok(())
}

fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut map = BTreeMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {flag}"))?;
        if key == "cluster" {
            map.insert(key.to_string(), "true".to_string());
        } else {
            let value = it
                .next()
                .ok_or_else(|| format!("missing value for --{key}"))?;
            map.insert(key.to_string(), value.clone());
        }
    }
    Ok(map)
}

fn required<'a>(flags: &'a BTreeMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required --{key}"))
}

fn numeric<T: std::str::FromStr>(
    flags: &BTreeMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key}: bad value {v}")),
    }
}

fn cmd_gen(flags: BTreeMap<String, String>) -> Result<(), String> {
    let n: usize = numeric(&flags, "n", 500)?;
    let seed: u64 = numeric(&flags, "seed", 1)?;
    let out = required(&flags, "out")?;
    let ds = match required(&flags, "dataset")? {
        "cancer" => synth::cancer_like(n, seed),
        "higgs" => synth::higgs_like(n, seed),
        "ocr" => synth::ocr_like(n, seed),
        "blobs" => synth::blobs(n, seed),
        "xor" => synth::xor_like(n, seed),
        other => return Err(format!("unknown dataset {other}")),
    };
    std::fs::write(out, ds.to_csv()).map_err(|e| e.to_string())?;
    println!(
        "wrote {} samples x {} features to {out}",
        ds.len(),
        ds.features()
    );
    Ok(())
}

fn load_dataset(path: &str) -> Result<Dataset, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Dataset::from_csv(&text).map_err(|e| format!("{path}: {e}"))
}

/// Kernel selection from `--kernel` + its parameter flags, libsvm-style:
/// poly is `(gamma·⟨x,y⟩ + coef0)^degree`, sigmoid takes its scale from
/// `--gamma`.
fn parse_kernel(flags: &BTreeMap<String, String>) -> Result<Kernel, String> {
    match flags.get("kernel").map(String::as_str).unwrap_or("rbf") {
        "linear" => Ok(Kernel::Linear),
        "rbf" => Ok(Kernel::Rbf {
            gamma: numeric(flags, "gamma", 0.5)?,
        }),
        "poly" => Ok(Kernel::Polynomial {
            a: numeric(flags, "gamma", 1.0)?,
            b: numeric(flags, "coef0", 1.0)?,
            degree: numeric(flags, "degree", 3u32)?,
        }),
        "sigmoid" => Ok(Kernel::Sigmoid {
            c: numeric(flags, "gamma", 0.01)?,
        }),
        other => Err(format!("unknown kernel {other}")),
    }
}

fn cmd_train(flags: BTreeMap<String, String>) -> Result<(), String> {
    let data = load_dataset(required(&flags, "data")?)?;
    let learners: usize = numeric(&flags, "learners", 4)?;
    let iters: usize = numeric(&flags, "iters", 100)?;
    let c: f64 = numeric(&flags, "c", 50.0)?;
    let rho: f64 = numeric(&flags, "rho", 100.0)?;
    let seed: u64 = numeric(&flags, "seed", 1)?;
    let out = flags.get("out").map(String::as_str);
    let model_out = flags.get("model-out").map(String::as_str);
    if out.is_none() && model_out.is_none() {
        return Err("need --out (flat text) and/or --model-out (binary)".to_string());
    }
    let on_cluster = flags.contains_key("cluster");
    let cfg = AdmmConfig::default()
        .with_c(c)
        .with_rho(rho)
        .with_max_iter(iters)
        .with_seed(seed);
    // Install telemetry before training so every trainer event is caught.
    let telemetry_out = match flags.get("telemetry") {
        Some(path) => {
            let jsonl = JsonlSink::create(std::path::Path::new(path))
                .map_err(|e| format!("--telemetry {path}: {e}"))?;
            let summary = SummarySink::new();
            telemetry::install(FanoutSink::new(vec![
                jsonl as Arc<dyn Sink>,
                summary.clone(),
            ]));
            Some((summary, path.clone()))
        }
        None => None,
    };

    let (saved, trace): (SavedModel, Vec<f64>) = match required(&flags, "mode")? {
        "central" => {
            let m = LinearSvm::train(&data, c).map_err(|e| e.to_string())?;
            (SavedModel::Linear(m), Vec::new())
        }
        "kernel" => {
            let params = SvmParams {
                c,
                kernel: parse_kernel(&flags)?,
                ..Default::default()
            };
            let m = KernelSvm::train(&data, &params).map_err(|e| e.to_string())?;
            (SavedModel::Kernel(m), Vec::new())
        }
        "hl" => {
            let parts = Partition::horizontal(&data, learners, seed).map_err(|e| e.to_string())?;
            if on_cluster {
                let (outcome, metrics) =
                    train_linear_on_cluster(&parts, &cfg, None, ClusterTuning::default())
                        .map_err(|e| e.to_string())?;
                println!(
                    "cluster: locality {:.2}, {} B shuffled, {} B broadcast",
                    metrics.locality_ratio(),
                    metrics.bytes_shuffled,
                    metrics.bytes_broadcast
                );
                (SavedModel::Linear(outcome.model), outcome.history.z_delta)
            } else {
                let outcome =
                    HorizontalLinearSvm::train(&parts, &cfg, None).map_err(|e| e.to_string())?;
                (SavedModel::Linear(outcome.model), outcome.history.z_delta)
            }
        }
        "vl" => {
            let view = Partition::vertical(&data, learners, seed).map_err(|e| e.to_string())?;
            let outcome = VerticalLinearSvm::train(&view, &cfg, None).map_err(|e| e.to_string())?;
            (
                SavedModel::Linear(outcome.model.to_linear_svm()),
                outcome.history.z_delta,
            )
        }
        other => return Err(format!("unknown mode {other}")),
    };

    if let Some(out) = out {
        let SavedModel::Linear(linear) = &saved else {
            return Err(
                "--mode kernel has no flat-text format; write it with --model-out".to_string(),
            );
        };
        std::fs::write(out, linear.to_text()).map_err(|e| e.to_string())?;
    }
    if let Some(model_out) = model_out {
        saved
            .save(Path::new(model_out))
            .map_err(|e| e.to_string())?;
    }
    println!(
        "trained on {} samples; train accuracy {:.3}",
        data.len(),
        model_accuracy(&saved, &data)
    );
    if let Some(last) = trace.last() {
        println!(
            "final consensus movement: {last:.3e} after {} iterations",
            trace.len()
        );
    }
    match (out, model_out) {
        (Some(o), Some(m)) => println!("model written to {o} (text) and {m} (binary)"),
        (Some(o), None) => println!("model written to {o}"),
        (None, Some(m)) => println!("model written to {m}"),
        (None, None) => unreachable!("validated above"),
    }
    if let Some((summary, path)) = telemetry_out {
        telemetry::uninstall();
        print!("{}", summary.render());
        println!("telemetry written to {path}");
    }
    Ok(())
}

/// Accuracy of a saved model over a dataset (dimension mismatches count
/// as wrong, though `train` can never produce one).
fn model_accuracy(model: &SavedModel, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let correct = (0..data.len())
        .filter(|&i| {
            model
                .classify(data.sample(i))
                .map(|label| label == data.label(i))
                .unwrap_or(false)
        })
        .count();
    correct as f64 / data.len() as f64
}

fn cmd_eval(flags: BTreeMap<String, String>) -> Result<(), String> {
    let model =
        SavedModel::load_auto(Path::new(required(&flags, "model")?)).map_err(|e| e.to_string())?;
    let data = load_dataset(required(&flags, "data")?)?;
    let confusion = ppml::svm::confusion((0..data.len()).map(|i| {
        (
            model.classify(data.sample(i)).expect("dimension match"),
            data.label(i),
        )
    }));
    println!("samples   : {}", confusion.total());
    println!("accuracy  : {:.4}", confusion.accuracy());
    println!("precision : {:.4}", confusion.precision());
    println!("recall    : {:.4}", confusion.recall());
    println!("f1        : {:.4}", confusion.f1());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let result = parse_flags(rest).and_then(|flags| match cmd.as_str() {
        "gen" => cmd_gen(flags),
        "split" => cmd_split(flags),
        "train" => cmd_train(flags),
        "eval" => cmd_eval(flags),
        _ => Err(usage()),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
