//! `ppml-serve`: batched, hot-reloading SVM inference (ISSUE 6 tentpole).
//!
//! ```text
//! ppml-serve --model model.bin [--http 127.0.0.1:0] [--frames 127.0.0.1:0]
//!            [--watch-ms 500] [--telemetry events.jsonl]
//! ```
//!
//! Loads a trained model (binary `PPMLMODL` or flat-text linear) and
//! answers scoring requests on two fronts: HTTP/1.1 (`POST /score`,
//! `GET /healthz`, `GET /model`, `GET /metrics`) and the frame protocol
//! (`Score` → `ScoreReply`). Both default to an ephemeral port; the bound
//! addresses are printed to stdout as `http: ADDR` / `frames: ADDR` lines
//! so a supervisor can parse them. The model file is polled every
//! `--watch-ms` milliseconds (0 disables watching) and atomically swapped
//! in when it changes — in-flight requests finish on the model they
//! started with.
//!
//! The process serves until stdin reaches EOF, then exits cleanly —
//! `echo | ppml-serve …` for a smoke run, or keep the pipe open from a
//! supervisor. Exit codes follow the `ppml::cli` contract: 2 usage,
//! 3 model I/O, 4 bind failure.

use std::collections::BTreeMap;
use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use ppml::cli::CliError;
use ppml::serve::{router, Engine, FrameServer, ModelWatcher, SavedModel};
use ppml::telemetry::{
    self, FanoutSink, HttpServer, JsonlSink, MetricsRegistry, MetricsSink, Sink,
};

fn usage() -> String {
    "usage:\n  ppml-serve --model MODEL [--http ADDR] [--frames ADDR]\n             \
     [--watch-ms MS] [--telemetry EVENTS.jsonl]\n\n\
     MODEL is a binary model from `ppml train --model-out` (or a flat-text\n\
     linear model). Both fronts default to 127.0.0.1:0 (ephemeral); the\n\
     bound addresses are printed as `http: ADDR` / `frames: ADDR`.\n\
     --watch-ms 0 disables hot reload (default 500). Serves until stdin\n\
     reaches EOF."
        .to_string()
}

fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, CliError> {
    let mut map = BTreeMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| CliError::usage(format!("expected --flag, got {flag}")))?;
        let value = it
            .next()
            .ok_or_else(|| CliError::usage(format!("missing value for --{key}")))?;
        map.insert(key.to_string(), value.clone());
    }
    Ok(map)
}

fn run(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args)?;
    for key in flags.keys() {
        if !matches!(
            key.as_str(),
            "model" | "http" | "frames" | "watch-ms" | "telemetry"
        ) {
            return Err(CliError::usage(format!("unknown flag --{key}")));
        }
    }
    let model_path = PathBuf::from(
        flags
            .get("model")
            .ok_or_else(|| CliError::usage("missing required --model"))?,
    );
    let http_addr = flags
        .get("http")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:0");
    let frames_addr = flags
        .get("frames")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:0");
    let watch_ms: u64 = match flags.get("watch-ms") {
        None => 500,
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("--watch-ms: bad value {v}")))?,
    };

    // Telemetry first, so the generation-1 model load is already counted.
    let registry = Arc::new(MetricsRegistry::new());
    let mut sinks: Vec<Arc<dyn Sink>> = vec![MetricsSink::with_registry(registry.clone())];
    if let Some(path) = flags.get("telemetry") {
        let jsonl = JsonlSink::create(Path::new(path))
            .map_err(|e| CliError::io(format!("--telemetry {path}: {e}")))?;
        sinks.push(jsonl);
    }
    telemetry::install(FanoutSink::new(sinks));

    let bytes = std::fs::metadata(&model_path).map(|m| m.len()).unwrap_or(0);
    let model = SavedModel::load_auto(&model_path)
        .map_err(|e| CliError::io(format!("{}: {e}", model_path.display())))?;
    println!(
        "model: {} ({}, {} features)",
        model_path.display(),
        model.kind(),
        model.features()
    );
    let engine = Engine::new(model, bytes);

    let http = HttpServer::serve(http_addr, router(engine.clone(), registry))
        .map_err(|e| CliError::transport(format!("bind http {http_addr}: {e}")))?;
    let frames = FrameServer::serve(frames_addr, engine.clone())
        .map_err(|e| CliError::transport(format!("bind frames {frames_addr}: {e}")))?;
    println!("http: {}", http.local_addr());
    println!("frames: {}", frames.local_addr());
    // Flush so a supervisor that spawned us piped can read the addresses
    // before sending any traffic.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let _watcher = (watch_ms > 0).then(|| {
        ModelWatcher::spawn(
            model_path.clone(),
            engine.clone(),
            Duration::from_millis(watch_ms),
        )
    });

    // Serve until our supervisor hangs up stdin.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);

    http.shutdown();
    frames.shutdown();
    telemetry::uninstall();
    println!("ppml-serve: clean shutdown");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ppml-serve: {}", e.msg);
            if e.code == ppml::cli::EXIT_USAGE {
                eprintln!("{}", usage());
            }
            e.exit_code()
        }
    }
}
