//! `ppml-trace` — merge the per-process JSONL telemetry streams of one
//! distributed run into a single causal timeline on the coordinator's
//! clock, or watch a live run's per-learner cluster view.
//!
//! ```text
//! ppml-trace <stream.jsonl>...
//! ppml-trace --live HOST:PORT [--interval-ms N] [--iterations K]
//! ```
//!
//! **Merge mode**: feed it every stream of a run — coordinator and
//! learners, in any order. It identifies the coordinator (the stream
//! carrying `ClockSync` events), rebases learner timestamps via the
//! recorded clock offsets — falling back to causal anchoring on shared
//! round opens when a stream has no offset — and prints the merged
//! report: per-round critical path, deadline-miss → dropout → re-key
//! sequences, straggler verdicts, retransmit hot spots, and per-phase
//! span summaries. Lines with unknown event kinds (from a newer build)
//! are skipped and counted, never fatal; a stream with *no* parseable
//! events at all is a usage error (exit 2) — the file is empty or not
//! JSONL telemetry.
//!
//! **Live mode** (`--live`): polls the coordinator's `GET /cluster`
//! endpoint (the Prometheus exposition served next to `/metrics` when
//! the coordinator runs with `--metrics-addr`) every `--interval-ms`
//! (default 1000) and renders a refreshing per-learner table: last
//! round, relayed frame/byte counters, retransmits, and the straggler
//! score. `--iterations K` stops after K polls (CI uses 1); the default
//! is to poll until interrupted.
//!
//! Exit codes are typed (see `ppml::cli`): 2 usage/empty/malformed
//! input, 3 unreadable stream file, 4 scrape/transport failure.

use std::collections::BTreeMap;
use std::io::IsTerminal as _;
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

use ppml::cli::CliError;
use ppml::telemetry;
use ppml::trace::{Stream, Timeline};

fn usage() -> String {
    "usage:\n  ppml-trace <stream.jsonl>...\n  \
     ppml-trace --live HOST:PORT [--interval-ms N] [--iterations K]\n\n\
     Merges the JSONL telemetry streams of one distributed run into a\n\
     single timeline on the coordinator's clock (pass every stream of\n\
     the run, in any order), or with --live polls a running\n\
     coordinator's /cluster endpoint and renders the per-learner view."
        .to_string()
}

enum Mode {
    Merge(Vec<String>),
    Live {
        addr: String,
        interval: Duration,
        iterations: Option<u64>,
    },
}

fn parse_args(args: &[String]) -> Result<Mode, CliError> {
    if args.is_empty() {
        return Err(CliError::usage("no input streams"));
    }
    if !args.iter().any(|a| a == "--live") {
        if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
            return Err(CliError::usage(format!("unknown flag {flag}")));
        }
        return Ok(Mode::Merge(args.to_vec()));
    }
    let mut addr = None;
    let mut interval_ms: u64 = 1_000;
    let mut iterations = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--live" => {
                addr = Some(
                    it.next()
                        .ok_or_else(|| CliError::usage("--live needs HOST:PORT"))?
                        .clone(),
                );
            }
            "--interval-ms" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::usage("--interval-ms needs a value"))?;
                interval_ms = v
                    .parse()
                    .map_err(|_| CliError::usage(format!("--interval-ms: bad value {v}")))?;
            }
            "--iterations" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::usage("--iterations needs a value"))?;
                let k: u64 = v
                    .parse()
                    .map_err(|_| CliError::usage(format!("--iterations: bad value {v}")))?;
                if k == 0 {
                    return Err(CliError::usage("--iterations must be at least 1"));
                }
                iterations = Some(k);
            }
            other => {
                return Err(CliError::usage(format!(
                    "unexpected argument {other} in --live mode"
                )));
            }
        }
    }
    Ok(Mode::Live {
        addr: addr.expect("--live parsed"),
        interval: Duration::from_millis(interval_ms.max(10)),
        iterations,
    })
}

fn run_merge(paths: &[String]) -> Result<(), CliError> {
    let mut streams = Vec::with_capacity(paths.len());
    for path in paths {
        let stream = Stream::load(Path::new(path))
            .map_err(|e| CliError::io(format!("cannot read {path}: {e}")))?;
        if stream.events.is_empty() {
            // Distinguish "no telemetry at all" from "newer build": a
            // stream that is *only* unknown kinds still merges fine.
            if stream.skipped_unknown == 0 {
                return Err(CliError::usage(format!(
                    "{path}: no parseable telemetry events (empty or malformed stream)"
                )));
            }
        }
        streams.push(stream);
    }
    print!("{}", Timeline::correlate(streams).render());
    Ok(())
}

/// One learner's row of the live view, filled from the `/cluster`
/// exposition.
#[derive(Default)]
struct LearnerRow {
    round: u64,
    epoch: u64,
    deltas: u64,
    frames_sent: u64,
    bytes_sent: u64,
    retransmits: u64,
    score: f64,
}

/// Parses the `/cluster` Prometheus text into per-learner rows. Unknown
/// series are ignored — the endpoint may grow.
fn parse_cluster(text: &str) -> BTreeMap<u64, LearnerRow> {
    let mut rows: BTreeMap<u64, LearnerRow> = BTreeMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Some((name, labels)) = series.split_once('{') else {
            continue;
        };
        let Some(learner) = labels
            .split(',')
            .find_map(|l| l.strip_prefix("learner=\""))
            .and_then(|l| l.strip_suffix("\"}").or_else(|| l.strip_suffix('"')))
            .and_then(|l| l.parse::<u64>().ok())
        else {
            continue;
        };
        let row = rows.entry(learner).or_default();
        let as_u64 = || value.parse::<u64>().unwrap_or(0);
        match name {
            "ppml_cluster_last_round" => row.round = as_u64(),
            "ppml_cluster_epoch" => row.epoch = as_u64(),
            "ppml_cluster_deltas_total" => row.deltas = as_u64(),
            "ppml_cluster_frames_sent_total" => row.frames_sent = as_u64(),
            "ppml_cluster_bytes_sent_total" => row.bytes_sent = as_u64(),
            "ppml_cluster_retransmits_total" => row.retransmits = as_u64(),
            "ppml_straggler_score" => row.score = value.parse().unwrap_or(0.0),
            _ => {}
        }
    }
    rows
}

fn render_table(addr: &str, tick: u64, rows: &BTreeMap<u64, LearnerRow>) -> String {
    let mut out = String::with_capacity(512);
    out.push_str(&format!(
        "live cluster view @ {addr} — poll {tick}, {} learners\n",
        rows.len()
    ));
    if rows.is_empty() {
        out.push_str("(no learner series yet — learners relay telemetry at round boundaries)\n");
        return out;
    }
    out.push_str(&format!(
        "{:>7} {:>6} {:>6} {:>7} {:>8} {:>12} {:>8} {:>6}\n",
        "learner", "round", "epoch", "deltas", "frames", "bytes", "retrans", "score"
    ));
    for (learner, row) in rows {
        out.push_str(&format!(
            "{learner:>7} {:>6} {:>6} {:>7} {:>8} {:>12} {:>8} {:>6.2}\n",
            row.round,
            row.epoch,
            row.deltas,
            row.frames_sent,
            row.bytes_sent,
            row.retransmits,
            row.score
        ));
    }
    out
}

fn run_live(addr: &str, interval: Duration, iterations: Option<u64>) -> Result<(), CliError> {
    let clear_screen = std::io::stdout().is_terminal();
    let mut tick = 0u64;
    loop {
        tick += 1;
        let (status, body) = telemetry::request(addr, "GET", "/cluster", b"")
            .map_err(|e| CliError::transport(format!("scrape {addr}/cluster: {e}")))?;
        if status != 200 {
            return Err(CliError::transport(format!(
                "scrape {addr}/cluster: HTTP {status}"
            )));
        }
        if clear_screen {
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render_table(addr, tick, &parse_cluster(&body)));
        if iterations.is_some_and(|k| tick >= k) {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let mode = match parse_args(&args) {
        Ok(mode) => mode,
        Err(e) => {
            eprintln!("ppml-trace: {}\n{}", e.msg, usage());
            return e.exit_code();
        }
    };
    let result = match mode {
        Mode::Merge(paths) => run_merge(&paths),
        Mode::Live {
            addr,
            interval,
            iterations,
        } => run_live(&addr, interval, iterations),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // One line to stderr, typed exit code (see ppml::cli).
            eprintln!("ppml-trace: {}", e.msg);
            e.exit_code()
        }
    }
}
