//! `ppml-trace` — merge the per-process JSONL telemetry streams of one
//! distributed run into a single causal timeline on the coordinator's
//! clock.
//!
//! ```text
//! ppml-trace <stream.jsonl>...
//! ```
//!
//! Feed it every stream of a run — coordinator and learners, in any
//! order. It identifies the coordinator (the stream carrying `ClockSync`
//! events), rebases learner timestamps via the recorded clock offsets,
//! and prints the merged report: per-round critical path, deadline-miss →
//! dropout → re-key sequences, retransmit hot spots, and per-phase span
//! summaries. Lines with unknown event kinds (from a newer build) are
//! skipped and counted, never fatal.

use std::path::Path;
use std::process::ExitCode;

use ppml::trace::{Stream, Timeline};

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() || paths.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: ppml-trace <stream.jsonl>...");
        eprintln!();
        eprintln!("Merges the JSONL telemetry streams of one distributed run into a");
        eprintln!("single timeline on the coordinator's clock. Pass every stream of");
        eprintln!("the run (coordinator + learners), in any order.");
        return ExitCode::FAILURE;
    }
    let mut streams = Vec::with_capacity(paths.len());
    for path in &paths {
        match Stream::load(Path::new(path)) {
            Ok(stream) => streams.push(stream),
            Err(e) => {
                eprintln!("ppml-trace: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    print!("{}", Timeline::correlate(streams).render());
    ExitCode::SUCCESS
}
