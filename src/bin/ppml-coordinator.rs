//! Coordinator daemon for distributed HL-SVM training over TCP.
//!
//! Binds a listening socket, waits for `--learners` peers to dial in,
//! then drives the consensus rounds of the paper's Fig. 2 star topology:
//! broadcast `(z, s)`, collect one masked share per learner, decode the
//! cancelled sum, repeat. Raw data never reaches this process — only
//! masked fixed-point shares do.
//!
//! ```text
//! ppml-coordinator --learners 3 [--port 7100] [--dataset blobs --n 96]
//!                  [--data-seed 5] [--iters 12] [--c 50] [--rho 100]
//!                  [--seed 11] [--tol T] [--round-timeout SECS]
//!                  [--out model.txt] [--telemetry events.jsonl]
//!                  [--metrics-addr 127.0.0.1:0]
//!
//! `--round-timeout` bounds each collection round: a learner whose share
//! has not arrived when it expires is declared dropped, the secure sum is
//! re-keyed over the survivors, and training continues without it.
//!
//! `--telemetry PATH` streams structured events (round opens/closes,
//! deadline misses, dropout declarations, re-key epochs, wire traffic) as
//! JSONL to `PATH` and prints a human summary at exit. Events carry only
//! sizes, timings and counts — never shares or model coordinates.
//!
//! `--metrics-addr HOST:PORT` additionally serves the live metrics
//! registry in Prometheus text format at `http://HOST:PORT/metrics` for
//! the lifetime of the run (`metrics on ADDR` is printed with the bound
//! address; port 0 picks a free one). The endpoint exposes the same
//! scalar aggregates — counters, gauges, log2 histograms — and nothing
//! else.
//! ```
//!
//! Both sides regenerate the same synthetic dataset from
//! `(--dataset, --n, --data-seed)` so the coordinator knows the feature
//! count and can report accuracy, without any training data crossing the
//! wire. Start the matching learners with `ppml-learner` (see README).

use std::collections::{BTreeMap, HashMap};
use std::net::SocketAddr;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppml::core::distributed::{coordinate_linear, feature_count};
use ppml::core::{AdmmConfig, DistributedTiming};
use ppml::data::{synth, Dataset, Partition};
use ppml::telemetry::{self, FanoutSink, JsonlSink, MetricsServer, MetricsSink, Sink, SummarySink};
use ppml::transport::{Courier, PartyId, RetryPolicy, TcpTransport};

fn usage() -> String {
    "usage:\n  ppml-coordinator --learners M [--port P] [--dataset <cancer|higgs|ocr|blobs|xor>]\n                   \
     [--n N] [--data-seed S] [--iters T] [--c C] [--rho RHO] [--seed S]\n                   \
     [--tol TOL] [--connect-timeout SECS] [--round-timeout SECS] [--out MODEL]\n                   \
     [--telemetry EVENTS.jsonl] [--metrics-addr HOST:PORT]"
        .to_string()
}

fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut map = BTreeMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {flag}"))?;
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key.to_string(), value.clone());
    }
    Ok(map)
}

fn numeric<T: std::str::FromStr>(
    flags: &BTreeMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        Some(v) => v.parse().map_err(|_| format!("--{key}: bad value {v}")),
        None => Ok(default),
    }
}

/// Regenerates the shared synthetic dataset — must match `ppml-learner`.
fn dataset(flags: &BTreeMap<String, String>) -> Result<Dataset, String> {
    let n: usize = numeric(flags, "n", 96)?;
    let seed: u64 = numeric(flags, "data-seed", 5)?;
    let name = flags.get("dataset").map(String::as_str).unwrap_or("blobs");
    Ok(match name {
        "cancer" => synth::cancer_like(n, seed),
        "higgs" => synth::higgs_like(n, seed),
        "ocr" => synth::ocr_like(n, seed),
        "blobs" => synth::blobs(n, seed),
        "xor" => synth::xor_like(n, seed),
        other => return Err(format!("unknown dataset {other}")),
    })
}

fn config(flags: &BTreeMap<String, String>) -> Result<AdmmConfig, String> {
    let mut cfg = AdmmConfig::default()
        .with_max_iter(numeric(flags, "iters", 12)?)
        .with_c(numeric(flags, "c", 50.0)?)
        .with_rho(numeric(flags, "rho", 100.0)?)
        .with_seed(numeric(flags, "seed", 11)?);
    if let Some(tol) = flags.get("tol") {
        cfg = cfg.with_tol(tol.parse().map_err(|_| format!("--tol: bad value {tol}"))?);
    }
    Ok(cfg)
}

fn run(flags: BTreeMap<String, String>) -> Result<(), String> {
    let learners: usize = numeric(&flags, "learners", 0)?;
    if learners == 0 {
        return Err("--learners must be at least 1".to_string());
    }
    let port: u16 = numeric(&flags, "port", 0)?;
    let connect_timeout: u64 = numeric(&flags, "connect-timeout", 30)?;
    // Install telemetry before the transport binds so connection-phase
    // frames are captured too. The JSONL/summary pair (--telemetry) and
    // the live metrics registry (--metrics-addr) share one fanout.
    let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
    let telemetry_out = match flags.get("telemetry") {
        Some(path) => {
            let jsonl = JsonlSink::create(Path::new(path))
                .map_err(|e| format!("--telemetry {path}: {e}"))?;
            let summary = SummarySink::new();
            sinks.push(jsonl);
            sinks.push(summary.clone());
            Some((summary, path.clone()))
        }
        None => None,
    };
    let _metrics_server = match flags.get("metrics-addr") {
        Some(addr) => {
            let sink = MetricsSink::new();
            let server = MetricsServer::serve(addr, Arc::clone(sink.registry()))
                .map_err(|e| format!("--metrics-addr {addr}: {e}"))?;
            sinks.push(sink);
            // Scrape scripts and the integration tests parse this line.
            println!("metrics on {}", server.local_addr());
            Some(server)
        }
        None => None,
    };
    if !sinks.is_empty() {
        telemetry::install(FanoutSink::new(sinks));
    }
    let cfg = config(&flags)?;
    let ds = dataset(&flags)?;
    let parts = Partition::horizontal(&ds, learners, numeric(&flags, "part-seed", 1)?)
        .map_err(|e| e.to_string())?;
    let features = feature_count(&parts).map_err(|e| e.to_string())?;

    let addr: SocketAddr = format!("127.0.0.1:{port}")
        .parse()
        .map_err(|e| format!("bad port: {e}"))?;
    let transport = TcpTransport::bind(
        learners as PartyId,
        addr,
        HashMap::new(),
        RetryPolicy::tcp_link(),
        Duration::from_secs(5),
    )
    .map_err(|e| e.to_string())?;
    // The learner scripts and the example parse this line for the port.
    println!("listening on {}", transport.local_addr());

    let deadline = Instant::now() + Duration::from_secs(connect_timeout);
    while transport.connected_parties().len() < learners {
        if Instant::now() >= deadline {
            return Err(format!(
                "only {}/{learners} learners connected within {connect_timeout}s",
                transport.connected_parties().len()
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    println!("all {learners} learners connected, training");

    let round_timeout: u64 = numeric(&flags, "round-timeout", 30)?;
    let timing = DistributedTiming::default()
        .with_round_deadline(Duration::from_secs(round_timeout))
        .with_learner_patience(Duration::from_secs(round_timeout.max(1) * 4));
    let mut courier = Courier::new(transport, RetryPolicy::tcp_default());
    let outcome = coordinate_linear(&mut courier, learners, features, &cfg, None, timing)
        .map_err(|e| e.to_string())?;

    if !outcome.dropped.is_empty() {
        println!("dropped learners (in order): {:?}", outcome.dropped);
    }
    println!(
        "converged in {} rounds, final |dz|^2 = {:.3e}",
        outcome.metrics.iterations,
        outcome.history.z_delta.last().copied().unwrap_or(0.0)
    );
    println!(
        "network: {} broadcast bytes, {} share bytes",
        outcome.metrics.bytes_broadcast, outcome.metrics.bytes_shuffled
    );
    println!("training accuracy: {:.4}", outcome.model.accuracy(&ds));
    println!("model: {}", outcome.model.to_text());
    if let Some(path) = flags.get("out") {
        std::fs::write(path, outcome.model.to_text()).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    if let Some((summary, path)) = telemetry_out {
        telemetry::uninstall();
        print!("{}", summary.render());
        println!("telemetry written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    match run(flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ppml-coordinator: {e}\n{}", usage());
            ExitCode::FAILURE
        }
    }
}
