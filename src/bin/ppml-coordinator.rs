//! Coordinator daemon for distributed HL-SVM training over TCP.
//!
//! Binds a listening socket, waits for `--learners` peers to dial in,
//! then drives the consensus rounds of the paper's Fig. 2 star topology:
//! broadcast `(z, s)`, collect one masked share per learner, decode the
//! cancelled sum, repeat. Raw data never reaches this process — only
//! masked fixed-point shares do.
//!
//! ```text
//! ppml-coordinator --learners 3 [--port 7100] [--dataset blobs --n 96]
//!                  [--data-seed 5] [--iters 12] [--c 50] [--rho 100]
//!                  [--seed 11] [--tol T] [--round-timeout SECS]
//!                  [--transport event|threads]
//!                  [--secagg pairwise|shamir|paillier] [--secagg-threshold T]
//!                  [--out model.txt] [--telemetry events.jsonl]
//!                  [--metrics-addr 127.0.0.1:0]
//!                  [--checkpoint run.ckpt] [--resume run.ckpt]
//!
//! `--round-timeout` bounds each collection round: a learner whose share
//! has not arrived when it expires is declared dropped, the secure sum is
//! re-keyed over the survivors, and training continues without it.
//!
//! `--secagg` picks the secure-aggregation backend (all parties must
//! agree): `pairwise` (default) is the paper's §V masking with re-keying
//! on dropout; `shamir` is t-of-m threshold sharing where dropout needs
//! no re-key round at all (`--secagg-threshold` overrides t, default
//! max(2, ceil(2m/3))); `paillier` is additively homomorphic encryption
//! with learner 0 as key authority — the expensive baseline, kept live
//! for comparison. All three produce bit-identical models on the same
//! membership schedule. Checkpoint/resume is pairwise-only.
//!
//! `--transport` picks the socket backend: `event` (default) drives
//! every connection from one readiness-loop thread and scales to ~100
//! learners; `threads` is the legacy thread-per-connection backend,
//! kept for comparison and fallback. Both speak the same wire format.
//!
//! `--telemetry PATH` streams structured events (round opens/closes,
//! deadline misses, dropout declarations, re-key epochs, wire traffic) as
//! JSONL to `PATH` and prints a human summary at exit. Events carry only
//! sizes, timings and counts — never shares or model coordinates.
//!
//! `--checkpoint PATH` writes a crash-consistent snapshot of the run
//! after every accepted round (write-temp, fsync, atomic rename). If the
//! coordinator process dies mid-run, restart it with the same flags plus
//! `--resume PATH`: it re-binds the port, waits for the surviving
//! learners to re-dial, re-keys the secure sum over them and continues
//! from the first round the snapshot had not yet completed — the final
//! model is bit-identical to the uninterrupted run.
//!
//! `--metrics-addr HOST:PORT` additionally serves the live metrics
//! registry in Prometheus text format at `http://HOST:PORT/metrics` for
//! the lifetime of the run (`metrics on ADDR` is printed with the bound
//! address; port 0 picks a free one). The endpoint exposes the same
//! scalar aggregates — counters, gauges, log2 histograms — and nothing
//! else. The same server also answers `GET /cluster` with the per-learner
//! cluster view: counter deltas each learner relays in-band at its round
//! boundaries, folded into labelled `ppml_cluster_*` series plus a
//! `ppml_straggler_score` gauge per learner (watch it live with
//! `ppml-trace --live HOST:PORT`).
//! ```
//!
//! Exit codes are typed (see `ppml::cli`): 2 usage/config, 3
//! I/O/checkpoint, 4 transport/protocol, 5 all learners dropped.
//!
//! Both sides regenerate the same synthetic dataset from
//! `(--dataset, --n, --data-seed)` so the coordinator knows the feature
//! count and can report accuracy, without any training data crossing the
//! wire. Start the matching learners with `ppml-learner` (see README).

use std::collections::{BTreeMap, HashMap};
use std::net::SocketAddr;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppml::cli::CliError;
use ppml::core::distributed::feature_count;
use ppml::core::secagg::coordinate_linear_secagg_with_recovery;
use ppml::core::{
    AdmmConfig, Checkpoint, DistributedTiming, RecoveryOptions, SecAggConfig, SecAggKind,
};
use ppml::data::{synth, Dataset, Partition};
use ppml::telemetry::{self, FanoutSink, JsonlSink, MetricsServer, MetricsSink, Sink, SummarySink};
use ppml::transport::{Courier, EventTransport, PartyId, RetryPolicy, TcpTransport, Transport};

fn usage() -> String {
    "usage:\n  ppml-coordinator --learners M [--port P] [--dataset <cancer|higgs|ocr|blobs|xor>]\n                   \
     [--n N] [--data-seed S] [--iters T] [--c C] [--rho RHO] [--seed S]\n                   \
     [--tol TOL] [--connect-timeout SECS] [--round-timeout SECS] [--out MODEL]\n                   \
     [--transport <event|threads>]\n                   \
     [--secagg <pairwise|shamir|paillier>] [--secagg-threshold T]\n                   \
     [--telemetry EVENTS.jsonl] [--metrics-addr HOST:PORT]\n                   \
     [--checkpoint RUN.ckpt] [--resume RUN.ckpt]"
        .to_string()
}

/// Polls `connected` until it reaches `expect` or the timeout elapses.
/// Shared by both transport backends so the wait logic (and its error
/// message, which operators grep for) stays identical.
fn wait_for_learners(
    connected: &dyn Fn() -> usize,
    expect: usize,
    timeout_secs: u64,
) -> Result<(), CliError> {
    let deadline = Instant::now() + Duration::from_secs(timeout_secs);
    loop {
        let now = connected();
        if now >= expect {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(CliError::transport(format!(
                "only {now}/{expect} learners connected within {timeout_secs}s"
            )));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut map = BTreeMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {flag}"))?;
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key.to_string(), value.clone());
    }
    Ok(map)
}

fn numeric<T: std::str::FromStr>(
    flags: &BTreeMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        Some(v) => v.parse().map_err(|_| format!("--{key}: bad value {v}")),
        None => Ok(default),
    }
}

/// Regenerates the shared synthetic dataset — must match `ppml-learner`.
fn dataset(flags: &BTreeMap<String, String>) -> Result<Dataset, String> {
    let n: usize = numeric(flags, "n", 96)?;
    let seed: u64 = numeric(flags, "data-seed", 5)?;
    let name = flags.get("dataset").map(String::as_str).unwrap_or("blobs");
    Ok(match name {
        "cancer" => synth::cancer_like(n, seed),
        "higgs" => synth::higgs_like(n, seed),
        "ocr" => synth::ocr_like(n, seed),
        "blobs" => synth::blobs(n, seed),
        "xor" => synth::xor_like(n, seed),
        other => return Err(format!("unknown dataset {other}")),
    })
}

fn config(flags: &BTreeMap<String, String>) -> Result<AdmmConfig, String> {
    let mut cfg = AdmmConfig::default()
        .with_max_iter(numeric(flags, "iters", 12)?)
        .with_c(numeric(flags, "c", 50.0)?)
        .with_rho(numeric(flags, "rho", 100.0)?)
        .with_seed(numeric(flags, "seed", 11)?);
    if let Some(tol) = flags.get("tol") {
        cfg = cfg.with_tol(tol.parse().map_err(|_| format!("--tol: bad value {tol}"))?);
    }
    Ok(cfg)
}

/// Secure-aggregation backend selection — must match the learners'.
fn secagg_config(flags: &BTreeMap<String, String>) -> Result<SecAggConfig, String> {
    let kind = match flags.get("secagg") {
        Some(v) => v
            .parse::<SecAggKind>()
            .map_err(|e| format!("--secagg: {e}"))?,
        None => SecAggKind::Pairwise,
    };
    let mut secagg = SecAggConfig::new(kind);
    if let Some(t) = flags.get("secagg-threshold") {
        secagg = secagg.with_threshold(
            t.parse()
                .map_err(|_| format!("--secagg-threshold: bad value {t}"))?,
        );
    }
    Ok(secagg)
}

fn run(flags: BTreeMap<String, String>) -> Result<(), CliError> {
    let learners: usize = numeric(&flags, "learners", 0).map_err(CliError::usage)?;
    if learners == 0 {
        return Err(CliError::usage("--learners must be at least 1"));
    }
    let port: u16 = numeric(&flags, "port", 0).map_err(CliError::usage)?;
    let connect_timeout: u64 = numeric(&flags, "connect-timeout", 30).map_err(CliError::usage)?;
    // Install telemetry before the transport binds so connection-phase
    // frames are captured too. The JSONL/summary pair (--telemetry) and
    // the live metrics registry (--metrics-addr) share one fanout.
    let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
    let telemetry_out = match flags.get("telemetry") {
        Some(path) => {
            let jsonl = JsonlSink::create(Path::new(path))
                .map_err(|e| CliError::io(format!("--telemetry {path}: {e}")))?;
            let summary = SummarySink::new();
            sinks.push(jsonl);
            sinks.push(summary.clone());
            Some((summary, path.clone()))
        }
        None => None,
    };
    let _metrics_server = match flags.get("metrics-addr") {
        Some(addr) => {
            let sink = MetricsSink::new();
            let server = MetricsServer::serve(addr, Arc::clone(sink.registry()))
                .map_err(|e| CliError::io(format!("--metrics-addr {addr}: {e}")))?;
            sinks.push(sink);
            // Scrape scripts and the integration tests parse this line.
            println!("metrics on {}", server.local_addr());
            Some(server)
        }
        None => None,
    };
    if !sinks.is_empty() {
        telemetry::install(FanoutSink::new(sinks));
    }
    let cfg = config(&flags).map_err(CliError::usage)?;
    let secagg = secagg_config(&flags).map_err(CliError::usage)?;
    secagg
        .validate(learners)
        .map_err(|e| CliError::usage(e.to_string()))?;
    let ds = dataset(&flags).map_err(CliError::usage)?;
    let part_seed: u64 = numeric(&flags, "part-seed", 1).map_err(CliError::usage)?;
    let parts = Partition::horizontal(&ds, learners, part_seed)
        .map_err(|e| CliError::usage(e.to_string()))?;
    let features = feature_count(&parts).map_err(CliError::from)?;

    // Crash recovery: `--checkpoint` snapshots after every accepted
    // round; `--resume` restores such a snapshot and continues the run.
    let mut recovery = RecoveryOptions::default();
    if let Some(path) = flags.get("checkpoint") {
        recovery = recovery.with_checkpoint(path);
    }
    let resumed = match flags.get("resume") {
        Some(path) => {
            let ckpt = Checkpoint::load(Path::new(path)).map_err(CliError::from)?;
            ckpt.check_compatible(learners, features, cfg.seed)
                .map_err(CliError::from)?;
            println!(
                "resuming from {path}: next round {}, epoch {}, {} survivors",
                ckpt.next_round,
                ckpt.epoch,
                ckpt.alive.len()
            );
            let survivors = ckpt.alive.len();
            recovery = recovery.with_resume(ckpt);
            Some(survivors)
        }
        None => None,
    };
    // A resumed coordinator only waits for the snapshot's survivors —
    // learners dropped before the crash stay dropped.
    let expect_connected = resumed.unwrap_or(learners);

    let addr: SocketAddr = format!("127.0.0.1:{port}")
        .parse()
        .map_err(|e| CliError::usage(format!("bad port: {e}")))?;
    // `--transport` picks the socket backend: `event` (default) is the
    // single-thread readiness loop that scales to ~100 learners;
    // `threads` is the legacy thread-per-connection backend, kept for
    // comparison benchmarks and as a fallback. Both speak the same wire
    // format, so learners on either backend interoperate.
    let backend = flags
        .get("transport")
        .map(String::as_str)
        .unwrap_or("event");
    let transport: Box<dyn Transport> = match backend {
        "event" => {
            let t = EventTransport::bind(
                learners as PartyId,
                addr,
                HashMap::new(),
                RetryPolicy::tcp_link(),
                Duration::from_secs(5),
            )
            .map_err(|e| CliError::transport(e.to_string()))?;
            // The learner scripts and the example parse this line.
            println!("listening on {}", t.local_addr());
            wait_for_learners(
                &|| t.connected_parties().len(),
                expect_connected,
                connect_timeout,
            )?;
            Box::new(t)
        }
        "threads" => {
            let t = TcpTransport::bind(
                learners as PartyId,
                addr,
                HashMap::new(),
                RetryPolicy::tcp_link(),
                Duration::from_secs(5),
            )
            .map_err(|e| CliError::transport(e.to_string()))?;
            println!("listening on {}", t.local_addr());
            wait_for_learners(
                &|| t.connected_parties().len(),
                expect_connected,
                connect_timeout,
            )?;
            Box::new(t)
        }
        other => {
            return Err(CliError::usage(format!(
                "--transport: unknown backend {other} (use event or threads)"
            )))
        }
    };
    println!(
        "all {expect_connected} learners connected, training with {secagg_name} aggregation",
        secagg_name = secagg.kind
    );

    let round_timeout: u64 = numeric(&flags, "round-timeout", 30).map_err(CliError::usage)?;
    let timing = DistributedTiming::default()
        .with_round_deadline(Duration::from_secs(round_timeout))
        .with_learner_patience(Duration::from_secs(round_timeout.max(1) * 4));
    let mut courier = Courier::new(transport, RetryPolicy::tcp_default());
    let outcome = coordinate_linear_secagg_with_recovery(
        &mut courier,
        learners,
        features,
        &cfg,
        None,
        timing,
        secagg,
        recovery,
    )
    .map_err(CliError::from)?;

    if !outcome.dropped.is_empty() {
        println!("dropped learners (in order): {:?}", outcome.dropped);
    }
    println!(
        "converged in {} rounds, final |dz|^2 = {:.3e}",
        outcome.metrics.iterations,
        outcome.history.z_delta.last().copied().unwrap_or(0.0)
    );
    println!(
        "network: {} broadcast bytes, {} share bytes",
        outcome.metrics.bytes_broadcast, outcome.metrics.bytes_shuffled
    );
    println!("training accuracy: {:.4}", outcome.model.accuracy(&ds));
    println!("model: {}", outcome.model.to_text());
    if let Some(path) = flags.get("out") {
        std::fs::write(path, outcome.model.to_text())
            .map_err(|e| CliError::io(format!("--out {path}: {e}")))?;
        println!("wrote {path}");
    }
    if let Some((summary, path)) = telemetry_out {
        telemetry::uninstall();
        print!("{}", summary.render());
        println!("telemetry written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(e) => {
            let e = CliError::usage(e);
            eprintln!("ppml-coordinator: {}\n{}", e.msg, usage());
            return e.exit_code();
        }
    };
    match run(flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // One line to stderr, typed exit code; usage errors also get
            // the usage block since the fix is a different invocation.
            if e.code == ppml::cli::EXIT_USAGE {
                eprintln!("ppml-coordinator: {}\n{}", e.msg, usage());
            } else {
                eprintln!("ppml-coordinator: {}", e.msg);
            }
            e.exit_code()
        }
    }
}
