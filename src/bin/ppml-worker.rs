//! MapReduce worker daemon: serves map tasks to a `TaskScheduler` driver.
//!
//! One OS process per worker. The worker derives its resident blocks
//! deterministically from the CLI flags — block `b` of a `--blocks B`
//! job lives on worker `1 + (b % M)` of `--workers M` — materialises
//! their payloads locally from `(--job, --data-seed)`, registers with
//! the driver, then answers `task_dispatch` frames with `task_result`
//! frames until `shutdown`. Raw block data never crosses the wire; only
//! task descriptors and map outputs do (DESIGN.md §13).
//!
//! ```text
//! ppml-worker --party 1 --workers 2 --driver 127.0.0.1:7400
//!             [--job <wordcount|spin>] [--data-seed S] [--blocks B]
//!             [--patience SECS] [--transport <event|threads>]
//!             [--lag-ms N] [--die-after-tasks N] [--fail-blocks 0,3]
//!             [--telemetry events.jsonl]
//!
//! `--party` is 1-based: the driver is party 0, workers are 1..=M.
//!
//! `--patience` bounds how long the worker waits between driver frames;
//! when it expires the process exits with a transport error instead of
//! waiting forever on a dead driver.
//!
//! Fault injection for chaos drills (each mirrors a `FaultPlan` worker
//! fault): `--lag-ms N` sleeps N ms before every map task (straggler —
//! speculation bait); `--die-after-tasks N` exits mid-way through the
//! Nth dispatched task without replying, indistinguishable from a
//! SIGKILL to the driver; `--fail-blocks a,b` reports failure for those
//! blocks instead of mapping them (bounded-retry exercise).
//! ```
//!
//! Exit codes are typed (see `ppml::cli`): 2 usage/config, 3 I/O,
//! 4 transport/protocol. An injected `--die-after-tasks` death exits 0 —
//! that exit is the fault working, not an error.

use std::collections::{BTreeMap, HashMap};
use std::net::SocketAddr;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use ppml::cli::CliError;
use ppml::mapreduce::{process_job, WorkerOptions};
use ppml::telemetry::{self, FanoutSink, JsonlSink, Sink, SummarySink};
use ppml::transport::{Courier, EventTransport, PartyId, RetryPolicy, TcpTransport, Transport};

fn usage() -> String {
    "usage:\n  ppml-worker --party I --workers M --driver HOST:PORT\n              \
     [--job <wordcount|spin>] [--data-seed S] [--blocks B]\n              \
     [--patience SECS] [--transport <event|threads>]\n              \
     [--lag-ms N] [--die-after-tasks N] [--fail-blocks 0,3]\n              \
     [--telemetry EVENTS.jsonl]"
        .to_string()
}

fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut map = BTreeMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {flag}"))?;
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key.to_string(), value.clone());
    }
    Ok(map)
}

fn numeric<T: std::str::FromStr>(
    flags: &BTreeMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        Some(v) => v.parse().map_err(|_| format!("--{key}: bad value {v}")),
        None => Ok(default),
    }
}

fn run(flags: BTreeMap<String, String>) -> Result<(), CliError> {
    let workers: usize = numeric(&flags, "workers", 0).map_err(CliError::usage)?;
    if workers == 0 {
        return Err(CliError::usage("--workers must be at least 1"));
    }
    let party: usize = match flags.get("party") {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("--party: bad value {v}")))?,
        None => return Err(CliError::usage("--party is required")),
    };
    if party == 0 || party > workers {
        return Err(CliError::usage(format!(
            "--party {party} out of range 1..={workers} (0 is the driver)"
        )));
    }
    let driver: SocketAddr = flags
        .get("driver")
        .ok_or_else(|| CliError::usage("--driver is required"))?
        .parse()
        .map_err(|e| CliError::usage(format!("--driver: {e}")))?;
    let job_name = flags.get("job").map(String::as_str).unwrap_or("wordcount");
    let job = process_job(job_name)
        .ok_or_else(|| CliError::usage(format!("--job: unknown job {job_name}")))?;
    let seed: u64 = numeric(&flags, "data-seed", 42).map_err(CliError::usage)?;
    let total_blocks: u64 = numeric(&flags, "blocks", workers as u64).map_err(CliError::usage)?;
    // Static placement shared with the driver: block b lives on worker
    // 1 + (b mod M). Residency is derived, never transferred.
    let resident: Vec<u64> = (0..total_blocks)
        .filter(|b| 1 + (b % workers as u64) as usize == party)
        .collect();

    let mut opts = WorkerOptions {
        lag: Duration::from_millis(numeric(&flags, "lag-ms", 0u64).map_err(CliError::usage)?),
        idle_timeout: Duration::from_secs(
            numeric(&flags, "patience", 30u64)
                .map_err(CliError::usage)?
                .max(1),
        ),
        ..Default::default()
    };
    if let Some(v) = flags.get("die-after-tasks") {
        let n: usize = v
            .parse()
            .map_err(|_| CliError::usage(format!("--die-after-tasks: bad value {v}")))?;
        opts.die_on_task = Some(n.max(1));
    }
    if let Some(v) = flags.get("fail-blocks") {
        for part in v.split(',').filter(|p| !p.is_empty()) {
            opts.fail_blocks.push(
                part.trim()
                    .parse()
                    .map_err(|_| CliError::usage(format!("--fail-blocks: bad value {part}")))?,
            );
        }
    }

    // Telemetry first, so the dial and registration frames are captured.
    let telemetry_out = match flags.get("telemetry") {
        Some(path) => {
            let jsonl = JsonlSink::create(Path::new(path))
                .map_err(|e| CliError::io(format!("--telemetry {path}: {e}")))?;
            let summary = SummarySink::new();
            let sinks: Vec<Arc<dyn Sink>> = vec![jsonl, summary.clone()];
            telemetry::install(FanoutSink::new(sinks));
            Some((summary, path.clone()))
        }
        None => None,
    };

    let backend = flags
        .get("transport")
        .map(String::as_str)
        .unwrap_or("event");
    let bind_addr: SocketAddr = "127.0.0.1:0".parse().expect("loopback addr");
    let peers = HashMap::from([(0 as PartyId, driver)]);
    let transport: Box<dyn Transport> = match backend {
        "event" => Box::new(
            EventTransport::bind(
                party as PartyId,
                bind_addr,
                peers,
                RetryPolicy::tcp_link(),
                Duration::from_secs(5),
            )
            .map_err(|e| CliError::transport(e.to_string()))?,
        ),
        "threads" => Box::new(
            TcpTransport::bind(
                party as PartyId,
                bind_addr,
                peers,
                RetryPolicy::tcp_link(),
                Duration::from_secs(5),
            )
            .map_err(|e| CliError::transport(e.to_string()))?,
        ),
        other => {
            return Err(CliError::usage(format!(
                "--transport: unknown backend {other} (use event or threads)"
            )))
        }
    };
    let mut courier = Courier::new(transport, RetryPolicy::tcp_default());

    println!(
        "worker {party}: job {job_name}, {} resident blocks of {total_blocks}, dialing {driver}",
        resident.len()
    );
    let report =
        ppml::mapreduce::worker::serve(&mut courier, 0, job.as_ref(), seed, &resident, &opts)
            .map_err(|e| CliError::transport(e.to_string()))?;
    if report.died {
        // The injected mid-task death fired; this is the drill working.
        println!(
            "worker {party}: injected death after {} tasks",
            report.tasks_done
        );
    } else {
        println!(
            "worker {party}: done, {} tasks, {} cancels",
            report.tasks_done, report.cancels_seen
        );
    }
    if let Some((summary, path)) = telemetry_out {
        telemetry::uninstall();
        print!("{}", summary.render());
        println!("worker {party}: telemetry written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(e) => {
            let e = CliError::usage(e);
            eprintln!("ppml-worker: {}\n{}", e.msg, usage());
            return e.exit_code();
        }
    };
    match run(flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // One line to stderr, typed exit code; usage errors also get
            // the usage block since the fix is a different invocation.
            if e.code == ppml::cli::EXIT_USAGE {
                eprintln!("ppml-worker: {}\n{}", e.msg, usage());
            } else {
                eprintln!("ppml-worker: {}", e.msg);
            }
            e.exit_code()
        }
    }
}
