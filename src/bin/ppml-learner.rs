//! Learner daemon for distributed HL-SVM training over TCP.
//!
//! Regenerates its horizontal partition deterministically from the CLI
//! flags (the same `(--dataset, --n, --data-seed, --learners, --part-seed)`
//! the coordinator uses — no training data ever crosses the wire), dials
//! the coordinator, then answers each consensus broadcast with the local
//! ADMM step's pairwise-masked share until the `done` round arrives.
//!
//! ```text
//! ppml-learner --party 0 --learners 3 --coordinator 127.0.0.1:7100
//!              [--dataset blobs --n 96] [--data-seed 5] [--iters 12]
//!              [--c 50] [--rho 100] [--seed 11] [--tol T]
//!              [--patience SECS] [--transport event|threads]
//!              [--secagg pairwise|shamir|paillier] [--secagg-threshold T]
//!              [--telemetry events.jsonl]
//!              [--metrics-addr 127.0.0.1:0] [--defect-after R]
//!              [--lag-ms N] [--rejoin true]
//!
//! `--patience` bounds how long the learner waits between coordinator
//! protocol frames; when it expires the process exits with an error
//! instead of waiting forever on a dead coordinator.
//!
//! `--transport` matches the coordinator's flag: `event` (default) is
//! the single-thread readiness-loop backend, `threads` the legacy
//! per-connection one. Either side may use either backend — the wire
//! format is shared.
//!
//! `--secagg` and `--secagg-threshold` pick the secure-aggregation
//! backend and must match the coordinator's flags exactly (see
//! `ppml-coordinator`): `pairwise` (default), `shamir` (no re-key on
//! dropout) or `paillier` (learner 0 is the key authority).
//!
//! `--telemetry PATH` streams this learner's structured events (round
//! participation, re-key epochs, wire traffic) as JSONL to `PATH` and
//! prints a summary at exit. Events carry only sizes, timings and counts.
//!
//! `--metrics-addr HOST:PORT` additionally serves the live metrics
//! registry in Prometheus text format at `http://HOST:PORT/metrics`
//! (`metrics on ADDR` is printed with the bound address; port 0 picks a
//! free one).
//!
//! `--rejoin true` makes this a *re-admission*: instead of waiting for
//! the round-0 broadcast, the learner sends Join probes until the
//! coordinator answers with a Welcome carrying the current iterate, then
//! participates normally (duals warm-start at zero). Use it to bring a
//! previously-dropped learner back into a live run.
//!
//! `--defect-after R` is fault injection for drills and trace demos: the
//! learner participates correctly for rounds `< R`, then silently stops
//! answering consensus broadcasts while still ACKing frames — exactly
//! the failure mode only the coordinator's round deadline can catch. The
//! process then exits with a transport-timeout error once its own
//! patience runs out; that exit is the injected fault working, not a bug.
//!
//! `--lag-ms N` is the gentler sibling: the learner sleeps N ms before
//! every local step but otherwise participates correctly. Use it to
//! exercise the coordinator's straggler scorer (`ppml_straggler_score`
//! on its `/cluster` endpoint and `slow_learner` events in its JSONL)
//! without losing the learner.
//! ```
//!
//! Every training flag must match the coordinator's, as both sides drive
//! the same deterministic protocol from their own copy of the config.
//!
//! Exit codes are typed (see `ppml::cli`): 2 usage/config, 3
//! I/O/checkpoint, 4 transport/protocol.

use std::collections::{BTreeMap, HashMap};
use std::net::SocketAddr;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use ppml::cli::CliError;
use ppml::core::secagg::{
    learn_linear_secagg, learn_linear_secagg_with_defect, rejoin_linear_secagg,
};
use ppml::core::{AdmmConfig, DistributedTiming, SecAggConfig, SecAggKind};
use ppml::data::{synth, Dataset, Partition};
use ppml::telemetry::{self, FanoutSink, JsonlSink, MetricsServer, MetricsSink, Sink, SummarySink};
use ppml::transport::{
    Courier, EventTransport, Message, PartyId, RetryPolicy, TcpTransport, Transport,
};

fn usage() -> String {
    "usage:\n  ppml-learner --party I --learners M --coordinator HOST:PORT\n               \
     [--dataset <cancer|higgs|ocr|blobs|xor>] [--n N] [--data-seed S]\n               \
     [--iters T] [--c C] [--rho RHO] [--seed S] [--tol TOL] [--patience SECS]\n               \
     [--transport <event|threads>]\n               \
     [--secagg <pairwise|shamir|paillier>] [--secagg-threshold T]\n               \
     [--telemetry EVENTS.jsonl] [--metrics-addr HOST:PORT] [--defect-after R]\n               \
     [--lag-ms N] [--rejoin true]"
        .to_string()
}

fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut map = BTreeMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {flag}"))?;
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key.to_string(), value.clone());
    }
    Ok(map)
}

fn numeric<T: std::str::FromStr>(
    flags: &BTreeMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        Some(v) => v.parse().map_err(|_| format!("--{key}: bad value {v}")),
        None => Ok(default),
    }
}

/// Regenerates the shared synthetic dataset — must match `ppml-coordinator`.
fn dataset(flags: &BTreeMap<String, String>) -> Result<Dataset, String> {
    let n: usize = numeric(flags, "n", 96)?;
    let seed: u64 = numeric(flags, "data-seed", 5)?;
    let name = flags.get("dataset").map(String::as_str).unwrap_or("blobs");
    Ok(match name {
        "cancer" => synth::cancer_like(n, seed),
        "higgs" => synth::higgs_like(n, seed),
        "ocr" => synth::ocr_like(n, seed),
        "blobs" => synth::blobs(n, seed),
        "xor" => synth::xor_like(n, seed),
        other => return Err(format!("unknown dataset {other}")),
    })
}

fn config(flags: &BTreeMap<String, String>) -> Result<AdmmConfig, String> {
    let mut cfg = AdmmConfig::default()
        .with_max_iter(numeric(flags, "iters", 12)?)
        .with_c(numeric(flags, "c", 50.0)?)
        .with_rho(numeric(flags, "rho", 100.0)?)
        .with_seed(numeric(flags, "seed", 11)?);
    if let Some(tol) = flags.get("tol") {
        cfg = cfg.with_tol(tol.parse().map_err(|_| format!("--tol: bad value {tol}"))?);
    }
    Ok(cfg)
}

/// Secure-aggregation backend selection — must match the coordinator's.
fn secagg_config(flags: &BTreeMap<String, String>) -> Result<SecAggConfig, String> {
    let kind = match flags.get("secagg") {
        Some(v) => v
            .parse::<SecAggKind>()
            .map_err(|e| format!("--secagg: {e}"))?,
        None => SecAggKind::Pairwise,
    };
    let mut secagg = SecAggConfig::new(kind);
    if let Some(t) = flags.get("secagg-threshold") {
        secagg = secagg.with_threshold(
            t.parse()
                .map_err(|_| format!("--secagg-threshold: bad value {t}"))?,
        );
    }
    Ok(secagg)
}

fn run(flags: BTreeMap<String, String>) -> Result<(), CliError> {
    let learners: usize = numeric(&flags, "learners", 0).map_err(CliError::usage)?;
    if learners == 0 {
        return Err(CliError::usage("--learners must be at least 1"));
    }
    let party: usize = match flags.get("party") {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("--party: bad value {v}")))?,
        None => return Err(CliError::usage("--party is required")),
    };
    if party >= learners {
        return Err(CliError::usage(format!(
            "--party {party} out of range 0..{learners}"
        )));
    }
    let coordinator: SocketAddr = flags
        .get("coordinator")
        .ok_or_else(|| CliError::usage("--coordinator is required"))?
        .parse()
        .map_err(|e| CliError::usage(format!("--coordinator: {e}")))?;
    let rejoin = match flags.get("rejoin").map(String::as_str) {
        None | Some("false") | Some("0") | Some("no") => false,
        Some("true") | Some("1") | Some("yes") => true,
        Some(v) => {
            return Err(CliError::usage(format!(
                "--rejoin: bad value {v} (use true or false)"
            )))
        }
    };
    if rejoin && flags.contains_key("defect-after") {
        return Err(CliError::usage("--rejoin and --defect-after are exclusive"));
    }
    let cfg = config(&flags).map_err(CliError::usage)?;
    let secagg = secagg_config(&flags).map_err(CliError::usage)?;
    secagg
        .validate(learners)
        .map_err(|e| CliError::usage(e.to_string()))?;
    let ds = dataset(&flags).map_err(CliError::usage)?;
    let part_seed: u64 = numeric(&flags, "part-seed", 1).map_err(CliError::usage)?;
    let parts = Partition::horizontal(&ds, learners, part_seed)
        .map_err(|e| CliError::usage(e.to_string()))?;
    let my_part = &parts[party];

    // Install telemetry before the transport binds so the dial and
    // handshake frames are captured too. The JSONL/summary pair
    // (--telemetry) and the live metrics registry (--metrics-addr) share
    // one fanout.
    let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
    let telemetry_out = match flags.get("telemetry") {
        Some(path) => {
            let jsonl = JsonlSink::create(Path::new(path))
                .map_err(|e| CliError::io(format!("--telemetry {path}: {e}")))?;
            let summary = SummarySink::new();
            sinks.push(jsonl);
            sinks.push(summary.clone());
            Some((summary, path.clone()))
        }
        None => None,
    };
    let _metrics_server = match flags.get("metrics-addr") {
        Some(addr) => {
            let sink = MetricsSink::new();
            let server = MetricsServer::serve(addr, Arc::clone(sink.registry()))
                .map_err(|e| CliError::io(format!("--metrics-addr {addr}: {e}")))?;
            sinks.push(sink);
            // Scrape scripts and the integration tests parse this line.
            println!("metrics on {}", server.local_addr());
            Some(server)
        }
        None => None,
    };
    if !sinks.is_empty() {
        telemetry::install(FanoutSink::new(sinks));
    }

    // `--transport` mirrors the coordinator's flag: `event` (default)
    // runs all sockets on one readiness-loop thread, `threads` is the
    // legacy per-connection backend. The wire format is identical, so
    // the two sides may mix backends freely.
    let backend = flags
        .get("transport")
        .map(String::as_str)
        .unwrap_or("event");
    let bind_addr: SocketAddr = "127.0.0.1:0".parse().expect("loopback addr");
    let peers = HashMap::from([(learners as PartyId, coordinator)]);
    let transport: Box<dyn Transport> = match backend {
        "event" => Box::new(
            EventTransport::bind(
                party as PartyId,
                bind_addr,
                peers,
                RetryPolicy::tcp_link(),
                Duration::from_secs(5),
            )
            .map_err(|e| CliError::transport(e.to_string()))?,
        ),
        "threads" => Box::new(
            TcpTransport::bind(
                party as PartyId,
                bind_addr,
                peers,
                RetryPolicy::tcp_link(),
                Duration::from_secs(5),
            )
            .map_err(|e| CliError::transport(e.to_string()))?,
        ),
        other => {
            return Err(CliError::usage(format!(
                "--transport: unknown backend {other} (use event or threads)"
            )))
        }
    };
    let mut courier = Courier::new(transport, RetryPolicy::tcp_default());

    println!(
        "learner {party}: {} local samples, dialing {coordinator}",
        my_part.len()
    );
    // The transport dials lazily on first send; announce ourselves so the
    // coordinator sees this learner as connected before broadcasting.
    courier
        .send_unreliable(
            learners as PartyId,
            &Message::Heartbeat {
                nonce: party as u64,
            },
        )
        .map_err(|e| CliError::transport(e.to_string()))?;
    let lag_ms: u64 = numeric(&flags, "lag-ms", 0).map_err(CliError::usage)?;
    if lag_ms > 0 {
        println!("learner {party}: straggler injection armed, +{lag_ms}ms per round");
        ppml::core::set_injected_lag(Duration::from_millis(lag_ms));
    }
    let patience: u64 = numeric(&flags, "patience", 60).map_err(CliError::usage)?;
    let timing = DistributedTiming::default()
        .with_round_deadline(Duration::from_secs(patience.max(1)))
        .with_learner_patience(Duration::from_secs(patience.max(1)));
    let model = if rejoin {
        println!("learner {party}: asking to rejoin the run at {coordinator}");
        rejoin_linear_secagg(&mut courier, learners, my_part, &cfg, timing, secagg)
    } else {
        match flags.get("defect-after") {
            Some(v) => {
                let after: u64 = v
                    .parse()
                    .map_err(|_| CliError::usage(format!("--defect-after: bad value {v}")))?;
                println!("learner {party}: fault injection armed, defecting after round {after}");
                learn_linear_secagg_with_defect(
                    &mut courier,
                    learners,
                    my_part,
                    &cfg,
                    timing,
                    secagg,
                    after,
                )
            }
            None => learn_linear_secagg(&mut courier, learners, my_part, &cfg, timing, secagg),
        }
    }
    .map_err(CliError::from)?;
    println!("learner {party}: done");
    println!("consensus model: {}", model.to_text());
    if let Some((summary, path)) = telemetry_out {
        telemetry::uninstall();
        print!("{}", summary.render());
        println!("learner {party}: telemetry written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(e) => {
            let e = CliError::usage(e);
            eprintln!("ppml-learner: {}\n{}", e.msg, usage());
            return e.exit_code();
        }
    };
    match run(flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // One line to stderr, typed exit code; usage errors also get
            // the usage block since the fix is a different invocation.
            if e.code == ppml::cli::EXIT_USAGE {
                eprintln!("ppml-learner: {}\n{}", e.msg, usage());
            } else {
                eprintln!("ppml-learner: {}", e.msg);
            }
            e.exit_code()
        }
    }
}
