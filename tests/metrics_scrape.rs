//! Live metrics exposition over a real 3-learner distributed TCP run.
//!
//! Spawns the actual `ppml-coordinator` and `ppml-learner` binaries as
//! OS processes, each with `--metrics-addr 127.0.0.1:0`, and scrapes
//! coordinator and learner endpoints *while the run is in flight*:
//! frame and round counters must be non-zero and monotone between two
//! scrapes. This is the acceptance check that the registry is populated
//! live from the event stream, not rendered after the fact.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

use ppml::telemetry::http::scrape;

const LEARNERS: usize = 3;
/// Long enough that training is still running while the test scrapes
/// (localhost rounds take well under a millisecond each).
const ITERS: &str = "1500";

/// Spawns `exe` with piped stdout and returns the child plus the first
/// line starting with each requested prefix, in order of appearance. A
/// drain thread keeps consuming stdout so the child never blocks on a
/// full pipe.
fn spawn_scan(exe: &str, args: &[&str], prefixes: &[&str]) -> (Child, Vec<String>) {
    let mut child = Command::new(exe)
        .args(args)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut found: Vec<Option<String>> = vec![None; prefixes.len()];
    let deadline = Instant::now() + Duration::from_secs(30);
    while found.iter().any(Option::is_none) {
        assert!(Instant::now() < deadline, "timed out scanning stdout");
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read stdout");
        assert!(n > 0, "stdout closed before {prefixes:?} all appeared");
        for (i, prefix) in prefixes.iter().enumerate() {
            if found[i].is_none() && line.starts_with(prefix) {
                found[i] = Some(line.trim_end().to_string());
            }
        }
    }
    thread::spawn(move || {
        let mut rest = String::new();
        let _ = std::io::Read::read_to_string(&mut reader, &mut rest);
    });
    (child, found.into_iter().map(Option::unwrap).collect())
}

/// Extracts the address from a `"<label> ADDR"` stdout line.
fn addr_of(line: &str, label: &str) -> String {
    line.strip_prefix(label)
        .unwrap_or_else(|| panic!("bad line {line:?}"))
        .trim()
        .to_string()
}

/// Reads an integer-valued metric from a Prometheus text body.
fn metric(body: &str, name: &str) -> Option<u64> {
    body.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l[name.len() + 1..].trim().parse().ok())
}

/// Polls `addr` until `name` is present and non-zero, returning the body.
fn scrape_until_nonzero(addr: &str, name: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(body) = scrape(addr) {
            if metric(&body, name).is_some_and(|v| v > 0) {
                return body;
            }
        }
        assert!(
            Instant::now() < deadline,
            "{addr}: {name} never became non-zero"
        );
        thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn live_endpoints_scrape_nonzero_and_monotone_mid_run() {
    // No --tol: without one the trainers never stop early, so the run
    // stays alive for the full iteration budget while we scrape.
    let common = ["--iters", ITERS, "--metrics-addr", "127.0.0.1:0"];

    let mut args: Vec<&str> = vec!["--learners", "3", "--port", "0"];
    args.extend_from_slice(&common);
    let (coordinator, lines) = spawn_scan(
        env!("CARGO_BIN_EXE_ppml-coordinator"),
        &args,
        &["metrics on ", "listening on "],
    );
    let coord_metrics = addr_of(&lines[0], "metrics on ");
    let coord_addr = addr_of(&lines[1], "listening on ");

    let mut learners = Vec::new();
    let mut learner_metrics = Vec::new();
    for party in 0..LEARNERS {
        let party_s = party.to_string();
        let mut args: Vec<&str> = vec![
            "--party",
            &party_s,
            "--learners",
            "3",
            "--coordinator",
            &coord_addr,
        ];
        args.extend_from_slice(&common);
        let (child, lines) =
            spawn_scan(env!("CARGO_BIN_EXE_ppml-learner"), &args, &["metrics on "]);
        learners.push(child);
        learner_metrics.push(addr_of(&lines[0], "metrics on "));
    }

    // Mid-run: the coordinator must show closed rounds and sent frames…
    let first = scrape_until_nonzero(&coord_metrics, "ppml_rounds_closed_total");
    let frames_1 = metric(&first, "ppml_frames_sent_total").expect("frame counter");
    let rounds_1 = metric(&first, "ppml_rounds_closed_total").expect("round counter");
    assert!(frames_1 > 0 && rounds_1 > 0);
    assert!(
        metric(&first, "ppml_run_id").is_some_and(|id| id > 0),
        "run id gauge must be stamped"
    );

    // …monotone between two scrapes of the same live run…
    thread::sleep(Duration::from_millis(50));
    let second = scrape(&coord_metrics).expect("second scrape");
    let frames_2 = metric(&second, "ppml_frames_sent_total").expect("frame counter");
    let rounds_2 = metric(&second, "ppml_rounds_closed_total").expect("round counter");
    assert!(frames_2 >= frames_1, "{frames_2} < {frames_1}");
    assert!(rounds_2 >= rounds_1, "{rounds_2} < {rounds_1}");
    assert!(rounds_2 > rounds_1, "run appears stalled between scrapes");

    // …and every learner's endpoint is live with real traffic too.
    for (party, addr) in learner_metrics.iter().enumerate() {
        let body = scrape_until_nonzero(addr, "ppml_frames_recv_total");
        assert!(
            metric(&body, "ppml_rounds_closed_total").is_some_and(|v| v > 0),
            "learner {party} shows no closed rounds"
        );
        assert!(
            metric(&body, "ppml_run_id").is_some_and(|id| id > 0),
            "learner {party} never received the gossiped run id"
        );
    }

    let mut coordinator = coordinator;
    assert!(
        coordinator.wait().expect("wait").success(),
        "coordinator failed"
    );
    for (party, mut child) in learners.into_iter().enumerate() {
        assert!(
            child.wait().expect("wait").success(),
            "learner {party} failed"
        );
    }
}
