//! Real-process serving drills: a `ppml` child trains and saves a model,
//! a `ppml-serve` child serves it, and this test is the client
//! (ISSUE 6 acceptance).
//!
//! What must hold, over actual sockets against an actual child process:
//!
//! - the margins served over HTTP and over the frame protocol are
//!   **bit-identical** to loading the same model file in-process and
//!   calling `decision` — the two fronts and the library are one code
//!   path, and the text protocol round-trips f64 exactly;
//! - hot reload: overwriting the model file atomically swaps the model
//!   in without failing a single in-flight request, and `/model`'s
//!   generation counter ticks;
//! - `/metrics` tells the story: request counts, reload counts and a
//!   populated latency histogram;
//! - `ppml eval` prints the same report for the flat-text and binary
//!   encodings of the same model.

use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ppml::serve::{score_over_frames, SavedModel};
use ppml::svm::LinearSvm;
use ppml::telemetry::request;

const PPML: &str = env!("CARGO_BIN_EXE_ppml");
const SERVE: &str = env!("CARGO_BIN_EXE_ppml-serve");

fn scratch_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppml_serve_{test}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_ppml(args: &[&str]) -> String {
    let out = Command::new(PPML).args(args).output().expect("run ppml");
    assert!(
        out.status.success(),
        "ppml {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).to_string()
}

/// A running `ppml-serve` child: parsed front addresses plus the stdin
/// handle that keeps it alive (dropping it asks for a clean shutdown).
struct Server {
    child: Child,
    stdin: Option<ChildStdin>,
    http: String,
    frames: String,
}

impl Server {
    fn spawn(model: &Path, watch_ms: u64) -> Server {
        let mut child = Command::new(SERVE)
            .args([
                "--model",
                model.to_str().expect("utf-8 path"),
                "--watch-ms",
                &watch_ms.to_string(),
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn ppml-serve");
        let stdin = child.stdin.take();
        let stdout = child.stdout.take().expect("stdout piped");
        let mut reader = BufReader::new(stdout);
        let mut http = None;
        let mut frames = None;
        while http.is_none() || frames.is_none() {
            let mut line = String::new();
            assert_ne!(
                reader.read_line(&mut line).expect("read serve stdout"),
                0,
                "ppml-serve exited before announcing its fronts"
            );
            let line = line.trim();
            if let Some(addr) = line.strip_prefix("http: ") {
                http = Some(addr.to_string());
            } else if let Some(addr) = line.strip_prefix("frames: ") {
                frames = Some(addr.to_string());
            }
        }
        // Keep draining stdout so the child never blocks on a full pipe.
        thread::spawn(move || {
            let mut rest = String::new();
            let _ = reader.read_to_string(&mut rest);
        });
        Server {
            child,
            stdin,
            http: http.expect("http addr"),
            frames: frames.expect("frames addr"),
        }
    }

    /// Asks for a clean shutdown (stdin EOF) and asserts exit 0.
    fn shutdown(mut self) {
        drop(self.stdin.take());
        let status = self.child.wait().expect("wait ppml-serve");
        assert!(status.success(), "ppml-serve exited {status}");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Renders rows as a `POST /score` body using shortest-round-trip float
/// formatting, so the server parses back the identical f64s.
fn score_body(features: usize, xs: &[f64]) -> Vec<u8> {
    let mut body = String::new();
    for row in xs.chunks_exact(features) {
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        body.push_str(&cells.join(","));
        body.push('\n');
    }
    body.into_bytes()
}

/// Parses `label margin` lines back into margins.
fn parse_margins(body: &str) -> Vec<f64> {
    body.lines()
        .map(|line| {
            let (_, margin) = line.split_once(' ').expect("label margin");
            margin.parse().expect("parse margin")
        })
        .collect()
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: margin {i} differs ({x} vs {y})"
        );
    }
}

/// Probe rows exercising negative values and non-terminating fractions.
fn probes(features: usize, rows: usize) -> Vec<f64> {
    (0..rows * features)
        .map(|k| ((k as f64) + 1.0 / 3.0) * if k % 3 == 0 { -0.7 } else { 0.9 })
        .collect()
}

fn metric_value(metrics: &str, line_prefix: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(line_prefix))
        .unwrap_or_else(|| panic!("{line_prefix} not in metrics:\n{metrics}"))
        .trim()
        .parse()
        .expect("metric value")
}

#[test]
fn served_scores_are_bit_identical_and_reload_drops_nothing() {
    let dir = scratch_dir("bit_identical");
    let data = dir.join("data.csv");
    let model = dir.join("model.bin");
    run_ppml(&[
        "gen",
        "--dataset",
        "blobs",
        "--n",
        "240",
        "--seed",
        "5",
        "--out",
        data.to_str().unwrap(),
    ]);
    run_ppml(&[
        "train",
        "--mode",
        "central",
        "--data",
        data.to_str().unwrap(),
        "--model-out",
        model.to_str().unwrap(),
    ]);

    let server = Server::spawn(&model, 50);
    let in_process = SavedModel::load_auto(&model).expect("load model in-process");
    let features = in_process.features();
    let xs = probes(features, 5);
    let expected: Vec<f64> = xs
        .chunks_exact(features)
        .map(|row| in_process.decision(row).expect("in-process decision"))
        .collect();

    // Front 1: HTTP.
    let (status, body) =
        request(&server.http, "POST", "/score", &score_body(features, &xs)).expect("http score");
    assert_eq!(status, 200, "{body}");
    assert_bits_eq(&parse_margins(&body), &expected, "http front");

    // Front 2: frames.
    let margins =
        score_over_frames(&server.frames, features as u32, xs.clone()).expect("frame score");
    assert_bits_eq(&margins, &expected, "frame front");

    // Hot reload under fire: hammer the frame front from two threads
    // while the model file is atomically replaced. Not one request may
    // fail; each reply must match one of the two models exactly.
    let replacement = SavedModel::Linear(LinearSvm::from_parts(
        (0..features).map(|j| 0.25 * (j as f64) - 1.0).collect(),
        2.5,
    ));
    let new_expected: Vec<f64> = xs
        .chunks_exact(features)
        .map(|row| replacement.decision(row).expect("replacement decision"))
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let hammers: Vec<_> = (0..2)
        .map(|_| {
            let stop = stop.clone();
            let addr = server.frames.clone();
            let xs = xs.clone();
            let expected = expected.clone();
            let new_expected = new_expected.clone();
            thread::spawn(move || {
                let mut served = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let margins = score_over_frames(&addr, features as u32, xs.clone())
                        .expect("score during reload");
                    let old = margins
                        .iter()
                        .zip(&expected)
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                    let new = margins
                        .iter()
                        .zip(&new_expected)
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(old || new, "reply matches neither model generation");
                    served += 1;
                }
                served
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(100));
    replacement.save(&model).expect("atomic model replace");

    // Wait for /model to report generation 2.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) = request(&server.http, "GET", "/model", b"").expect("get model");
        assert_eq!(status, 200);
        if body.contains("generation 2") {
            break;
        }
        assert!(Instant::now() < deadline, "reload never landed:\n{body}");
        thread::sleep(Duration::from_millis(20));
    }
    thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::SeqCst);
    let served: u64 = hammers.into_iter().map(|h| h.join().expect("hammer")).sum();
    assert!(served > 0, "hammer threads never got a request through");

    // The swapped model now answers on both fronts.
    let margins =
        score_over_frames(&server.frames, features as u32, xs.clone()).expect("frame score");
    assert_bits_eq(&margins, &new_expected, "frame front after reload");
    let (status, body) =
        request(&server.http, "POST", "/score", &score_body(features, &xs)).expect("http score");
    assert_eq!(status, 200);
    assert_bits_eq(
        &parse_margins(&body),
        &new_expected,
        "http front after reload",
    );

    // Metrics: requests counted, two model loads, populated histogram.
    let (status, metrics) = request(&server.http, "GET", "/metrics", b"").expect("metrics");
    assert_eq!(status, 200);
    assert!(metric_value(&metrics, "ppml_score_requests_total ") > served);
    assert!(metric_value(&metrics, "ppml_model_reloads_total ") >= 2);
    assert_eq!(metric_value(&metrics, "ppml_model_generation "), 2);
    assert!(metric_value(&metrics, "ppml_score_latency_ns_count{} ") > 0);
    assert!(metric_value(&metrics, "ppml_score_rows_total ") as usize >= 5);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kernel_models_serve_bit_identically_too() {
    let dir = scratch_dir("kernel");
    let data = dir.join("data.csv");
    let model = dir.join("kmodel.bin");
    run_ppml(&[
        "gen",
        "--dataset",
        "xor",
        "--n",
        "160",
        "--seed",
        "9",
        "--out",
        data.to_str().unwrap(),
    ]);
    run_ppml(&[
        "train",
        "--mode",
        "kernel",
        "--kernel",
        "rbf",
        "--gamma",
        "0.5",
        "--data",
        data.to_str().unwrap(),
        "--model-out",
        model.to_str().unwrap(),
    ]);

    let server = Server::spawn(&model, 0);
    let in_process = SavedModel::load_auto(&model).expect("load kernel model");
    assert_eq!(in_process.kind(), "kernel");
    let features = in_process.features();
    let xs = probes(features, 7);
    let expected: Vec<f64> = xs
        .chunks_exact(features)
        .map(|row| in_process.decision(row).expect("in-process decision"))
        .collect();

    let margins =
        score_over_frames(&server.frames, features as u32, xs.clone()).expect("frame score");
    assert_bits_eq(&margins, &expected, "kernel frame front");
    let (status, body) =
        request(&server.http, "POST", "/score", &score_body(features, &xs)).expect("http score");
    assert_eq!(status, 200, "{body}");
    assert_bits_eq(&parse_margins(&body), &expected, "kernel http front");

    let (_, meta) = request(&server.http, "GET", "/model", b"").expect("get model");
    assert!(meta.contains("kind kernel"), "{meta}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eval_reports_identically_for_text_and_binary_models() {
    let dir = scratch_dir("eval_parity");
    let data = dir.join("data.csv");
    let text_model = dir.join("model.txt");
    let bin_model = dir.join("model.bin");
    run_ppml(&[
        "gen",
        "--dataset",
        "cancer",
        "--n",
        "200",
        "--seed",
        "11",
        "--out",
        data.to_str().unwrap(),
    ]);
    run_ppml(&[
        "train",
        "--mode",
        "central",
        "--data",
        data.to_str().unwrap(),
        "--out",
        text_model.to_str().unwrap(),
        "--model-out",
        bin_model.to_str().unwrap(),
    ]);

    let from_text = run_ppml(&[
        "eval",
        "--model",
        text_model.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
    ]);
    let from_bin = run_ppml(&[
        "eval",
        "--model",
        bin_model.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
    ]);
    assert_eq!(
        from_text, from_bin,
        "eval diverges between encodings of the same model"
    );
    assert!(from_text.contains("accuracy"), "{from_text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_refuses_bad_inputs_with_typed_exit_codes() {
    let dir = scratch_dir("exit_codes");
    // Missing --model → usage (2).
    let out = Command::new(SERVE).output().expect("run");
    assert_eq!(out.status.code(), Some(2));
    // Unreadable model → I/O (3).
    let out = Command::new(SERVE)
        .args(["--model", dir.join("absent.bin").to_str().unwrap()])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(3));
    // Corrupt model → I/O (3).
    let bad = dir.join("bad.bin");
    std::fs::write(&bad, b"PPMLMODLnot-really").unwrap();
    let out = Command::new(SERVE)
        .args(["--model", bad.to_str().unwrap()])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(3));
    // Unknown flag → usage (2).
    let out = Command::new(SERVE)
        .args(["--model", bad.to_str().unwrap(), "--bogus", "1"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}
