//! End-to-end trace correlation over a faulty distributed run.
//!
//! Spawns the real `ppml-coordinator` + three `ppml-learner` processes
//! with `--telemetry`, injecting a defection into learner 1 via
//! `--defect-after 2`. The four JSONL streams are then merged by the
//! trace library (and the `ppml-trace` binary), which must rebase them
//! onto the coordinator's clock and show the deadline-miss → dropout →
//! re-key sequence in coordinator-clock order, plus a per-round critical
//! path — exactly the ISSUE 4 acceptance scenario.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use ppml::telemetry::EventKind;
use ppml::trace::{Stream, Timeline};

const LEARNERS: usize = 3;

fn stream_path(dir: &std::path::Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.jsonl"))
}

fn spawn_learner(party: usize, coord_addr: &str, telemetry: &std::path::Path) -> Child {
    let mut args = vec![
        "--party".to_string(),
        party.to_string(),
        "--learners".to_string(),
        LEARNERS.to_string(),
        "--coordinator".to_string(),
        coord_addr.to_string(),
        "--iters".to_string(),
        "8".to_string(),
        "--patience".to_string(),
        "4".to_string(),
        "--telemetry".to_string(),
        telemetry.display().to_string(),
    ];
    if party == 1 {
        args.push("--defect-after".to_string());
        args.push("2".to_string());
    }
    Command::new(env!("CARGO_BIN_EXE_ppml-learner"))
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn learner")
}

#[test]
fn four_streams_merge_into_one_causal_timeline_with_the_dropout_story() {
    let dir = std::env::temp_dir().join(format!("ppml-trace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let coord_jsonl = stream_path(&dir, "coordinator");

    let mut coordinator = Command::new(env!("CARGO_BIN_EXE_ppml-coordinator"))
        .args([
            "--learners",
            "3",
            "--port",
            "0",
            "--iters",
            "8",
            "--round-timeout",
            "2",
            "--telemetry",
        ])
        .arg(&coord_jsonl)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn coordinator");

    // First stdout line is "listening on ADDR".
    let stdout = coordinator.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    std::io::BufRead::read_line(&mut reader, &mut line).expect("read line");
    let coord_addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("bad line {line:?}"))
        .trim()
        .to_string();
    std::thread::spawn(move || {
        let mut rest = String::new();
        let _ = std::io::Read::read_to_string(&mut reader, &mut rest);
    });

    let learner_paths: Vec<PathBuf> = (0..LEARNERS)
        .map(|p| stream_path(&dir, &format!("learner{p}")))
        .collect();
    let learners: Vec<(usize, Child)> = (0..LEARNERS)
        .map(|p| (p, spawn_learner(p, &coord_addr, &learner_paths[p])))
        .collect();

    // The coordinator must survive the defection and finish with the two
    // cooperative learners; the defector must die of transport timeout.
    assert!(
        coordinator.wait().expect("wait").success(),
        "coordinator failed"
    );
    for (party, mut child) in learners {
        let ok = child.wait().expect("wait").success();
        if party == 1 {
            assert!(!ok, "the defecting learner must exit with an error");
        } else {
            assert!(ok, "learner {party} failed");
        }
    }

    // Forward compatibility: a stream written by a future build carries
    // kinds this one does not know. The reader must skip and count, not
    // die.
    let future_line = "{\"t_ns\":1,\"party\":0,\"kind\":\"gpu_kernel_launch\",\"grid\":128}\n";
    let l0_text = std::fs::read_to_string(&learner_paths[0]).expect("learner 0 stream");
    std::fs::write(&learner_paths[0], format!("{future_line}{l0_text}")).expect("prepend");

    let mut streams = vec![Stream::load(&coord_jsonl).expect("coordinator stream")];
    for path in &learner_paths {
        streams.push(Stream::load(path).expect("learner stream"));
    }
    let timeline = Timeline::correlate(streams);

    // One run, one clock: every stream stamped with the same run id, and
    // every learner answered the probe handshake (the defector was still
    // cooperative at run start).
    let run_ids: Vec<u64> = timeline
        .streams
        .iter()
        .map(|s| s.run_id().expect("stream missing RunInfo"))
        .collect();
    assert!(run_ids.windows(2).all(|w| w[0] == w[1]), "{run_ids:?}");
    for party in 0..LEARNERS as u32 {
        assert!(
            timeline.offsets.contains_key(&party),
            "no clock offset for learner {party}: {:?}",
            timeline.offsets
        );
    }
    assert!(timeline.events.iter().all(|e| e.rebased));
    assert_eq!(timeline.skipped(), (1, 0), "the future-kind line");

    // At least the two pre-defection rounds completed, and some round has
    // a rebased critical-path witness.
    assert!(timeline.complete_rounds() >= 1, "no complete rounds");
    assert!(
        timeline.rounds.iter().any(|r| r.slowest_learner.is_some()),
        "no critical path identified in any round"
    );

    // The dropout story, in coordinator-clock order: deadline miss at or
    // before the dropout of party 1, re-key at or after it.
    let sequences = timeline.dropout_sequences();
    assert_eq!(sequences.len(), 1, "{sequences:?}");
    let (miss, (party, drop_t), rekey) = sequences[0];
    assert_eq!(party, 1);
    assert!(miss.expect("deadline miss") <= drop_t);
    assert!(rekey.expect("re-key") >= drop_t);
    // The same ordering must hold in the merged event list itself.
    let coord = timeline.coordinator_party.expect("coordinator");
    let pos = |pred: &dyn Fn(&EventKind) -> bool| {
        timeline
            .events
            .iter()
            .position(|e| e.event.party == coord && pred(&e.event.kind))
            .expect("event present")
    };
    let i_miss = pos(&|k| matches!(k, EventKind::DeadlineMiss { .. }));
    let i_drop = pos(&|k| matches!(k, EventKind::Dropout { party: 1, .. }));
    let i_rekey = pos(&|k| matches!(k, EventKind::RekeyEpoch { .. }));
    assert!(i_miss < i_drop && i_drop < i_rekey);

    // The rendered report carries the CI-facing lines.
    let report = timeline.render();
    assert!(report.contains("dropout story: deadline miss"), "{report}");
    let rounds_line = report
        .lines()
        .find(|l| l.starts_with("rounds: "))
        .expect("rounds line");
    let n: usize = rounds_line
        .trim_start_matches("rounds: ")
        .trim_end_matches(" complete")
        .parse()
        .expect("round count");
    assert!(n >= 1);

    // And the ppml-trace binary agrees with the library.
    let output = Command::new(env!("CARGO_BIN_EXE_ppml-trace"))
        .arg(&coord_jsonl)
        .args(&learner_paths)
        .output()
        .expect("run ppml-trace");
    assert!(output.status.success());
    let cli_report = String::from_utf8(output.stdout).expect("utf-8 report");
    assert!(cli_report.contains(rounds_line), "{cli_report}");
    assert!(cli_report.contains("dropout story: deadline miss"));
    assert!(cli_report.contains("1 unknown-kind lines skipped"));

    let _ = std::fs::remove_dir_all(&dir);
}
