//! End-to-end integration tests spanning the whole workspace: data
//! generation → partitioning → distributed training (in-process and on the
//! MapReduce cluster) → evaluation against the centralized baseline.

use ppml::core::jobs::{train_kernel_on_cluster, train_linear_on_cluster, ClusterTuning};
use ppml::core::{
    AdmmConfig, HorizontalKernelSvm, HorizontalLinearSvm, VerticalKernelSvm, VerticalLinearSvm,
};
use ppml::data::{synth, Partition};
use ppml::kernel::Kernel;
use ppml::svm::{KernelSvm, LinearSvm, SvmParams};

/// The paper's full pipeline on the easy dataset: every trainer must land
/// within a few points of the centralized baseline.
#[test]
fn all_four_trainers_approach_the_baseline_on_cancer() {
    let ds = synth::cancer_like(400, 21);
    let (train, test) = ds.split(0.5, 22).unwrap();
    let baseline = LinearSvm::train(&train, 50.0).unwrap().accuracy(&test);
    assert!(baseline > 0.88, "baseline sanity: {baseline}");

    let cfg = AdmmConfig::default()
        .with_max_iter(60)
        .with_kernel(Kernel::Rbf { gamma: 1.0 / 9.0 })
        .with_landmarks(25);

    let hparts = Partition::horizontal(&train, 4, 23).unwrap();
    let hl = HorizontalLinearSvm::train(&hparts, &cfg, None)
        .unwrap()
        .model
        .accuracy(&test);
    let hk = HorizontalKernelSvm::train(&hparts, &cfg, None)
        .unwrap()
        .model
        .accuracy(&test);

    let vview = Partition::vertical(&train, 4, 24).unwrap();
    let vl = VerticalLinearSvm::train(&vview, &cfg, None)
        .unwrap()
        .model
        .accuracy(&test);
    let vk = VerticalKernelSvm::train(&vview, &cfg, None)
        .unwrap()
        .model
        .accuracy(&test);

    for (name, acc) in [("HL", hl), ("HK", hk), ("VL", vl), ("VK", vk)] {
        assert!(
            acc > baseline - 0.08,
            "{name} accuracy {acc} too far below baseline {baseline}"
        );
    }
}

/// Difficulty ordering must match §VI on every trainer: higgs is the hard
/// dataset, ocr and cancer the easy ones.
#[test]
fn difficulty_ordering_is_preserved_distributed() {
    let cfg = AdmmConfig::default().with_max_iter(40);
    let mut accs = std::collections::BTreeMap::new();
    for (name, ds) in [
        ("cancer", synth::cancer_like(300, 31)),
        ("higgs", synth::higgs_like(500, 31)),
        ("ocr", synth::ocr_like(300, 31)),
    ] {
        let (train, test) = ds.split(0.5, 32).unwrap();
        let parts = Partition::horizontal(&train, 4, 33).unwrap();
        let out = HorizontalLinearSvm::train(&parts, &cfg, None).unwrap();
        accs.insert(name, out.model.accuracy(&test));
    }
    assert!(accs["higgs"] < accs["cancer"]);
    assert!(accs["higgs"] < accs["ocr"]);
    assert!(accs["ocr"] > 0.9);
}

/// Cluster execution is observationally identical to in-process execution,
/// and the run is fully data-local.
#[test]
fn cluster_and_in_process_agree_end_to_end() {
    let ds = synth::cancer_like(240, 41);
    let (train, test) = ds.split(0.5, 42).unwrap();
    let parts = Partition::horizontal(&train, 4, 43).unwrap();
    let cfg = AdmmConfig::default().with_max_iter(20);

    let (cluster_out, metrics) =
        train_linear_on_cluster(&parts, &cfg, Some(&test), ClusterTuning::default()).unwrap();
    let inproc_out = HorizontalLinearSvm::train(&parts, &cfg, Some(&test)).unwrap();

    for (a, b) in cluster_out
        .model
        .weights()
        .iter()
        .zip(inproc_out.model.weights())
    {
        assert!((a - b).abs() < 1e-9);
    }
    assert_eq!(cluster_out.history.accuracy, inproc_out.history.accuracy);
    assert_eq!(metrics.remote_reads, 0, "raw data must never move");
    assert!(metrics.bytes_shuffled > 0);
}

/// Kernel trainer on the cluster solves a nonlinear problem the linear
/// trainer cannot, under an injected fault.
#[test]
fn cluster_kernel_beats_linear_on_xor_despite_faults() {
    use ppml::mapreduce::{BlockId, FaultPlan};
    let ds = synth::xor_like(300, 51);
    let (train, test) = ds.split(0.5, 52).unwrap();
    let parts = Partition::horizontal(&train, 4, 53).unwrap();
    let cfg = AdmmConfig::default()
        .with_max_iter(25)
        .with_kernel(Kernel::Rbf { gamma: 0.5 })
        .with_landmarks(15);
    let tuning = ClusterTuning {
        fault_plan: FaultPlan::new().fail_first_attempts(1, BlockId(0), 1),
        max_attempts: Some(3),
    };
    let (kernel_out, metrics) = train_kernel_on_cluster(&parts, &cfg, None, tuning).unwrap();
    let linear_out = HorizontalLinearSvm::train(&parts, &cfg, None).unwrap();

    let ka = kernel_out.model.accuracy(&test);
    let la = linear_out.model.accuracy(&test);
    assert!(ka > 0.88, "kernel accuracy {ka}");
    assert!(ka > la + 0.08, "kernel {ka} must beat linear {la}");
    assert_eq!(
        metrics.task_retries, 1,
        "the injected fault must be exercised"
    );
}

/// Every secure-aggregation backend trains to the same model (the trainers
/// are agnostic to the Reduce-side protocol).
#[test]
fn secure_backends_are_interchangeable_in_training() {
    use ppml::crypto::{AdditiveSharing, PairwiseMasking, SecureSum};
    let ds = synth::blobs(120, 61);
    let parts = Partition::horizontal(&ds, 3, 62).unwrap();
    let cfg = AdmmConfig::default().with_max_iter(12);
    let backends: Vec<Box<dyn SecureSum>> = vec![
        Box::new(PairwiseMasking::new(1)),
        Box::new(AdditiveSharing::new(2)),
    ];
    let reference = HorizontalLinearSvm::train(&parts, &cfg, None).unwrap();
    for backend in &backends {
        let out = HorizontalLinearSvm::train_with(&parts, &cfg, None, backend.as_ref()).unwrap();
        for (a, b) in out.model.weights().iter().zip(reference.model.weights()) {
            assert!((a - b).abs() < 1e-6, "{} diverged", backend.name());
        }
    }
}

/// The kernel SVM baseline and the distributed kernel trainer agree on the
/// nonlinear dataset (paper's Fig. 4f claim: distributed nonlinear reaches
/// centralized-like accuracy).
#[test]
fn distributed_kernel_matches_centralized_kernel() {
    let ds = synth::xor_like(400, 71);
    let (train, test) = ds.split(0.5, 72).unwrap();
    let central = KernelSvm::train(
        &train,
        &SvmParams {
            kernel: Kernel::Rbf { gamma: 0.5 },
            ..Default::default()
        },
    )
    .unwrap()
    .accuracy(&test);
    let parts = Partition::horizontal(&train, 4, 73).unwrap();
    let cfg = AdmmConfig::default()
        .with_max_iter(40)
        .with_kernel(Kernel::Rbf { gamma: 0.5 })
        .with_landmarks(30);
    let distributed = HorizontalKernelSvm::train(&parts, &cfg, None)
        .unwrap()
        .model
        .accuracy(&test);
    assert!(
        distributed > central - 0.07,
        "distributed {distributed} vs centralized {central}"
    );
}

/// The Nyström-factored vertical kernel trainer runs on the cluster, under
/// an injected fault, and still tracks the exact trainer's accuracy.
#[test]
fn nystrom_vertical_on_cluster_with_faults() {
    use ppml::core::jobs::train_vertical_kernel_on_cluster;
    use ppml::mapreduce::{BlockId, FaultPlan};
    let ds = synth::cancer_like(300, 61);
    let (train, test) = ds.split(0.5, 62).unwrap();
    let view = Partition::vertical(&train, 3, 63).unwrap();
    let cfg = AdmmConfig::default()
        .with_max_iter(30)
        .with_kernel(Kernel::Rbf { gamma: 1.0 / 9.0 })
        .with_nystrom(40);
    let tuning = ClusterTuning {
        fault_plan: FaultPlan::new().fail_first_attempts(5, BlockId(1), 1),
        max_attempts: Some(3),
    };
    let (out, metrics) = train_vertical_kernel_on_cluster(&view, &cfg, None, tuning).unwrap();
    let exact = VerticalKernelSvm::train(
        &view,
        &AdmmConfig {
            nystrom_rank: None,
            ..cfg
        },
        None,
    )
    .unwrap();
    let (an, ae) = (out.model.accuracy(&test), exact.model.accuracy(&test));
    assert!(an > ae - 0.07, "nystrom-on-cluster {an} vs exact {ae}");
    assert_eq!(metrics.task_retries, 1);
}

/// The dropout-tolerant threshold backend slots into training like any
/// other SecureSum, producing the same model.
#[test]
fn threshold_backend_is_interchangeable_in_training() {
    use ppml::crypto::ThresholdSharing;
    let ds = synth::blobs(120, 71);
    let parts = Partition::horizontal(&ds, 4, 72).unwrap();
    let cfg = AdmmConfig::default().with_max_iter(10);
    let reference = HorizontalLinearSvm::train(&parts, &cfg, None).unwrap();
    let threshold =
        HorizontalLinearSvm::train_with(&parts, &cfg, None, &ThresholdSharing::new(3, 73)).unwrap();
    for (a, b) in threshold
        .model
        .weights()
        .iter()
        .zip(reference.model.weights())
    {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }
}

/// §III's slack-variable claim: under label noise, a softer margin (small
/// `C`) rejects the outliers and generalizes better — for the centralized
/// baseline and for the distributed trainer alike.
#[test]
fn slack_penalty_rejects_label_noise() {
    let clean = synth::blobs(300, 91);
    let (train_clean, test) = clean.split(0.5, 92).unwrap();
    let train = synth::with_label_noise(&train_clean, 0.15, 93);

    // Centralized: small C shrugs off the flipped labels.
    let soft = LinearSvm::train(&train, 0.1).unwrap().accuracy(&test);
    let hard = LinearSvm::train(&train, 1000.0).unwrap().accuracy(&test);
    assert!(
        soft >= hard - 1e-9,
        "soft margin {soft} should beat/equal hard margin {hard} under noise"
    );
    assert!(soft > 0.93, "soft-margin accuracy {soft}");

    // Distributed: the same effect must survive the consensus decomposition.
    let parts = Partition::horizontal(&train, 4, 94).unwrap();
    let cfg_soft = AdmmConfig::default().with_c(0.1).with_max_iter(50);
    let dist_soft = HorizontalLinearSvm::train(&parts, &cfg_soft, None)
        .unwrap()
        .model
        .accuracy(&test);
    assert!(
        dist_soft > 0.9,
        "distributed soft margin under noise: {dist_soft}"
    );
}

/// CSV round-trips survive the whole pipeline (export → import → train).
#[test]
fn csv_pipeline_roundtrip() {
    let ds = synth::cancer_like(120, 81);
    let csv = ds.to_csv();
    let back = ppml::data::Dataset::from_csv(&csv).unwrap();
    let parts = Partition::horizontal(&back, 2, 82).unwrap();
    let out =
        HorizontalLinearSvm::train(&parts, &AdmmConfig::default().with_max_iter(20), None).unwrap();
    assert!(out.model.accuracy(&back) > 0.85);
}
