//! Deterministic chaos sweep over the distributed ADMM stack (ISSUE 5
//! tentpole, piece 3).
//!
//! Every schedule drives a full star-topology training run through the
//! loopback hub under a seeded, frame-count-based fault plan — drops,
//! duplicates, delays, one-way partitions, timed kill windows for both
//! learners and the coordinator — and asserts the survivors' models
//! against exact references plus the telemetry story of the recovery.
//! Fault points are counted in protocol frames, not wall-clock, so each
//! schedule injects at the same protocol step on every run.
//!
//! Two schedules escalate to OS processes: a `ppml-coordinator` killed
//! mid-run and restarted with `--resume`, and a learner that dies and is
//! replaced by a `ppml-learner --rejoin true`, both verified through the
//! merged `ppml-trace` timeline. Typed exit codes (exit 2 usage, 3
//! checkpoint, 4 transport, 5 quorum lost) are pinned here too.

use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::Duration;

use ppml::core::distributed::{
    coordinate_linear, coordinate_linear_with_recovery, feature_count, learn_linear,
    learn_linear_with_defect, rejoin_linear,
};
use ppml::core::jobs::{train_linear_on_cluster, ClusterTuning};
use ppml::core::secagg::{
    coordinate_linear_secagg, learn_linear_secagg, learn_linear_secagg_with_defect,
    rejoin_linear_secagg,
};
use ppml::core::{
    AdmmConfig, Checkpoint, DistributedOutcome, DistributedTiming, RecoveryOptions, SecAggConfig,
    TrainError,
};
use ppml::crypto::{FixedPointCodec, MaskedShare, MaskingParty, ThresholdSharing};
use ppml::data::{synth, Dataset, Partition};
use ppml::svm::LinearSvm;
use ppml::telemetry::{self, Event, EventKind, RingSink};
use ppml::trace::{Stream, Timeline};
use ppml::transport::{
    Courier, Envelope, LinkFilter, LinkStats, LoopbackHub, Message, NetFaultPlan, PartyId,
    RetryPolicy, SendReceipt, Transport, TransportError,
};

/// Masking seeds the sweep runs every schedule under. The model itself is
/// seed-independent (masks cancel exactly), so each seed re-proves the
/// cancellation property over a different mask stream.
const SEEDS: [u64; 2] = [13, 29];
const M: usize = 3;

/// Telemetry is process-global, and every protocol run now emits into
/// whatever sink is installed — so every schedule takes this for its
/// whole body, serializing the sweep. A schedule that only held it
/// around its capture would still see frames from a concurrently
/// running schedule's coordinator (same party id, same event kinds).
static TELEMETRY_GUARD: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    TELEMETRY_GUARD
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

fn setup(seed: u64) -> (Vec<Dataset>, AdmmConfig) {
    let ds = synth::blobs(96, 7);
    let parts = Partition::horizontal(&ds, M, 2).expect("partition");
    let cfg = AdmmConfig::default().with_max_iter(6).with_seed(seed);
    (parts, cfg)
}

fn timing_ms(deadline: u64, patience: u64) -> DistributedTiming {
    DistributedTiming::default()
        .with_round_deadline(Duration::from_millis(deadline))
        .with_learner_patience(Duration::from_millis(patience))
}

fn cluster_reference(parts: &[Dataset], cfg: &AdmmConfig) -> LinearSvm {
    train_linear_on_cluster(parts, cfg, None, ClusterTuning::default())
        .expect("cluster reference")
        .0
        .model
}

/// Runs one star-topology schedule: learners on threads, coordinator on
/// the caller's thread, per-learner timings so a schedule can starve one
/// party's patience without slowing the others.
fn run_star(
    hub: &Arc<LoopbackHub>,
    parts: &[Dataset],
    cfg: &AdmmConfig,
    coord_timing: DistributedTiming,
    learner_timing: &[DistributedTiming],
) -> (
    ppml::core::Result<DistributedOutcome>,
    Vec<Result<LinearSvm, TrainError>>,
) {
    let m = parts.len();
    let handles: Vec<_> = parts
        .iter()
        .enumerate()
        .map(|(p, part)| {
            let mut courier = Courier::new(hub.endpoint(p as PartyId), RetryPolicy::fast_local());
            let part = part.clone();
            let cfg = *cfg;
            let timing = learner_timing[p];
            thread::spawn(move || learn_linear(&mut courier, m, &part, &cfg, timing))
        })
        .collect();
    let mut courier = Courier::new(hub.endpoint(m as PartyId), RetryPolicy::fast_local());
    let features = feature_count(parts).expect("partitions");
    let outcome = coordinate_linear(&mut courier, m, features, cfg, None, coord_timing);
    let learners = handles
        .into_iter()
        .map(|h| h.join().expect("learner thread"))
        .collect();
    (outcome, learners)
}

/// Reference for dropout schedules: the same `m`-learner protocol on a
/// fault-free hub with `absent` simply never spawned. A party whose every
/// frame is destroyed is protocol-indistinguishable from one that does
/// not exist, so a faulted run must match this bit for bit. (A cluster
/// run over only the survivors would *not* match: the local QP bakes
/// `a = m/(1+ρm)` in at construction, so survivors of an `m`-learner run
/// keep solving with the original `m`.)
fn run_star_without(
    parts: &[Dataset],
    cfg: &AdmmConfig,
    timing: DistributedTiming,
    absent: usize,
) -> DistributedOutcome {
    let hub = LoopbackHub::new(M + 1);
    let m = parts.len();
    let handles: Vec<_> = parts
        .iter()
        .enumerate()
        .filter(|&(p, _)| p != absent)
        .map(|(p, part)| {
            let mut courier = Courier::new(hub.endpoint(p as PartyId), RetryPolicy::fast_local());
            let part = part.clone();
            let cfg = *cfg;
            thread::spawn(move || learn_linear(&mut courier, m, &part, &cfg, timing))
        })
        .collect();
    let mut courier = Courier::new(hub.endpoint(m as PartyId), RetryPolicy::fast_local());
    let features = feature_count(parts).expect("partitions");
    let outcome =
        coordinate_linear(&mut courier, m, features, cfg, None, timing).expect("reference run");
    for h in handles {
        let model = h.join().expect("learner thread").expect("survivor");
        assert_eq!(model, outcome.model, "reference run disagrees internally");
    }
    outcome
}

/// Captures the process-global telemetry emitted while `f` runs. The
/// caller must already hold [`TELEMETRY_GUARD`] (every schedule does).
fn with_telemetry<R>(f: impl FnOnce() -> R) -> (R, Vec<Event>) {
    let ring = RingSink::new(1 << 16);
    telemetry::install(ring.clone());
    let result = f();
    telemetry::uninstall();
    (result, ring.snapshot())
}

/// Rebuilds one party's JSONL stream from captured in-process telemetry,
/// so the chaos schedules can be replayed through the same `ppml::trace`
/// pipeline CI uses on real process streams.
fn stream_of(events: &[Event], party: u32, name: &str) -> Stream {
    let text: String = events
        .iter()
        .filter(|e| e.party == party)
        .map(|e| format!("{}\n", e.to_json()))
        .collect();
    Stream::parse(name, &text)
}

// ---------------------------------------------------------------------
// Schedules 1–4: benign chaos — the model must be bit-identical to the
// no-fault reference and nobody may be dropped.
// ---------------------------------------------------------------------

#[test]
fn benign_chaos_schedules_match_the_no_fault_reference_exactly() {
    let _guard = guard();
    type Schedule = fn(PartyId) -> NetFaultPlan;
    let c = M as PartyId;
    let schedules: Vec<(&str, Schedule)> = vec![
        ("baseline", |_| NetFaultPlan::none()),
        ("frame_soup", |c| {
            NetFaultPlan::none()
                .drop_frames(LinkFilter::any().from(c).to(2), 1)
                .drop_frames(LinkFilter::any().from(0).to(c), 2)
                .duplicate_frames(LinkFilter::any().from(c).to(1), 3)
                .delay_frames(LinkFilter::any().from(1).to(c), 2, 3)
        }),
        ("duplicate_storm", |c| {
            NetFaultPlan::none()
                .duplicate_frames(LinkFilter::any().from(c), 16)
                .duplicate_frames(LinkFilter::any().to(c), 16)
        }),
        ("delay_jitter", |c| {
            NetFaultPlan::none()
                .delay_frames(LinkFilter::any().from(c).to(0), 3, 4)
                .delay_frames(LinkFilter::any().from(2).to(c), 3, 2)
        }),
    ];
    for seed in SEEDS {
        let (parts, cfg) = setup(seed);
        let reference = cluster_reference(&parts, &cfg);
        for (name, plan) in &schedules {
            let hub = LoopbackHub::with_faults(M + 1, plan(c));
            let timing = timing_ms(10_000, 20_000);
            let (outcome, learners) = run_star(&hub, &parts, &cfg, timing, &[timing; M]);
            let outcome = outcome.unwrap_or_else(|e| panic!("{name}/seed {seed}: {e}"));
            assert_eq!(outcome.model, reference, "{name}/seed {seed}");
            assert!(outcome.dropped.is_empty(), "{name}/seed {seed}");
            for (p, model) in learners.into_iter().enumerate() {
                let model = model.unwrap_or_else(|e| panic!("{name}/seed {seed}/l{p}: {e}"));
                assert_eq!(model, reference, "{name}/seed {seed}/learner {p}");
            }
            let stats = hub.stats();
            match *name {
                "frame_soup" => assert!(
                    stats.dropped >= 3 && stats.duplicated >= 1 && stats.delayed >= 1,
                    "{name} plan never fired: {stats:?}"
                ),
                "duplicate_storm" => assert!(stats.duplicated >= 8, "{stats:?}"),
                "delay_jitter" => assert!(stats.delayed >= 2, "{stats:?}"),
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------
// Schedule 5: permanent learner kill. The victim's share never lands, so
// the survivors' model equals the two-learner reference from scratch.
// ---------------------------------------------------------------------

#[test]
fn learner_kill_schedule_drops_the_victim_and_survivors_match_the_absent_reference() {
    let _guard = guard();
    let mut models = Vec::new();
    for seed in SEEDS {
        let (parts, cfg) = setup(seed);
        let timing = timing_ms(1_200, 20_000);
        let reference = run_star_without(&parts, &cfg, timing, 1);
        assert_eq!(reference.dropped, vec![1]);
        // Learner 1 is dead from its first frame: everything it sends or
        // receives is destroyed mid-flight, and the run must end exactly
        // where the never-spawned reference does.
        let hub = LoopbackHub::with_faults(M + 1, NetFaultPlan::none().kill_party_after(1, 0));
        let mut timings = [timing; M];
        timings[1] = timing_ms(1_200, 800); // the corpse should notice quickly
        let ((outcome, learners), events) =
            with_telemetry(|| run_star(&hub, &parts, &cfg, timing, &timings));
        let outcome = outcome.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(outcome.dropped, vec![1], "seed {seed}");
        assert_eq!(outcome.model, reference.model, "seed {seed}");
        assert_eq!(
            outcome.history.z_delta, reference.history.z_delta,
            "seed {seed}: convergence history diverged from the absent reference"
        );
        for (p, model) in learners.into_iter().enumerate() {
            if p == 1 {
                assert!(model.is_err(), "seed {seed}: the killed learner succeeded");
            } else {
                assert_eq!(model.expect("survivor"), reference.model);
            }
        }
        let coordinator_events: Vec<&Event> =
            events.iter().filter(|e| e.party == M as u32).collect();
        let dropped_at = coordinator_events
            .iter()
            .position(|e| matches!(e.kind, EventKind::Dropout { party: 1, .. }))
            .unwrap_or_else(|| panic!("seed {seed}: no Dropout event"));
        assert!(
            coordinator_events[dropped_at..]
                .iter()
                .any(|e| matches!(e.kind, EventKind::RekeyEpoch { survivors: 2, .. })),
            "seed {seed}: dropout not followed by a 2-survivor re-key"
        );
        models.push(outcome.model);
    }
    // The §V masks differ per seed yet cancel exactly, so the model is
    // identical across mask seeds down to the last bit.
    assert!(
        models.windows(2).all(|w| w[0] == w[1]),
        "model depends on the mask seed: {models:?}"
    );
}

// ---------------------------------------------------------------------
// Schedule 6: one-way partition. Learner 0 can hear but not speak — the
// exact failure mode §V's re-key must catch via the missing-share path.
// ---------------------------------------------------------------------

#[test]
fn one_way_partition_schedule_isolates_the_silent_sender() {
    let _guard = guard();
    for seed in SEEDS {
        let (parts, cfg) = setup(seed);
        let timing = timing_ms(1_200, 20_000);
        let reference = run_star_without(&parts, &cfg, timing, 0);
        assert_eq!(reference.dropped, vec![0]);
        let hub = LoopbackHub::with_faults(
            M + 1,
            NetFaultPlan::none().partition_one_way(0, M as PartyId),
        );
        let mut timings = [timing; M];
        timings[0] = timing_ms(1_200, 800);
        let ((outcome, learners), events) =
            with_telemetry(|| run_star(&hub, &parts, &cfg, timing, &timings));
        let outcome = outcome.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(outcome.dropped, vec![0], "seed {seed}");
        assert_eq!(outcome.model, reference.model, "seed {seed}");
        assert_eq!(
            outcome.history.z_delta, reference.history.z_delta,
            "seed {seed}: convergence history diverged from the absent reference"
        );
        for (p, model) in learners.into_iter().enumerate() {
            if p == 0 {
                assert!(model.is_err(), "seed {seed}: the muted learner succeeded");
            } else {
                assert_eq!(model.expect("survivor"), reference.model);
            }
        }
        assert!(
            events
                .iter()
                .any(|e| e.party == M as u32
                    && matches!(e.kind, EventKind::Dropout { party: 0, .. })),
            "seed {seed}: no Dropout recorded for the muted learner"
        );
    }
}

// ---------------------------------------------------------------------
// Schedule 7: kill window then rejoin. Learner 1's link dies during round
// 0, its patience expires, and the same party comes back through the
// Join/Welcome rendezvous while the coordinator is still waiting out the
// round deadline.
// ---------------------------------------------------------------------

#[test]
fn learner_death_then_rejoin_schedule_readmits_the_learner() {
    let _guard = guard();
    for seed in SEEDS {
        let (parts, cfg) = setup(seed);
        // Learner 1 plays round 0 then goes silent while still ACKing
        // (the worst case for the coordinator: dead parties are caught
        // cheaply at broadcast, a *silent* one costs a full round
        // deadline). Its patience starves during the coordinator's
        // round-1 stall, the process "restarts", and the fresh
        // incarnation's Join probes land mid-stall — well before the
        // deadline drops it and rounds speed up again. A storm of
        // duplicated frames rides along to keep the dedup layer honest.
        let hub = LoopbackHub::with_faults(
            M + 1,
            NetFaultPlan::none().duplicate_frames(LinkFilter::any(), 64),
        );
        let m = M;
        let handles: Vec<_> = parts
            .iter()
            .enumerate()
            .map(|(p, part)| {
                let hub = Arc::clone(&hub);
                let part = part.clone();
                thread::spawn(move || -> Result<LinearSvm, TrainError> {
                    if p == 1 {
                        // First incarnation: correct for round 0, silent
                        // from round 1, dead once its patience starves...
                        let mut courier = Courier::new(hub.endpoint(1), RetryPolicy::fast_local());
                        let first = learn_linear_with_defect(
                            &mut courier,
                            m,
                            &part,
                            &cfg,
                            timing_ms(500, 500),
                            1,
                        );
                        assert!(
                            matches!(first, Err(TrainError::Transport(_))),
                            "the defecting learner should starve, got {first:?}"
                        );
                        // ...then a fresh incarnation asks back in.
                        let mut courier = Courier::new(hub.endpoint(1), RetryPolicy::fast_local());
                        rejoin_linear(&mut courier, m, &part, &cfg, timing_ms(2_500, 20_000))
                    } else {
                        let mut courier =
                            Courier::new(hub.endpoint(p as PartyId), RetryPolicy::fast_local());
                        learn_linear(&mut courier, m, &part, &cfg, timing_ms(2_500, 20_000))
                    }
                })
            })
            .collect();
        let (outcome, events) = with_telemetry(|| {
            let mut courier = Courier::new(hub.endpoint(m as PartyId), RetryPolicy::fast_local());
            let features = feature_count(&parts).expect("partitions");
            coordinate_linear(
                &mut courier,
                m,
                features,
                &cfg,
                None,
                timing_ms(2_500, 20_000),
            )
        });
        let outcome = outcome.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            outcome.dropped.is_empty(),
            "seed {seed}: rejoin did not clear the dropped list: {:?}",
            outcome.dropped
        );
        for (p, handle) in handles.into_iter().enumerate() {
            let model = handle.join().expect("learner thread");
            assert_eq!(
                model.unwrap_or_else(|e| panic!("seed {seed}/learner {p}: {e}")),
                outcome.model,
                "seed {seed}: learner {p} disagrees after the rejoin"
            );
        }
        // Replay the coordinator's telemetry through the trace pipeline:
        // the rejoin story must name the dropped round, the re-admission
        // round and the full-strength re-key.
        let timeline = Timeline::correlate(vec![stream_of(&events, M as u32, "coordinator.jsonl")]);
        let stories = timeline.rejoin_stories();
        assert_eq!(stories.len(), 1, "seed {seed}: {stories:?}");
        assert_eq!(stories[0].party, 1);
        assert_eq!(stories[0].dropped_at, Some(1), "seed {seed}");
        assert_eq!(stories[0].iteration, 2, "seed {seed}: {stories:?}");
        assert_eq!(
            stories[0].rekey.map(|(_, survivors)| survivors),
            Some(M as u32),
            "seed {seed}: re-admission re-key not over the full set"
        );
        assert!(
            timeline.render().contains("rejoin story: party 1"),
            "seed {seed}"
        );
    }
}

// ---------------------------------------------------------------------
// Schedule 8: coordinator kill + checkpoint resume. The resumed run must
// reproduce the uninterrupted model bit for bit.
// ---------------------------------------------------------------------

#[test]
fn coordinator_kill_and_resume_schedule_reproduces_the_reference_bitwise() {
    let _guard = guard();
    for seed in SEEDS {
        let (parts, cfg) = setup(seed);
        let reference = cluster_reference(&parts, &cfg);
        let ckpt_path = std::env::temp_dir().join(format!(
            "ppml-chaos-resume-{}-{seed}.ckpt",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&ckpt_path);

        // 9 countable frames = the round 0..2 broadcasts; the round-2
        // share collection is destroyed with the coordinator.
        let hub = LoopbackHub::with_faults(
            M + 1,
            NetFaultPlan::none().kill_party_after(M as PartyId, 9),
        );
        let m = M;
        let handles: Vec<_> = parts
            .iter()
            .enumerate()
            .map(|(p, part)| {
                let mut courier =
                    Courier::new(hub.endpoint(p as PartyId), RetryPolicy::fast_local());
                let part = part.clone();
                thread::spawn(move || {
                    learn_linear(&mut courier, m, &part, &cfg, timing_ms(1_000, 25_000))
                })
            })
            .collect();

        let ((), events) = with_telemetry(|| {
            let features = feature_count(&parts).expect("partitions");
            let mut courier = Courier::new(hub.endpoint(m as PartyId), RetryPolicy::fast_local());
            let crashed = coordinate_linear_with_recovery(
                &mut courier,
                m,
                features,
                &cfg,
                None,
                timing_ms(1_000, 25_000),
                RecoveryOptions::default().with_checkpoint(&ckpt_path),
            );
            assert!(
                matches!(crashed, Err(TrainError::Dropped { .. })),
                "seed {seed}: dead coordinator should lose quorum, got {crashed:?}"
            );

            // "Restart": heal the network, load the snapshot, fresh courier.
            hub.set_faults(NetFaultPlan::none());
            let ckpt = Checkpoint::load(&ckpt_path).expect("checkpoint readable");
            assert_eq!(ckpt.next_round, 2, "seed {seed}");
            ckpt.check_compatible(m, features, cfg.seed)
                .expect("checkpoint compatible");
            let mut courier = Courier::new(hub.endpoint(m as PartyId), RetryPolicy::fast_local());
            let resumed = coordinate_linear_with_recovery(
                &mut courier,
                m,
                features,
                &cfg,
                None,
                timing_ms(1_000, 25_000),
                RecoveryOptions::default()
                    .with_checkpoint(&ckpt_path)
                    .with_resume(ckpt),
            )
            .unwrap_or_else(|e| panic!("seed {seed}: resume failed: {e}"));
            assert_eq!(
                resumed.model, reference,
                "seed {seed}: resumed model diverged"
            );
            assert!(resumed.dropped.is_empty(), "seed {seed}");
            for (p, h) in handles.into_iter().enumerate() {
                let model = h.join().expect("learner thread");
                assert_eq!(
                    model.unwrap_or_else(|e| panic!("seed {seed}/learner {p}: {e}")),
                    reference
                );
            }
        });

        // Telemetry replay: one checkpoint per accepted round across both
        // incarnations, and exactly one resume with the full survivor set.
        let checkpoints = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::CheckpointWrite { .. }))
            .count();
        assert_eq!(checkpoints, cfg.max_iter, "seed {seed}");
        let resumes: Vec<u32> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::ResumeFromCheckpoint { survivors, .. } => Some(survivors),
                _ => None,
            })
            .collect();
        assert_eq!(resumes, vec![M as u32], "seed {seed}");
        let _ = std::fs::remove_file(&ckpt_path);
    }
}

// ---------------------------------------------------------------------
// Wire tap: only masked shares leave a learner, and a share alone decodes
// to garbage — §V's on-the-wire property, checked on real protocol
// traffic rather than on the primitive.
// ---------------------------------------------------------------------

struct TapTransport<T: Transport> {
    inner: T,
    sent: Arc<Mutex<Vec<(PartyId, Message)>>>,
    received: Arc<Mutex<Vec<Message>>>,
}

impl<T: Transport> Transport for TapTransport<T> {
    fn party(&self) -> PartyId {
        self.inner.party()
    }
    fn next_seq(&mut self, to: PartyId) -> u64 {
        self.inner.next_seq(to)
    }
    fn send_raw(
        &mut self,
        to: PartyId,
        msg: &Message,
        seq: u64,
        flags: u16,
    ) -> Result<usize, TransportError> {
        self.sent.lock().expect("tap").push((to, msg.clone()));
        self.inner.send_raw(to, msg, seq, flags)
    }
    fn recv(&mut self, timeout: Duration) -> Result<Envelope, TransportError> {
        let env = self.inner.recv(timeout)?;
        self.received.lock().expect("tap").push(env.msg.clone());
        Ok(env)
    }
    fn stats(&self) -> LinkStats {
        self.inner.stats()
    }
    fn send(&mut self, to: PartyId, msg: &Message) -> Result<SendReceipt, TransportError> {
        let seq = self.next_seq(to);
        let bytes = self.send_raw(to, msg, seq, 0)?;
        Ok(SendReceipt { seq, bytes })
    }
}

#[test]
fn wire_tap_sees_only_masked_shares_and_a_lone_share_decodes_to_garbage() {
    let _guard = guard();
    for seed in SEEDS {
        let (parts, cfg) = setup(seed);
        let hub = LoopbackHub::new(M + 1);
        let sent = Arc::new(Mutex::new(Vec::new()));
        let received = Arc::new(Mutex::new(Vec::new()));
        let m = M;
        let handles: Vec<_> = parts
            .iter()
            .enumerate()
            .map(|(p, part)| {
                let part = part.clone();
                let transport = hub.endpoint(p as PartyId);
                if p == 0 {
                    let tap = TapTransport {
                        inner: transport,
                        sent: Arc::clone(&sent),
                        received: Arc::clone(&received),
                    };
                    thread::spawn(move || {
                        let mut courier = Courier::new(tap, RetryPolicy::fast_local());
                        learn_linear(&mut courier, m, &part, &cfg, timing_ms(10_000, 20_000))
                    })
                } else {
                    thread::spawn(move || {
                        let mut courier = Courier::new(transport, RetryPolicy::fast_local());
                        learn_linear(&mut courier, m, &part, &cfg, timing_ms(10_000, 20_000))
                    })
                }
            })
            .collect();
        let mut courier = Courier::new(hub.endpoint(m as PartyId), RetryPolicy::fast_local());
        let features = feature_count(&parts).expect("partitions");
        coordinate_linear(
            &mut courier,
            m,
            features,
            &cfg,
            None,
            timing_ms(10_000, 20_000),
        )
        .expect("coordinator");
        for h in handles {
            h.join().expect("learner thread").expect("learner");
        }

        // Everything learner 0 put on the wire is masked words or control
        // traffic — never a raw model, never plaintext floats.
        let sent = sent.lock().expect("tap");
        assert!(!sent.is_empty());
        let mut shares: Vec<(u64, Vec<u64>)> = Vec::new();
        for (to, msg) in sent.iter() {
            assert_eq!(*to, m as PartyId, "learner spoke to a non-coordinator");
            match msg {
                Message::MaskedShare {
                    iteration, payload, ..
                } => shares.push((*iteration, payload.clone())),
                Message::Ack { .. }
                | Message::Heartbeat { .. }
                | Message::TimeReply { .. }
                | Message::Join { .. } => {}
                other => panic!("unexpected frame kind on the wire: {other:?}"),
            }
        }
        assert_eq!(shares.len(), cfg.max_iter, "seed {seed}");

        // A share alone must not decode anywhere near the consensus state
        // the coordinator published for the same round: the pairwise pads
        // only cancel in the full survivor sum.
        let codec = FixedPointCodec::default();
        let consensus: Vec<(u64, Vec<f64>)> = received
            .lock()
            .expect("tap")
            .iter()
            .filter_map(|msg| match msg {
                Message::Consensus { iteration, z, .. } => Some((*iteration, z.clone())),
                _ => None,
            })
            .collect();
        for (iteration, payload) in &shares {
            let share = MaskedShare {
                party: 0,
                payload: payload.clone(),
            };
            let alone =
                MaskingParty::combine(std::slice::from_ref(&share), codec).expect("decode share");
            let (_, z) = consensus
                .iter()
                .find(|(it, _)| it == iteration)
                .unwrap_or_else(|| panic!("no consensus for round {iteration}"));
            let distance = alone
                .iter()
                .zip(z.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0_f64, f64::max);
            assert!(
                distance > 1.0,
                "seed {seed} round {iteration}: lone share decoded next to consensus \
                 (distance {distance:.3e}) — masks leaked"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Secure-aggregation schedules (ISSUE 8): the pluggable backends must
// survive the same chaos the pairwise path does. Shamir and Paillier
// runs are held to *bit-identity* against pairwise references — the
// GF(2^61-1) and Paillier group sums decode to the same integer the
// pairwise path computes, so any drift is a protocol bug, not noise.
// ---------------------------------------------------------------------

/// `run_star` for an explicit backend, with optional per-party defect
/// rounds (`(party, defect_after)`).
fn run_star_secagg(
    hub: &Arc<LoopbackHub>,
    parts: &[Dataset],
    cfg: &AdmmConfig,
    secagg: SecAggConfig,
    coord_timing: DistributedTiming,
    learner_timing: &[DistributedTiming],
    defects: &[(usize, u64)],
) -> (
    ppml::core::Result<DistributedOutcome>,
    Vec<Result<LinearSvm, TrainError>>,
) {
    let m = parts.len();
    let handles: Vec<_> = parts
        .iter()
        .enumerate()
        .map(|(p, part)| {
            let mut courier = Courier::new(hub.endpoint(p as PartyId), RetryPolicy::fast_local());
            let part = part.clone();
            let cfg = *cfg;
            let timing = learner_timing[p];
            let defect = defects
                .iter()
                .find(|&&(party, _)| party == p)
                .map(|&(_, d)| d);
            thread::spawn(move || match defect {
                Some(d) => {
                    learn_linear_secagg_with_defect(&mut courier, m, &part, &cfg, timing, secagg, d)
                }
                None => learn_linear_secagg(&mut courier, m, &part, &cfg, timing, secagg),
            })
        })
        .collect();
    let mut courier = Courier::new(hub.endpoint(m as PartyId), RetryPolicy::fast_local());
    let features = feature_count(parts).expect("partitions");
    let outcome =
        coordinate_linear_secagg(&mut courier, m, features, cfg, None, coord_timing, secagg);
    let learners = handles
        .into_iter()
        .map(|h| h.join().expect("learner thread"))
        .collect();
    (outcome, learners)
}

/// Coordinator-side `SecAggRound` labels, in round order.
fn secagg_round_labels(events: &[Event]) -> Vec<&'static str> {
    events
        .iter()
        .filter(|e| e.party == M as u32)
        .filter_map(|e| match e.kind {
            EventKind::SecAggRound { backend, .. } => Some(backend),
            _ => None,
        })
        .collect()
}

fn assert_no_rekey(events: &[Event], context: &str) {
    assert!(
        events
            .iter()
            .all(|e| !matches!(e.kind, EventKind::RekeyEpoch { .. })),
        "{context}: a stateless backend emitted a re-key round"
    );
}

// ---------------------------------------------------------------------
// Schedule 9: benign chaos per backend. Shamir rides the nastiest fault
// plan (drops + dups + delays) and must still land bit-identical to the
// fault-free pairwise run; Paillier gets a duplicate storm.
// ---------------------------------------------------------------------

#[test]
fn secagg_backends_survive_benign_chaos_bit_identical_to_pairwise() {
    let _guard = guard();
    let c = M as PartyId;
    for seed in SEEDS {
        let (parts, cfg) = setup(seed);
        let timing = timing_ms(10_000, 20_000);
        let reference = {
            let hub = LoopbackHub::new(M + 1);
            let (outcome, _) = run_star_secagg(
                &hub,
                &parts,
                &cfg,
                SecAggConfig::pairwise(),
                timing,
                &[timing; M],
                &[],
            );
            outcome.expect("pairwise reference")
        };
        let legs: Vec<(SecAggConfig, NetFaultPlan)> = vec![
            (
                SecAggConfig::shamir(),
                NetFaultPlan::none()
                    .drop_frames(LinkFilter::any().from(c).to(2), 1)
                    .drop_frames(LinkFilter::any().from(0).to(c), 2)
                    .duplicate_frames(LinkFilter::any().from(c).to(1), 3)
                    .delay_frames(LinkFilter::any().from(1).to(c), 2, 3),
            ),
            (
                SecAggConfig::paillier(),
                NetFaultPlan::none()
                    .duplicate_frames(LinkFilter::any().from(c), 8)
                    .duplicate_frames(LinkFilter::any().to(c), 8),
            ),
        ];
        for (secagg, plan) in legs {
            let name = secagg.kind.as_str();
            let hub = LoopbackHub::with_faults(M + 1, plan);
            let ((outcome, learners), events) = with_telemetry(|| {
                run_star_secagg(&hub, &parts, &cfg, secagg, timing, &[timing; M], &[])
            });
            let outcome = outcome.unwrap_or_else(|e| panic!("{name}/seed {seed}: {e}"));
            assert_eq!(outcome.model, reference.model, "{name}/seed {seed}");
            assert_eq!(
                outcome.history.z_delta, reference.history.z_delta,
                "{name}/seed {seed}: convergence history diverged from pairwise"
            );
            assert!(outcome.dropped.is_empty(), "{name}/seed {seed}");
            for (p, model) in learners.into_iter().enumerate() {
                let model = model.unwrap_or_else(|e| panic!("{name}/seed {seed}/l{p}: {e}"));
                assert_eq!(model, reference.model, "{name}/seed {seed}/learner {p}");
            }
            assert_no_rekey(&events, &format!("{name}/seed {seed}"));
            let labels = secagg_round_labels(&events);
            assert_eq!(labels.len(), cfg.max_iter, "{name}/seed {seed}");
            assert!(labels.iter().all(|&b| b == name), "{name}: {labels:?}");
        }
    }
}

// ---------------------------------------------------------------------
// Schedule 10: the headline Shamir property. A learner dies mid-collect
// — it distributed its round-d shares but never submits its sum — and
// the round STILL completes with the victim's input counted, with no
// re-key round anywhere. Membership-wise that equals a pairwise run
// whose victim defects one round later (pairwise loses the victim's
// round-d input at the collect; Shamir keeps it via reconstruction), so
// the pairwise defect-at-d+1 run is the bitwise reference.
// ---------------------------------------------------------------------

#[test]
fn shamir_mid_collect_death_completes_the_round_without_a_rekey() {
    let _guard = guard();
    for seed in SEEDS {
        let (parts, cfg) = setup(seed);
        let timing = timing_ms(1_200, 20_000);
        let defect_round = 2u64;
        let reference = {
            let hub = LoopbackHub::new(M + 1);
            let mut timings = [timing; M];
            timings[1] = timing_ms(1_200, 800);
            let (outcome, _) = run_star_secagg(
                &hub,
                &parts,
                &cfg,
                SecAggConfig::pairwise(),
                timing,
                &timings,
                &[(1, defect_round + 1)],
            );
            outcome.expect("pairwise reference")
        };
        assert_eq!(reference.dropped, vec![1]);
        let hub = LoopbackHub::new(M + 1);
        let mut timings = [timing; M];
        timings[1] = timing_ms(1_200, 800);
        let ((outcome, learners), events) = with_telemetry(|| {
            run_star_secagg(
                &hub,
                &parts,
                &cfg,
                SecAggConfig::shamir(),
                timing,
                &timings,
                &[(1, defect_round)],
            )
        });
        let outcome = outcome.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(outcome.dropped, vec![1], "seed {seed}");
        assert_eq!(
            outcome.model,
            reference.model,
            "seed {seed}: survivors diverged from the pairwise defect-at-{}-reference",
            defect_round + 1
        );
        assert_eq!(
            outcome.history.z_delta, reference.history.z_delta,
            "seed {seed}: the mid-collect round lost the victim's input"
        );
        for (p, model) in learners.into_iter().enumerate() {
            if p == 1 {
                assert!(model.is_err(), "seed {seed}: the dead learner succeeded");
            } else {
                assert_eq!(model.expect("survivor"), reference.model, "seed {seed}");
            }
        }
        assert!(
            events
                .iter()
                .any(|e| e.party == M as u32
                    && matches!(e.kind, EventKind::Dropout { party: 1, .. })),
            "seed {seed}: no Dropout recorded for the mid-collect death"
        );
        assert_no_rekey(&events, &format!("shamir/seed {seed}"));
        let labels = secagg_round_labels(&events);
        assert_eq!(
            labels.len(),
            cfg.max_iter,
            "seed {seed}: the dropout cost a round — {labels:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Schedule 11: death then rejoin under Shamir. Same shape as schedule 7
// but the re-admission must happen with NO re-key at all — threshold
// sharing has no epoch state to rebuild.
// ---------------------------------------------------------------------

#[test]
fn shamir_death_then_rejoin_readmits_without_any_rekey() {
    let _guard = guard();
    let seed = SEEDS[0];
    let (parts, cfg) = setup(seed);
    let secagg = SecAggConfig::shamir();
    let hub = LoopbackHub::new(M + 1);
    let m = M;
    let handles: Vec<_> = parts
        .iter()
        .enumerate()
        .map(|(p, part)| {
            let hub = Arc::clone(&hub);
            let part = part.clone();
            thread::spawn(move || -> Result<LinearSvm, TrainError> {
                if p == 1 {
                    let mut courier = Courier::new(hub.endpoint(1), RetryPolicy::fast_local());
                    let first = learn_linear_secagg_with_defect(
                        &mut courier,
                        m,
                        &part,
                        &cfg,
                        timing_ms(500, 500),
                        secagg,
                        1,
                    );
                    assert!(
                        matches!(first, Err(TrainError::Transport(_))),
                        "the defecting learner should starve, got {first:?}"
                    );
                    let mut courier = Courier::new(hub.endpoint(1), RetryPolicy::fast_local());
                    rejoin_linear_secagg(
                        &mut courier,
                        m,
                        &part,
                        &cfg,
                        timing_ms(2_500, 20_000),
                        secagg,
                    )
                } else {
                    let mut courier =
                        Courier::new(hub.endpoint(p as PartyId), RetryPolicy::fast_local());
                    learn_linear_secagg(
                        &mut courier,
                        m,
                        &part,
                        &cfg,
                        timing_ms(2_500, 20_000),
                        secagg,
                    )
                }
            })
        })
        .collect();
    let (outcome, events) = with_telemetry(|| {
        let mut courier = Courier::new(hub.endpoint(m as PartyId), RetryPolicy::fast_local());
        let features = feature_count(&parts).expect("partitions");
        coordinate_linear_secagg(
            &mut courier,
            m,
            features,
            &cfg,
            None,
            timing_ms(2_500, 20_000),
            secagg,
        )
    });
    let outcome = outcome.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    assert!(
        outcome.dropped.is_empty(),
        "seed {seed}: rejoin did not clear the dropped list: {:?}",
        outcome.dropped
    );
    for (p, handle) in handles.into_iter().enumerate() {
        let model = handle.join().expect("learner thread");
        assert_eq!(
            model.unwrap_or_else(|e| panic!("seed {seed}/learner {p}: {e}")),
            outcome.model,
            "seed {seed}: learner {p} disagrees after the rejoin"
        );
    }
    let coordinator: Vec<&Event> = events.iter().filter(|e| e.party == M as u32).collect();
    assert!(
        coordinator
            .iter()
            .any(|e| matches!(e.kind, EventKind::Dropout { party: 1, .. })),
        "seed {seed}: no Dropout for the dead incarnation"
    );
    assert!(
        coordinator
            .iter()
            .any(|e| matches!(e.kind, EventKind::Rejoin { party: 1, .. })),
        "seed {seed}: no Rejoin for the fresh incarnation"
    );
    assert_no_rekey(&events, &format!("shamir rejoin/seed {seed}"));
}

// ---------------------------------------------------------------------
// Schedule 12: Paillier dropout. A defector is dropped at the round
// deadline with no re-key; the survivors match the pairwise run with
// the same defect round bit for bit (both backends lose the victim's
// round-d input at the collect).
// ---------------------------------------------------------------------

#[test]
fn paillier_defector_is_dropped_without_a_rekey_and_matches_pairwise() {
    let _guard = guard();
    let seed = SEEDS[1];
    let (parts, cfg) = setup(seed);
    let timing = timing_ms(1_200, 20_000);
    let defect_round = 1u64;
    let reference = {
        let hub = LoopbackHub::new(M + 1);
        let mut timings = [timing; M];
        timings[1] = timing_ms(1_200, 800);
        let (outcome, _) = run_star_secagg(
            &hub,
            &parts,
            &cfg,
            SecAggConfig::pairwise(),
            timing,
            &timings,
            &[(1, defect_round)],
        );
        outcome.expect("pairwise reference")
    };
    assert_eq!(reference.dropped, vec![1]);
    let hub = LoopbackHub::new(M + 1);
    let mut timings = [timing; M];
    timings[1] = timing_ms(1_200, 800);
    let ((outcome, learners), events) = with_telemetry(|| {
        run_star_secagg(
            &hub,
            &parts,
            &cfg,
            SecAggConfig::paillier(),
            timing,
            &timings,
            &[(1, defect_round)],
        )
    });
    let outcome = outcome.unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    assert_eq!(outcome.dropped, vec![1], "seed {seed}");
    assert_eq!(outcome.model, reference.model, "seed {seed}");
    assert_eq!(
        outcome.history.z_delta, reference.history.z_delta,
        "seed {seed}: convergence history diverged from pairwise"
    );
    for (p, model) in learners.into_iter().enumerate() {
        if p == 1 {
            assert!(model.is_err(), "seed {seed}: the defector succeeded");
        } else {
            assert_eq!(model.expect("survivor"), reference.model, "seed {seed}");
        }
    }
    assert!(
        events
            .iter()
            .any(|e| e.party == M as u32 && matches!(e.kind, EventKind::Dropout { party: 1, .. })),
        "seed {seed}: no Dropout recorded"
    );
    assert_no_rekey(&events, &format!("paillier/seed {seed}"));
    let labels = secagg_round_labels(&events);
    assert_eq!(labels.len(), cfg.max_iter, "seed {seed}");
    assert!(labels.iter().all(|&b| b == "paillier"), "{labels:?}");
}

// ---------------------------------------------------------------------
// Shamir wire tap: a learner's outbound traffic is blinded share blocks
// and summed shares only, and a lone summed share (one point of a
// degree t-1 polynomial, t = 2 here) decodes to garbage.
// ---------------------------------------------------------------------

#[test]
fn shamir_wire_tap_sees_only_blinded_blocks_and_a_lone_share_decodes_to_garbage() {
    let _guard = guard();
    let seed = SEEDS[0];
    let (parts, cfg) = setup(seed);
    let secagg = SecAggConfig::shamir();
    let hub = LoopbackHub::new(M + 1);
    let sent = Arc::new(Mutex::new(Vec::new()));
    let received = Arc::new(Mutex::new(Vec::new()));
    let m = M;
    let handles: Vec<_> = parts
        .iter()
        .enumerate()
        .map(|(p, part)| {
            let part = part.clone();
            let transport = hub.endpoint(p as PartyId);
            if p == 0 {
                let tap = TapTransport {
                    inner: transport,
                    sent: Arc::clone(&sent),
                    received: Arc::clone(&received),
                };
                thread::spawn(move || {
                    let mut courier = Courier::new(tap, RetryPolicy::fast_local());
                    learn_linear_secagg(
                        &mut courier,
                        m,
                        &part,
                        &cfg,
                        timing_ms(10_000, 20_000),
                        secagg,
                    )
                })
            } else {
                thread::spawn(move || {
                    let mut courier = Courier::new(transport, RetryPolicy::fast_local());
                    learn_linear_secagg(
                        &mut courier,
                        m,
                        &part,
                        &cfg,
                        timing_ms(10_000, 20_000),
                        secagg,
                    )
                })
            }
        })
        .collect();
    let mut courier = Courier::new(hub.endpoint(m as PartyId), RetryPolicy::fast_local());
    let features = feature_count(&parts).expect("partitions");
    coordinate_linear_secagg(
        &mut courier,
        m,
        features,
        &cfg,
        None,
        timing_ms(10_000, 20_000),
        secagg,
    )
    .expect("coordinator");
    for h in handles {
        h.join().expect("learner thread").expect("learner");
    }

    // Learner 0 only ever sends pad-blinded distribution blocks, summed
    // shares and control frames — never a raw model or a bare share.
    let sent = sent.lock().expect("tap");
    assert!(!sent.is_empty());
    let mut dists = 0usize;
    let mut sums: Vec<(u64, Vec<u64>)> = Vec::new();
    for (to, msg) in sent.iter() {
        assert_eq!(*to, m as PartyId, "learner spoke to a non-coordinator");
        match msg {
            Message::ShamirDist { party, .. } => {
                assert_eq!(*party, 0);
                dists += 1;
            }
            Message::Shares { iteration, values } => sums.push((*iteration, values.clone())),
            Message::Ack { .. }
            | Message::Heartbeat { .. }
            | Message::TimeReply { .. }
            | Message::Join { .. } => {}
            other => panic!("unexpected frame kind on the wire: {other:?}"),
        }
    }
    assert_eq!(dists, cfg.max_iter, "seed {seed}");
    assert_eq!(sums.len(), cfg.max_iter, "seed {seed}");

    // One summed share is a single evaluation of a random degree-(t-1)
    // polynomial whose constant term is the secret sum: decoding it
    // alone must land nowhere near the consensus the round produced.
    let scheme = ThresholdSharing::new(secagg.effective_threshold(m), cfg.seed);
    let consensus: Vec<(u64, Vec<f64>)> = received
        .lock()
        .expect("tap")
        .iter()
        .filter_map(|msg| match msg {
            Message::Consensus { iteration, z, .. } => Some((*iteration, z.clone())),
            _ => None,
        })
        .collect();
    for (iteration, values) in &sums {
        let alone: Vec<f64> = values
            .iter()
            .map(|&y| scheme.decode(y) / m as f64)
            .collect();
        let (_, z) = consensus
            .iter()
            .find(|(it, _)| it == iteration)
            .unwrap_or_else(|| panic!("no consensus for round {iteration}"));
        let distance = alone
            .iter()
            .zip(z.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max);
        assert!(
            distance > 1.0,
            "seed {seed} round {iteration}: lone summed share decoded next to consensus \
             (distance {distance:.3e}) — blinding leaked"
        );
    }
}
