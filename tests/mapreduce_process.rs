//! OS-process MapReduce chaos drills: a `TaskScheduler` driver in this
//! test process driving real `ppml-worker` children over loopback TCP.
//!
//! The in-crate unit tests prove the scheduler's logic over loopback
//! threads; these prove the *operational* story with actual processes:
//!
//! - SIGKILL a worker mid-task — its task re-queues on the survivors
//!   and the job result is bit-identical to the fault-free in-process
//!   reference (`run_local`);
//! - race a speculative duplicate against a straggling worker — the
//!   copy wins, the result is bit-identical, and the loser is told it
//!   lost (a `task_cancel` frame it acknowledges before exiting);
//! - exhaust a task's retry budget — a typed `TaskFailed` error within
//!   a bounded wall clock, never a hang;
//! - the `ppml-worker` binary honors the repo-wide typed exit code and
//!   one-line stderr contract.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ppml::mapreduce::{process_job, run_local, MapReduceError, TaskPolicy, TaskScheduler};
use ppml::transport::{Courier, EventTransport, RetryPolicy};

const WORKER: &str = env!("CARGO_BIN_EXE_ppml-worker");
const SEED: u64 = 42;

/// Spawns one `ppml-worker` child dialing `driver`. `PPML_TRANSPORT`
/// selects the socket backend for the whole drill matrix, exactly as in
/// `chaos_process.rs`.
fn spawn_worker(
    party: usize,
    workers: usize,
    blocks: u64,
    driver: SocketAddr,
    extra: &[&str],
) -> Child {
    let mut argv: Vec<String> = [
        "--party",
        &party.to_string(),
        "--workers",
        &workers.to_string(),
        "--blocks",
        &blocks.to_string(),
        "--driver",
        &driver.to_string(),
        "--job",
        "wordcount",
        "--data-seed",
        &SEED.to_string(),
        "--patience",
        "30",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    argv.extend(extra.iter().map(|s| s.to_string()));
    if let Ok(backend) = std::env::var("PPML_TRANSPORT") {
        if !backend.is_empty() {
            argv.extend(["--transport".to_string(), backend]);
        }
    }
    Command::new(WORKER)
        .args(&argv)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ppml-worker")
}

/// Binds the driver endpoint (party 0, workers dial in) and wraps it in
/// a `TaskScheduler`.
fn driver(policy: TaskPolicy) -> (TaskScheduler<EventTransport>, SocketAddr) {
    let transport = EventTransport::bind(
        0,
        "127.0.0.1:0".parse().expect("loopback addr"),
        HashMap::new(),
        RetryPolicy::tcp_link(),
        Duration::from_secs(5),
    )
    .expect("bind driver transport");
    let addr = transport.local_addr();
    let courier = Courier::new(transport, RetryPolicy::tcp_default());
    let sched = TaskScheduler::new(courier, process_job("wordcount").expect("job"), policy);
    (sched, addr)
}

fn reference(blocks: &[u64]) -> Vec<u8> {
    let job = process_job("wordcount").expect("job");
    run_local(job.as_ref(), SEED, blocks, &[])
}

/// SIGKILL a worker while it is crunching a map task: the driver's
/// attempt timeout declares it dead, re-queues its tasks on survivors,
/// and the distributed result stays bit-identical to `run_local`.
#[test]
fn sigkilled_worker_requeues_bit_identically() {
    let blocks: Vec<u64> = (0..6).collect();
    let (mut sched, addr) = driver(TaskPolicy {
        attempt_timeout: Duration::from_secs(1),
        speculate: false,
        ..TaskPolicy::default()
    });
    // Worker 3 is slowed so it is reliably *mid-task* when the kill
    // lands; workers 1 and 2 are healthy survivors.
    let survivors: Vec<Child> = (1..=2).map(|p| spawn_worker(p, 3, 6, addr, &[])).collect();
    let victim = spawn_worker(3, 3, 6, addr, &["--lag-ms", "400"]);
    sched
        .register_workers(3, Duration::from_secs(30))
        .expect("all three workers register");

    // A real SIGKILL, delivered once the round is underway.
    let killer = std::thread::spawn({
        let pid = victim.id();
        move || {
            std::thread::sleep(Duration::from_millis(150));
            // Child::kill needs &mut; signal by pid so the round can run
            // in this thread meanwhile.
            let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
            pid
        }
    });
    let result = sched
        .run_round(&blocks, &[])
        .expect("round survives the kill");
    killer.join().expect("killer thread");
    assert_eq!(result, reference(&blocks), "kill changed the answer");
    assert_eq!(sched.metrics.workers_lost, 1);
    assert_eq!(sched.alive_workers(), 2);

    sched.shutdown();
    let out = victim.wait_with_output().expect("victim worker");
    assert!(!out.status.success(), "the victim must die by signal");
    for child in survivors {
        let out = child.wait_with_output().expect("survivor worker");
        assert!(out.status.success(), "a survivor failed");
    }
}

/// A straggling worker is raced by a speculative duplicate: the copy
/// wins, the result is bit-identical, and the loser acknowledges the
/// cancel for its obsolete attempt before exiting cleanly.
#[test]
fn speculative_copy_beats_straggler_and_loser_is_cancelled() {
    let blocks: Vec<u64> = (0..4).collect();
    let (mut sched, addr) = driver(TaskPolicy {
        attempt_timeout: Duration::from_secs(8),
        speculate: true,
        speculation_factor: 1.5,
        locality_wait: Duration::from_millis(30),
        ..TaskPolicy::default()
    });
    let fast = spawn_worker(1, 2, 4, addr, &[]);
    let slow = spawn_worker(2, 2, 4, addr, &["--lag-ms", "500"]);
    sched
        .register_workers(2, Duration::from_secs(30))
        .expect("both workers register");

    let result = sched.run_round(&blocks, &[]).expect("round completes");
    assert_eq!(result, reference(&blocks), "speculation changed the answer");
    assert!(
        sched.metrics.task_speculations >= 1,
        "no speculation fired: {:?}",
        sched.metrics
    );
    assert!(sched.cancels_sent >= 1, "the loser was never cancelled");

    sched.shutdown();
    let mut cancels_acknowledged = 0usize;
    for child in [fast, slow] {
        let out = child.wait_with_output().expect("worker exit");
        assert!(out.status.success(), "a worker failed");
        let text = String::from_utf8(out.stdout).expect("utf-8 worker stdout");
        let line = text
            .lines()
            .find(|l| l.contains("done,"))
            .unwrap_or_else(|| panic!("no completion line in:\n{text}"));
        let cancels: usize = line
            .rsplit_once(", ")
            .and_then(|(_, tail)| tail.split_whitespace().next())
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("unparseable completion line: {line}"));
        cancels_acknowledged += cancels;
    }
    assert!(
        cancels_acknowledged >= 1,
        "no worker acknowledged losing the race"
    );
}

/// A task that fails on every worker burns its bounded retry budget and
/// surfaces a typed error — in bounded time, never a hang.
#[test]
fn retry_exhaustion_is_typed_and_bounded() {
    let blocks: Vec<u64> = (0..4).collect();
    let (mut sched, addr) = driver(TaskPolicy {
        max_attempts: 2,
        speculate: false,
        ..TaskPolicy::default()
    });
    let workers: Vec<Child> = (1..=2)
        .map(|p| spawn_worker(p, 2, 4, addr, &["--fail-blocks", "0"]))
        .collect();
    sched
        .register_workers(2, Duration::from_secs(30))
        .expect("both workers register");

    let t0 = Instant::now();
    match sched.run_round(&blocks, &[]) {
        Err(MapReduceError::TaskFailed { block, attempts }) => {
            assert_eq!(block.0, 0);
            assert_eq!(attempts, 2);
        }
        other => panic!("expected TaskFailed, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "retry exhaustion took {:?} — that is a hang, not a bound",
        t0.elapsed()
    );
    sched.shutdown();
    for child in workers {
        let out = child.wait_with_output().expect("worker exit");
        assert!(
            out.status.success(),
            "failing blocks must not kill the worker"
        );
    }
}

fn run_to_exit(argv: &[&str]) -> (Option<i32>, String) {
    let out = Command::new(WORKER)
        .args(argv)
        .output()
        .expect("run ppml-worker");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The worker binary honors the repo's typed exit code and one-line
/// stderr contract (`ppml::cli`).
#[test]
fn worker_exit_codes_are_typed() {
    // 2 — usage: missing required flags (plus the usage block).
    let (code, stderr) = run_to_exit(&["--workers", "2"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(
        stderr.contains("ppml-worker:") && stderr.contains("usage:"),
        "{stderr}"
    );

    // 2 — usage: the driver is party 0, not a valid worker id.
    let (code, stderr) =
        run_to_exit(&["--party", "0", "--workers", "2", "--driver", "127.0.0.1:9"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("0 is the driver"), "{stderr}");

    // 2 — usage: unknown job name.
    let (code, stderr) = run_to_exit(&[
        "--party",
        "1",
        "--workers",
        "1",
        "--driver",
        "127.0.0.1:9",
        "--job",
        "no-such-job",
    ]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("unknown job"), "{stderr}");

    // 4 — transport: nobody is listening on the discard port.
    let (code, stderr) = run_to_exit(&[
        "--party",
        "1",
        "--workers",
        "1",
        "--driver",
        "127.0.0.1:9",
        "--patience",
        "1",
    ]);
    assert_eq!(code, Some(4), "{stderr}");
    assert!(stderr.contains("ppml-worker:"), "{stderr}");
}
