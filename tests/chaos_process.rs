//! OS-process chaos drills: real `ppml-coordinator` / `ppml-learner`
//! children over loopback TCP, with actual `SIGKILL`s instead of
//! fault-plan frame drops.
//!
//! The in-process sweeps in `chaos_sweep.rs` prove the protocol math
//! (exact-reference equality under seeded fault schedules); these tests
//! prove the *operational* story end to end:
//!
//! - kill the coordinator process mid-run and restart it with
//!   `--resume` on the same port — the final model is byte-identical to
//!   an uninterrupted run, and the telemetry tells the resume story;
//! - kill a learner (via scripted defection) and bring a fresh process
//!   back with `--rejoin true` — the coordinator drops it, re-keys, then
//!   re-admits it, and `ppml-trace` renders the rejoin story;
//! - SIGKILL a learner of a 4-party `--secagg shamir` run mid-collect —
//!   the round still completes from the survivors' shares, with no
//!   re-key round anywhere in the telemetry;
//! - every documented exit code (2 usage, 3 I/O/checkpoint,
//!   4 transport, 5 lost quorum) is produced by a real invocation.

use std::io::{BufRead, BufReader, Read};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ppml::core::Checkpoint;
use ppml::trace::{Stream, Timeline};

const COORDINATOR: &str = env!("CARGO_BIN_EXE_ppml-coordinator");
const LEARNER: &str = env!("CARGO_BIN_EXE_ppml-learner");
const TRACE: &str = env!("CARGO_BIN_EXE_ppml-trace");

/// Per-test scratch directory. `PPML_CHAOS_DIR=BASE` pins it to
/// `BASE/<test>` and keeps it after the test, so CI can feed the
/// telemetry files to `ppml-trace` in a follow-up step; otherwise a
/// pid-unique temp dir is used and removed at the end.
fn scratch_dir(test: &str) -> PathBuf {
    let dir = match std::env::var_os("PPML_CHAOS_DIR") {
        Some(base) => PathBuf::from(base).join(test),
        None => std::env::temp_dir().join(format!("ppml_chaos_{test}_{}", std::process::id())),
    };
    cleanup(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn cleanup(dir: &PathBuf) {
    if std::env::var_os("PPML_CHAOS_DIR").is_none() {
        let _ = std::fs::remove_dir_all(dir);
    }
}

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// Spawns a coordinator or learner child. `PPML_TRANSPORT=event|threads`
/// appends `--transport` to every child so CI can run the whole drill
/// matrix against either socket backend; unset, the binaries' default
/// (the event loop) applies. `PPML_SECAGG=pairwise|shamir|paillier`
/// does the same for `--secagg`, except for drills that pin a specific
/// backend themselves (checkpoint/resume is pairwise-only, and the
/// SIGKILL drill below needs a pairwise reference next to a shamir
/// run).
fn spawn(bin: &str, argv: &[String]) -> Child {
    let mut argv = argv.to_vec();
    if let Ok(backend) = std::env::var("PPML_TRANSPORT") {
        if !backend.is_empty() {
            argv.extend(["--transport".to_string(), backend]);
        }
    }
    if let Ok(backend) = std::env::var("PPML_SECAGG") {
        if !backend.is_empty() && !argv.iter().any(|a| a == "--secagg") {
            argv.extend(["--secagg".to_string(), backend]);
        }
    }
    Command::new(bin)
        .args(&argv)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn child")
}

/// Reads the child's stdout line by line until the `listening on ADDR`
/// banner, then hands the remainder of the stream to a drain thread.
/// Returns `None` on EOF before the banner (e.g. the bind failed and
/// the process is exiting) — callers retry or inspect the exit status.
fn await_listening(child: &mut Child) -> Option<(String, Vec<String>, JoinHandle<String>)> {
    let stdout = child.stdout.take().expect("stdout is piped");
    let mut reader = BufReader::new(stdout);
    let mut pre = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read child stdout") == 0 {
            return None;
        }
        let line = line.trim_end().to_string();
        if let Some(addr) = line.strip_prefix("listening on ") {
            let addr = addr.to_string();
            let drain = thread::spawn(move || {
                let mut rest = String::new();
                reader
                    .read_to_string(&mut rest)
                    .expect("drain child stdout");
                rest
            });
            return Some((addr, pre, drain));
        }
        pre.push(line);
    }
}

/// Waits for a coordinator whose banner was already consumed, joining
/// the stdout drain thread and slurping stderr. Returns
/// `(success, stdout_after_banner, stderr)`.
fn finish(mut child: Child, drain: JoinHandle<String>) -> (bool, String, String) {
    let status = child.wait().expect("wait for child");
    let stdout = drain.join().expect("join drain thread");
    let mut stderr = String::new();
    if let Some(mut pipe) = child.stderr.take() {
        pipe.read_to_string(&mut stderr).ok();
    }
    (status.success(), stdout, stderr)
}

fn model_text(coordinator_stdout: &str) -> String {
    coordinator_stdout
        .lines()
        .find_map(|l| l.strip_prefix("model: "))
        .unwrap_or_else(|| panic!("no model line in:\n{coordinator_stdout}"))
        .to_string()
}

fn learner_model_text(learner_stdout: &str) -> String {
    learner_stdout
        .lines()
        .find_map(|l| l.strip_prefix("consensus model: "))
        .unwrap_or_else(|| panic!("no consensus model line in:\n{learner_stdout}"))
        .to_string()
}

fn rounds_completed(coordinator_stdout: &str) -> u64 {
    coordinator_stdout
        .lines()
        .find_map(|l| l.strip_prefix("converged in "))
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no convergence line in:\n{coordinator_stdout}"))
        .parse()
        .expect("round count")
}

/// Kill the coordinator process partway through a checkpointed run,
/// restart it with `--resume` on the same port, and demand the exact
/// model an uninterrupted run produces. The learners are never touched:
/// they ride out the outage on their patience budget and redial the
/// reborn coordinator via heartbeat nudges.
#[test]
fn coordinator_crash_and_resume_across_processes() {
    let dir = scratch_dir("resume");
    let ckpt = dir.join("run.ckpt");
    let telemetry_b = dir.join("coordinator-resumed.jsonl");
    // A dataset big enough that 120 rounds take whole seconds: the
    // checkpoint poll below must observe an early round long before the
    // run can finish. The backend is pinned: checkpoint/resume is a
    // pairwise-epoch feature, so a PPML_SECAGG override must not leak
    // into this drill.
    let shared = [
        "--dataset",
        "blobs",
        "--n",
        "512",
        "--data-seed",
        "5",
        "--iters",
        "120",
        "--seed",
        "11",
        "--tol",
        "1e-12",
        "--secagg",
        "pairwise",
    ];
    let coord_flags = |extra: &[&str]| {
        let mut v = args(&["--learners", "3", "--round-timeout", "20"]);
        v.extend(args(&shared));
        v.extend(args(extra));
        v
    };
    let learner_flags = |party: usize, addr: &str| {
        let mut v = args(&[
            "--party",
            &party.to_string(),
            "--learners",
            "3",
            "--coordinator",
            addr,
            "--patience",
            "60",
        ]);
        v.extend(args(&shared));
        v
    };

    // Reference: the same run, never interrupted (checkpointing only
    // adds snapshot writes, so it is omitted here).
    let mut reference = spawn(COORDINATOR, &coord_flags(&[]));
    let (ref_addr, _, ref_drain) = await_listening(&mut reference).expect("reference banner");
    let ref_learners: Vec<Child> = (0..3)
        .map(|p| spawn(LEARNER, &learner_flags(p, &ref_addr)))
        .collect();
    let (ok, ref_stdout, ref_stderr) = finish(reference, ref_drain);
    assert!(ok, "reference run failed:\n{ref_stderr}");
    let want_model = model_text(&ref_stdout);
    let total_rounds = rounds_completed(&ref_stdout);
    for child in ref_learners {
        let out = child.wait_with_output().expect("reference learner");
        assert!(out.status.success());
    }

    // Crash run, act one: checkpoint every round, then die by SIGKILL as
    // soon as the snapshot shows round 2 was accepted.
    let mut doomed = spawn(
        COORDINATOR,
        &coord_flags(&["--checkpoint", ckpt.to_str().expect("ckpt path")]),
    );
    let (addr, _, doomed_drain) = await_listening(&mut doomed).expect("doomed banner");
    let learners: Vec<Child> = (0..3)
        .map(|p| spawn(LEARNER, &learner_flags(p, &addr)))
        .collect();
    let poll_deadline = Instant::now() + Duration::from_secs(60);
    let killed_at = loop {
        assert!(
            Instant::now() < poll_deadline,
            "checkpoint never reached round 2"
        );
        if let Ok(snapshot) = Checkpoint::load(&ckpt) {
            if snapshot.next_round >= 2 {
                break snapshot.next_round;
            }
        }
        thread::sleep(Duration::from_millis(1));
    };
    doomed.kill().expect("kill coordinator");
    let (ok, _, _) = finish(doomed, doomed_drain);
    assert!(!ok, "the doomed coordinator must die by signal");
    assert!(
        killed_at < total_rounds,
        "run outpaced the checkpoint poll: killed at round {killed_at} of {total_rounds}"
    );

    // Act two: resurrect on the SAME port (the learners have it baked
    // in). The old accepted sockets may hold the port briefly, so retry
    // bind failures (typed exit 4) until the listener comes up.
    let port = addr.rsplit(':').next().expect("port in addr");
    let mut revived = None;
    for _ in 0..50 {
        let mut child = spawn(
            COORDINATOR,
            &coord_flags(&[
                "--port",
                port,
                "--checkpoint",
                ckpt.to_str().expect("ckpt path"),
                "--resume",
                ckpt.to_str().expect("ckpt path"),
                "--telemetry",
                telemetry_b.to_str().expect("telemetry path"),
            ]),
        );
        match await_listening(&mut child) {
            Some((resumed_addr, pre, drain)) => {
                assert_eq!(resumed_addr, addr, "resume must re-bind the original port");
                assert!(
                    pre.iter().any(|l| l.starts_with("resuming from ")),
                    "missing resume banner in {pre:?}"
                );
                revived = Some((child, drain));
                break;
            }
            None => {
                let status = child.wait().expect("failed resume attempt");
                assert_eq!(
                    status.code(),
                    Some(4),
                    "resume attempt died with a non-transport error"
                );
                thread::sleep(Duration::from_millis(300));
            }
        }
    }
    let (revived, drain) = revived.expect("resume coordinator never bound the port");
    let (ok, stdout, stderr) = finish(revived, drain);
    assert!(ok, "resumed run failed:\n{stderr}");

    // Bit-identical model, no dropouts, and every learner — which lived
    // through the crash — agrees with it.
    assert_eq!(model_text(&stdout), want_model);
    assert!(
        !stdout.contains("dropped learners"),
        "resume must not drop anyone:\n{stdout}"
    );
    for child in learners {
        let out = child.wait_with_output().expect("crash-run learner");
        assert!(out.status.success(), "learner died during the outage");
        let text = String::from_utf8(out.stdout).expect("utf-8 learner stdout");
        assert_eq!(learner_model_text(&text), want_model);
    }

    // The resumed incarnation's telemetry tells the story on its own:
    // one resume, a checkpoint per accepted round, and a rendered
    // `resume story:` line.
    let timeline = Timeline::correlate(vec![
        Stream::load(&telemetry_b).expect("resumed coordinator stream")
    ]);
    let (checkpoints, resumes, rejoins) = timeline.recovery_counts();
    assert_eq!(resumes, 1);
    assert_eq!(rejoins, 0);
    assert!(
        checkpoints as u64 >= total_rounds - killed_at,
        "expected a snapshot per resumed round, got {checkpoints}"
    );
    let report = timeline.render();
    assert!(
        report.contains("resume story: coordinator re-entered at round"),
        "{report}"
    );
    assert!(
        report.contains("rounds:") && report.contains("complete"),
        "{report}"
    );

    cleanup(&dir);
}

/// Kill a learner process (scripted defection runs out its patience,
/// exit code 4), then bring a fresh `--rejoin true` process back while
/// the coordinator is still stalled on the dead learner's round. The
/// coordinator drops it, re-keys over the survivors, re-admits it at
/// the next round boundary, and `ppml-trace` renders the rejoin story.
#[test]
fn learner_death_and_rejoin_across_processes() {
    let dir = scratch_dir("rejoin");
    let coord_jsonl = dir.join("coordinator.jsonl");
    let shared = [
        "--n",
        "96",
        "--data-seed",
        "5",
        "--iters",
        "8",
        "--seed",
        "11",
    ];
    let learner_flags = |party: usize, addr: &str, extra: &[&str]| {
        let mut v = args(&[
            "--party",
            &party.to_string(),
            "--learners",
            "3",
            "--coordinator",
            addr,
        ]);
        v.extend(args(&shared));
        v.extend(args(extra));
        v
    };

    let mut coordinator = {
        let mut v = args(&[
            "--learners",
            "3",
            "--round-timeout",
            "6",
            "--telemetry",
            coord_jsonl.to_str().expect("telemetry path"),
        ]);
        v.extend(args(&shared));
        spawn(COORDINATOR, &v)
    };
    let (addr, _, drain) = await_listening(&mut coordinator).expect("coordinator banner");

    let survivors: Vec<Child> = [0usize, 2]
        .iter()
        .map(|&p| spawn(LEARNER, &learner_flags(p, &addr, &["--patience", "60"])))
        .collect();
    // Party 1 plays round 0, then goes silent; its own 2s patience kills
    // the process long before the coordinator's 6s round deadline fires,
    // leaving a wide window to start the replacement.
    let victim = spawn(
        LEARNER,
        &learner_flags(1, &addr, &["--defect-after", "1", "--patience", "2"]),
    );
    let out = victim.wait_with_output().expect("victim learner");
    assert_eq!(
        out.status.code(),
        Some(4),
        "the defector must die with the typed transport code"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("ppml-learner:"),
        "missing one-line stderr reason"
    );

    // The coordinator is now mid-stall on round 1. A brand-new process
    // asks to rejoin; it is admitted at the round-2 boundary.
    let rejoiner = spawn(
        LEARNER,
        &learner_flags(1, &addr, &["--rejoin", "true", "--patience", "60"]),
    );

    let (ok, stdout, stderr) = finish(coordinator, drain);
    assert!(ok, "coordinator failed:\n{stderr}");
    // The re-admission heals the run: the final dropped list is empty
    // again, so the coordinator reports no dropped learners at exit.
    assert!(!stdout.contains("dropped learners"), "{stdout}");
    let want_model = model_text(&stdout);

    let out = rejoiner.wait_with_output().expect("rejoined learner");
    assert!(out.status.success(), "rejoined learner failed");
    let text = String::from_utf8(out.stdout).expect("utf-8 rejoiner stdout");
    assert!(text.contains("asking to rejoin the run"), "{text}");
    assert_eq!(learner_model_text(&text), want_model);
    for child in survivors {
        let out = child.wait_with_output().expect("survivor learner");
        assert!(out.status.success());
        let text = String::from_utf8(out.stdout).expect("utf-8 survivor stdout");
        assert_eq!(learner_model_text(&text), want_model);
    }

    // The coordinator's stream alone carries the whole arc:
    // Dropout(1) -> Rejoin(1) -> and, under pairwise, a RekeyEpoch over
    // the full set again. The stateless backends (PPML_SECAGG=shamir or
    // paillier) must re-admit with no re-key round at all.
    let timeline =
        Timeline::correlate(vec![Stream::load(&coord_jsonl).expect("coordinator stream")]);
    let stories = timeline.rejoin_stories();
    assert_eq!(stories.len(), 1, "{stories:?}");
    assert_eq!(stories[0].party, 1);
    assert_eq!(stories[0].dropped_at, Some(1));
    assert_eq!(stories[0].iteration, 2);
    let stateless = matches!(
        std::env::var("PPML_SECAGG").as_deref(),
        Ok("shamir") | Ok("paillier")
    );
    if stateless {
        assert_eq!(
            stories[0].rekey, None,
            "stateless backend re-keyed: {stories:?}"
        );
    } else {
        assert_eq!(stories[0].rekey.map(|(_, survivors)| survivors), Some(3));
    }
    let report = timeline.render();
    assert!(report.contains("rejoin story: party 1"), "{report}");

    // And the ppml-trace binary tells the same story from the file.
    let output = Command::new(TRACE)
        .arg(&coord_jsonl)
        .output()
        .expect("run ppml-trace");
    assert!(output.status.success());
    let cli_report = String::from_utf8(output.stdout).expect("utf-8 report");
    assert!(cli_report.contains("rejoin story: party 1"), "{cli_report}");

    cleanup(&dir);
}

fn run_to_exit(bin: &str, argv: &[String]) -> (Option<i32>, String) {
    let out = Command::new(bin).args(argv).output().expect("run binary");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Every documented exit code, produced by a real invocation, with the
/// one-line `binary-name: reason` stderr contract.
#[test]
fn typed_exit_codes_come_from_real_invocations() {
    let dir = scratch_dir("exit_codes");

    // 2 — usage: a flag missing its value (and the usage block).
    let (code, stderr) = run_to_exit(COORDINATOR, &args(&["--learners"]));
    assert_eq!(code, Some(2), "{stderr}");
    assert!(
        stderr.contains("ppml-coordinator:") && stderr.contains("usage:"),
        "{stderr}"
    );

    // 2 — usage: mutually exclusive learner flags, caught before any I/O.
    let (code, stderr) = run_to_exit(
        LEARNER,
        &args(&[
            "--party",
            "0",
            "--learners",
            "2",
            "--coordinator",
            "127.0.0.1:9",
            "--rejoin",
            "true",
            "--defect-after",
            "1",
        ]),
    );
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("exclusive"), "{stderr}");

    // 3 — checkpoint: --resume pointing at a snapshot that does not
    // exist fails before the socket ever binds.
    let missing = dir.join("missing.ckpt");
    let (code, stderr) = run_to_exit(
        COORDINATOR,
        &args(&[
            "--learners",
            "1",
            "--resume",
            missing.to_str().expect("missing path"),
        ]),
    );
    assert_eq!(code, Some(3), "{stderr}");
    assert!(stderr.contains("ppml-coordinator:"), "{stderr}");

    // 4 — transport: nobody is listening on the discard port, and one
    // second of patience is not going to change that.
    let (code, stderr) = run_to_exit(
        LEARNER,
        &args(&[
            "--party",
            "0",
            "--learners",
            "1",
            "--coordinator",
            "127.0.0.1:9",
            "--patience",
            "1",
        ]),
    );
    assert_eq!(code, Some(4), "{stderr}");
    assert!(stderr.contains("ppml-learner:"), "{stderr}");

    // 5 — lost quorum: the coordinator's only learner defects from
    // round 0, so the first deadline miss empties the survivor set.
    let mut coordinator = spawn(
        COORDINATOR,
        &args(&["--learners", "1", "--iters", "4", "--round-timeout", "1"]),
    );
    let (addr, _, drain) = await_listening(&mut coordinator).expect("coordinator banner");
    let defector = spawn(
        LEARNER,
        &args(&[
            "--party",
            "0",
            "--learners",
            "1",
            "--coordinator",
            &addr,
            "--iters",
            "4",
            "--defect-after",
            "0",
            "--patience",
            "2",
        ]),
    );
    let status = coordinator.wait().expect("coordinator exit");
    let _ = drain.join();
    let mut stderr = String::new();
    if let Some(mut pipe) = coordinator.stderr.take() {
        pipe.read_to_string(&mut stderr).ok();
    }
    assert_eq!(status.code(), Some(5), "{stderr}");
    assert!(stderr.contains("ppml-coordinator:"), "{stderr}");
    let out = defector.wait_with_output().expect("defector learner");
    assert_eq!(out.status.code(), Some(4));

    cleanup(&dir);
}

/// SIGKILL a learner of a 4-party `--secagg shamir` run after it has
/// distributed its round-2 shares but before it submits its sum — the
/// paper's dropout case for threshold sharing. The round must still
/// complete *with the victim's input counted* (reconstructed from the
/// survivors' blinded blocks), there must be no re-key round anywhere,
/// and the survivors' model must be bit-identical to the reference.
///
/// The reference is a pairwise run whose victim defects one round
/// later: pairwise loses the victim's round-d input at the collect,
/// Shamir keeps it, so shamir-defect-at-2 and pairwise-defect-at-3 see
/// identical per-round memberships (the in-process sweep pins the same
/// equivalence bit for bit).
#[test]
fn shamir_mid_collect_sigkill_across_processes() {
    let dir = scratch_dir("secagg_sigkill");
    let coord_jsonl = dir.join("coordinator-shamir.jsonl");
    let shared = [
        "--n",
        "128",
        "--data-seed",
        "5",
        "--iters",
        "8",
        "--seed",
        "11",
    ];
    let learner_flags = |party: usize, addr: &str, extra: &[&str]| {
        let mut v = args(&[
            "--party",
            &party.to_string(),
            "--learners",
            "4",
            "--coordinator",
            addr,
        ]);
        v.extend(args(&shared));
        v.extend(args(extra));
        v
    };

    // Reference: pairwise, the victim scripted to defect at round 3 and
    // starve out on a short patience.
    let mut reference = {
        let mut v = args(&[
            "--learners",
            "4",
            "--round-timeout",
            "6",
            "--secagg",
            "pairwise",
        ]);
        v.extend(args(&shared));
        spawn(COORDINATOR, &v)
    };
    let (ref_addr, _, ref_drain) = await_listening(&mut reference).expect("reference banner");
    let ref_survivors: Vec<Child> = [0usize, 2, 3]
        .iter()
        .map(|&p| {
            spawn(
                LEARNER,
                &learner_flags(p, &ref_addr, &["--secagg", "pairwise", "--patience", "60"]),
            )
        })
        .collect();
    let ref_victim = spawn(
        LEARNER,
        &learner_flags(
            1,
            &ref_addr,
            &[
                "--secagg",
                "pairwise",
                "--defect-after",
                "3",
                "--patience",
                "2",
            ],
        ),
    );
    let (ok, ref_stdout, ref_stderr) = finish(reference, ref_drain);
    assert!(ok, "reference run failed:\n{ref_stderr}");
    let want_model = model_text(&ref_stdout);
    assert_eq!(
        ref_victim
            .wait_with_output()
            .expect("reference victim")
            .status
            .code(),
        Some(4)
    );
    for child in ref_survivors {
        let out = child.wait_with_output().expect("reference survivor");
        assert!(out.status.success());
        let text = String::from_utf8(out.stdout).expect("utf-8 survivor stdout");
        assert_eq!(learner_model_text(&text), want_model);
    }

    // The shamir run. The victim distributes round-2 shares and then
    // never submits; its patience is long so only the SIGKILL below
    // ends it.
    let mut coordinator = {
        let mut v = args(&[
            "--learners",
            "4",
            "--round-timeout",
            "6",
            "--secagg",
            "shamir",
            "--telemetry",
            coord_jsonl.to_str().expect("telemetry path"),
        ]);
        v.extend(args(&shared));
        spawn(COORDINATOR, &v)
    };
    let (addr, _, drain) = await_listening(&mut coordinator).expect("coordinator banner");
    let survivors: Vec<Child> = [0usize, 2, 3]
        .iter()
        .map(|&p| {
            spawn(
                LEARNER,
                &learner_flags(p, &addr, &["--secagg", "shamir", "--patience", "60"]),
            )
        })
        .collect();
    let mut victim = spawn(
        LEARNER,
        &learner_flags(
            1,
            &addr,
            &[
                "--secagg",
                "shamir",
                "--defect-after",
                "2",
                "--patience",
                "60",
            ],
        ),
    );

    // The JSONL sink writes unbuffered, so poll it for round 2 opening,
    // give the victim's distribution frame a beat to land, then deliver
    // a real SIGKILL mid-collect. (If the kill raced the distribution,
    // the scripted defection still guarantees the mid-collect shape —
    // the round-2 blocks are sent before the defection check bites.)
    let poll_deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(Instant::now() < poll_deadline, "round 2 never opened");
        let text = std::fs::read_to_string(&coord_jsonl).unwrap_or_default();
        if text
            .lines()
            .any(|l| l.contains("\"kind\":\"round_open\"") && l.contains("\"iteration\":2"))
        {
            break;
        }
        thread::sleep(Duration::from_millis(1));
    }
    thread::sleep(Duration::from_millis(300));
    victim.kill().expect("SIGKILL the victim");
    let out = victim.wait_with_output().expect("victim learner");
    assert!(!out.status.success(), "the victim must die by signal");

    let (ok, stdout, stderr) = finish(coordinator, drain);
    assert!(ok, "shamir coordinator failed:\n{stderr}");
    assert_eq!(
        model_text(&stdout),
        want_model,
        "shamir survivors diverged from the pairwise reference"
    );
    for child in survivors {
        let out = child.wait_with_output().expect("shamir survivor");
        assert!(out.status.success(), "a shamir survivor failed");
        let text = String::from_utf8(out.stdout).expect("utf-8 survivor stdout");
        assert_eq!(learner_model_text(&text), want_model);
    }

    // The telemetry must show the dropout, a shamir label on every
    // round, and — the point of the backend — not a single re-key.
    let text = std::fs::read_to_string(&coord_jsonl).expect("coordinator telemetry");
    assert!(text.contains("\"kind\":\"dropout\""), "no dropout recorded");
    assert!(
        !text.contains("\"kind\":\"rekey_epoch\""),
        "the shamir run re-keyed"
    );
    let rounds = text
        .lines()
        .filter(|l| l.contains("\"kind\":\"secagg_round\""))
        .count();
    assert_eq!(rounds, 8, "expected a secagg_round record per round");
    assert!(
        text.lines()
            .filter(|l| l.contains("\"kind\":\"secagg_round\""))
            .all(|l| l.contains("\"backend\":\"shamir\"")),
        "a round was not labelled shamir"
    );

    cleanup(&dir);
}
