//! Integration: distributed HL-SVM training through the public facade,
//! over both transport backends.
//!
//! The distributed protocol aggregates fixed-point wrapping sums, so
//! every run — simulated cluster, loopback hub (even with injected
//! frame loss), TCP across threads — must produce bit-identical models.

use std::collections::HashMap;
use std::thread;
use std::time::{Duration, Instant};

use ppml::core::distributed::{coordinate_linear, feature_count, learn_linear};
use ppml::core::jobs::{train_linear_on_cluster, ClusterTuning};
use ppml::core::AdmmConfig;
use ppml::core::DistributedTiming;
use ppml::data::{synth, Dataset, Partition};
use ppml::svm::LinearSvm;
use ppml::transport::{
    Courier, EventTransport, LinkFilter, LoopbackHub, Message, NetFaultPlan, PartyId, RetryPolicy,
    TcpTransport,
};

fn timing() -> DistributedTiming {
    DistributedTiming::default()
        .with_round_deadline(Duration::from_secs(10))
        .with_learner_patience(Duration::from_secs(20))
}

fn setup(m: usize) -> (Vec<Dataset>, AdmmConfig) {
    let ds = synth::blobs(96, 7);
    let parts = Partition::horizontal(&ds, m, 2).expect("partition");
    let cfg = AdmmConfig::default().with_max_iter(10).with_seed(13);
    (parts, cfg)
}

#[test]
fn lossy_loopback_matches_cluster_and_charges_for_retries() {
    let m = 3;
    let (parts, cfg) = setup(m);
    let (reference, _) =
        train_linear_on_cluster(&parts, &cfg, None, ClusterTuning::default()).expect("cluster");

    let run = |faults: NetFaultPlan| {
        let hub = LoopbackHub::with_faults(m + 1, faults);
        let handles: Vec<_> = parts
            .iter()
            .enumerate()
            .map(|(p, part)| {
                let mut courier =
                    Courier::new(hub.endpoint(p as PartyId), RetryPolicy::fast_local());
                let part = part.clone();
                thread::spawn(move || {
                    learn_linear(&mut courier, m, &part, &cfg, timing()).expect("learner")
                })
            })
            .collect();
        let mut courier = Courier::new(hub.endpoint(m as PartyId), RetryPolicy::fast_local());
        let features = feature_count(&parts).expect("partitions");
        let outcome = coordinate_linear(&mut courier, m, features, &cfg, None, timing())
            .expect("coordinator");
        for h in handles {
            h.join().expect("learner thread");
        }
        (outcome, hub.stats())
    };

    let (clean, _) = run(NetFaultPlan::none());
    assert_eq!(clean.model, reference.model);
    assert_eq!(clean.history.z_delta, reference.history.z_delta);

    // Kill the first broadcast toward learner 2 and the first two shares
    // from learner 0; the courier's ARQ must retransmit through it.
    let faults = NetFaultPlan::none()
        .drop_frames(LinkFilter::any().from(m as PartyId).to(2), 1)
        .drop_frames(LinkFilter::any().from(0).to(m as PartyId), 2);
    let (lossy, stats) = run(faults);
    assert!(stats.dropped >= 3, "fault plan never fired: {stats:?}");
    assert_eq!(lossy.model, reference.model);
    // Retransmissions are real traffic: the lossy run must cost more.
    assert!(lossy.metrics.total_network_bytes() > clean.metrics.total_network_bytes());
}

#[test]
fn tcp_threads_match_cluster() {
    let m = 2;
    let (parts, cfg) = setup(m);
    let (reference, _) =
        train_linear_on_cluster(&parts, &cfg, None, ClusterTuning::default()).expect("cluster");

    let coord_transport = TcpTransport::bind(
        m as PartyId,
        "127.0.0.1:0".parse().expect("addr"),
        HashMap::new(),
        RetryPolicy::tcp_link(),
        Duration::from_secs(5),
    )
    .expect("bind coordinator");
    let addr = coord_transport.local_addr();

    let handles: Vec<_> = parts
        .iter()
        .enumerate()
        .map(|(p, part)| {
            let part = part.clone();
            thread::spawn(move || -> LinearSvm {
                let transport = TcpTransport::bind(
                    p as PartyId,
                    "127.0.0.1:0".parse().expect("addr"),
                    HashMap::from([(m as PartyId, addr)]),
                    RetryPolicy::tcp_link(),
                    Duration::from_secs(5),
                )
                .expect("bind learner");
                let mut courier = Courier::new(transport, RetryPolicy::tcp_default());
                courier
                    .send_unreliable(m as PartyId, &Message::Heartbeat { nonce: p as u64 })
                    .expect("announce");
                learn_linear(&mut courier, m, &part, &cfg, timing()).expect("learner")
            })
        })
        .collect();

    let deadline = Instant::now() + Duration::from_secs(10);
    while coord_transport.connected_parties().len() < m {
        assert!(Instant::now() < deadline, "learners never dialed in");
        thread::sleep(Duration::from_millis(10));
    }

    let mut courier = Courier::new(coord_transport, RetryPolicy::tcp_default());
    let features = feature_count(&parts).expect("partitions");
    let outcome =
        coordinate_linear(&mut courier, m, features, &cfg, None, timing()).expect("coordinator");

    assert_eq!(outcome.model, reference.model);
    for h in handles {
        assert_eq!(h.join().expect("learner thread"), reference.model);
    }
}

/// The event-loop backend must be a drop-in replacement: the same
/// protocol over `EventTransport` endpoints on every side produces the
/// bit-identical model the in-process cluster (and the thread backend)
/// does. The protocol aggregates wrapping fixed-point sums, so "close"
/// is not good enough — equality is exact.
#[test]
fn event_loop_backend_matches_cluster() {
    let m = 3;
    let (parts, cfg) = setup(m);
    let (reference, _) =
        train_linear_on_cluster(&parts, &cfg, None, ClusterTuning::default()).expect("cluster");

    let coord_transport = EventTransport::bind(
        m as PartyId,
        "127.0.0.1:0".parse().expect("addr"),
        HashMap::new(),
        RetryPolicy::tcp_link(),
        Duration::from_secs(5),
    )
    .expect("bind coordinator");
    let addr = coord_transport.local_addr();

    let handles: Vec<_> = parts
        .iter()
        .enumerate()
        .map(|(p, part)| {
            let part = part.clone();
            thread::spawn(move || -> LinearSvm {
                let transport = EventTransport::bind(
                    p as PartyId,
                    "127.0.0.1:0".parse().expect("addr"),
                    HashMap::from([(m as PartyId, addr)]),
                    RetryPolicy::tcp_link(),
                    Duration::from_secs(5),
                )
                .expect("bind learner");
                let mut courier = Courier::new(transport, RetryPolicy::tcp_default());
                courier
                    .send_unreliable(m as PartyId, &Message::Heartbeat { nonce: p as u64 })
                    .expect("announce");
                learn_linear(&mut courier, m, &part, &cfg, timing()).expect("learner")
            })
        })
        .collect();

    let deadline = Instant::now() + Duration::from_secs(10);
    while coord_transport.connected_parties().len() < m {
        assert!(Instant::now() < deadline, "learners never dialed in");
        thread::sleep(Duration::from_millis(10));
    }

    let mut courier = Courier::new(coord_transport, RetryPolicy::tcp_default());
    let features = feature_count(&parts).expect("partitions");
    let outcome =
        coordinate_linear(&mut courier, m, features, &cfg, None, timing()).expect("coordinator");

    assert_eq!(outcome.model, reference.model);
    for h in handles {
        assert_eq!(h.join().expect("learner thread"), reference.model);
    }
}
