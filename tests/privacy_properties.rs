//! Tests of the §V security-relevant behaviours that are checkable in code:
//! what leaves a learner, what the reducer can see, and that the masking
//! algebra holds under composition. (Semantic security of the primitives is
//! argued in the paper; these tests pin the *implementation* to the
//! protocol.)

use ppml::core::{AdmmConfig, HorizontalLinearSvm, SeededMasker};
use ppml::crypto::{FixedPointCodec, MaskingParty, PairwiseMasking, SecureSum};
use ppml::data::{synth, Partition};

/// A masked share must be (a) different from the raw encoding and (b)
/// different across iterations for identical values — i.e., pads are fresh.
#[test]
fn shares_are_masked_and_fresh() {
    let masker = SeededMasker::new(99, 0, 4);
    let codec = masker.codec();
    let value = [0.5, -0.25, 3.0];
    let raw: Vec<u64> = value
        .iter()
        .map(|&v| codec.encode_u64(v).unwrap())
        .collect();
    let s0 = masker.mask_share(&value, 0).unwrap();
    let s1 = masker.mask_share(&value, 1).unwrap();
    assert_ne!(s0, raw, "share leaked the raw encoding");
    assert_ne!(s0, s1, "pads were reused across iterations");
}

/// Coalition resistance (the paper's protocol property): even if all-but-one
/// mappers pool their sent/received masks, the honest mapper's value is
/// still hidden — checked algebraically: subtracting every mask known to
/// the coalition from the honest share does NOT reveal the raw encoding,
/// because the honest party's own pairwise masks with coalition members
/// cancel but the share still differs from the raw value by... nothing.
/// The actual guarantee: the coalition of M-1 *can* recover the last value
/// only by also seeing the reducer's sum. Without the sum, a single share
/// plus all coalition masks reveals the value — which is why the protocol's
/// threat model separates the reducer from the mappers. What we can test:
/// any proper subset of shares sums to a masked (not meaningful) value.
#[test]
fn partial_sums_reveal_nothing() {
    let codec = FixedPointCodec::default();
    let m = 4;
    let parties: Vec<MaskingParty> = (0..m)
        .map(|i| MaskingParty::new(i, m, 2, 1000 + i as u64, codec))
        .collect();
    let values = [
        vec![1.0, 2.0],
        vec![3.0, 4.0],
        vec![5.0, 6.0],
        vec![7.0, 8.0],
    ];
    let mut shares = Vec::new();
    for (i, p) in parties.iter().enumerate() {
        let received: Vec<&[u64]> = p
            .peers()
            .iter()
            .map(|&peer| {
                let k = parties[peer].peers().iter().position(|&q| q == i).unwrap();
                parties[peer].outgoing(k)
            })
            .collect();
        shares.push(p.masked_share(&values[i], &received).unwrap());
    }
    // Full sum is exact.
    let full = MaskingParty::combine(&shares, codec).unwrap();
    assert!((full[0] - 16.0).abs() < 1e-6 && (full[1] - 20.0).abs() < 1e-6);
    // Any proper subset decodes to garbage (far from the true partial sum).
    let partial = MaskingParty::combine(&shares[..3], codec).unwrap();
    let true_partial = 1.0 + 3.0 + 5.0;
    assert!(
        (partial[0] - true_partial).abs() > 1.0,
        "3-of-4 shares decoded close to the true partial sum: {}",
        partial[0]
    );
}

/// The consensus model must not memorize an individual learner's data more
/// than the centralized model would: a smoke-level membership check — the
/// distributed model's decision values on learner 0's rows are not
/// systematically larger-margin than on unseen rows.
#[test]
fn consensus_model_margins_do_not_single_out_a_learner() {
    let ds = synth::cancer_like(300, 91);
    let (train, test) = ds.split(0.5, 92).unwrap();
    let parts = Partition::horizontal(&train, 4, 93).unwrap();
    let out =
        HorizontalLinearSvm::train(&parts, &AdmmConfig::default().with_max_iter(60), None).unwrap();
    let mean_margin = |d: &ppml::data::Dataset| -> f64 {
        (0..d.len())
            .map(|i| d.label(i) * out.model.decision(d.sample(i)).unwrap())
            .sum::<f64>()
            / d.len() as f64
    };
    let m_member = mean_margin(&parts[0]);
    let m_test = mean_margin(&test);
    // Margins on one learner's training rows stay comparable to margins on
    // fresh data — within 30 % relative.
    assert!(
        (m_member - m_test).abs() / m_test.abs().max(1e-9) < 0.3,
        "member margin {m_member} vs test margin {m_test}"
    );
}

/// Protocol validation failures must be loud, not silent wrong answers.
#[test]
fn ragged_protocol_inputs_error() {
    let bad = vec![vec![1.0, 2.0], vec![1.0]];
    assert!(PairwiseMasking::new(1).aggregate(&bad).is_err());
    assert!(PairwiseMasking::new(1).aggregate(&[]).is_err());
}

/// The fixed-point pipeline preserves enough precision that 100 iterations
/// of secure averaging do not visibly perturb training relative to exact
/// arithmetic.
#[test]
fn fixed_point_noise_does_not_perturb_training() {
    let ds = synth::blobs(100, 95);
    let parts = Partition::horizontal(&ds, 4, 96).unwrap();
    let cfg = AdmmConfig::default().with_max_iter(100);
    let exact =
        HorizontalLinearSvm::train_with(&parts, &cfg, None, &ppml::crypto::PlainSum).unwrap();
    let secure = HorizontalLinearSvm::train(&parts, &cfg, None).unwrap();
    for (a, b) in exact.model.weights().iter().zip(secure.model.weights()) {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }
}
