//! Property tests for the cryptographic substrate: bignum arithmetic
//! against a 128-bit reference, number-theoretic identities, Paillier
//! homomorphisms, fixed-point codec laws, and secure-sum correctness.

use ppml_crypto::{
    AdditiveSharing, BigUint, FixedPointCodec, Montgomery, PairwiseMasking, PlainSum, SecureSum,
};
use proptest::prelude::*;

fn big(v: u128) -> BigUint {
    BigUint::from(v)
}

proptest! {
    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let want = a as u128 + b as u128;
        prop_assert_eq!(big(a as u128).add(&big(b as u128)).to_u128(), Some(want));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let want = a as u128 * b as u128;
        prop_assert_eq!(big(a as u128).mul(&big(b as u128)).to_u128(), Some(want));
    }

    #[test]
    fn div_rem_matches_u128(a in any::<u128>(), b in 1u128..) {
        let (q, r) = big(a).div_rem(&big(b));
        prop_assert_eq!(q.to_u128(), Some(a / b));
        prop_assert_eq!(r.to_u128(), Some(a % b));
    }

    #[test]
    fn sub_inverts_add(a in any::<u128>(), b in any::<u128>()) {
        let s = big(a).add(&big(b));
        prop_assert_eq!(s.sub(&big(b)), big(a));
        prop_assert_eq!(s.sub(&big(a)), big(b));
    }

    #[test]
    fn mul_distributes(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (big(a as u128), big(b as u128), big(c as u128));
        let lhs = a.add(&b).mul(&c);
        let rhs = a.mul(&c).add(&b.mul(&c));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn shifts_invert(a in any::<u128>(), n in 0usize..200) {
        prop_assert_eq!(big(a).shl(n).shr(n), big(a));
    }

    #[test]
    fn bytes_roundtrip(a in any::<u128>()) {
        let v = big(a);
        prop_assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
    }

    #[test]
    fn gcd_divides_both(a in 1u128.., b in 1u128..) {
        let g = big(a).gcd(&big(b));
        prop_assert!(big(a).rem(&g).is_zero());
        prop_assert!(big(b).rem(&g).is_zero());
    }

    #[test]
    fn mod_inv_is_inverse_mod_prime(a in 1u64..) {
        // 2^61 - 1 is a Mersenne prime.
        let p = big((1u128 << 61) - 1);
        let a = big(a as u128).rem(&p);
        prop_assume!(!a.is_zero());
        let inv = a.mod_inv(&p).expect("prime modulus, nonzero element");
        prop_assert!(a.mod_mul(&inv, &p).is_one());
    }

    #[test]
    fn montgomery_matches_naive_modpow(base in any::<u64>(), exp in 0u64..4096) {
        let m = big(0xFFFF_FFFF_FFFF_FFC5); // 2^64 - 59, odd prime
        let ctx = Montgomery::new(&m);
        let fast = ctx.mod_pow(&big(base as u128), &big(exp as u128));
        // Reference: square-and-multiply with naive reductions.
        let mut acc = BigUint::one();
        let b = big(base as u128).rem(&m);
        for i in (0..64).rev() {
            acc = acc.mod_mul(&acc, &m);
            if (exp >> i) & 1 == 1 {
                acc = acc.mod_mul(&b, &m);
            }
        }
        prop_assert_eq!(fast, acc);
    }

    #[test]
    // The default codec admits |v| ≤ 2⁶²/2³²/2¹² ≈ 2.6e5.
    fn fixed_point_roundtrip(v in -2e5f64..2e5) {
        let c = FixedPointCodec::default();
        let dec = c.decode_i64(c.encode_i64(v).unwrap());
        prop_assert!((dec - v).abs() <= c.resolution());
        let dec_u = c.decode_u64(c.encode_u64(v).unwrap());
        prop_assert!((dec_u - v).abs() <= c.resolution());
    }

    #[test]
    fn fixed_point_sum_is_homomorphic(vals in proptest::collection::vec(-1e4f64..1e4, 1..32)) {
        let c = FixedPointCodec::default();
        let enc_sum = vals
            .iter()
            .map(|&v| c.encode_u64(v).unwrap())
            .fold(0u64, u64::wrapping_add);
        let want: f64 = vals.iter().sum();
        prop_assert!((c.decode_u64(enc_sum) - want).abs() < vals.len() as f64 * c.resolution());
    }

    #[test]
    fn secure_sums_agree_with_plain(
        inputs in proptest::collection::vec(
            proptest::collection::vec(-1e3f64..1e3, 4),
            1..6,
        ),
        seed in any::<u64>(),
    ) {
        let plain = PlainSum.aggregate(&inputs).unwrap();
        let masked = PairwiseMasking::new(seed).aggregate(&inputs).unwrap();
        let shared = AdditiveSharing::new(seed).aggregate(&inputs).unwrap();
        for i in 0..4 {
            prop_assert!((plain[i] - masked[i]).abs() < 1e-5);
            prop_assert!((plain[i] - shared[i]).abs() < 1e-5);
        }
    }
}

// Paillier property tests are heavier (keygen), so one shared key pair is
// reused across cases via a lazily initialized static.
mod paillier_props {
    use super::*;
    use ppml_crypto::Paillier;
    use rand::{rngs::StdRng, SeedableRng};
    use std::sync::OnceLock;

    fn system() -> &'static Paillier {
        static SYS: OnceLock<Paillier> = OnceLock::new();
        SYS.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(99);
            Paillier::keygen(128, &mut rng).expect("keygen")
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn enc_dec_roundtrip(m in any::<u64>()) {
            let ph = system();
            let mut rng = StdRng::seed_from_u64(m);
            let c = ph.encrypt(&BigUint::from(m), &mut rng).unwrap();
            prop_assert_eq!(ph.decrypt(&c).to_u64(), Some(m));
        }

        #[test]
        fn addition_homomorphism(a in any::<u32>(), b in any::<u32>()) {
            let ph = system();
            let mut rng = StdRng::seed_from_u64(a as u64 ^ ((b as u64) << 32));
            let ca = ph.encrypt(&BigUint::from(a as u64), &mut rng).unwrap();
            let cb = ph.encrypt(&BigUint::from(b as u64), &mut rng).unwrap();
            let sum = ph.decrypt(&ph.add(&ca, &cb));
            prop_assert_eq!(sum.to_u64(), Some(a as u64 + b as u64));
        }

        #[test]
        fn scalar_homomorphism(m in any::<u32>(), k in 0u32..1000) {
            let ph = system();
            let mut rng = StdRng::seed_from_u64(m as u64 + k as u64);
            let c = ph.encrypt(&BigUint::from(m as u64), &mut rng).unwrap();
            let prod = ph.decrypt(&ph.mul_plain(&c, &BigUint::from(k as u64)));
            prop_assert_eq!(prod.to_u64(), Some(m as u64 * k as u64));
        }
    }
}
