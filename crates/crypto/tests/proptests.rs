//! Property tests for the cryptographic substrate: bignum arithmetic
//! against a 128-bit reference, number-theoretic identities, Paillier
//! homomorphisms, fixed-point codec laws, and secure-sum correctness.

use ppml_crypto::{
    AdditiveSharing, BigUint, FixedPointCodec, Montgomery, PairwiseMasking, PlainSum, SecureSum,
};
use ppml_data::check::{run_cases, Gen};

fn big(v: u128) -> BigUint {
    BigUint::from(v)
}

/// Uniform `u128` assembled from two PRNG words.
fn any_u128(g: &mut Gen) -> u128 {
    (u128::from(g.rng().next_u64()) << 64) | u128::from(g.rng().next_u64())
}

#[test]
fn add_matches_u128() {
    run_cases("add_matches_u128", 64, |g, _| {
        let (a, b) = (g.rng().next_u64(), g.rng().next_u64());
        let want = a as u128 + b as u128;
        assert_eq!(big(a as u128).add(&big(b as u128)).to_u128(), Some(want));
    });
}

#[test]
fn mul_matches_u128() {
    run_cases("mul_matches_u128", 64, |g, _| {
        let (a, b) = (g.rng().next_u64(), g.rng().next_u64());
        let want = a as u128 * b as u128;
        assert_eq!(big(a as u128).mul(&big(b as u128)).to_u128(), Some(want));
    });
}

#[test]
fn div_rem_matches_u128() {
    run_cases("div_rem_matches_u128", 64, |g, _| {
        let a = any_u128(g);
        let b = any_u128(g).max(1);
        let (q, r) = big(a).div_rem(&big(b));
        assert_eq!(q.to_u128(), Some(a / b));
        assert_eq!(r.to_u128(), Some(a % b));
    });
}

#[test]
fn sub_inverts_add() {
    run_cases("sub_inverts_add", 64, |g, _| {
        let (a, b) = (any_u128(g), any_u128(g));
        let s = big(a).add(&big(b));
        assert_eq!(s.sub(&big(b)), big(a));
        assert_eq!(s.sub(&big(a)), big(b));
    });
}

#[test]
fn mul_distributes() {
    run_cases("mul_distributes", 64, |g, _| {
        let (a, b, c) = (g.rng().next_u64(), g.rng().next_u64(), g.rng().next_u64());
        let (a, b, c) = (big(a as u128), big(b as u128), big(c as u128));
        let lhs = a.add(&b).mul(&c);
        let rhs = a.mul(&c).add(&b.mul(&c));
        assert_eq!(lhs, rhs);
    });
}

#[test]
fn shifts_invert() {
    run_cases("shifts_invert", 64, |g, _| {
        let a = any_u128(g);
        let n = g.usize_in(0, 200);
        assert_eq!(big(a).shl(n).shr(n), big(a));
    });
}

#[test]
fn bytes_roundtrip() {
    run_cases("bytes_roundtrip", 64, |g, _| {
        let v = big(any_u128(g));
        assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
    });
}

#[test]
fn gcd_divides_both() {
    run_cases("gcd_divides_both", 64, |g, _| {
        let a = any_u128(g).max(1);
        let b = any_u128(g).max(1);
        let g2 = big(a).gcd(&big(b));
        assert!(big(a).rem(&g2).is_zero());
        assert!(big(b).rem(&g2).is_zero());
    });
}

#[test]
fn mod_inv_is_inverse_mod_prime() {
    run_cases("mod_inv_is_inverse_mod_prime", 64, |g, _| {
        // 2^61 - 1 is a Mersenne prime.
        let p = big((1u128 << 61) - 1);
        let a = big(g.rng().next_u64().max(1) as u128).rem(&p);
        if a.is_zero() {
            return; // vanishingly rare draw outside the group
        }
        let inv = a.mod_inv(&p).expect("prime modulus, nonzero element");
        assert!(a.mod_mul(&inv, &p).is_one());
    });
}

#[test]
fn montgomery_matches_naive_modpow() {
    run_cases("montgomery_matches_naive_modpow", 48, |g, _| {
        let base = g.rng().next_u64();
        let exp = g.u64_in(0, 4096);
        let m = big(0xFFFF_FFFF_FFFF_FFC5); // 2^64 - 59, odd prime
        let ctx = Montgomery::new(&m);
        let fast = ctx.mod_pow(&big(base as u128), &big(exp as u128));
        // Reference: square-and-multiply with naive reductions.
        let mut acc = BigUint::one();
        let b = big(base as u128).rem(&m);
        for i in (0..64).rev() {
            acc = acc.mod_mul(&acc, &m);
            if (exp >> i) & 1 == 1 {
                acc = acc.mod_mul(&b, &m);
            }
        }
        assert_eq!(fast, acc);
    });
}

#[test]
fn fixed_point_roundtrip() {
    // The default codec admits |v| ≤ 2⁶²/2³²/2¹² ≈ 2.6e5.
    run_cases("fixed_point_roundtrip", 64, |g, _| {
        let v = g.f64_in(-2e5, 2e5);
        let c = FixedPointCodec::default();
        let dec = c.decode_i64(c.encode_i64(v).unwrap());
        assert!((dec - v).abs() <= c.resolution());
        let dec_u = c.decode_u64(c.encode_u64(v).unwrap());
        assert!((dec_u - v).abs() <= c.resolution());
    });
}

#[test]
fn fixed_point_sum_is_homomorphic() {
    run_cases("fixed_point_sum_is_homomorphic", 64, |g, _| {
        let len = g.usize_in(1, 32);
        let vals = g.vec_f64(-1e4, 1e4, len);
        let c = FixedPointCodec::default();
        let enc_sum = vals
            .iter()
            .map(|&v| c.encode_u64(v).unwrap())
            .fold(0u64, u64::wrapping_add);
        let want: f64 = vals.iter().sum();
        assert!((c.decode_u64(enc_sum) - want).abs() < vals.len() as f64 * c.resolution());
    });
}

#[test]
fn secure_sums_agree_with_plain() {
    run_cases("secure_sums_agree_with_plain", 48, |g, _| {
        let parties = g.usize_in(1, 6);
        let inputs: Vec<Vec<f64>> = (0..parties).map(|_| g.vec_f64(-1e3, 1e3, 4)).collect();
        let seed = g.rng().next_u64();
        let plain = PlainSum.aggregate(&inputs).unwrap();
        let masked = PairwiseMasking::new(seed).aggregate(&inputs).unwrap();
        let shared = AdditiveSharing::new(seed).aggregate(&inputs).unwrap();
        for i in 0..4 {
            assert!((plain[i] - masked[i]).abs() < 1e-5);
            assert!((plain[i] - shared[i]).abs() < 1e-5);
        }
    });
}

#[test]
fn all_backends_agree_cross_backend() {
    use ppml_crypto::{PaillierAggregation, ThresholdSharing};
    use std::sync::OnceLock;
    // One shared Paillier system: keygen dominates the runtime.
    fn paillier() -> &'static PaillierAggregation {
        static SYS: OnceLock<PaillierAggregation> = OnceLock::new();
        SYS.get_or_init(|| PaillierAggregation::keygen(128, 4242).expect("keygen"))
    }
    run_cases("all_backends_agree_cross_backend", 12, |g, _| {
        let parties = g.usize_in(2, 6);
        let len = g.usize_in(1, 6);
        let inputs: Vec<Vec<f64>> = (0..parties).map(|_| g.vec_f64(-1e3, 1e3, len)).collect();
        let seed = g.rng().next_u64();
        let threshold = g.usize_in(2, parties + 1);
        let plain = PlainSum.aggregate(&inputs).unwrap();
        let ts = ThresholdSharing::new(threshold, seed);
        let sums = [
            PairwiseMasking::new(seed).aggregate(&inputs).unwrap(),
            AdditiveSharing::new(seed).aggregate(&inputs).unwrap(),
            ts.aggregate(&inputs).unwrap(),
            paillier().aggregate(&inputs).unwrap(),
        ];
        let tol = parties as f64 * FixedPointCodec::default().resolution();
        for (b, sum) in sums.iter().enumerate() {
            for i in 0..len {
                assert!(
                    (plain[i] - sum[i]).abs() <= tol,
                    "backend {b} coordinate {i}: {} vs plain {}",
                    sum[i],
                    plain[i]
                );
            }
        }
        // Dropout: keep a random survivor subset of exactly `threshold`
        // distinct parties. Reconstruction is exact over the field, so the
        // result must be BIT-identical to the full-roster reference — this
        // is the property the distributed Shamir backend's no-re-key
        // dropout path relies on.
        let start = g.usize_in(0, parties);
        let survivors: Vec<usize> = (0..threshold).map(|k| (start + k) % parties).collect();
        let with_dropout = ts.aggregate_with_dropout(&inputs, &survivors).unwrap();
        for i in 0..len {
            assert_eq!(
                with_dropout[i].to_bits(),
                sums[2][i].to_bits(),
                "dropout reconstruction diverged at coordinate {i} (survivors {survivors:?})"
            );
        }
    });
}

// Paillier property tests are heavier (keygen), so one shared key pair is
// reused across cases via a lazily initialized static.
mod paillier_props {
    use super::*;
    use ppml_crypto::Paillier;
    use ppml_data::rng::Rng64;
    use std::sync::OnceLock;

    fn system() -> &'static Paillier {
        static SYS: OnceLock<Paillier> = OnceLock::new();
        SYS.get_or_init(|| {
            let mut rng = Rng64::new(99);
            Paillier::keygen(128, &mut rng).expect("keygen")
        })
    }

    #[test]
    fn enc_dec_roundtrip() {
        run_cases("enc_dec_roundtrip", 32, |g, _| {
            let m = g.rng().next_u64();
            let ph = system();
            let mut rng = Rng64::new(m);
            let c = ph.encrypt(&BigUint::from(m), &mut rng).unwrap();
            assert_eq!(ph.decrypt(&c).to_u64(), Some(m));
        });
    }

    #[test]
    fn addition_homomorphism() {
        run_cases("addition_homomorphism", 32, |g, _| {
            let a = g.rng().next_u64() as u32;
            let b = g.rng().next_u64() as u32;
            let ph = system();
            let mut rng = Rng64::new(a as u64 ^ ((b as u64) << 32));
            let ca = ph.encrypt(&BigUint::from(a as u64), &mut rng).unwrap();
            let cb = ph.encrypt(&BigUint::from(b as u64), &mut rng).unwrap();
            let sum = ph.decrypt(&ph.add(&ca, &cb));
            assert_eq!(sum.to_u64(), Some(a as u64 + b as u64));
        });
    }

    #[test]
    fn scalar_homomorphism() {
        run_cases("scalar_homomorphism", 32, |g, _| {
            let m = g.rng().next_u64() as u32;
            let k = g.u64_in(0, 1000) as u32;
            let ph = system();
            let mut rng = Rng64::new(m as u64 + k as u64);
            let c = ph.encrypt(&BigUint::from(m as u64), &mut rng).unwrap();
            let prod = ph.decrypt(&ph.mul_plain(&c, &BigUint::from(k as u64)));
            assert_eq!(prod.to_u64(), Some(m as u64 * k as u64));
        });
    }
}
