//! Probabilistic primality testing and random prime generation.

use ppml_data::rng::Rng64;

use crate::{BigUint, Montgomery};

/// Deterministic witnesses sufficient for all 64-bit integers, also used as
/// the first batch for larger candidates before the random rounds.
const SMALL_WITNESSES: &[u64] = &[2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];

/// Small primes for cheap trial division before Miller–Rabin.
const TRIAL_PRIMES: &[u64] = &[
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199,
];

/// Miller–Rabin primality test with `rounds` random bases (on top of a fixed
/// deterministic base set and trial division).
///
/// For candidates below 2⁶⁴ the fixed base set makes the answer
/// deterministic; above that the error probability is at most `4^-rounds`.
pub fn is_probable_prime(n: &BigUint, rounds: usize, rng: &mut Rng64) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    for &p in TRIAL_PRIMES {
        let bp = BigUint::from(p);
        if n == &bp {
            return true;
        }
        if n.rem(&bp).is_zero() {
            return false;
        }
    }
    // Write n-1 = d·2^s with d odd.
    let n_minus_1 = n.sub(&BigUint::one());
    let s = trailing_zeros(&n_minus_1);
    let d = n_minus_1.shr(s);
    let mont = Montgomery::new(n);

    let witness_passes = |a: &BigUint| -> bool {
        let a = a.rem(n);
        if a.is_zero() || a.is_one() || a == n_minus_1 {
            return true;
        }
        let mut x = mont.mod_pow(&a, &d);
        if x.is_one() || x == n_minus_1 {
            return true;
        }
        for _ in 1..s {
            x = mont.mod_mul(&x, &x);
            if x == n_minus_1 {
                return true;
            }
            if x.is_one() {
                // Nontrivial square root of 1 → composite.
                return false;
            }
        }
        false
    };

    for &w in SMALL_WITNESSES {
        if !witness_passes(&BigUint::from(w)) {
            return false;
        }
    }
    if n.bits() <= 64 {
        // Deterministic for 64-bit inputs with the base set above.
        return true;
    }
    for _ in 0..rounds {
        let a = random_below(&n_minus_1, rng).add(&BigUint::one()); // in [1, n-1]
        if !witness_passes(&a) {
            return false;
        }
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits (top and
/// bottom bits forced to 1).
///
/// # Panics
///
/// Panics if `bits < 8` — such primes are pointless for the cryptosystems
/// here and break the "top bit set" construction.
pub fn gen_prime(bits: usize, rng: &mut Rng64) -> BigUint {
    assert!(bits >= 8, "prime size below 8 bits is not supported");
    loop {
        let mut c = random_bits(bits, rng);
        c.set_bit(0); // odd
        c.set_bit(bits - 1); // exact bit length
        if is_probable_prime(&c, 16, rng) {
            return c;
        }
    }
}

/// Uniform value in `[0, bound)` by rejection sampling.
///
/// # Panics
///
/// Panics if `bound` is zero.
pub(crate) fn random_below(bound: &BigUint, rng: &mut Rng64) -> BigUint {
    assert!(!bound.is_zero(), "empty sampling range");
    let bits = bound.bits();
    loop {
        let c = random_bits_at_most(bits, rng);
        if &c < bound {
            return c;
        }
    }
}

/// Random value with exactly the given number of limbs' worth of entropy,
/// truncated to `bits` bits (top bit *not* forced).
fn random_bits_at_most(bits: usize, rng: &mut Rng64) -> BigUint {
    let limbs = bits.div_ceil(64);
    let mut v: Vec<u64> = (0..limbs).map(|_| rng.next_u64()).collect();
    let extra = limbs * 64 - bits;
    if extra > 0 {
        if let Some(top) = v.last_mut() {
            *top >>= extra;
        }
    }
    BigUint::from_limbs(v)
}

/// Random value of at most `bits` bits (uniform over `[0, 2^bits)`).
fn random_bits(bits: usize, rng: &mut Rng64) -> BigUint {
    random_bits_at_most(bits, rng)
}

fn trailing_zeros(n: &BigUint) -> usize {
    debug_assert!(!n.is_zero());
    let mut count = 0;
    for &l in n.limbs() {
        if l == 0 {
            count += 64;
        } else {
            return count + l.trailing_zeros() as usize;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    fn rng() -> Rng64 {
        Rng64::new(42)
    }

    #[test]
    fn small_primes_and_composites() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 97, 101, 10_007, 1_000_000_007] {
            assert!(is_probable_prime(&BigUint::from(p), 8, &mut r), "{p}");
        }
        for c in [0u64, 1, 4, 100, 561 /* Carmichael */, 1_000_000_008] {
            assert!(!is_probable_prime(&BigUint::from(c), 8, &mut r), "{c}");
        }
    }

    #[test]
    fn strong_pseudoprimes_rejected() {
        let mut r = rng();
        // 3215031751 is the smallest strong pseudoprime to bases 2,3,5,7 —
        // must still be caught by the wider base set.
        assert!(!is_probable_prime(
            &BigUint::from(3_215_031_751u64),
            8,
            &mut r
        ));
        // 2^67 - 1 = 193707721 × 761838257287 (famous Mersenne composite).
        let m67 = BigUint::one().shl(67).sub(&BigUint::one());
        assert!(!is_probable_prime(&m67, 8, &mut r));
    }

    #[test]
    fn mersenne_prime_accepted() {
        let mut r = rng();
        let m127 = BigUint::one().shl(127).sub(&BigUint::one());
        assert!(is_probable_prime(&m127, 8, &mut r));
    }

    #[test]
    fn generated_primes_have_exact_bit_length() {
        let mut r = rng();
        for bits in [32usize, 64, 128] {
            let p = gen_prime(bits, &mut r);
            assert_eq!(p.bits(), bits, "{p}");
            assert!(!p.is_even());
            assert!(is_probable_prime(&p, 8, &mut r));
        }
    }

    #[test]
    fn random_below_respects_bound() {
        let mut r = rng();
        let bound = BigUint::from(1000u64);
        for _ in 0..200 {
            assert!(random_below(&bound, &mut r) < bound);
        }
    }

    #[test]
    fn trailing_zeros_counts() {
        assert_eq!(trailing_zeros(&BigUint::from(8u64)), 3);
        assert_eq!(trailing_zeros(&BigUint::one().shl(100)), 100);
        assert_eq!(trailing_zeros(&BigUint::from(7u64)), 0);
    }
}
