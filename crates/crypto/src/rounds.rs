//! The §V protocols as message flows over a real transport.
//!
//! [`crate::PairwiseMasking`] and [`crate::ThresholdSharing`] route their
//! messages in process: every party's masks and shares are plain function
//! arguments. This module re-expresses the same rounds as frames crossing a
//! [`Transport`] — the deployment shape of the paper's Fig. 1, where each
//! mapper is its own process and the only way to move a mask is to send it.
//!
//! Numerically nothing changes: the fixed-point sums are mask- and
//! share-independent, so a round over a lossy loopback fabric or real TCP
//! reconstructs exactly the value the in-process drivers produce. The tests
//! exercise precisely that, with injected frame drops, duplicates and
//! reordering recovered by the [`Courier`]'s retransmission layer.
//!
//! Two flows are provided:
//!
//! * [`PairwiseRound`] — the paper's own protocol: a full-mesh mask
//!   exchange ([`Message::MaskExchange`]) followed by one
//!   [`Message::MaskedShare`] submission per party, gathered and combined by
//!   a reducer ([`gather_masked_sum`]).
//! * [`ThresholdRound`] — the dropout-tolerant variant: Shamir share
//!   distribution ([`Message::Shares`]), local field-summing, and
//!   reconstruction from any `t` survivors
//!   ([`reconstruct_threshold_sum`]); parties may crash *after*
//!   distributing without losing the round, mirroring
//!   [`crate::ThresholdSharing::aggregate_with_dropout`].

use std::time::Duration;

use ppml_transport::{Courier, Message, PartyId, Transport, TransportError};

use crate::secure_sum::validate;
use crate::{CryptoError, FixedPointCodec, MaskedShare, MaskingParty, ThresholdSharing};

/// Failures of a transport-backed protocol round.
#[derive(Debug)]
pub enum RoundError {
    /// The cryptographic layer rejected something (range, share shapes …).
    Crypto(CryptoError),
    /// The fabric failed (timeout after retries, closed hub, socket error).
    Transport(TransportError),
    /// A well-formed frame arrived that the protocol state machine cannot
    /// accept (wrong iteration, unknown sender, duplicate role …).
    Protocol(&'static str),
}

impl std::fmt::Display for RoundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoundError::Crypto(e) => write!(f, "crypto failure in round: {e}"),
            RoundError::Transport(e) => write!(f, "transport failure in round: {e}"),
            RoundError::Protocol(reason) => write!(f, "protocol violation: {reason}"),
        }
    }
}

impl std::error::Error for RoundError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RoundError::Crypto(e) => Some(e),
            RoundError::Transport(e) => Some(e),
            RoundError::Protocol(_) => None,
        }
    }
}

impl From<CryptoError> for RoundError {
    fn from(e: CryptoError) -> Self {
        RoundError::Crypto(e)
    }
}

impl From<TransportError> for RoundError {
    fn from(e: TransportError) -> Self {
        RoundError::Transport(e)
    }
}

/// Result alias for round flows.
pub type Result<T> = std::result::Result<T, RoundError>;

/// Per-party mask seed, identical to the derivation inside
/// [`crate::PairwiseMasking`] so distributed and in-process runs share mask
/// streams (and therefore byte-identical masked frames under one seed).
pub fn party_seed(base: u64, party: usize) -> u64 {
    base.wrapping_add(party as u64).wrapping_mul(0x9E3779B9)
}

/// One party's endpoint in a transport-backed pairwise-masking round.
pub struct PairwiseRound<T: Transport> {
    courier: Courier<T>,
    parties: usize,
    base_seed: u64,
    codec: FixedPointCodec,
    timeout: Duration,
}

impl<T: Transport> PairwiseRound<T> {
    /// Wraps `courier` as one of `parties` protocol parties (this party's id
    /// is the courier's). `base_seed` must be shared by all parties.
    pub fn new(courier: Courier<T>, parties: usize, base_seed: u64) -> Self {
        PairwiseRound {
            courier,
            parties,
            base_seed,
            codec: FixedPointCodec::default(),
            timeout: Duration::from_secs(5),
        }
    }

    /// Overrides the fixed-point codec (all parties must agree).
    pub fn with_codec(mut self, codec: FixedPointCodec) -> Self {
        self.codec = codec;
        self
    }

    /// Overrides the per-message receive window.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// This endpoint's party index.
    pub fn party(&self) -> usize {
        self.courier.party() as usize
    }

    /// Access to the underlying courier (stats, manual sends).
    pub fn courier_mut(&mut self) -> &mut Courier<T> {
        &mut self.courier
    }

    /// Unwraps the round back into its courier.
    pub fn into_courier(self) -> Courier<T> {
        self.courier
    }

    /// Runs the full mask exchange for `iteration` — steps 1–3 of the §V
    /// protocol, with the "sends them to the other `M−1` mappers" step as
    /// real frames — and returns the reducer-bound masked share (step 4).
    ///
    /// # Errors
    ///
    /// Transport errors (after the courier's retries), crypto range errors,
    /// or [`RoundError::Protocol`] on frames that do not belong to this
    /// round.
    pub fn masked_share(&mut self, iteration: u64, values: &[f64]) -> Result<MaskedShare> {
        let me = self.party();
        let masker = MaskingParty::new(
            me,
            self.parties,
            values.len(),
            party_seed(self.base_seed, me),
            self.codec,
        );
        let peers = masker.peers();
        for (k, &peer) in peers.iter().enumerate() {
            self.courier.send_reliable(
                peer as PartyId,
                &Message::MaskExchange {
                    iteration,
                    masks: masker.outgoing(k).to_vec(),
                },
            )?;
        }
        let mut received: Vec<Option<Vec<u64>>> = vec![None; peers.len()];
        let mut missing = peers.len();
        while missing > 0 {
            let env = self.courier.recv(self.timeout)?;
            match env.msg {
                Message::MaskExchange {
                    iteration: it,
                    masks,
                } if it == iteration => {
                    let slot = peers
                        .iter()
                        .position(|&p| p == env.from as usize)
                        .ok_or(RoundError::Protocol("mask from a party outside the round"))?;
                    if received[slot].replace(masks).is_some() {
                        return Err(RoundError::Protocol("two mask vectors from one peer"));
                    }
                    missing -= 1;
                }
                Message::MaskExchange { .. } => {
                    return Err(RoundError::Protocol("mask for a different iteration"))
                }
                _ => return Err(RoundError::Protocol("unexpected frame in mask exchange")),
            }
        }
        let refs: Vec<&[u64]> = received
            .iter()
            .map(|m| m.as_deref().expect("all peers accounted for"))
            .collect();
        Ok(masker.masked_share(values, &refs)?)
    }

    /// Submits a masked share to the reducer (step 4's network half).
    /// Returns the bytes put on the wire, retransmissions included.
    ///
    /// # Errors
    ///
    /// Transport errors after the retry budget.
    pub fn submit(
        &mut self,
        reducer: PartyId,
        iteration: u64,
        share: &MaskedShare,
    ) -> Result<usize> {
        Ok(self.courier.send_reliable(
            reducer,
            &Message::MaskedShare {
                iteration,
                epoch: 0,
                party: share.party as u32,
                payload: share.payload.clone(),
            },
        )?)
    }
}

/// Reducer side of the pairwise round: waits until `total` distinct shares
/// for `iteration` are present and sums them (step 5 — masks cancel).
///
/// `shares` seeds the collection with locally produced shares (a reducer
/// that is itself a party passes its own); the rest arrive as
/// [`Message::MaskedShare`] frames.
///
/// # Errors
///
/// Transport errors, crypto shape errors, or [`RoundError::Protocol`] on
/// frames that do not belong to the round.
pub fn gather_masked_sum<T: Transport>(
    courier: &mut Courier<T>,
    iteration: u64,
    mut shares: Vec<MaskedShare>,
    total: usize,
    codec: FixedPointCodec,
    timeout: Duration,
) -> Result<Vec<f64>> {
    while shares.len() < total {
        let env = courier.recv(timeout)?;
        match env.msg {
            Message::MaskedShare {
                iteration: it,
                party,
                payload,
                ..
            } if it == iteration => {
                if shares.iter().any(|s| s.party == party as usize) {
                    return Err(RoundError::Protocol("two shares from one party"));
                }
                shares.push(MaskedShare {
                    party: party as usize,
                    payload,
                });
            }
            Message::MaskedShare { .. } => {
                return Err(RoundError::Protocol("share for a different iteration"))
            }
            _ => return Err(RoundError::Protocol("unexpected frame in share gather")),
        }
    }
    Ok(MaskingParty::combine(&shares, codec)?)
}

/// One party's endpoint in a transport-backed threshold-sharing round.
pub struct ThresholdRound<T: Transport> {
    courier: Courier<T>,
    parties: usize,
    scheme: ThresholdSharing,
    base_seed: u64,
    timeout: Duration,
}

impl<T: Transport> ThresholdRound<T> {
    /// Wraps `courier` as one of `parties` parties with reconstruction
    /// threshold `threshold`. `base_seed` must be shared (it only derives
    /// the *local* coefficient streams; any seeds reconstruct the same sum).
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0` (as [`ThresholdSharing::new`]).
    pub fn new(courier: Courier<T>, parties: usize, threshold: usize, base_seed: u64) -> Self {
        ThresholdRound {
            courier,
            parties,
            scheme: ThresholdSharing::new(threshold, base_seed),
            base_seed,
            timeout: Duration::from_secs(5),
        }
    }

    /// Overrides the per-message receive window.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// This endpoint's party index.
    pub fn party(&self) -> usize {
        self.courier.party() as usize
    }

    /// Access to the underlying courier.
    pub fn courier_mut(&mut self) -> &mut Courier<T> {
        &mut self.courier
    }

    /// Phase 1: Shamir-splits `values`, ships share vector `j` to party `j`
    /// ([`Message::Shares`]), and field-adds every share vector received
    /// from the other parties. Returns this party's held sum vector — a
    /// share of the *total*, by linearity.
    ///
    /// After this phase completes, this party's input is fully distributed:
    /// the caller may crash before [`ThresholdRound::submit`] and the round
    /// still reconstructs, as long as `threshold` parties survive.
    ///
    /// # Errors
    ///
    /// Transport, crypto, or protocol errors as [`PairwiseRound::masked_share`].
    pub fn distribute_and_sum(&mut self, iteration: u64, values: &[f64]) -> Result<Vec<u64>> {
        let me = self.party();
        let n = self.parties;
        let t = self.scheme.threshold();
        let len = values.len();
        let mut rng = ppml_data::rng::Rng64::new(party_seed(self.base_seed ^ 0x7582, me));
        // dest[j][i] = party j's share of this party's coordinate i.
        let mut dest = vec![vec![0u64; len]; n];
        for (i, &v) in values.iter().enumerate() {
            let shares = crate::shamir::split(self.scheme.encode(v)?, t, n, &mut rng)?;
            for (j, s) in shares.into_iter().enumerate() {
                dest[j][i] = s.y;
            }
        }
        let mut held = std::mem::take(&mut dest[me]);
        for (j, values) in dest.into_iter().enumerate() {
            if j != me {
                self.courier
                    .send_reliable(j as PartyId, &Message::Shares { iteration, values })?;
            }
        }
        let mut seen = vec![false; n];
        seen[me] = true;
        let mut missing = n - 1;
        while missing > 0 {
            let env = self.courier.recv(self.timeout)?;
            match env.msg {
                Message::Shares {
                    iteration: it,
                    values,
                } if it == iteration => {
                    let from = env.from as usize;
                    if from >= n || seen[from] {
                        return Err(RoundError::Protocol("bad or duplicate share sender"));
                    }
                    if values.len() != len {
                        return Err(RoundError::Protocol("share vector length mismatch"));
                    }
                    seen[from] = true;
                    for (h, s) in held.iter_mut().zip(values) {
                        *h = field_add(*h, s);
                    }
                    missing -= 1;
                }
                Message::Shares { .. } => {
                    return Err(RoundError::Protocol("shares for a different iteration"))
                }
                _ => {
                    return Err(RoundError::Protocol(
                        "unexpected frame in share distribution",
                    ))
                }
            }
        }
        Ok(held)
    }

    /// Phase 2: submits the held sum vector to the reducer as a
    /// [`Message::MaskedShare`] (the "my share of the total" submission).
    ///
    /// The submission is deliberately *unacknowledged*: the reducer stops
    /// listening once `threshold` parties have reported, so a surplus
    /// submitter waiting for an ack would wait forever. Losing a
    /// submission is indistinguishable from this party dropping out after
    /// distribution — precisely the failure the scheme absorbs.
    ///
    /// # Errors
    ///
    /// Transport errors on the single transmission.
    pub fn submit(&mut self, reducer: PartyId, iteration: u64, held: Vec<u64>) -> Result<usize> {
        let me = self.party() as u32;
        Ok(self.courier.send_unreliable(
            reducer,
            &Message::MaskedShare {
                iteration,
                epoch: 0,
                party: me,
                payload: held,
            },
        )?)
    }
}

/// Reducer side of the threshold round: collects submissions until
/// `threshold` distinct parties have reported, then Lagrange-reconstructs
/// every coordinate of the total. Parties that crashed between distribution
/// and submission are simply never heard from — their *inputs* are still in
/// the sum.
///
/// # Errors
///
/// Transport errors (including a timeout when fewer than `threshold`
/// parties survive), reconstruction errors, protocol violations.
pub fn reconstruct_threshold_sum<T: Transport>(
    courier: &mut Courier<T>,
    iteration: u64,
    threshold: usize,
    len: usize,
    scheme: &ThresholdSharing,
    timeout: Duration,
) -> Result<Vec<f64>> {
    let mut submissions: Vec<(usize, Vec<u64>)> = Vec::with_capacity(threshold);
    while submissions.len() < threshold {
        let env = courier.recv(timeout)?;
        match env.msg {
            Message::MaskedShare {
                iteration: it,
                party,
                payload,
                ..
            } if it == iteration => {
                let party = party as usize;
                if submissions.iter().any(|(p, _)| *p == party) {
                    return Err(RoundError::Protocol("two submissions from one party"));
                }
                if payload.len() != len {
                    return Err(RoundError::Protocol("submission length mismatch"));
                }
                submissions.push((party, payload));
            }
            Message::MaskedShare { .. } => {
                return Err(RoundError::Protocol("submission for a different iteration"))
            }
            _ => return Err(RoundError::Protocol("unexpected frame in reconstruction")),
        }
    }
    (0..len)
        .map(|i| {
            let column: Vec<crate::shamir::Share> = submissions
                .iter()
                .map(|(p, held)| crate::shamir::Share {
                    x: *p as u64 + 1,
                    y: held[i],
                })
                .collect();
            Ok(scheme.decode(crate::shamir::reconstruct(&column)?))
        })
        .collect()
}

/// Field addition mod `2⁶¹ − 1` (widened to avoid overflow).
fn field_add(a: u64, b: u64) -> u64 {
    ((a as u128 + b as u128) % crate::shamir::MODULUS as u128) as u64
}

/// Convenience: validates inputs like the in-process drivers do, for tests
/// that feed both paths the same vectors.
pub fn validate_inputs(inputs: &[Vec<f64>]) -> Result<usize> {
    Ok(validate(inputs)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PairwiseMasking, SecureSum};
    use ppml_transport::{LinkFilter, LoopbackHub, NetFaultPlan, RetryPolicy};

    const TICK: Duration = Duration::from_secs(2);

    fn inputs(m: usize) -> Vec<Vec<f64>> {
        (0..m)
            .map(|p| (0..4).map(|i| (p * 4 + i) as f64 * 0.375 - 2.0).collect())
            .collect()
    }

    fn expected_sum(inputs: &[Vec<f64>]) -> Vec<f64> {
        let len = inputs[0].len();
        (0..len)
            .map(|i| inputs.iter().map(|v| v[i]).sum())
            .collect()
    }

    /// Runs a full pairwise round over a hub: parties 1..m exchange+submit,
    /// party 0 participates and also reduces.
    fn run_pairwise(m: usize, plan: NetFaultPlan, seed: u64) -> Vec<f64> {
        let hub = LoopbackHub::with_faults(m, plan);
        let data = inputs(m);
        let mut handles = Vec::new();
        for (p, values) in data.iter().enumerate().skip(1) {
            let courier = Courier::new(hub.endpoint(p as PartyId), RetryPolicy::fast_local());
            let values = values.clone();
            handles.push(std::thread::spawn(move || {
                let mut round = PairwiseRound::new(courier, m, seed).with_timeout(TICK);
                let share = round.masked_share(7, &values).expect("mask exchange");
                round.submit(0, 7, &share).expect("submit");
            }));
        }
        let courier = Courier::new(hub.endpoint(0), RetryPolicy::fast_local());
        let mut round = PairwiseRound::new(courier, m, seed).with_timeout(TICK);
        let own = round
            .masked_share(7, &data[0])
            .expect("reducer's own share");
        let sum = gather_masked_sum(
            round.courier_mut(),
            7,
            vec![own],
            m,
            FixedPointCodec::default(),
            TICK,
        )
        .expect("gather");
        for h in handles {
            h.join().expect("party thread");
        }
        sum
    }

    #[test]
    fn pairwise_round_matches_in_process_driver() {
        let m = 4;
        let sum = run_pairwise(m, NetFaultPlan::none(), 99);
        let reference = PairwiseMasking::new(99).aggregate(&inputs(m)).unwrap();
        // Same seed → same mask streams → identical fixed-point arithmetic.
        assert_eq!(sum, reference);
    }

    #[test]
    fn pairwise_round_survives_dropped_and_duplicated_frames() {
        // Destroy the first copy of several mask frames (kind 5) and one
        // share frame (kind 6), duplicate another mask frame; the courier
        // retransmits and dedupes, and the sum is unchanged.
        let plan = NetFaultPlan::none()
            .drop_frames(LinkFilter::any().kind(5), 3)
            .duplicate_frames(LinkFilter::any().kind(5), 2)
            .drop_frames(LinkFilter::any().kind(6), 1);
        let m = 4;
        let clean = run_pairwise(m, NetFaultPlan::none(), 3);
        let lossy = run_pairwise(m, plan, 3);
        assert_eq!(clean, lossy);
        let want = expected_sum(&inputs(m));
        for (a, b) in lossy.iter().zip(&want) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn pairwise_round_tolerates_reordering() {
        let plan = NetFaultPlan::none().delay_frames(LinkFilter::any().kind(5), 2, 1);
        let sum = run_pairwise(3, plan, 5);
        let want = expected_sum(&inputs(3));
        for (a, b) in sum.iter().zip(&want) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn pairwise_round_is_deterministic_per_seed() {
        let a = run_pairwise(3, NetFaultPlan::none(), 11);
        let b = run_pairwise(3, NetFaultPlan::none(), 11);
        assert_eq!(a, b);
    }

    /// Threshold round with parties in `crash` dying after distribution.
    fn run_threshold(m: usize, t: usize, crash: &[usize], plan: NetFaultPlan) -> Vec<f64> {
        let hub = LoopbackHub::with_faults(m, plan);
        let data = inputs(m);
        let len = data[0].len();
        let mut handles = Vec::new();
        for (p, values) in data.iter().enumerate().skip(1) {
            let courier = Courier::new(hub.endpoint(p as PartyId), RetryPolicy::fast_local());
            let values = values.clone();
            let dies = crash.contains(&p);
            handles.push(std::thread::spawn(move || {
                let mut round = ThresholdRound::new(courier, m, t, 42).with_timeout(TICK);
                let held = round.distribute_and_sum(3, &values).expect("distribute");
                // A crash *after* distribution loses the submission only.
                if !dies {
                    round.submit(0, 3, held).expect("submit");
                }
            }));
        }
        let courier = Courier::new(hub.endpoint(0), RetryPolicy::fast_local());
        let mut round = ThresholdRound::new(courier, m, t, 42).with_timeout(TICK);
        let held = round
            .distribute_and_sum(3, &data[0])
            .expect("reducer distribute");
        round.submit(0, 3, held).expect("reducer self-submission");
        let scheme = ThresholdSharing::new(t, 42);
        let sum = reconstruct_threshold_sum(round.courier_mut(), 3, t, len, &scheme, TICK)
            .expect("reconstruct");
        for h in handles {
            h.join().expect("party thread");
        }
        sum
    }

    #[test]
    fn threshold_round_reconstructs_full_sum() {
        let m = 4;
        let sum = run_threshold(m, 3, &[], NetFaultPlan::none());
        let want = expected_sum(&inputs(m));
        for (a, b) in sum.iter().zip(&want) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn threshold_round_recovers_from_dropout_after_distribution() {
        // Party 2 distributes its shares, then vanishes before submitting.
        // Its input must still be inside the reconstructed sum — the whole
        // point of the scheme, now demonstrated over a transport.
        let m = 4;
        let sum = run_threshold(m, 3, &[2], NetFaultPlan::none());
        let want = expected_sum(&inputs(m));
        for (a, b) in sum.iter().zip(&want) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        // And it agrees with the in-process dropout simulation exactly.
        let reference = ThresholdSharing::new(3, 42)
            .aggregate_with_dropout(&inputs(m), &[0, 1, 3])
            .unwrap();
        assert_eq!(sum, reference);
    }

    #[test]
    fn threshold_round_survives_lossy_links() {
        let plan = NetFaultPlan::none()
            .drop_frames(LinkFilter::any().kind(8), 2)
            .duplicate_frames(LinkFilter::any().kind(8), 1);
        let m = 4;
        let sum = run_threshold(m, 2, &[1], plan);
        let want = expected_sum(&inputs(m));
        for (a, b) in sum.iter().zip(&want) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
