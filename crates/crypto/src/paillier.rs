//! The Paillier additively homomorphic cryptosystem.
//!
//! Used by [`crate::PaillierAggregation`] as the "cryptographic operations
//! at the Reducer" backend: mappers encrypt their fixed-point model
//! coordinates, the reducer multiplies ciphertexts (= adds plaintexts), and
//! only the key authority decrypts the aggregate.
//!
//! Implementation notes: the standard `g = n + 1` simplification makes
//! encryption a single modular exponentiation (`(1 + m·n)·rⁿ mod n²`) and
//! reduces the private scalar to `μ = λ⁻¹ mod n`.

use ppml_data::rng::Rng64;

use crate::prime::{gen_prime, random_below};
use crate::{BigUint, CryptoError, Montgomery, Result};

/// Public encryption key: the modulus `n` plus cached derived values.
#[derive(Debug, Clone)]
pub struct PaillierPublicKey {
    n: BigUint,
    n_squared: BigUint,
    /// Montgomery context over `n²` (odd since `n` is a product of odd
    /// primes), shared by encryption and homomorphic ops.
    mont: Montgomery,
}

impl PaillierPublicKey {
    /// The modulus `n`; plaintexts live in `Z_n`.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// `n²`; ciphertexts live in `Z_{n²}*`.
    pub fn modulus_squared(&self) -> &BigUint {
        &self.n_squared
    }

    /// Key size in bits (of `n`).
    pub fn bits(&self) -> usize {
        self.n.bits()
    }

    /// Homomorphic addition with only the public half:
    /// `Dec(add(c1, c2)) = m1 + m2 mod n`. An aggregator that must never
    /// be able to decrypt holds a [`PaillierPublicKey`] and folds
    /// ciphertexts with this.
    pub fn add(&self, c1: &PaillierCiphertext, c2: &PaillierCiphertext) -> PaillierCiphertext {
        PaillierCiphertext(self.mont.mod_mul(&c1.0, &c2.0))
    }

    /// The identity element for [`PaillierPublicKey::add`] (an encryption
    /// of zero with trivial randomness). Useful as a fold seed.
    pub fn neutral(&self) -> PaillierCiphertext {
        PaillierCiphertext(BigUint::one())
    }

    /// Serialized ciphertext width in bytes: every element of `Z_{n²}`
    /// fits in this many big-endian bytes, so wire formats can use a
    /// fixed-width encoding derived from the key alone.
    pub fn ciphertext_width(&self) -> usize {
        self.n_squared.bits().div_ceil(8)
    }

    /// Deserializes a big-endian ciphertext previously produced by
    /// [`PaillierCiphertext::as_biguint`] (leading zero padding allowed).
    ///
    /// # Errors
    ///
    /// [`CryptoError::NotInGroup`] when the value is not below `n²`.
    pub fn ciphertext_from_bytes(&self, bytes: &[u8]) -> Result<PaillierCiphertext> {
        let v = BigUint::from_bytes_be(bytes);
        if v >= self.n_squared {
            return Err(CryptoError::NotInGroup);
        }
        Ok(PaillierCiphertext(v))
    }
}

/// Private decryption key.
#[derive(Debug, Clone)]
pub struct PaillierPrivateKey {
    lambda: BigUint,
    mu: BigUint,
}

/// A Paillier ciphertext (an element of `Z_{n²}*`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaillierCiphertext(BigUint);

impl PaillierCiphertext {
    /// Borrows the raw group element.
    pub fn as_biguint(&self) -> &BigUint {
        &self.0
    }

    /// Serialized size in bytes (for communication accounting).
    pub fn byte_len(&self) -> usize {
        self.0.to_bytes_be().len()
    }
}

/// The Paillier cryptosystem with a fixed key pair.
///
/// # Example
///
/// ```
/// use ppml_crypto::{BigUint, Paillier};
/// use ppml_data::rng::Rng64;
///
/// # fn main() -> Result<(), ppml_crypto::CryptoError> {
/// let mut rng = Rng64::new(1);
/// let ph = Paillier::keygen(256, &mut rng)?;
/// let c1 = ph.encrypt(&BigUint::from(20u64), &mut rng)?;
/// let c2 = ph.encrypt(&BigUint::from(22u64), &mut rng)?;
/// let sum = ph.add(&c1, &c2);
/// assert_eq!(ph.decrypt(&sum).to_u64(), Some(42));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Paillier {
    public: PaillierPublicKey,
    private: PaillierPrivateKey,
}

impl Paillier {
    /// Minimum accepted modulus size. Far below cryptographic strength —
    /// the floor only guards against degenerate arithmetic in tests.
    pub const MIN_BITS: usize = 64;

    /// Generates a fresh key pair with an `bits`-bit modulus.
    ///
    /// # Errors
    ///
    /// [`CryptoError::KeyTooSmall`] when `bits < Self::MIN_BITS`.
    pub fn keygen(bits: usize, rng: &mut Rng64) -> Result<Self> {
        if bits < Self::MIN_BITS {
            return Err(CryptoError::KeyTooSmall {
                bits,
                min: Self::MIN_BITS,
            });
        }
        let half = bits / 2;
        let (p, q) = loop {
            let p = gen_prime(half, rng);
            let q = gen_prime(bits - half, rng);
            if p != q {
                break (p, q);
            }
        };
        let n = p.mul(&q);
        let n_squared = n.mul(&n);
        let one = BigUint::one();
        let lambda = p.sub(&one).lcm(&q.sub(&one));
        // With g = n + 1: μ = λ⁻¹ mod n. λ is coprime to n for distinct
        // same-size primes, so the inverse exists.
        let mu = lambda.mod_inv(&n).ok_or(CryptoError::NotInvertible)?;
        Ok(Paillier {
            public: PaillierPublicKey {
                mont: Montgomery::new(&n_squared),
                n,
                n_squared,
            },
            private: PaillierPrivateKey { lambda, mu },
        })
    }

    /// Borrows the public key.
    pub fn public_key(&self) -> &PaillierPublicKey {
        &self.public
    }

    /// Encrypts a plaintext `m ∈ Z_n`.
    ///
    /// # Errors
    ///
    /// [`CryptoError::NotInGroup`] when `m ≥ n`.
    pub fn encrypt(&self, m: &BigUint, rng: &mut Rng64) -> Result<PaillierCiphertext> {
        let pk = &self.public;
        if m >= &pk.n {
            return Err(CryptoError::NotInGroup);
        }
        // r ∈ [1, n) with gcd(r, n) = 1 (overwhelmingly likely first draw).
        let r = loop {
            let r = random_below(&pk.n, rng);
            if !r.is_zero() && r.gcd(&pk.n).is_one() {
                break r;
            }
        };
        // c = (1 + m·n) · rⁿ mod n²
        let gm = BigUint::one().add(&m.mul(&pk.n)).rem(&pk.n_squared);
        let rn = pk.mont.mod_pow(&r, &pk.n);
        Ok(PaillierCiphertext(pk.mont.mod_mul(&gm, &rn)))
    }

    /// Decrypts a ciphertext.
    ///
    /// Garbage in, garbage out: elements outside `Z_{n²}*` decrypt to an
    /// unspecified plaintext rather than erroring, as in every practical
    /// Paillier implementation.
    pub fn decrypt(&self, c: &PaillierCiphertext) -> BigUint {
        let pk = &self.public;
        let sk = &self.private;
        let x = pk.mont.mod_pow(&c.0, &sk.lambda);
        // L(x) = (x - 1) / n
        let l = x.sub(&BigUint::one()).div_rem(&pk.n).0;
        l.mod_mul(&sk.mu, &pk.n)
    }

    /// Homomorphic addition: `Dec(add(c1, c2)) = m1 + m2 mod n`.
    pub fn add(&self, c1: &PaillierCiphertext, c2: &PaillierCiphertext) -> PaillierCiphertext {
        self.public.add(c1, c2)
    }

    /// Homomorphic plaintext multiplication: `Dec(mul_plain(c, k)) = k·m mod n`.
    pub fn mul_plain(&self, c: &PaillierCiphertext, k: &BigUint) -> PaillierCiphertext {
        PaillierCiphertext(self.public.mont.mod_pow(&c.0, k))
    }

    /// The encryption of zero with trivial randomness — identity for
    /// [`Paillier::add`]. Useful as a fold seed.
    pub fn neutral(&self) -> PaillierCiphertext {
        self.public.neutral()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn setup() -> (Paillier, Rng64) {
        let mut rng = Rng64::new(7);
        let ph = Paillier::keygen(128, &mut rng).unwrap();
        (ph, rng)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (ph, mut rng) = setup();
        for m in [0u64, 1, 42, 1_000_000, u32::MAX as u64] {
            let c = ph.encrypt(&BigUint::from(m), &mut rng).unwrap();
            assert_eq!(ph.decrypt(&c).to_u64(), Some(m), "m = {m}");
        }
    }

    #[test]
    fn encryption_is_probabilistic() {
        let (ph, mut rng) = setup();
        let m = BigUint::from(5u64);
        let c1 = ph.encrypt(&m, &mut rng).unwrap();
        let c2 = ph.encrypt(&m, &mut rng).unwrap();
        assert_ne!(c1, c2, "two encryptions of the same plaintext collided");
        assert_eq!(ph.decrypt(&c1), ph.decrypt(&c2));
    }

    #[test]
    fn homomorphic_addition() {
        let (ph, mut rng) = setup();
        let c1 = ph.encrypt(&BigUint::from(123u64), &mut rng).unwrap();
        let c2 = ph.encrypt(&BigUint::from(877u64), &mut rng).unwrap();
        assert_eq!(ph.decrypt(&ph.add(&c1, &c2)).to_u64(), Some(1000));
    }

    #[test]
    fn homomorphic_scalar_multiplication() {
        let (ph, mut rng) = setup();
        let c = ph.encrypt(&BigUint::from(21u64), &mut rng).unwrap();
        let c2 = ph.mul_plain(&c, &BigUint::from(2u64));
        assert_eq!(ph.decrypt(&c2).to_u64(), Some(42));
    }

    #[test]
    fn neutral_is_identity() {
        let (ph, mut rng) = setup();
        let c = ph.encrypt(&BigUint::from(9u64), &mut rng).unwrap();
        let c2 = ph.add(&c, &ph.neutral());
        assert_eq!(ph.decrypt(&c2).to_u64(), Some(9));
    }

    #[test]
    fn public_key_alone_can_aggregate() {
        // An aggregator holding only the public half folds ciphertexts and
        // re-parses them from fixed-width bytes, without decryption ability.
        let (ph, mut rng) = setup();
        let pk = ph.public_key().clone();
        let w = pk.ciphertext_width();
        let mut acc = pk.neutral();
        for m in [11u64, 22, 33] {
            let c = ph.encrypt(&BigUint::from(m), &mut rng).unwrap();
            let mut bytes = c.as_biguint().to_bytes_be();
            assert!(bytes.len() <= w, "ciphertext exceeds declared width");
            // Left-pad to the fixed wire width, as the transport would.
            let mut padded = vec![0u8; w - bytes.len()];
            padded.append(&mut bytes);
            let parsed = pk.ciphertext_from_bytes(&padded).unwrap();
            assert_eq!(&parsed, &c);
            acc = pk.add(&acc, &parsed);
        }
        assert_eq!(ph.decrypt(&acc).to_u64(), Some(66));
    }

    #[test]
    fn ciphertext_from_bytes_rejects_out_of_group() {
        let (ph, _) = setup();
        let pk = ph.public_key();
        let too_big = pk.modulus_squared().to_bytes_be();
        assert!(matches!(
            pk.ciphertext_from_bytes(&too_big),
            Err(CryptoError::NotInGroup)
        ));
    }

    #[test]
    fn addition_wraps_mod_n() {
        let (ph, mut rng) = setup();
        let n = ph.public_key().modulus().clone();
        let near = n.sub(&BigUint::one());
        let c1 = ph.encrypt(&near, &mut rng).unwrap();
        let c2 = ph.encrypt(&BigUint::from(2u64), &mut rng).unwrap();
        // (n-1) + 2 ≡ 1 mod n
        assert_eq!(ph.decrypt(&ph.add(&c1, &c2)).to_u64(), Some(1));
    }

    #[test]
    fn rejects_oversized_plaintext() {
        let (ph, mut rng) = setup();
        let too_big = ph.public_key().modulus().clone();
        assert!(matches!(
            ph.encrypt(&too_big, &mut rng),
            Err(CryptoError::NotInGroup)
        ));
    }

    #[test]
    fn rejects_tiny_keys() {
        let mut rng = Rng64::new(1);
        assert!(matches!(
            Paillier::keygen(32, &mut rng),
            Err(CryptoError::KeyTooSmall { .. })
        ));
    }

    #[test]
    fn key_sizes_reported() {
        let (ph, _) = setup();
        let b = ph.public_key().bits();
        assert!((120..=128).contains(&b), "unexpected modulus size {b}");
    }
}
