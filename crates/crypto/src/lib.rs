//! Cryptographic substrate for privacy-preserving aggregation at the
//! Reduce() step.
//!
//! The paper's security architecture (§V) rests on one primitive: the
//! reducer must learn the **sum** (hence average) of the mappers' local
//! models without learning any individual contribution. This crate provides
//! three interchangeable implementations of that primitive behind the
//! [`SecureSum`] trait:
//!
//! * [`PairwiseMasking`] — the paper's own coalition-resistant protocol:
//!   every mapper exchanges random masks with every other mapper and sends
//!   `wᵢ + Sedᵢ − Revᵢ` to the reducer; masks cancel in the sum.
//! * [`AdditiveSharing`] — classic additive secret sharing over `Z_{2⁶⁴}`;
//!   an information-theoretic alternative with the same communication
//!   pattern rotated 90°.
//! * [`PaillierAggregation`] — additively homomorphic encryption. The
//!   reducer multiplies ciphertexts; only the (logically separate) key
//!   authority can decrypt, and it only ever sees the aggregate. This is the
//!   "cryptographic operations at the Reducer" variant the paper's framing
//!   alludes to, and the expensive baseline the masking protocol is designed
//!   to avoid.
//!
//! Supporting machinery — an arbitrary-precision unsigned integer type
//! ([`BigUint`]) with Montgomery modular exponentiation, Miller–Rabin prime
//! generation, the [`Paillier`] cryptosystem, and a fixed-point codec
//! ([`FixedPointCodec`]) between `f64` model coordinates and group elements —
//! is implemented from scratch; the offline dependency set has no bignum or
//! crypto crates.
//!
//! # Example: the paper's protocol end to end
//!
//! ```
//! use ppml_crypto::{PairwiseMasking, SecureSum};
//!
//! # fn main() -> Result<(), ppml_crypto::CryptoError> {
//! let inputs = vec![
//!     vec![1.0, 2.0],   // learner 1's local model
//!     vec![0.5, -1.0],  // learner 2
//!     vec![2.5, 3.0],   // learner 3
//! ];
//! let sum = PairwiseMasking::new(7).aggregate(&inputs)?;
//! assert!((sum[0] - 4.0).abs() < 1e-9);
//! assert!((sum[1] - 4.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
mod biguint;
mod error;
mod fixed;
mod mont;
mod paillier;
mod prime;
pub mod rounds;
mod secure_sum;
pub mod shamir;

pub use biguint::BigUint;
pub use error::CryptoError;
pub use fixed::FixedPointCodec;
pub use mont::Montgomery;
pub use paillier::{Paillier, PaillierCiphertext, PaillierPrivateKey, PaillierPublicKey};
pub use prime::{gen_prime, is_probable_prime};
pub use rounds::{
    gather_masked_sum, reconstruct_threshold_sum, PairwiseRound, RoundError, ThresholdRound,
};
pub use secure_sum::{
    AdditiveSharing, MaskedShare, MaskingParty, PaillierAggregation, PairwiseMasking, PlainSum,
    SecureSum, ThresholdSharing,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CryptoError>;
