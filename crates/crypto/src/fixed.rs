//! Fixed-point encoding between `f64` model coordinates and group elements.
//!
//! The secure-summation protocols operate over discrete groups — `Z_{2⁶⁴}`
//! for masking/secret-sharing, `Z_n` for Paillier — while the learners'
//! local models are real vectors. This codec bridges the two: values are
//! scaled by `2^scale_bits`, rounded, and embedded two's-complement style
//! (negative `v` becomes `modulus − |v|`).
//!
//! Correctness of an aggregate decode requires that the *sum* of encoded
//! magnitudes stays below half the group order; the codec enforces a
//! per-value magnitude limit at encode time so that any sum of up to
//! [`FixedPointCodec::max_parties`] values is safe.

use crate::{BigUint, CryptoError, Result};

/// Converter between `f64` values and fixed-point group elements.
///
/// # Example
///
/// ```
/// use ppml_crypto::FixedPointCodec;
///
/// # fn main() -> Result<(), ppml_crypto::CryptoError> {
/// let codec = FixedPointCodec::default();
/// let a = codec.encode_u64(1.5)?;
/// let b = codec.encode_u64(-0.25)?;
/// let sum = a.wrapping_add(b);
/// assert!((codec.decode_u64(sum) - 1.25).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedPointCodec {
    scale_bits: u32,
}

impl Default for FixedPointCodec {
    /// 2⁻³² resolution: plenty for SVM weights while leaving headroom for
    /// sums over thousands of parties.
    fn default() -> Self {
        FixedPointCodec { scale_bits: 32 }
    }
}

impl FixedPointCodec {
    /// Creates a codec with the given fractional precision.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ scale_bits ≤ 48` (beyond 48 the headroom for
    /// aggregation disappears).
    pub fn new(scale_bits: u32) -> Self {
        assert!(
            (1..=48).contains(&scale_bits),
            "scale_bits must be in 1..=48, got {scale_bits}"
        );
        FixedPointCodec { scale_bits }
    }

    /// Fractional bits of precision.
    pub fn scale_bits(&self) -> u32 {
        self.scale_bits
    }

    /// The scale factor `2^scale_bits`.
    pub fn scale(&self) -> f64 {
        (1u64 << self.scale_bits) as f64
    }

    /// Absolute resolution of the encoding.
    pub fn resolution(&self) -> f64 {
        1.0 / self.scale()
    }

    /// Largest magnitude a single value may have: `2⁶² / scale / max_parties`
    /// — guarantees sums of up to [`Self::max_parties`] encodings cannot
    /// wrap past the sign boundary.
    pub fn max_value(&self) -> f64 {
        (1u64 << 62) as f64 / self.scale() / Self::max_parties() as f64
    }

    /// Number of values whose sum is guaranteed decodable.
    pub const fn max_parties() -> usize {
        1 << 12
    }

    /// Encodes into a signed 64-bit fixed-point integer.
    ///
    /// # Errors
    ///
    /// [`CryptoError::ValueOutOfRange`] for non-finite input or magnitude
    /// above [`Self::max_value`].
    pub fn encode_i64(&self, v: f64) -> Result<i64> {
        if !v.is_finite() || v.abs() > self.max_value() {
            return Err(CryptoError::ValueOutOfRange {
                value: format!("{v}"),
                limit: format!("{}", self.max_value()),
            });
        }
        Ok((v * self.scale()).round() as i64)
    }

    /// Decodes a signed fixed-point integer back to `f64`.
    pub fn decode_i64(&self, v: i64) -> f64 {
        v as f64 / self.scale()
    }

    /// Encodes into `Z_{2⁶⁴}` (two's-complement reinterpretation).
    ///
    /// # Errors
    ///
    /// As [`Self::encode_i64`].
    pub fn encode_u64(&self, v: f64) -> Result<u64> {
        Ok(self.encode_i64(v)? as u64)
    }

    /// Decodes an element of `Z_{2⁶⁴}` (a wrapped sum of encodings).
    pub fn decode_u64(&self, v: u64) -> f64 {
        self.decode_i64(v as i64)
    }

    /// Encodes into `Z_n` for the Paillier backend: negatives map to
    /// `n − |v|`.
    ///
    /// # Errors
    ///
    /// As [`Self::encode_i64`]; additionally the modulus must exceed 2⁶⁴
    /// (always true for valid Paillier keys).
    pub fn encode_group(&self, v: f64, modulus: &BigUint) -> Result<BigUint> {
        if modulus.bits() <= 64 {
            return Err(CryptoError::ProtocolMisuse {
                reason: "group modulus must exceed 64 bits",
            });
        }
        let i = self.encode_i64(v)?;
        Ok(if i >= 0 {
            BigUint::from(i as u64)
        } else {
            modulus.sub(&BigUint::from(i.unsigned_abs()))
        })
    }

    /// Decodes an element of `Z_n`: values above `n/2` are negative.
    ///
    /// # Errors
    ///
    /// [`CryptoError::AggregateOverflow`] when the centered magnitude does
    /// not fit in an `i64` — the aggregate exceeded the representable range.
    pub fn decode_group(&self, v: &BigUint, modulus: &BigUint) -> Result<f64> {
        let half = modulus.shr(1);
        let (neg, mag) = if v > &half {
            (true, modulus.sub(v))
        } else {
            (false, v.clone())
        };
        let m = mag.to_u64().ok_or(CryptoError::AggregateOverflow)?;
        if m > i64::MAX as u64 {
            return Err(CryptoError::AggregateOverflow);
        }
        let val = self.decode_i64(m as i64);
        Ok(if neg { -val } else { val })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i64_roundtrip_within_resolution() {
        let c = FixedPointCodec::default();
        for v in [0.0, 1.0, -1.0, 3.140625, -2.703125, 1e3, -999.999] {
            let back = c.decode_i64(c.encode_i64(v).unwrap());
            assert!((back - v).abs() <= c.resolution(), "{v} -> {back}");
        }
    }

    #[test]
    fn u64_wrapping_sums_decode_correctly() {
        let c = FixedPointCodec::default();
        let vals = [1.5, -3.25, 2.0, -0.125, 10.0];
        let sum_enc = vals
            .iter()
            .map(|&v| c.encode_u64(v).unwrap())
            .fold(0u64, u64::wrapping_add);
        let want: f64 = vals.iter().sum();
        assert!((c.decode_u64(sum_enc) - want).abs() < 1e-6);
    }

    #[test]
    fn rejects_out_of_range_and_non_finite() {
        let c = FixedPointCodec::default();
        assert!(c.encode_i64(f64::NAN).is_err());
        assert!(c.encode_i64(f64::INFINITY).is_err());
        assert!(c.encode_i64(c.max_value() * 2.0).is_err());
        assert!(c.encode_i64(c.max_value() * 0.5).is_ok());
    }

    #[test]
    fn group_roundtrip_with_negatives() {
        let c = FixedPointCodec::default();
        // 128-bit modulus stand-in.
        let n = BigUint::one().shl(127).sub(&BigUint::one());
        for v in [0.0, 5.25, -5.25, 1000.0, -1000.0] {
            let e = c.encode_group(v, &n).unwrap();
            let back = c.decode_group(&e, &n).unwrap();
            assert!((back - v).abs() <= c.resolution(), "{v} -> {back}");
        }
    }

    #[test]
    fn group_sum_matches_plain_sum() {
        let c = FixedPointCodec::default();
        let n = BigUint::one().shl(127).sub(&BigUint::one());
        let vals = [1.0, -2.5, 0.75];
        let mut acc = BigUint::zero();
        for &v in &vals {
            acc = acc.mod_add(&c.encode_group(v, &n).unwrap(), &n);
        }
        let got = c.decode_group(&acc, &n).unwrap();
        assert!((got - (-0.75)).abs() < 1e-6);
    }

    #[test]
    fn group_requires_big_modulus() {
        let c = FixedPointCodec::default();
        let small = BigUint::from(12345u64);
        assert!(c.encode_group(1.0, &small).is_err());
    }

    #[test]
    fn decode_group_sign_flips_just_above_half_modulus() {
        // Values ≤ n/2 are positive, strictly above are negative. Use a
        // 2⁴⁰ modulus so both sides of the boundary have magnitudes that
        // fit an i64 and actually decode.
        let c = FixedPointCodec::default();
        let n = BigUint::one().shl(40);
        let half = n.shr(1); // 2³⁹, exactly n/2
        let at_half = c.decode_group(&half, &n).unwrap();
        assert!((at_half - 128.0).abs() < 1e-9, "at n/2: {at_half}");
        let just_above = c.decode_group(&half.add(&BigUint::one()), &n).unwrap();
        assert!(just_above < 0.0, "above n/2 must be negative: {just_above}");
        // n − (half + 1) = 2³⁹ − 1, one resolution step short of −128.
        let want = -(((1u64 << 39) - 1) as f64) / c.scale();
        assert!((just_above - want).abs() < 1e-9, "{just_above} vs {want}");
    }

    #[test]
    fn decode_group_overflow_at_i64_boundary() {
        let c = FixedPointCodec::default();
        let n = BigUint::one().shl(127).sub(&BigUint::one());
        // Centered magnitude of exactly i64::MAX still decodes...
        let at_max = BigUint::from(i64::MAX as u64);
        assert!(c.decode_group(&at_max, &n).is_ok());
        // ...one above (2⁶³ fits a u64 but not an i64) overflows...
        let above = BigUint::from(i64::MAX as u64).add(&BigUint::one());
        assert!(matches!(
            c.decode_group(&above, &n),
            Err(CryptoError::AggregateOverflow)
        ));
        // ...and so does a magnitude too wide for u64 entirely (2⁷⁰),
        // on either side of the sign boundary.
        let wide = BigUint::one().shl(70);
        assert!(matches!(
            c.decode_group(&wide, &n),
            Err(CryptoError::AggregateOverflow)
        ));
        let wide_neg = n.sub(&wide); // > n/2, magnitude 2⁷⁰
        assert!(matches!(
            c.decode_group(&wide_neg, &n),
            Err(CryptoError::AggregateOverflow)
        ));
    }

    #[test]
    fn scale_parameters() {
        let c = FixedPointCodec::new(16);
        assert_eq!(c.scale_bits(), 16);
        assert_eq!(c.scale(), 65536.0);
        assert!(c.max_value() > 1e6);
    }

    #[test]
    #[should_panic(expected = "scale_bits")]
    fn rejects_extreme_scale() {
        FixedPointCodec::new(60);
    }
}
