//! Secure summation protocols for the Reduce() step.
//!
//! §V of the paper: the reducer must compute `z = (1/M)·Σ wₘ` without
//! learning any individual `wₘ`, in the semi-honest model, resisting
//! coalitions of mappers. Three interchangeable backends implement the
//! [`SecureSum`] trait; the MapReduce trainers treat them as a pluggable
//! reducer component.
//!
//! The message-level API ([`MaskingParty`], [`MaskedShare`]) is exposed
//! separately so the `ppml-mapreduce` runtime can route the actual
//! mapper-to-mapper mask exchange rather than assuming a trusted in-process
//! coordinator.

use ppml_data::rng::Rng64;

use crate::{CryptoError, FixedPointCodec, Paillier, Result};

/// A protocol that sums the parties' private vectors so the aggregator only
/// ever sees the total.
pub trait SecureSum {
    /// Aggregates `inputs[m]` (the private vector of party `m`) into the
    /// element-wise sum.
    ///
    /// # Errors
    ///
    /// [`CryptoError::ProtocolMisuse`] for empty or ragged inputs;
    /// [`CryptoError::ValueOutOfRange`] when a coordinate exceeds the
    /// fixed-point range.
    fn aggregate(&self, inputs: &[Vec<f64>]) -> Result<Vec<f64>>;

    /// Short protocol name for logs and benchmark labels.
    fn name(&self) -> &'static str;

    /// Communication cost of one aggregation: `(messages, bytes)` as a
    /// function of party count and vector length. Used by the E10/E11
    /// benchmarks to report overhead without instrumenting transports.
    fn cost(&self, parties: usize, len: usize) -> (usize, usize);
}

pub(crate) fn validate(inputs: &[Vec<f64>]) -> Result<usize> {
    let first = inputs
        .first()
        .ok_or(CryptoError::ProtocolMisuse {
            reason: "no parties",
        })?
        .len();
    if inputs.iter().any(|v| v.len() != first) {
        return Err(CryptoError::ProtocolMisuse {
            reason: "party vectors have different lengths",
        });
    }
    Ok(first)
}

// ---------------------------------------------------------------------------
// Pairwise masking (the paper's protocol)
// ---------------------------------------------------------------------------

/// One mapper's state in the coalition-resistant pairwise-masking protocol.
///
/// Protocol (verbatim from §V):
/// 1. each mapper generates `M−1` random numbers (here: vectors);
/// 2. sends them to the other `M−1` mappers individually;
/// 3. sums its generated numbers (`Sedᵢ`) and its received numbers (`Revᵢ`);
/// 4. sends `wᵢ + Sedᵢ − Revᵢ` to the reducer;
/// 5. the reducer adds the `M` submissions — every mask was added once and
///    subtracted once, so only `Σ wᵢ` survives.
///
/// Arithmetic is over `Z_{2⁶⁴}` on fixed-point encodings, so the masked
/// share is statistically independent of `wᵢ` (one-time-pad style) as long
/// as at least one co-mapper does not collude.
#[derive(Debug, Clone)]
pub struct MaskingParty {
    id: usize,
    parties: usize,
    /// `outgoing[j]` is the mask vector destined for the party with
    /// index `j` in the "others" ordering (see [`MaskingParty::outgoing`]).
    outgoing: Vec<Vec<u64>>,
    codec: FixedPointCodec,
}

/// The single message a mapper sends to the reducer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskedShare {
    /// Originating party.
    pub party: usize,
    /// `wᵢ + Sedᵢ − Revᵢ` over `Z_{2⁶⁴}`, coordinate-wise.
    pub payload: Vec<u64>,
}

impl MaskingParty {
    /// Creates party `id` of `parties`, pre-generating the `M−1` outgoing
    /// mask vectors of length `len` from `seed` (each party must use a
    /// distinct seed; the trainers derive them from per-node RNGs).
    ///
    /// # Panics
    ///
    /// Panics if `id >= parties` or `parties == 0`.
    pub fn new(id: usize, parties: usize, len: usize, seed: u64, codec: FixedPointCodec) -> Self {
        assert!(parties > 0, "at least one party required");
        assert!(id < parties, "party id {id} out of range {parties}");
        let mut rng = Rng64::new(seed);
        let outgoing = (0..parties.saturating_sub(1))
            .map(|_| (0..len).map(|_| rng.next_u64()).collect())
            .collect();
        MaskingParty {
            id,
            parties,
            outgoing,
            codec,
        }
    }

    /// This party's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Global party indices this party sends masks to, in the order used by
    /// [`MaskingParty::outgoing`].
    pub fn peers(&self) -> Vec<usize> {
        (0..self.parties).filter(|&p| p != self.id).collect()
    }

    /// The mask vector to transmit to the `k`-th peer (ordering of
    /// [`MaskingParty::peers`]).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn outgoing(&self, k: usize) -> &[u64] {
        &self.outgoing[k]
    }

    /// Computes the reducer-bound share from this party's private values and
    /// the masks received from every peer (same ordering as
    /// [`MaskingParty::peers`]).
    ///
    /// # Errors
    ///
    /// [`CryptoError::ProtocolMisuse`] when the received-mask count or any
    /// vector length is wrong; [`CryptoError::ValueOutOfRange`] when a value
    /// exceeds the fixed-point range.
    pub fn masked_share(&self, values: &[f64], received: &[&[u64]]) -> Result<MaskedShare> {
        if received.len() != self.parties - 1 {
            return Err(CryptoError::ProtocolMisuse {
                reason: "wrong number of received masks",
            });
        }
        let len = values.len();
        if self.outgoing.iter().any(|m| m.len() != len) || received.iter().any(|m| m.len() != len) {
            return Err(CryptoError::ProtocolMisuse {
                reason: "mask length does not match value length",
            });
        }
        let mut payload = Vec::with_capacity(len);
        for (i, &v) in values.iter().enumerate() {
            let mut acc = self.codec.encode_u64(v)?;
            for sent in &self.outgoing {
                acc = acc.wrapping_add(sent[i]);
            }
            for recv in received {
                acc = acc.wrapping_sub(recv[i]);
            }
            payload.push(acc);
        }
        Ok(MaskedShare {
            party: self.id,
            payload,
        })
    }

    /// Reducer side: sums the masked shares; masks cancel pairwise.
    ///
    /// # Errors
    ///
    /// [`CryptoError::ProtocolMisuse`] for empty or ragged shares.
    pub fn combine(shares: &[MaskedShare], codec: FixedPointCodec) -> Result<Vec<f64>> {
        let first = shares
            .first()
            .ok_or(CryptoError::ProtocolMisuse {
                reason: "no shares",
            })?
            .payload
            .len();
        if shares.iter().any(|s| s.payload.len() != first) {
            return Err(CryptoError::ProtocolMisuse {
                reason: "shares have different lengths",
            });
        }
        Ok((0..first)
            .map(|i| {
                let total = shares
                    .iter()
                    .fold(0u64, |acc, s| acc.wrapping_add(s.payload[i]));
                codec.decode_u64(total)
            })
            .collect())
    }
}

/// In-process driver for the paper's pairwise-masking protocol.
///
/// See [`MaskingParty`] for the message-level API the MapReduce runtime
/// uses; this type wires all parties together for library callers and tests.
#[derive(Debug, Clone, Copy)]
pub struct PairwiseMasking {
    seed: u64,
    codec: FixedPointCodec,
}

impl PairwiseMasking {
    /// Creates the protocol driver; `seed` derives every party's mask
    /// stream.
    pub fn new(seed: u64) -> Self {
        PairwiseMasking {
            seed,
            codec: FixedPointCodec::default(),
        }
    }

    /// Overrides the fixed-point codec.
    pub fn with_codec(mut self, codec: FixedPointCodec) -> Self {
        self.codec = codec;
        self
    }
}

impl SecureSum for PairwiseMasking {
    fn aggregate(&self, inputs: &[Vec<f64>]) -> Result<Vec<f64>> {
        let len = validate(inputs)?;
        let m = inputs.len();
        let parties: Vec<MaskingParty> = (0..m)
            .map(|i| {
                MaskingParty::new(
                    i,
                    m,
                    len,
                    self.seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B9),
                    self.codec,
                )
            })
            .collect();
        // Route the mask exchange: peer j of party i receives i's k-th
        // outgoing vector, where k is j's position among i's peers.
        let mut shares = Vec::with_capacity(m);
        for (i, party) in parties.iter().enumerate() {
            let mut received: Vec<&[u64]> = Vec::with_capacity(m - 1);
            for &peer in &party.peers() {
                let sender = &parties[peer];
                let k = sender.peers().iter().position(|&p| p == i).ok_or(
                    CryptoError::ProtocolMisuse {
                        reason: "peer graph is not symmetric",
                    },
                )?;
                received.push(sender.outgoing(k));
            }
            shares.push(party.masked_share(&inputs[i], &received)?);
        }
        MaskingParty::combine(&shares, self.codec)
    }

    fn name(&self) -> &'static str {
        "pairwise-masking"
    }

    fn cost(&self, parties: usize, len: usize) -> (usize, usize) {
        if parties == 0 {
            return (0, 0);
        }
        // M(M-1) mask messages + M shares; every message carries `len` u64s.
        let messages = parties * (parties - 1) + parties;
        (messages, messages * len * 8)
    }
}

// ---------------------------------------------------------------------------
// Additive secret sharing
// ---------------------------------------------------------------------------

/// Additive secret sharing over `Z_{2⁶⁴}`: each party splits its encoded
/// vector into `M` random shares that sum to it, keeps one, and distributes
/// the rest; every party then forwards the sum of the shares it holds to
/// the reducer.
///
/// Information-theoretically hiding against any coalition that misses at
/// least one share-holder. Same asymptotic communication as
/// [`PairwiseMasking`]; included as the classical SMC baseline (cf. the
/// secure-sum protocols of Kantarcioglu & Clifton cited in §II).
#[derive(Debug, Clone, Copy)]
pub struct AdditiveSharing {
    seed: u64,
    codec: FixedPointCodec,
}

impl AdditiveSharing {
    /// Creates the protocol driver.
    pub fn new(seed: u64) -> Self {
        AdditiveSharing {
            seed,
            codec: FixedPointCodec::default(),
        }
    }

    /// Overrides the fixed-point codec.
    pub fn with_codec(mut self, codec: FixedPointCodec) -> Self {
        self.codec = codec;
        self
    }
}

impl SecureSum for AdditiveSharing {
    fn aggregate(&self, inputs: &[Vec<f64>]) -> Result<Vec<f64>> {
        let len = validate(inputs)?;
        let m = inputs.len();
        let mut rng = Rng64::new(self.seed);
        // held[j][i] accumulates the shares party j holds for coordinate i.
        let mut held = vec![vec![0u64; len]; m];
        for (owner, values) in inputs.iter().enumerate() {
            for (i, &v) in values.iter().enumerate() {
                let enc = self.codec.encode_u64(v)?;
                let mut rest = enc;
                for (j, row) in held.iter_mut().enumerate() {
                    if j == m - 1 {
                        row[i] = row[i].wrapping_add(rest);
                    } else {
                        let share: u64 = rng.next_u64();
                        rest = rest.wrapping_sub(share);
                        row[i] = row[i].wrapping_add(share);
                    }
                }
                let _ = owner; // shares are owner-agnostic once split
            }
        }
        // Reducer sums the per-party partials.
        Ok((0..len)
            .map(|i| {
                let total = held.iter().fold(0u64, |acc, h| acc.wrapping_add(h[i]));
                self.codec.decode_u64(total)
            })
            .collect())
    }

    fn name(&self) -> &'static str {
        "additive-sharing"
    }

    fn cost(&self, parties: usize, len: usize) -> (usize, usize) {
        if parties == 0 {
            return (0, 0);
        }
        let messages = parties * (parties - 1) + parties;
        (messages, messages * len * 8)
    }
}

// ---------------------------------------------------------------------------
// Paillier aggregation
// ---------------------------------------------------------------------------

/// Additively homomorphic aggregation with Paillier.
///
/// Each party encrypts its fixed-point coordinates under the authority's
/// public key; the reducer multiplies ciphertexts coordinate-wise and hands
/// the aggregate to the key authority for decryption. The reducer never
/// sees a plaintext; the authority only ever sees the sum.
///
/// This is the heavyweight baseline for the paper's claim that its masking
/// protocol keeps "cryptographic operations … minimized" — benchmark E10
/// quantifies the gap.
#[derive(Debug, Clone)]
pub struct PaillierAggregation {
    paillier: Paillier,
    codec: FixedPointCodec,
    seed: u64,
}

impl PaillierAggregation {
    /// Generates a key pair of `bits` and wraps it for aggregation.
    ///
    /// # Errors
    ///
    /// [`CryptoError::KeyTooSmall`] when `bits` is below the Paillier
    /// minimum.
    pub fn keygen(bits: usize, seed: u64) -> Result<Self> {
        let mut rng = Rng64::new(seed);
        Ok(PaillierAggregation {
            paillier: Paillier::keygen(bits, &mut rng)?,
            codec: FixedPointCodec::default(),
            seed,
        })
    }

    /// Overrides the fixed-point codec.
    pub fn with_codec(mut self, codec: FixedPointCodec) -> Self {
        self.codec = codec;
        self
    }

    /// Borrows the underlying cryptosystem (e.g. to inspect key sizes).
    pub fn paillier(&self) -> &Paillier {
        &self.paillier
    }
}

impl SecureSum for PaillierAggregation {
    fn aggregate(&self, inputs: &[Vec<f64>]) -> Result<Vec<f64>> {
        let len = validate(inputs)?;
        let n = self.paillier.public_key().modulus().clone();
        let mut rng = Rng64::new(self.seed ^ 0xA5A5_A5A5);
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            let mut acc = self.paillier.neutral();
            for party in inputs {
                let pt = self.codec.encode_group(party[i], &n)?;
                let ct = self.paillier.encrypt(&pt, &mut rng)?;
                acc = self.paillier.add(&acc, &ct);
            }
            let sum_pt = self.paillier.decrypt(&acc);
            out.push(self.codec.decode_group(&sum_pt, &n)?);
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "paillier"
    }

    fn cost(&self, parties: usize, len: usize) -> (usize, usize) {
        if parties == 0 {
            return (0, 0);
        }
        // One ciphertext per coordinate per party, plus the aggregate back
        // to the authority. Ciphertexts live in Z_{n²}.
        let ct_bytes = self.paillier.public_key().modulus_squared().bits() / 8 + 1;
        let messages = parties * len + len;
        (messages, messages * ct_bytes)
    }
}

// ---------------------------------------------------------------------------
// Threshold (dropout-tolerant) sharing
// ---------------------------------------------------------------------------

/// Dropout-tolerant secure summation via Shamir threshold sharing.
///
/// Every party splits its fixed-point contribution into `n` Shamir shares
/// (threshold `t`) and sends share `j` to party `j`; each party sums the
/// shares it holds across all contributors — Shamir sharing is linear, so a
/// sum of shares is a share of the sum — and submits one summed share
/// vector to the reducer. **Any `t` submissions reconstruct the total**, so
/// up to `n − t` parties may crash after distributing their shares without
/// losing the round; fewer than `t` collaborators learn nothing.
///
/// This is the classic remedy for the pairwise-masking protocol's dropout
/// fragility (a vanished mapper leaves uncancelled pads). Values are
/// encoded into `GF(2⁶¹ − 1)` with the fixed-point codec; the sum of
/// magnitudes must stay below half the field order, which the codec's
/// range check guarantees for ≤ 4096 parties.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdSharing {
    threshold: usize,
    seed: u64,
    codec: FixedPointCodec,
}

impl ThresholdSharing {
    /// Creates the protocol with reconstruction threshold `t`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0`.
    pub fn new(threshold: usize, seed: u64) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        ThresholdSharing {
            threshold,
            seed,
            codec: FixedPointCodec::default(),
        }
    }

    /// The reconstruction threshold `t`.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Overrides the fixed-point codec.
    pub fn with_codec(mut self, codec: FixedPointCodec) -> Self {
        self.codec = codec;
        self
    }

    /// Encodes an `f64` into the field (two's-complement style around the
    /// Mersenne modulus), so field sums decode to the same result as
    /// wrapping-integer sums while every value stays in range.
    ///
    /// # Errors
    ///
    /// [`CryptoError::ValueOutOfRange`] when the value exceeds the
    /// fixed-point range.
    pub fn encode(&self, v: f64) -> Result<u64> {
        let i = self.codec.encode_i64(v)?;
        Ok(if i >= 0 {
            i as u64 % crate::shamir::MODULUS
        } else {
            crate::shamir::MODULUS - (i.unsigned_abs() % crate::shamir::MODULUS)
        })
    }

    /// Inverse of [`ThresholdSharing::encode`]: maps a field element back
    /// to an `f64` (values above `p/2` are negative).
    pub fn decode(&self, v: u64) -> f64 {
        let half = crate::shamir::MODULUS / 2;
        if v > half {
            -self.codec.decode_i64((crate::shamir::MODULUS - v) as i64)
        } else {
            self.codec.decode_i64(v as i64)
        }
    }

    /// Aggregates while simulating that only the parties in `alive` survive
    /// to the submission phase (all parties distributed their shares
    /// first). The sum still covers **every** party's input.
    ///
    /// # Errors
    ///
    /// [`CryptoError::ProtocolMisuse`] when fewer than `t` distinct parties
    /// are alive, `alive` references unknown or duplicate parties, or
    /// inputs are malformed.
    pub fn aggregate_with_dropout(&self, inputs: &[Vec<f64>], alive: &[usize]) -> Result<Vec<f64>> {
        let len = validate(inputs)?;
        let n = inputs.len();
        if alive.len() < self.threshold {
            return Err(CryptoError::ProtocolMisuse {
                reason: "fewer live parties than the threshold",
            });
        }
        let mut seen = vec![false; n];
        for &p in alive {
            if p >= n {
                return Err(CryptoError::ProtocolMisuse {
                    reason: "alive set references unknown party",
                });
            }
            if seen[p] {
                // A duplicated survivor would hand Lagrange reconstruction
                // duplicate evaluation points while still passing the
                // threshold head-count above.
                return Err(CryptoError::ProtocolMisuse {
                    reason: "alive set contains duplicate party indices",
                });
            }
            seen[p] = true;
        }
        let mut rng = Rng64::new(self.seed ^ 0x7582);
        // held[j][i]: the field-sum of coordinate i shares held by party j.
        let mut held = vec![vec![0u64; len]; n];
        for values in inputs {
            for (i, &v) in values.iter().enumerate() {
                let shares = crate::shamir::split(self.encode(v)?, self.threshold, n, &mut rng)?;
                for (j, s) in shares.into_iter().enumerate() {
                    // Field addition mod 2⁶¹−1.
                    let sum = (held[j][i] as u128 + s.y as u128) % crate::shamir::MODULUS as u128;
                    held[j][i] = sum as u64;
                }
            }
        }
        // Reconstruction from the live parties' summed shares.
        (0..len)
            .map(|i| {
                let column: Vec<crate::shamir::Share> = alive
                    .iter()
                    .take(self.threshold)
                    .map(|&p| crate::shamir::Share {
                        x: p as u64 + 1,
                        y: held[p][i],
                    })
                    .collect();
                Ok(self.decode(crate::shamir::reconstruct(&column)?))
            })
            .collect()
    }
}

impl SecureSum for ThresholdSharing {
    fn aggregate(&self, inputs: &[Vec<f64>]) -> Result<Vec<f64>> {
        let all: Vec<usize> = (0..inputs.len()).collect();
        self.aggregate_with_dropout(inputs, &all)
    }

    fn name(&self) -> &'static str {
        "threshold-sharing"
    }

    fn cost(&self, parties: usize, len: usize) -> (usize, usize) {
        if parties == 0 {
            return (0, 0);
        }
        // n² share messages + n submissions, 8 bytes per field element.
        let messages = parties * parties + parties;
        (messages, messages * len * 8)
    }
}

/// Plain (insecure) summation — the "no protocol" baseline for benchmarks.
///
/// Provides the denominator for the crypto-overhead measurements (E10);
/// never use it where privacy is expected.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlainSum;

impl SecureSum for PlainSum {
    fn aggregate(&self, inputs: &[Vec<f64>]) -> Result<Vec<f64>> {
        let len = validate(inputs)?;
        Ok((0..len)
            .map(|i| inputs.iter().map(|v| v[i]).sum())
            .collect())
    }

    fn name(&self) -> &'static str {
        "plain"
    }

    fn cost(&self, parties: usize, len: usize) -> (usize, usize) {
        (parties, parties * len * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, -2.0, 3.5, 0.0],
            vec![0.25, 2.0, -3.5, 10.0],
            vec![-1.25, 4.0, 7.0, -10.0],
        ]
    }

    fn expected() -> Vec<f64> {
        vec![0.0, 4.0, 7.0, 0.0]
    }

    fn check(sum: &[f64]) {
        for (s, e) in sum.iter().zip(expected()) {
            assert!((s - e).abs() < 1e-6, "{s} != {e}");
        }
    }

    #[test]
    fn masking_matches_plain_sum() {
        check(&PairwiseMasking::new(3).aggregate(&inputs()).unwrap());
    }

    #[test]
    fn masking_single_party_degenerates_gracefully() {
        let sum = PairwiseMasking::new(3)
            .aggregate(&[vec![1.5, -2.5]])
            .unwrap();
        assert!((sum[0] - 1.5).abs() < 1e-6 && (sum[1] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn sharing_matches_plain_sum() {
        check(&AdditiveSharing::new(11).aggregate(&inputs()).unwrap());
    }

    #[test]
    fn paillier_matches_plain_sum() {
        let agg = PaillierAggregation::keygen(128, 5).unwrap();
        check(&agg.aggregate(&inputs()).unwrap());
    }

    #[test]
    fn plain_sum_baseline() {
        check(&PlainSum.aggregate(&inputs()).unwrap());
    }

    #[test]
    fn protocols_reject_ragged_inputs() {
        let bad = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(PairwiseMasking::new(0).aggregate(&bad).is_err());
        assert!(AdditiveSharing::new(0).aggregate(&bad).is_err());
        assert!(PlainSum.aggregate(&bad).is_err());
        assert!(PairwiseMasking::new(0).aggregate(&[]).is_err());
    }

    #[test]
    fn masked_share_hides_values() {
        // The payload of a single share must differ from the raw encoding —
        // i.e. the mask is actually applied.
        let codec = FixedPointCodec::default();
        let m = 3;
        let parties: Vec<MaskingParty> = (0..m)
            .map(|i| MaskingParty::new(i, m, 2, 100 + i as u64, codec))
            .collect();
        let values = [5.0, -1.0];
        let received: Vec<&[u64]> = parties[1..]
            .iter()
            .map(|p| {
                let k = p.peers().iter().position(|&q| q == 0).unwrap();
                p.outgoing(k)
            })
            .collect();
        let share = parties[0].masked_share(&values, &received).unwrap();
        let raw0 = codec.encode_u64(5.0).unwrap();
        assert_ne!(share.payload[0], raw0, "mask failed to hide the value");
    }

    #[test]
    fn party_level_protocol_roundtrip() {
        let codec = FixedPointCodec::default();
        let m = 4;
        let len = 3;
        let parties: Vec<MaskingParty> = (0..m)
            .map(|i| MaskingParty::new(i, m, len, 7 * i as u64 + 1, codec))
            .collect();
        let values: Vec<Vec<f64>> = (0..m)
            .map(|i| (0..len).map(|j| (i * len + j) as f64 * 0.5 - 2.0).collect())
            .collect();
        let mut shares = Vec::new();
        for (i, party) in parties.iter().enumerate() {
            let received: Vec<&[u64]> = party
                .peers()
                .iter()
                .map(|&peer| {
                    let k = parties[peer].peers().iter().position(|&q| q == i).unwrap();
                    parties[peer].outgoing(k)
                })
                .collect();
            shares.push(party.masked_share(&values[i], &received).unwrap());
        }
        let sum = MaskingParty::combine(&shares, codec).unwrap();
        for j in 0..len {
            let want: f64 = values.iter().map(|v| v[j]).sum();
            assert!((sum[j] - want).abs() < 1e-6);
        }
    }

    #[test]
    fn masked_share_validates_mask_counts() {
        let codec = FixedPointCodec::default();
        let p = MaskingParty::new(0, 3, 2, 1, codec);
        assert!(p.masked_share(&[1.0, 2.0], &[]).is_err());
    }

    #[test]
    fn cost_models_scale_with_parties() {
        let pm = PairwiseMasking::new(0);
        let (msg4, bytes4) = pm.cost(4, 10);
        let (msg8, bytes8) = pm.cost(8, 10);
        assert!(msg8 > msg4 && bytes8 > bytes4);
        assert_eq!(msg4, 4 * 3 + 4);
        // Paillier bytes dominate masking bytes at equal sizes.
        let pa = PaillierAggregation::keygen(128, 1).unwrap();
        assert!(pa.cost(4, 10).1 > bytes4);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            PairwiseMasking::new(0).name(),
            AdditiveSharing::new(0).name(),
            ThresholdSharing::new(2, 0).name(),
            PlainSum.name(),
        ];
        assert_eq!(
            names.len(),
            names.iter().collect::<std::collections::HashSet<_>>().len()
        );
    }

    #[test]
    fn threshold_matches_plain_sum() {
        check(&ThresholdSharing::new(2, 9).aggregate(&inputs()).unwrap());
    }

    #[test]
    fn threshold_survives_dropout() {
        let ts = ThresholdSharing::new(2, 10);
        // Parties 0 and 2 survive; party 1's contribution is still counted.
        let sum = ts.aggregate_with_dropout(&inputs(), &[0, 2]).unwrap();
        check(&sum);
        // Different survivor sets agree.
        let sum2 = ts.aggregate_with_dropout(&inputs(), &[1, 2]).unwrap();
        for (a, b) in sum.iter().zip(&sum2) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn threshold_validates_aliveness() {
        let ts = ThresholdSharing::new(3, 11);
        assert!(ts.aggregate_with_dropout(&inputs(), &[0, 1]).is_err());
        assert!(ts.aggregate_with_dropout(&inputs(), &[0, 1, 9]).is_err());
    }

    #[test]
    fn threshold_rejects_duplicate_alive_indices() {
        // `[2, 2, 2]` passes the head-count and range checks but must not
        // reach Lagrange reconstruction with duplicate evaluation points.
        let ts = ThresholdSharing::new(3, 13);
        let err = ts
            .aggregate_with_dropout(&inputs(), &[2, 2, 2])
            .unwrap_err();
        assert!(
            matches!(
                err,
                CryptoError::ProtocolMisuse { reason } if reason.contains("duplicate")
            ),
            "unexpected error: {err:?}"
        );
        // A duplicate hiding in an otherwise-valid oversized set too.
        assert!(ts.aggregate_with_dropout(&inputs(), &[0, 1, 1, 2]).is_err());
    }

    #[test]
    fn cost_is_zero_for_zero_parties() {
        assert_eq!(PairwiseMasking::new(0).cost(0, 10), (0, 0));
        assert_eq!(AdditiveSharing::new(0).cost(0, 10), (0, 0));
        assert_eq!(ThresholdSharing::new(2, 0).cost(0, 10), (0, 0));
        assert_eq!(PlainSum.cost(0, 10), (0, 0));
        let pa = PaillierAggregation::keygen(128, 1).unwrap();
        assert_eq!(pa.cost(0, 10), (0, 0));
    }

    #[test]
    fn field_encode_decode_roundtrip() {
        let ts = ThresholdSharing::new(2, 0);
        for v in [0.0, 1.5, -1.5, 1024.25, -4096.75] {
            let enc = ts.encode(v).unwrap();
            assert!(enc < crate::shamir::MODULUS);
            assert_eq!(ts.decode(enc), v, "roundtrip of {v}");
        }
    }

    #[test]
    fn threshold_handles_negative_values() {
        let ts = ThresholdSharing::new(2, 12);
        let sum = ts.aggregate(&[vec![-5.5, 2.0], vec![1.5, -3.0]]).unwrap();
        assert!((sum[0] + 4.0).abs() < 1e-6);
        assert!((sum[1] + 1.0).abs() < 1e-6);
    }
}
