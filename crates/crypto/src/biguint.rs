//! Arbitrary-precision unsigned integers with `u64` limbs (little-endian).
//!
//! Implements exactly what Paillier needs: ring arithmetic, comparison,
//! shifts, binary long division, extended-Euclid modular inverse, and a slow
//! modular exponentiation fallback (the fast path lives in
//! [`crate::Montgomery`]). The representation invariant is *no trailing zero
//! limbs* (zero is the empty limb vector), which makes `Eq`/`Ord` and
//! `bits()` trivial.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// # Example
///
/// ```
/// use ppml_crypto::BigUint;
///
/// let a = BigUint::from(u64::MAX);
/// let b = &a + &a;
/// assert_eq!(b.to_string(), "36893488147419103230");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; no trailing zeros.
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Borrows the little-endian limbs (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// `true` iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// `true` iff the lowest bit is 0 (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Position of the highest set bit plus one (0 for the value 0).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// Value of bit `i` (false beyond the top).
    pub fn bit(&self, i: usize) -> bool {
        self.limbs
            .get(i / 64)
            .is_some_and(|l| (l >> (i % 64)) & 1 == 1)
    }

    /// Sets bit `i` to 1, growing as needed.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1u64 << (i % 64);
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | ((self.limbs[1] as u128) << 64)),
            _ => None,
        }
    }

    /// Wrapping addition.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = l.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// Subtraction `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (unsigned underflow is always a logic error
    /// in this crate's call sites).
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint::sub underflow: {self} - {other}");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        BigUint::from_limbs(out)
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> BigUint {
        let limb_shift = n / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = n % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        BigUint::from_limbs(out)
    }

    /// Quotient and remainder via binary long division.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        let shift = self.bits() - divisor.bits();
        let mut rem = self.clone();
        let mut den = divisor.shl(shift);
        let mut quot = BigUint::zero();
        for i in (0..=shift).rev() {
            if rem >= den {
                rem = rem.sub(&den);
                quot.set_bit(i);
            }
            den = den.shr(1);
        }
        (quot, rem)
    }

    /// `self mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// `(self + other) mod m`; operands must already be `< m`.
    pub fn mod_add(&self, other: &BigUint, m: &BigUint) -> BigUint {
        debug_assert!(self < m && other < m);
        let s = self.add(other);
        if &s >= m {
            s.sub(m)
        } else {
            s
        }
    }

    /// `(self - other) mod m`; operands must already be `< m`.
    pub fn mod_sub(&self, other: &BigUint, m: &BigUint) -> BigUint {
        debug_assert!(self < m && other < m);
        if self >= other {
            self.sub(other)
        } else {
            self.add(m).sub(other)
        }
    }

    /// `(self * other) mod m`.
    pub fn mod_mul(&self, other: &BigUint, m: &BigUint) -> BigUint {
        self.mul(other).rem(m)
    }

    /// Modular exponentiation `self^exp mod m`.
    ///
    /// Uses Montgomery multiplication when `m` is odd (the common case for
    /// RSA/Paillier moduli) and falls back to binary square-and-multiply
    /// with full reductions otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_pow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "zero modulus");
        if m.is_one() {
            return BigUint::zero();
        }
        if !m.is_even() {
            return crate::Montgomery::new(m).mod_pow(self, exp);
        }
        // Slow path for even moduli.
        let mut base = self.rem(m);
        let mut result = BigUint::one();
        for i in 0..exp.bits() {
            if exp.bit(i) {
                result = result.mod_mul(&base, m);
            }
            base = base.mod_mul(&base, m);
        }
        result
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        // Factor out common powers of two.
        let mut shift = 0usize;
        while a.is_even() && b.is_even() {
            a = a.shr(1);
            b = b.shr(1);
            shift += 1;
        }
        while a.is_even() {
            a = a.shr(1);
        }
        loop {
            while b.is_even() {
                b = b.shr(1);
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                return a.shl(shift);
            }
        }
    }

    /// Least common multiple.
    pub fn lcm(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        self.div_rem(&self.gcd(other)).0.mul(other)
    }

    /// Modular inverse `self⁻¹ mod m`, or `None` when `gcd(self, m) ≠ 1`.
    ///
    /// Extended Euclid with sign-tracked Bézout coefficients.
    pub fn mod_inv(&self, m: &BigUint) -> Option<BigUint> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        // (old_r, r) and the Bézout coefficient of `self`: (sign, magnitude).
        let mut old_r = self.rem(m);
        let mut r = m.clone();
        let mut old_s = (false, BigUint::one()); // +1
        let mut s = (false, BigUint::zero()); // 0
        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            old_r = std::mem::replace(&mut r, rem);
            // new_s = old_s - q * s
            let qs = (s.0, q.mul(&s.1));
            let new_s = signed_sub(&old_s, &qs);
            old_s = std::mem::replace(&mut s, new_s);
        }
        if !old_r.is_one() {
            return None;
        }
        // old_s is the coefficient; normalize into [0, m).
        let (neg, mag) = old_s;
        let mag = mag.rem(m);
        Some(if neg && !mag.is_zero() {
            m.sub(&mag)
        } else {
            mag
        })
    }

    /// Big-endian bytes (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out: Vec<u8> = self
            .limbs
            .iter()
            .rev()
            .flat_map(|l| l.to_be_bytes())
            .collect();
        while out.first() == Some(&0) {
            out.remove(0);
        }
        out
    }

    /// Parses big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut buf = [0u8; 8];
            buf[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(buf));
        }
        BigUint::from_limbs(limbs)
    }
}

/// `a - b` over sign-magnitude pairs (`(negative, magnitude)`).
fn signed_sub(a: &(bool, BigUint), b: &(bool, BigUint)) -> (bool, BigUint) {
    match (a.0, b.0) {
        // a - b with same effective op: (+a) - (+b) or (-a) - (-b)
        (an, bn) if an == bn => {
            if a.1 >= b.1 {
                (an, a.1.sub(&b.1))
            } else {
                (!an, b.1.sub(&a.1))
            }
        }
        // (+a) - (-b) = a + b ; (-a) - (+b) = -(a + b)
        (an, _) => (an, a.1.add(&b.1)),
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_limbs(vec![v])
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        o => return o,
                    }
                }
                Ordering::Equal
            }
            o => o,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::ops::Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        BigUint::add(self, rhs)
    }
}

impl std::ops::Sub for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        BigUint::sub(self, rhs)
    }
}

impl std::ops::Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        BigUint::mul(self, rhs)
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeated division by 10^19 (the largest power of ten in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let chunk = BigUint::from(CHUNK);
        let mut parts = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem(&chunk);
            parts.push(r.to_u64().expect("remainder below u64 chunk"));
            cur = q;
        }
        let mut s = parts
            .pop()
            .expect("nonzero has at least one part")
            .to_string();
        for p in parts.iter().rev() {
            s.push_str(&format!("{p:019}"));
        }
        write!(f, "{s}")
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert_eq!(BigUint::default(), BigUint::zero());
    }

    #[test]
    fn normalization_strips_trailing_zeros() {
        let a = BigUint::from_limbs(vec![5, 0, 0]);
        assert_eq!(a.limbs(), &[5]);
        assert_eq!(a, big(5));
    }

    #[test]
    fn add_sub_roundtrip_u128() {
        let cases: &[(u128, u128)] = &[
            (0, 0),
            (1, u64::MAX as u128),
            (u64::MAX as u128, u64::MAX as u128),
            (u128::MAX / 2, u128::MAX / 3),
        ];
        for &(x, y) in cases {
            let s = big(x).add(&big(y));
            assert_eq!(s.sub(&big(y)), big(x), "({x}, {y})");
        }
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = big(1).sub(&big(2));
    }

    #[test]
    fn mul_matches_u128() {
        let cases: &[(u64, u64)] = &[(0, 7), (u64::MAX, u64::MAX), (12345, 67890)];
        for &(x, y) in cases {
            assert_eq!(
                big(x as u128).mul(&big(y as u128)).to_u128().unwrap(),
                x as u128 * y as u128
            );
        }
    }

    #[test]
    fn mul_big_cross_check_via_distribution() {
        // (a + b)·c == a·c + b·c over multi-limb values.
        let a = BigUint::from_limbs(vec![u64::MAX, 123, 456]);
        let b = BigUint::from_limbs(vec![789, u64::MAX, 1]);
        let c = BigUint::from_limbs(vec![u64::MAX, u64::MAX]);
        let lhs = a.add(&b).mul(&c);
        let rhs = a.mul(&c).add(&b.mul(&c));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn shifts_are_mul_div_by_powers_of_two() {
        let a = BigUint::from_limbs(vec![0xDEADBEEF, 0xCAFE]);
        assert_eq!(a.shl(3), a.mul(&big(8)));
        assert_eq!(a.shl(64).shr(64), a);
        assert_eq!(a.shr(200), BigUint::zero());
        assert_eq!(big(0b1011).shr(1), big(0b101));
    }

    #[test]
    fn div_rem_identity() {
        let pairs: &[(u128, u128)] = &[
            (100, 7),
            (u128::MAX, 3),
            (u128::MAX, u64::MAX as u128),
            (5, 100),
        ];
        for &(x, y) in pairs {
            let (q, r) = big(x).div_rem(&big(y));
            assert_eq!(q.to_u128().unwrap(), x / y);
            assert_eq!(r.to_u128().unwrap(), x % y);
            // reconstruct
            assert_eq!(q.mul(&big(y)).add(&r), big(x));
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = big(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn mod_ops_match_u128() {
        let m = big(1_000_000_007);
        let a = big(999_999_999);
        let b = big(123_456_789);
        assert_eq!(
            a.mod_add(&b, &m).to_u128().unwrap(),
            (999_999_999 + 123_456_789) % 1_000_000_007
        );
        assert_eq!(
            a.mod_sub(&b, &m).to_u128().unwrap(),
            (999_999_999 - 123_456_789)
        );
        assert_eq!(
            b.mod_sub(&a, &m).to_u128().unwrap(),
            (1_000_000_007 + 123_456_789 - 999_999_999)
        );
        assert_eq!(
            a.mod_mul(&b, &m).to_u128().unwrap(),
            (999_999_999u128 * 123_456_789) % 1_000_000_007
        );
    }

    #[test]
    fn mod_pow_small_cases() {
        // 3^10 mod 1000 = 59049 mod 1000 = 49
        assert_eq!(big(3).mod_pow(&big(10), &big(1000)).to_u64().unwrap(), 49);
        // Fermat: a^(p-1) ≡ 1 mod p for prime p
        let p = big(1_000_000_007);
        assert!(big(12345).mod_pow(&big(1_000_000_006), &p).is_one());
        // even modulus path
        assert_eq!(
            big(7).mod_pow(&big(5), &big(100)).to_u64().unwrap(),
            16807 % 100
        );
        // modulus one
        assert!(big(5).mod_pow(&big(5), &BigUint::one()).is_zero());
    }

    #[test]
    fn gcd_lcm_known() {
        assert_eq!(big(48).gcd(&big(18)), big(6));
        assert_eq!(big(0).gcd(&big(5)), big(5));
        assert_eq!(big(7).gcd(&big(0)), big(7));
        assert_eq!(big(4).lcm(&big(6)), big(12));
        assert_eq!(big(0).lcm(&big(6)), BigUint::zero());
        // gcd of large powers of two
        assert_eq!(big(1 << 20).gcd(&big(1 << 13)), big(1 << 13));
    }

    #[test]
    fn mod_inv_roundtrip() {
        let m = big(1_000_000_007);
        for v in [2u128, 3, 999, 123_456_789] {
            let inv = big(v).mod_inv(&m).unwrap();
            assert!(big(v).mod_mul(&inv, &m).is_one(), "inverse of {v} failed");
        }
        // No inverse when sharing a factor.
        assert!(big(6).mod_inv(&big(9)).is_none());
        assert!(big(5).mod_inv(&BigUint::one()).is_none());
    }

    #[test]
    fn mod_inv_multi_limb() {
        // modulus = 2^128 - 159 (a known prime)
        let m = BigUint::from(u128::MAX - 158);
        let a = BigUint::from(0xDEADBEEF_CAFEBABE_u128);
        let inv = a.mod_inv(&m).unwrap();
        assert!(a.mod_mul(&inv, &m).is_one());
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(big(5) < big(6));
        assert!(BigUint::from_limbs(vec![0, 1]) > big(u64::MAX as u128));
        assert_eq!(big(7).cmp(&big(7)), Ordering::Equal);
    }

    #[test]
    fn display_decimal() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(big(12345).to_string(), "12345");
        assert_eq!(
            BigUint::from(u128::MAX).to_string(),
            "340282366920938463463374607431768211455"
        );
    }

    #[test]
    fn bytes_roundtrip() {
        let vals = [
            BigUint::zero(),
            big(1),
            big(0x0102030405060708090A0B0C0D0E0Fu128),
            BigUint::from_limbs(vec![u64::MAX, 1, u64::MAX]),
        ];
        for v in vals {
            assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
        }
    }

    #[test]
    fn bit_access() {
        let mut v = BigUint::zero();
        v.set_bit(100);
        assert!(v.bit(100));
        assert!(!v.bit(99));
        assert_eq!(v.bits(), 101);
        assert_eq!(v, BigUint::one().shl(100));
    }
}
