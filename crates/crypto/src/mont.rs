//! Montgomery modular multiplication and exponentiation for odd moduli.
//!
//! Paillier spends essentially all of its time in `mod_pow` over `n²`; with
//! schoolbook reduction each step costs a full long division. Montgomery's
//! REDC replaces those divisions with shifts, making keygen/enc/dec usable
//! at realistic key sizes.

use crate::BigUint;

/// Precomputed Montgomery context for a fixed odd modulus.
///
/// # Example
///
/// ```
/// use ppml_crypto::{BigUint, Montgomery};
///
/// let m = BigUint::from(1_000_000_007u64); // odd prime
/// let ctx = Montgomery::new(&m);
/// let r = ctx.mod_pow(&BigUint::from(3u64), &BigUint::from(10u64));
/// assert_eq!(r.to_u64(), Some(59049 % 1_000_000_007));
/// ```
#[derive(Debug, Clone)]
pub struct Montgomery {
    /// The modulus `n` (odd, > 1).
    n: BigUint,
    /// Limb count `k`; `R = 2^(64k)`.
    k: usize,
    /// `n' = -n⁻¹ mod 2⁶⁴`.
    n_prime: u64,
    /// `R² mod n`, for conversion into the Montgomery domain.
    r2: BigUint,
}

impl Montgomery {
    /// Builds a context for the odd modulus `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is even or `n <= 1`; callers in this crate always pass
    /// RSA-style moduli.
    pub fn new(n: &BigUint) -> Self {
        assert!(!n.is_even(), "Montgomery requires an odd modulus");
        assert!(!n.is_one() && !n.is_zero(), "modulus must exceed 1");
        let k = n.limbs().len();
        let n0 = n.limbs()[0];
        // Newton's iteration: doubles correct bits each round; 6 rounds
        // suffice for 64 bits starting from the 3-bit-correct seed `n0`.
        let mut inv = n0;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n_prime = inv.wrapping_neg();
        // R² mod n via shifting (one-time cost).
        let r2 = BigUint::one().shl(64 * k * 2).rem(n);
        Montgomery {
            n: n.clone(),
            k,
            n_prime,
            r2,
        }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Montgomery reduction: computes `t · R⁻¹ mod n` for `t < n·R`.
    fn redc(&self, t: &BigUint) -> BigUint {
        let k = self.k;
        let n_limbs = self.n.limbs();
        // Working buffer of 2k+1 limbs.
        let mut buf = vec![0u64; 2 * k + 1];
        let t_limbs = t.limbs();
        buf[..t_limbs.len()].copy_from_slice(t_limbs);
        for i in 0..k {
            let m = buf[i].wrapping_mul(self.n_prime);
            // buf += m * n << (64*i)
            let mut carry = 0u128;
            for (j, &nl) in n_limbs.iter().enumerate() {
                let idx = i + j;
                let v = buf[idx] as u128 + (m as u128) * (nl as u128) + carry;
                buf[idx] = v as u64;
                carry = v >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let v = buf[idx] as u128 + carry;
                buf[idx] = v as u64;
                carry = v >> 64;
                idx += 1;
            }
        }
        // Divide by R: drop the low k limbs.
        let out = BigUint::from_limbs(buf[k..].to_vec());
        if out >= self.n {
            out.sub(&self.n)
        } else {
            out
        }
    }

    /// Converts into the Montgomery domain: `a · R mod n`.
    fn to_mont(&self, a: &BigUint) -> BigUint {
        self.redc(&a.mul(&self.r2))
    }

    /// Montgomery-domain product.
    fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.redc(&a.mul(b))
    }

    /// `base^exp mod n` by left-to-right square-and-multiply in the
    /// Montgomery domain.
    pub fn mod_pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one().rem(&self.n);
        }
        let base = base.rem(&self.n);
        if base.is_zero() {
            return BigUint::zero();
        }
        let mb = self.to_mont(&base);
        let mut acc = mb.clone();
        for i in (0..exp.bits() - 1).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &mb);
            }
        }
        self.redc(&acc)
    }

    /// `a · b mod n` through one round-trip into the Montgomery domain.
    pub fn mod_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let ma = self.to_mont(&a.rem(&self.n));
        self.mont_mul(&ma, &b.rem(&self.n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_slow_mod_pow_small() {
        let m = BigUint::from(10_007u64); // odd prime
        let ctx = Montgomery::new(&m);
        for base in [0u64, 1, 2, 9999, 12345] {
            for exp in [0u64, 1, 2, 17, 5000] {
                let fast = ctx.mod_pow(&BigUint::from(base), &BigUint::from(exp));
                // Reference: repeated mod_mul without Montgomery.
                let mut r = BigUint::one();
                for _ in 0..exp {
                    r = r.mod_mul(&BigUint::from(base), &m);
                }
                assert_eq!(fast, r, "base {base}, exp {exp}");
            }
        }
    }

    #[test]
    fn matches_u128_arithmetic() {
        let m = BigUint::from(0xFFFF_FFFF_FFFF_FFC5u64); // 2^64 - 59 (prime)
        let ctx = Montgomery::new(&m);
        let a = 0x1234_5678_9ABC_DEFFu64;
        let got = ctx.mod_mul(&BigUint::from(a), &BigUint::from(a));
        let want = ((a as u128 * a as u128) % 0xFFFF_FFFF_FFFF_FFC5u128) as u64;
        assert_eq!(got.to_u64(), Some(want));
    }

    #[test]
    fn fermat_on_multi_limb_prime() {
        // 2^127 - 1 is a Mersenne prime.
        let p = BigUint::one().shl(127).sub(&BigUint::one());
        let ctx = Montgomery::new(&p);
        let exp = p.sub(&BigUint::one());
        assert!(ctx.mod_pow(&BigUint::from(3u64), &exp).is_one());
    }

    #[test]
    fn zero_and_one_exponents() {
        let m = BigUint::from(101u64);
        let ctx = Montgomery::new(&m);
        assert!(ctx.mod_pow(&BigUint::from(7u64), &BigUint::zero()).is_one());
        assert_eq!(
            ctx.mod_pow(&BigUint::from(7u64), &BigUint::one()).to_u64(),
            Some(7)
        );
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn rejects_even_modulus() {
        Montgomery::new(&BigUint::from(10u64));
    }
}
