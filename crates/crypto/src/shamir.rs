//! Shamir threshold secret sharing over the Mersenne field `GF(2⁶¹ − 1)`.
//!
//! The paper's pairwise-masking protocol breaks if a mapper drops out
//! mid-iteration: its pads never cancel and the reducer's sum is garbage.
//! Production secure-aggregation systems fix this by secret-sharing each
//! party's recovery material with a `t`-of-`n` threshold, so any `t`
//! survivors can reconstruct the missing contribution (or its pads). This
//! module provides that primitive; [`crate::SecureSum`] backends stay
//! dropout-free here because the MapReduce runtime re-executes failed
//! mappers deterministically, but the tool is what a deployment against
//! *permanent* node loss needs.
//!
//! Arithmetic is over `p = 2⁶¹ − 1` (a Mersenne prime), which makes
//! reduction two shifts and an add — fast enough to share whole model
//! vectors.

use ppml_data::rng::Rng64;

use crate::{CryptoError, Result};

/// The field modulus `p = 2⁶¹ − 1`.
pub const MODULUS: u64 = (1 << 61) - 1;

/// Reduction modulo the Mersenne prime.
fn reduce(x: u128) -> u64 {
    // x = hi·2⁶¹ + lo ≡ hi + lo (mod 2⁶¹−1); two rounds reach < 2p.
    let mut r = (x >> 61) + (x & MODULUS as u128);
    r = (r >> 61) + (r & MODULUS as u128);
    let mut v = r as u64;
    if v >= MODULUS {
        v -= MODULUS;
    }
    v
}

fn add(a: u64, b: u64) -> u64 {
    reduce(a as u128 + b as u128)
}

/// Field addition `a + b mod 2⁶¹ − 1`, for summing shares (Shamir sharing
/// is linear: a sum of shares at the same `x` is a share of the sum).
/// Inputs need not be pre-reduced.
pub fn field_add(a: u64, b: u64) -> u64 {
    add(a, b)
}

/// Field subtraction `a − b mod 2⁶¹ − 1`, for removing blinding pads from
/// relayed shares. Inputs need not be pre-reduced.
pub fn field_sub(a: u64, b: u64) -> u64 {
    sub(a, b)
}

fn mul(a: u64, b: u64) -> u64 {
    reduce(a as u128 * b as u128)
}

fn sub(a: u64, b: u64) -> u64 {
    add(a, MODULUS - b % MODULUS)
}

/// Modular inverse by Fermat (p is prime).
fn inv(a: u64) -> Result<u64> {
    if a.is_multiple_of(MODULUS) {
        return Err(CryptoError::NotInvertible);
    }
    // a^(p-2) mod p by square-and-multiply.
    let mut base = a % MODULUS;
    let mut exp = MODULUS - 2;
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul(acc, base);
        }
        base = mul(base, base);
        exp >>= 1;
    }
    Ok(acc)
}

/// One party's share: the evaluation point `x` (1-based party index) and
/// the polynomial value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Share {
    /// Evaluation point (party index, `≥ 1`).
    pub x: u64,
    /// `f(x)` over the field.
    pub y: u64,
}

/// Splits `secret` into `n` shares with reconstruction threshold `t`
/// (any `t` shares recover it; `t − 1` reveal nothing).
///
/// # Errors
///
/// [`CryptoError::ProtocolMisuse`] unless `1 ≤ t ≤ n` and `n < MODULUS`;
/// [`CryptoError::ValueOutOfRange`] when `secret ≥ MODULUS`.
///
/// # Example
///
/// ```
/// use ppml_crypto::shamir::{reconstruct, split};
/// use ppml_data::rng::Rng64;
///
/// # fn main() -> Result<(), ppml_crypto::CryptoError> {
/// let mut rng = Rng64::new(1);
/// let shares = split(42, 3, 5, &mut rng)?;   // 3-of-5
/// let got = reconstruct(&shares[1..4])?;      // any 3 suffice
/// assert_eq!(got, 42);
/// # Ok(())
/// # }
/// ```
pub fn split(secret: u64, t: usize, n: usize, rng: &mut Rng64) -> Result<Vec<Share>> {
    if t == 0 || t > n {
        return Err(CryptoError::ProtocolMisuse {
            reason: "threshold must satisfy 1 <= t <= n",
        });
    }
    if n as u64 >= MODULUS {
        return Err(CryptoError::ProtocolMisuse {
            reason: "too many parties for the field",
        });
    }
    if secret >= MODULUS {
        return Err(CryptoError::ValueOutOfRange {
            value: secret.to_string(),
            limit: MODULUS.to_string(),
        });
    }
    // Random polynomial of degree t-1 with constant term = secret.
    let coeffs: Vec<u64> = std::iter::once(secret)
        .chain((1..t).map(|_| rng.below(MODULUS)))
        .collect();
    Ok((1..=n as u64)
        .map(|x| {
            // Horner evaluation.
            let mut y = 0u64;
            for &c in coeffs.iter().rev() {
                y = add(mul(y, x), c);
            }
            Share { x, y }
        })
        .collect())
}

/// Reconstructs the secret from at least `t` shares (Lagrange interpolation
/// at zero). Passing shares from different splits yields garbage, not an
/// error — threshold schemes cannot detect that.
///
/// # Errors
///
/// [`CryptoError::ProtocolMisuse`] on an empty share set or duplicated
/// evaluation points.
pub fn reconstruct(shares: &[Share]) -> Result<u64> {
    if shares.is_empty() {
        return Err(CryptoError::ProtocolMisuse {
            reason: "no shares supplied",
        });
    }
    for (i, a) in shares.iter().enumerate() {
        for b in &shares[i + 1..] {
            if a.x == b.x {
                return Err(CryptoError::ProtocolMisuse {
                    reason: "duplicate share point",
                });
            }
        }
    }
    let mut secret = 0u64;
    for (i, si) in shares.iter().enumerate() {
        // Lagrange basis at x = 0: Π_{j≠i} x_j / (x_j − x_i).
        let mut num = 1u64;
        let mut den = 1u64;
        for (j, sj) in shares.iter().enumerate() {
            if i == j {
                continue;
            }
            num = mul(num, sj.x % MODULUS);
            den = mul(den, sub(sj.x % MODULUS, si.x % MODULUS));
        }
        let basis = mul(num, inv(den)?);
        secret = add(secret, mul(si.y, basis));
    }
    Ok(secret)
}

/// Splits a whole vector, producing per-party share vectors
/// (`result[party][coordinate]`).
///
/// # Errors
///
/// As [`split`].
pub fn split_vector(
    values: &[u64],
    t: usize,
    n: usize,
    rng: &mut Rng64,
) -> Result<Vec<Vec<Share>>> {
    let mut per_party: Vec<Vec<Share>> = vec![Vec::with_capacity(values.len()); n];
    for &v in values {
        for (p, s) in split(v, t, n, rng)?.into_iter().enumerate() {
            per_party[p].push(s);
        }
    }
    Ok(per_party)
}

/// Reconstructs a vector from per-party share vectors (each inner slice is
/// one party's shares, in coordinate order).
///
/// # Errors
///
/// As [`reconstruct`]; additionally misaligned lengths are
/// [`CryptoError::ProtocolMisuse`].
pub fn reconstruct_vector(parties: &[&[Share]]) -> Result<Vec<u64>> {
    let len = parties
        .first()
        .ok_or(CryptoError::ProtocolMisuse {
            reason: "no parties supplied",
        })?
        .len();
    if parties.iter().any(|p| p.len() != len) {
        return Err(CryptoError::ProtocolMisuse {
            reason: "party share vectors have different lengths",
        });
    }
    (0..len)
        .map(|i| {
            let column: Vec<Share> = parties.iter().map(|p| p[i]).collect();
            reconstruct(&column)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    fn rng() -> Rng64 {
        Rng64::new(7)
    }

    #[test]
    fn roundtrip_with_exactly_t_shares() {
        let mut r = rng();
        for secret in [0u64, 1, 42, MODULUS - 1] {
            let shares = split(secret, 3, 5, &mut r).unwrap();
            assert_eq!(reconstruct(&shares[..3]).unwrap(), secret);
            assert_eq!(reconstruct(&shares[2..]).unwrap(), secret);
            assert_eq!(reconstruct(&shares).unwrap(), secret);
        }
    }

    #[test]
    fn any_subset_of_size_t_works() {
        let mut r = rng();
        let shares = split(123_456, 2, 4, &mut r).unwrap();
        for i in 0..4 {
            for j in (i + 1)..4 {
                let got = reconstruct(&[shares[i], shares[j]]).unwrap();
                assert_eq!(got, 123_456, "subset ({i},{j})");
            }
        }
    }

    #[test]
    fn below_threshold_is_not_the_secret() {
        // t-1 shares interpolate to a (random) wrong value with
        // overwhelming probability; assert over several trials.
        let mut r = rng();
        let mut hits = 0;
        for _ in 0..20 {
            let shares = split(999, 3, 5, &mut r).unwrap();
            if reconstruct(&shares[..2]).unwrap() == 999 {
                hits += 1;
            }
        }
        assert!(hits <= 1, "threshold leaked the secret {hits}/20 times");
    }

    #[test]
    fn validation() {
        let mut r = rng();
        assert!(split(1, 0, 3, &mut r).is_err());
        assert!(split(1, 4, 3, &mut r).is_err());
        assert!(split(MODULUS, 2, 3, &mut r).is_err());
        assert!(reconstruct(&[]).is_err());
        let s = Share { x: 1, y: 2 };
        assert!(reconstruct(&[s, s]).is_err());
    }

    #[test]
    fn vector_roundtrip_with_dropout() {
        let mut r = rng();
        let values: Vec<u64> = (0..10).map(|i| i * 31 + 5).collect();
        let parties = split_vector(&values, 3, 5, &mut r).unwrap();
        // Parties 1 and 4 drop out; 0, 2, 3 reconstruct.
        let alive: Vec<&[Share]> = [0usize, 2, 3]
            .iter()
            .map(|&p| parties[p].as_slice())
            .collect();
        assert_eq!(reconstruct_vector(&alive).unwrap(), values);
    }

    #[test]
    fn field_arithmetic_identities() {
        assert_eq!(reduce(MODULUS as u128), 0);
        assert_eq!(add(MODULUS - 1, 1), 0);
        assert_eq!(sub(0, 1), MODULUS - 1);
        for a in [1u64, 2, 12345, MODULUS - 2] {
            assert_eq!(mul(a, inv(a).unwrap()), 1, "inverse of {a}");
        }
        assert!(inv(0).is_err());
        // The public wrappers agree with the internal operations.
        assert_eq!(field_add(MODULUS - 1, 2), 1);
        assert_eq!(field_sub(1, 2), MODULUS - 1);
        assert_eq!(field_sub(field_add(5, 7), 7), 5);
    }
}
