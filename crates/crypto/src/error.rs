use std::fmt;

/// Errors produced by the cryptographic substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A plaintext does not fit the fixed-point encoding range.
    ValueOutOfRange {
        /// The offending value, rendered to text (f64 is not `Eq`).
        value: String,
        /// Largest encodable magnitude.
        limit: String,
    },
    /// A decoded aggregate exceeded the representable range, meaning the
    /// modular sum wrapped and the result would be silently wrong.
    AggregateOverflow,
    /// Requested key size is too small to be meaningful.
    KeyTooSmall {
        /// Bits requested.
        bits: usize,
        /// Minimum accepted.
        min: usize,
    },
    /// A ciphertext or group element was not in the expected group.
    NotInGroup,
    /// A modular inverse does not exist (operand shares a factor with the
    /// modulus).
    NotInvertible,
    /// The protocol was invoked with inconsistent party inputs (e.g. vectors
    /// of different lengths, or zero parties).
    ProtocolMisuse {
        /// What went wrong.
        reason: &'static str,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::ValueOutOfRange { value, limit } => {
                write!(f, "value {value} outside encodable range (limit {limit})")
            }
            CryptoError::AggregateOverflow => {
                write!(f, "aggregate overflowed the fixed-point range")
            }
            CryptoError::KeyTooSmall { bits, min } => {
                write!(f, "key size {bits} bits is below the minimum {min}")
            }
            CryptoError::NotInGroup => write!(f, "element is not in the expected group"),
            CryptoError::NotInvertible => write!(f, "element has no modular inverse"),
            CryptoError::ProtocolMisuse { reason } => write!(f, "protocol misuse: {reason}"),
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CryptoError::AggregateOverflow
            .to_string()
            .contains("overflow"));
        assert!(CryptoError::ProtocolMisuse { reason: "empty" }
            .to_string()
            .contains("empty"));
    }

    #[test]
    fn is_send_sync_error() {
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<CryptoError>();
    }
}
