//! The two data-sharing topologies of §I (Figs. 2 and 3).

use ppml_linalg::Matrix;

use crate::{rng, DataError, Dataset, Result};

/// Partitioning constructors. The type itself is a namespace; partitions are
/// returned as plain datasets (horizontal) or a [`VerticalView`].
#[derive(Debug, Clone, Copy)]
pub struct Partition;

impl Partition {
    /// Horizontal partitioning (Fig. 2): rows are randomly assigned to `m`
    /// learners; every learner sees all features of its own records.
    ///
    /// Every learner receives at least one row (the first `m` rows of the
    /// permutation are dealt round-robin before the remainder is assigned
    /// randomly).
    ///
    /// # Errors
    ///
    /// [`DataError::BadPartition`] when `m == 0` or `m > data.len()`.
    pub fn horizontal(data: &Dataset, m: usize, seed: u64) -> Result<Vec<Dataset>> {
        if m == 0 || m > data.len() {
            return Err(DataError::BadPartition {
                reason: format!("{m} learners for {} rows", data.len()),
            });
        }
        let mut rng = rng::seeded(seed);
        let perm = rng::permutation(data.len(), &mut rng);
        let mut assignment = vec![Vec::new(); m];
        for (pos, &row) in perm.iter().enumerate() {
            if pos < m {
                assignment[pos].push(row);
            } else {
                let learner = rng.index(m);
                assignment[learner].push(row);
            }
        }
        Ok(assignment.iter().map(|idx| data.select(idx)).collect())
    }

    /// Vertical partitioning (Fig. 3): features are randomly assigned to
    /// `m` learners; every learner holds a column slice of **all** rows,
    /// and the labels are shared by all learners (as §IV-C assumes).
    ///
    /// # Errors
    ///
    /// [`DataError::BadPartition`] when `m == 0` or `m > data.features()`.
    pub fn vertical(data: &Dataset, m: usize, seed: u64) -> Result<VerticalView> {
        if m == 0 || m > data.features() {
            return Err(DataError::BadPartition {
                reason: format!("{m} learners for {} features", data.features()),
            });
        }
        let mut rng = rng::seeded(seed);
        let perm = rng::permutation(data.features(), &mut rng);
        let mut feature_sets = vec![Vec::new(); m];
        for (pos, &col) in perm.iter().enumerate() {
            if pos < m {
                feature_sets[pos].push(col);
            } else {
                let learner = rng.index(m);
                feature_sets[learner].push(col);
            }
        }
        // Keep each learner's columns in ascending original order, so the
        // view is stable and re-assembly is straightforward.
        for set in &mut feature_sets {
            set.sort_unstable();
        }
        let parts = feature_sets
            .iter()
            .map(|cols| data.x().select_cols(cols))
            .collect();
        Ok(VerticalView {
            parts,
            feature_sets,
            y: data.y().to_vec(),
        })
    }
}

/// A vertically partitioned dataset: per-learner column slices plus the
/// shared labels.
#[derive(Debug, Clone, PartialEq)]
pub struct VerticalView {
    parts: Vec<Matrix>,
    feature_sets: Vec<Vec<usize>>,
    y: Vec<f64>,
}

impl VerticalView {
    /// Number of learners.
    pub fn learners(&self) -> usize {
        self.parts.len()
    }

    /// Learner `m`'s column slice (all rows, its features only).
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of bounds.
    pub fn part(&self, m: usize) -> &Matrix {
        &self.parts[m]
    }

    /// Original feature indices held by learner `m`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of bounds.
    pub fn features_of(&self, m: usize) -> &[usize] {
        &self.feature_sets[m]
    }

    /// The shared label vector.
    pub fn y(&self) -> &[f64] {
        &self.y
    }

    /// Number of rows (identical across learners).
    pub fn rows(&self) -> usize {
        self.y.len()
    }

    /// Splits a full test sample into per-learner slices matching this
    /// partition — what each learner would see of a new record at
    /// prediction time.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is shorter than the highest partitioned feature
    /// index.
    pub fn slice_sample(&self, sample: &[f64]) -> Vec<Vec<f64>> {
        self.feature_sets
            .iter()
            .map(|cols| cols.iter().map(|&c| sample[c]).collect())
            .collect()
    }

    /// Re-assembles the full feature matrix (tests only — doing this in
    /// production would defeat the privacy design).
    pub fn reassemble(&self) -> Matrix {
        let total: usize = self.feature_sets.iter().map(Vec::len).sum();
        let mut x = Matrix::zeros(self.rows(), total);
        for (part, cols) in self.parts.iter().zip(&self.feature_sets) {
            for i in 0..self.rows() {
                for (local, &global) in cols.iter().enumerate() {
                    x[(i, global)] = part[(i, local)];
                }
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, k: usize) -> Dataset {
        let x = Matrix::from_fn(n, k, |i, j| (i * k + j) as f64);
        let y = (0..n)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn horizontal_covers_all_rows_once() {
        let ds = toy(20, 3);
        let parts = Partition::horizontal(&ds, 4, 7).unwrap();
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(|p| !p.is_empty()));
        let total: usize = parts.iter().map(Dataset::len).sum();
        assert_eq!(total, 20);
        // Every original row appears exactly once across parts.
        let mut seen: Vec<Vec<f64>> = parts
            .iter()
            .flat_map(|p| {
                (0..p.len())
                    .map(|i| p.sample(i).to_vec())
                    .collect::<Vec<_>>()
            })
            .collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut orig: Vec<Vec<f64>> = (0..20).map(|i| ds.sample(i).to_vec()).collect();
        orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(seen, orig);
    }

    #[test]
    fn horizontal_is_deterministic() {
        let ds = toy(12, 2);
        let a = Partition::horizontal(&ds, 3, 5).unwrap();
        let b = Partition::horizontal(&ds, 3, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn horizontal_rejects_bad_m() {
        let ds = toy(3, 2);
        assert!(Partition::horizontal(&ds, 0, 1).is_err());
        assert!(Partition::horizontal(&ds, 4, 1).is_err());
    }

    #[test]
    fn vertical_covers_all_features_once() {
        let ds = toy(6, 8);
        let view = Partition::vertical(&ds, 3, 11).unwrap();
        assert_eq!(view.learners(), 3);
        let mut all: Vec<usize> = (0..3).flat_map(|m| view.features_of(m).to_vec()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
        assert!((0..3).all(|m| !view.features_of(m).is_empty()));
        assert_eq!(view.rows(), 6);
        assert_eq!(view.y(), ds.y());
    }

    #[test]
    fn vertical_reassembles_to_original() {
        let ds = toy(5, 7);
        let view = Partition::vertical(&ds, 2, 3).unwrap();
        assert!(view.reassemble().max_abs_diff(ds.x()).unwrap() < 1e-15);
    }

    #[test]
    fn vertical_slice_sample_matches_parts() {
        let ds = toy(4, 6);
        let view = Partition::vertical(&ds, 2, 9).unwrap();
        let sample = ds.sample(2);
        let slices = view.slice_sample(sample);
        for (m, slice) in slices.iter().enumerate() {
            assert_eq!(slice.as_slice(), view.part(m).row(2));
        }
    }

    #[test]
    fn vertical_rejects_bad_m() {
        let ds = toy(4, 2);
        assert!(Partition::vertical(&ds, 0, 1).is_err());
        assert!(Partition::vertical(&ds, 3, 1).is_err());
    }
}
