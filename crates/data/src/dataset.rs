//! Labeled binary-classification datasets.

use ppml_linalg::Matrix;

use crate::{rng, DataError, Result};

/// A binary-classification dataset: a feature matrix (one sample per row)
/// and labels in `{−1, +1}`.
///
/// # Example
///
/// ```
/// use ppml_data::Dataset;
/// use ppml_linalg::Matrix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]])?;
/// let ds = Dataset::new(x, vec![1.0, -1.0])?;
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.label(1), -1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    x: Matrix,
    y: Vec<f64>,
}

impl Dataset {
    /// Creates a dataset, validating label count and values.
    ///
    /// # Errors
    ///
    /// [`DataError::LabelMismatch`] or [`DataError::BadLabel`].
    pub fn new(x: Matrix, y: Vec<f64>) -> Result<Self> {
        if x.rows() != y.len() {
            return Err(DataError::LabelMismatch {
                rows: x.rows(),
                labels: y.len(),
            });
        }
        if let Some((i, &v)) = y.iter().enumerate().find(|(_, &v)| v != 1.0 && v != -1.0) {
            return Err(DataError::BadLabel { index: i, value: v });
        }
        Ok(Dataset { x, y })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// `true` when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of features.
    pub fn features(&self) -> usize {
        self.x.cols()
    }

    /// The feature matrix.
    pub fn x(&self) -> &Matrix {
        &self.x
    }

    /// The label vector.
    pub fn y(&self) -> &[f64] {
        &self.y
    }

    /// One sample's feature row.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn sample(&self, i: usize) -> &[f64] {
        self.x.row(i)
    }

    /// One sample's label.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn label(&self, i: usize) -> f64 {
        self.y[i]
    }

    /// Counts of `(positive, negative)` samples.
    pub fn class_counts(&self) -> (usize, usize) {
        let pos = self.y.iter().filter(|&&v| v > 0.0).count();
        (pos, self.y.len() - pos)
    }

    /// Sub-dataset formed by the given row indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn select(&self, idx: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(idx),
            y: idx.iter().map(|&i| self.y[i]).collect(),
        }
    }

    /// Random `(train, test)` split with `fraction` of samples in train.
    ///
    /// # Errors
    ///
    /// [`DataError::BadSplit`] when either side would be empty;
    /// [`DataError::Empty`] on an empty dataset.
    pub fn split(&self, fraction: f64, seed: u64) -> Result<(Dataset, Dataset)> {
        if self.is_empty() {
            return Err(DataError::Empty);
        }
        let n_train = (self.len() as f64 * fraction).round() as usize;
        if n_train == 0 || n_train >= self.len() {
            return Err(DataError::BadSplit { fraction });
        }
        let perm = rng::permutation(self.len(), &mut rng::seeded(seed));
        Ok((self.select(&perm[..n_train]), self.select(&perm[n_train..])))
    }

    /// Standardizes features to zero mean / unit variance **using this
    /// dataset's statistics**, returning the scaled dataset and the
    /// `(mean, std)` per feature so the same transform can be applied to a
    /// test set via [`Dataset::apply_scaling`].
    ///
    /// # Errors
    ///
    /// [`DataError::Empty`] on an empty dataset.
    pub fn standardize(&self) -> Result<(Dataset, Vec<(f64, f64)>)> {
        if self.is_empty() {
            return Err(DataError::Empty);
        }
        let (n, k) = (self.len(), self.features());
        let mut stats = Vec::with_capacity(k);
        for j in 0..k {
            let col = self.x.col(j);
            let mean = col.iter().sum::<f64>() / n as f64;
            let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
            let std = var.sqrt().max(1e-12);
            stats.push((mean, std));
        }
        Ok((self.apply_scaling(&stats)?, stats))
    }

    /// Applies a previously computed per-feature `(mean, std)` transform.
    ///
    /// # Errors
    ///
    /// [`DataError::BadPartition`] when the stats length does not match the
    /// feature count.
    pub fn apply_scaling(&self, stats: &[(f64, f64)]) -> Result<Dataset> {
        if stats.len() != self.features() {
            return Err(DataError::BadPartition {
                reason: format!(
                    "{} scaling stats for {} features",
                    stats.len(),
                    self.features()
                ),
            });
        }
        let x = Matrix::from_fn(self.len(), self.features(), |i, j| {
            (self.x[(i, j)] - stats[j].0) / stats[j].1
        });
        Ok(Dataset {
            x,
            y: self.y.clone(),
        })
    }

    /// Serializes as CSV: one sample per line, features then label.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for i in 0..self.len() {
            for v in self.sample(i) {
                out.push_str(&format!("{v},"));
            }
            out.push_str(&format!("{}\n", self.y[i]));
        }
        out
    }

    /// Parses the CSV format produced by [`Dataset::to_csv`].
    ///
    /// # Errors
    ///
    /// [`DataError::Parse`] with the offending line;
    /// [`DataError::Empty`] for blank input.
    pub fn from_csv(text: &str) -> Result<Dataset> {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut y = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let vals: std::result::Result<Vec<f64>, _> = line
                .split(',')
                .map(str::trim)
                .map(str::parse::<f64>)
                .collect();
            let mut vals = vals.map_err(|e| DataError::Parse {
                line: lineno + 1,
                reason: e.to_string(),
            })?;
            let label = vals.pop().ok_or(DataError::Parse {
                line: lineno + 1,
                reason: "empty line".to_string(),
            })?;
            y.push(label);
            rows.push(vals);
        }
        if rows.is_empty() {
            return Err(DataError::Empty);
        }
        let cols = rows[0].len();
        if let Some(i) = rows.iter().position(|r| r.len() != cols) {
            return Err(DataError::Parse {
                line: i + 1,
                reason: "inconsistent column count".to_string(),
            });
        }
        let data: Vec<f64> = rows.into_iter().flatten().collect();
        let x = Matrix::from_vec(y.len(), cols, data).expect("validated shape");
        Dataset::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let x = Matrix::from_fn(10, 3, |i, j| (i * 3 + j) as f64);
        let y = (0..10)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn validation() {
        let x = Matrix::zeros(2, 2);
        assert!(matches!(
            Dataset::new(x.clone(), vec![1.0]),
            Err(DataError::LabelMismatch { .. })
        ));
        assert!(matches!(
            Dataset::new(x, vec![1.0, 0.0]),
            Err(DataError::BadLabel { index: 1, .. })
        ));
    }

    #[test]
    fn accessors() {
        let ds = toy();
        assert_eq!(ds.len(), 10);
        assert_eq!(ds.features(), 3);
        assert_eq!(ds.sample(1), &[3.0, 4.0, 5.0]);
        assert_eq!(ds.label(1), -1.0);
        assert_eq!(ds.class_counts(), (5, 5));
        assert!(!ds.is_empty());
    }

    #[test]
    fn select_preserves_pairing() {
        let ds = toy();
        let sub = ds.select(&[3, 0]);
        assert_eq!(sub.sample(0), ds.sample(3));
        assert_eq!(sub.label(0), ds.label(3));
        assert_eq!(sub.len(), 2);
    }

    #[test]
    fn split_partitions_everything() {
        let ds = toy();
        let (train, test) = ds.split(0.5, 9).unwrap();
        assert_eq!(train.len() + test.len(), ds.len());
        assert_eq!(train.len(), 5);
        // Deterministic in the seed.
        let (train2, _) = ds.split(0.5, 9).unwrap();
        assert_eq!(train, train2);
    }

    #[test]
    fn split_rejects_degenerate_fractions() {
        let ds = toy();
        assert!(ds.split(0.0, 1).is_err());
        assert!(ds.split(1.0, 1).is_err());
    }

    #[test]
    fn standardize_zero_mean_unit_var() {
        let ds = toy();
        let (scaled, stats) = ds.standardize().unwrap();
        for j in 0..3 {
            let col = scaled.x().col(j);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            let var: f64 =
                col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
        // Applying the same stats to the original reproduces the scaled set.
        assert_eq!(ds.apply_scaling(&stats).unwrap(), scaled);
    }

    #[test]
    fn apply_scaling_validates_length() {
        let ds = toy();
        assert!(ds.apply_scaling(&[(0.0, 1.0)]).is_err());
    }

    #[test]
    fn csv_roundtrip() {
        let ds = toy();
        let parsed = Dataset::from_csv(&ds.to_csv()).unwrap();
        assert_eq!(parsed.len(), ds.len());
        assert_eq!(parsed.y(), ds.y());
        assert!(parsed.x().max_abs_diff(ds.x()).unwrap() < 1e-12);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(matches!(
            Dataset::from_csv("1.0,foo,1\n"),
            Err(DataError::Parse { line: 1, .. })
        ));
        assert!(matches!(Dataset::from_csv(""), Err(DataError::Empty)));
        assert!(Dataset::from_csv("1.0,2.0,1\n3.0,-1\n").is_err());
    }
}
