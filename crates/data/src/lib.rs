//! Datasets, partitioning and the paper's three evaluation workloads.
//!
//! §VI evaluates against UCI breast-cancer (9 features × 569 instances),
//! HIGGS (28 features, 11 000 instances used) and UCI optical-digits
//! (64 features × 5 620 instances). Those archives are not available
//! offline, so [`synth`] provides generators *calibrated to the properties
//! the paper's analysis actually relies on*:
//!
//! * [`synth::cancer_like`] — low-dimensional, well separated; centralized
//!   SVM ≈ 95 % (the paper's easy benchmark);
//! * [`synth::higgs_like`] — high overlap between classes; centralized SVM
//!   ≈ 70 % ("the knowledge is hard to discover");
//! * [`synth::ocr_like`] — many, highly correlated features from a low-rank
//!   latent factor model; centralized SVM ≈ 98 % (drives the vertical
//!   partitioning discussion, where correlated features force learners to
//!   cooperate).
//!
//! [`Partition`] implements the two sharing topologies of Figs. 2–3:
//! horizontal (each learner holds complete rows) and vertical (each learner
//! holds a column slice of every row).
//!
//! # Example
//!
//! ```
//! use ppml_data::{synth, Partition};
//!
//! # fn main() -> Result<(), ppml_data::DataError> {
//! let ds = synth::cancer_like(200, 1);
//! let (train, test) = ds.split(0.5, 7)?;               // the paper's 50/50
//! let parts = Partition::horizontal(&train, 4, 42)?;   // M = 4 learners
//! assert_eq!(parts.len(), 4);
//! assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), train.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
pub mod check;
mod dataset;
mod error;
pub mod multiclass;
mod partition;
pub mod rng;
pub mod synth;

pub use dataset::Dataset;
pub use error::DataError;
pub use partition::{Partition, VerticalView};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataError>;
