//! Deterministic random sampling helpers shared across the workspace.
//!
//! Everything in the evaluation pipeline must be reproducible from a single
//! `u64` seed; these helpers wrap [`rand::rngs::StdRng`] with the couple of
//! distributions the generators and trainers need (the offline dependency
//! set has no `rand_distr`).

use rand::{rngs::StdRng, Rng, SeedableRng};

/// Creates the workspace-standard seeded RNG.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// One standard-normal draw (Box–Muller; uses two uniforms per call for
/// simplicity — sampling cost is irrelevant next to training cost).
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Fills a vector with i.i.d. `N(0, 1)` draws.
pub fn normal_vec<R: Rng>(len: usize, rng: &mut R) -> Vec<f64> {
    (0..len).map(|_| standard_normal(rng)).collect()
}

/// A uniformly random permutation of `0..n` (Fisher–Yates).
pub fn permutation<R: Rng>(n: usize, rng: &mut R) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let a = normal_vec(16, &mut seeded(3));
        let b = normal_vec(16, &mut seeded(3));
        assert_eq!(a, b);
        let c = normal_vec(16, &mut seeded(4));
        assert_ne!(a, c);
    }

    #[test]
    fn normal_moments() {
        let mut rng = seeded(11);
        let v = normal_vec(20_000, &mut rng);
        let mean: f64 = v.iter().sum::<f64>() / v.len() as f64;
        let var: f64 = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = seeded(5);
        let p = permutation(100, &mut rng);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn permutation_of_small_sizes() {
        let mut rng = seeded(1);
        assert_eq!(permutation(0, &mut rng), Vec::<usize>::new());
        assert_eq!(permutation(1, &mut rng), vec![0]);
    }
}
