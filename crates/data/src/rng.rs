//! Deterministic random sampling for the whole workspace — no external
//! crates.
//!
//! Everything in the evaluation pipeline must be reproducible from a single
//! `u64` seed. The previous revision wrapped `rand::rngs::StdRng`; the
//! offline build has no registry access, so [`Rng64`] is now an internal
//! xoshiro256++ generator (Blackman & Vigna) seeded through SplitMix64 —
//! the standard construction, ~10 lines, and statistically far stronger
//! than the sampling here needs. The helpers below cover the couple of
//! distributions the generators and trainers use.

/// The workspace PRNG: xoshiro256++ with SplitMix64 seed expansion.
///
/// Deterministic in the seed, `Clone` so streams can be forked, and cheap
/// enough to create per (pair, iteration) as the masking layer does.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a single seed (SplitMix64 expansion, so
    /// nearby seeds still give unrelated streams).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        Rng64 { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)`, unbiased via rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Reject the final partial block so every residue is equally likely.
        let limit = u64::MAX - u64::MAX % bound;
        loop {
            let x = self.next_u64();
            if x < limit {
                return x % bound;
            }
        }
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }
}

/// Creates the workspace-standard seeded RNG.
pub fn seeded(seed: u64) -> Rng64 {
    Rng64::new(seed)
}

/// One standard-normal draw (Box–Muller; uses two uniforms per call for
/// simplicity — sampling cost is irrelevant next to training cost).
pub fn standard_normal(rng: &mut Rng64) -> f64 {
    loop {
        let u1 = rng.unit_f64();
        let u2 = rng.unit_f64();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Fills a vector with i.i.d. `N(0, 1)` draws.
pub fn normal_vec(len: usize, rng: &mut Rng64) -> Vec<f64> {
    (0..len).map(|_| standard_normal(rng)).collect()
}

/// A uniformly random permutation of `0..n` (Fisher–Yates).
pub fn permutation(n: usize, rng: &mut Rng64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.index(i + 1);
        idx.swap(i, j);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let a = normal_vec(16, &mut seeded(3));
        let b = normal_vec(16, &mut seeded(3));
        assert_eq!(a, b);
        let c = normal_vec(16, &mut seeded(4));
        assert_ne!(a, c);
    }

    #[test]
    fn normal_moments() {
        let mut rng = seeded(11);
        let v = normal_vec(20_000, &mut rng);
        let mean: f64 = v.iter().sum::<f64>() / v.len() as f64;
        let var: f64 = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn unit_f64_in_range_and_spread() {
        let mut rng = seeded(2);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = seeded(7);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.below(5) as usize] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "skewed bucket: {c}");
        }
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = seeded(5);
        let p = permutation(100, &mut rng);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn permutation_of_small_sizes() {
        let mut rng = seeded(1);
        assert_eq!(permutation(0, &mut rng), Vec::<usize>::new());
        assert_eq!(permutation(1, &mut rng), vec![0]);
    }

    #[test]
    fn forked_streams_diverge() {
        let mut a = seeded(9);
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
        let _ = a.next_u64();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
