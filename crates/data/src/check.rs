//! Minimal property-testing harness: seeded generators plus an assertion
//! loop.
//!
//! The workspace previously used `proptest`, which the offline build cannot
//! resolve. The suites here only ever needed "run this predicate over a few
//! dozen random instances", so this module provides exactly that: a
//! [`Gen`] with the handful of primitive generators the suites use, and
//! [`run_cases`] which drives a closure over deterministically seeded cases
//! and reports the failing case index. There is no shrinking — cases are
//! reproducible from (property name, case index), which is enough to debug
//! a failure by hand.

use crate::rng::Rng64;

/// Per-case generator handed to the property closure.
#[derive(Debug)]
pub struct Gen {
    rng: Rng64,
}

impl Gen {
    /// Generator for `case` of the property named `name` (FNV-1a of the
    /// name mixed with the case index, so properties are independent).
    pub fn for_case(name: &str, case: usize) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Gen {
            rng: Rng64::new(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.rng.unit_f64()
    }

    /// Vector of `len` uniform draws from `[lo, hi)`.
    pub fn vec_f64(&mut self, lo: f64, hi: f64, len: usize) -> Vec<f64> {
        (0..len).map(|_| self.f64_in(lo, hi)).collect()
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.rng.below(hi - lo)
    }

    /// Vector of `len` uniform draws from `[lo, hi)`.
    pub fn vec_u64(&mut self, lo: u64, hi: u64, len: usize) -> Vec<u64> {
        (0..len).map(|_| self.u64_in(lo, hi)).collect()
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// Uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty.
    pub fn pick<'a, T>(&mut self, choices: &'a [T]) -> &'a T {
        &choices[self.rng.index(choices.len())]
    }

    /// Direct access to the underlying PRNG for bespoke generators.
    pub fn rng(&mut self) -> &mut Rng64 {
        &mut self.rng
    }
}

/// Runs `body` over `cases` deterministic cases; on panic, reports which
/// case failed (re-running the test reproduces it exactly).
pub fn run_cases(name: &str, cases: usize, mut body: impl FnMut(&mut Gen, usize)) {
    for case in 0..cases {
        let mut g = Gen::for_case(name, case);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut g, case)));
        if let Err(payload) = outcome {
            eprintln!("property `{name}` failed at case {case} of {cases} (deterministic; rerun reproduces)");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_per_name_and_index() {
        let a = Gen::for_case("p", 3).vec_f64(-1.0, 1.0, 8);
        let b = Gen::for_case("p", 3).vec_f64(-1.0, 1.0, 8);
        assert_eq!(a, b);
        let c = Gen::for_case("p", 4).vec_f64(-1.0, 1.0, 8);
        assert_ne!(a, c);
        let d = Gen::for_case("q", 3).vec_f64(-1.0, 1.0, 8);
        assert_ne!(a, d);
    }

    #[test]
    fn ranges_are_respected() {
        run_cases("ranges", 50, |g, _| {
            let x = g.f64_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
            let u = g.u64_in(10, 20);
            assert!((10..20).contains(&u));
            let i = g.usize_in(0, 5);
            assert!(i < 5);
            let p = *g.pick(&[1, 2, 3]);
            assert!([1, 2, 3].contains(&p));
        });
    }

    #[test]
    fn failing_case_panics_through() {
        let hit = std::panic::catch_unwind(|| {
            run_cases("always-fails", 3, |_, case| assert!(case < 1, "boom"));
        });
        assert!(hit.is_err());
    }
}
