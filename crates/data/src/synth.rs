//! Synthetic stand-ins for the paper's three evaluation datasets.
//!
//! The UCI/HIGGS archives are not redistributable inside this offline
//! environment, so each generator reproduces the *statistical profile* the
//! paper's §VI discussion relies on instead of the raw bytes:
//! dimensionality, class balance, separability (which pins the centralized
//! SVM baseline accuracy) and — for the OCR stand-in — strong inter-feature
//! correlation from a low-rank latent structure.
//!
//! Separability calibration: for two equal-covariance Gaussians at distance
//! `d` (unit noise), the Bayes accuracy is `Φ(d/2)`; generators pick `d`
//! to land the paper's baseline numbers (95 % / 70 % / 98 %).

use ppml_linalg::Matrix;

use crate::{rng, Dataset};

/// Inverse of the standard normal CDF at the target accuracy, times two —
/// the class-mean distance that yields that Bayes accuracy.
fn separation_for_accuracy(acc: f64) -> f64 {
    // Beasley-Springer-Moro-ish rational approximation is overkill; the
    // three probit values we need are constants.
    let probit = match acc {
        a if (a - 0.95).abs() < 1e-9 => 1.6449,
        a if (a - 0.70).abs() < 1e-9 => 0.5244,
        a if (a - 0.98).abs() < 1e-9 => 2.0537,
        _ => inverse_probit(acc),
    };
    2.0 * probit
}

/// Newton's method on the normal CDF (only used for non-standard targets).
fn inverse_probit(p: f64) -> f64 {
    assert!(
        (0.5..1.0).contains(&p),
        "accuracy target must be in [0.5, 1)"
    );
    let mut x = 0.0f64;
    for _ in 0..64 {
        let cdf = 0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2));
        let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
        x -= (cdf - p) / pdf.max(1e-12);
    }
    x
}

/// Abramowitz–Stegun 7.1.26 approximation of erf (|error| ≤ 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = x.signum();
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Two-Gaussian dataset: `n` samples, `k` features, class means at
/// `±delta/2` along a random unit direction, unit isotropic noise.
fn two_gaussians(n: usize, k: usize, delta: f64, seed: u64) -> Dataset {
    let mut r = rng::seeded(seed);
    // Random unit direction for the class axis.
    let dir = rng::normal_vec(k, &mut r);
    let norm = dir.iter().map(|v| v * v).sum::<f64>().sqrt();
    let dir: Vec<f64> = dir.iter().map(|v| v * delta / (2.0 * norm)).collect();
    let mut y = Vec::with_capacity(n);
    let x = Matrix::from_fn(n, k, |i, j| {
        if j == 0 && y.len() <= i {
            y.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
        sign * dir[j] + rng::standard_normal(&mut r)
    });
    Dataset::new(x, y).expect("generator produces consistent shapes")
}

/// Breast-cancer stand-in: 9 features, well separated (centralized SVM
/// baseline ≈ 95 %). The paper's "easy" dataset; 569 instances in §VI.
///
/// # Example
///
/// ```
/// let ds = ppml_data::synth::cancer_like(569, 42);
/// assert_eq!(ds.features(), 9);
/// assert_eq!(ds.len(), 569);
/// ```
pub fn cancer_like(n: usize, seed: u64) -> Dataset {
    // Bayes target 97%: the finite-sample SVM lands at the paper's ~95%.
    two_gaussians(n, 9, separation_for_accuracy(0.97), seed ^ 0xCA_0C_E4)
}

/// HIGGS stand-in: 28 features with heavily overlapping classes
/// (centralized baseline ≈ 70 %) — "its two classes are highly inseparable".
pub fn higgs_like(n: usize, seed: u64) -> Dataset {
    // Bayes target 73% → empirical SVM ≈ the paper's 70%.
    two_gaussians(n, 28, separation_for_accuracy(0.73), seed ^ 0x81665)
}

/// Optical-digits stand-in: 64 features generated from an 8-dimensional
/// latent factor model (`x = A·z + 0.05·ε`), so features are *highly
/// correlated* — the property §VI blames for slow vertical convergence —
/// while classes remain well separated in latent space (baseline ≈ 98 %).
pub fn ocr_like(n: usize, seed: u64) -> Dataset {
    const LATENT: usize = 8;
    const FEATURES: usize = 64;
    let mut r = rng::seeded(seed ^ 0x0C_12);
    // Bayes target 99.5% in latent space → empirical SVM ≈ the paper's 98%.
    let delta = separation_for_accuracy(0.995);
    // Latent class axis.
    let dir = rng::normal_vec(LATENT, &mut r);
    let norm = dir.iter().map(|v| v * v).sum::<f64>().sqrt();
    let dir: Vec<f64> = dir.iter().map(|v| v * delta / (2.0 * norm)).collect();
    // Mixing matrix, column-normalized so feature scales stay O(1).
    let mix = Matrix::from_fn(FEATURES, LATENT, |_, _| {
        rng::standard_normal(&mut r) / (LATENT as f64).sqrt()
    });
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
        y.push(sign);
        let z: Vec<f64> = (0..LATENT)
            .map(|d| sign * dir[d] + rng::standard_normal(&mut r))
            .collect();
        let mut x = mix.matvec(&z).expect("latent dimension matches");
        for v in &mut x {
            *v += 0.05 * rng::standard_normal(&mut r);
        }
        rows.push(x);
    }
    let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    Dataset::new(Matrix::from_rows(&refs).expect("equal-length rows"), y).expect("labels are ±1")
}

/// A trivially separable 2-D dataset for quickstarts and tests: class `+1`
/// near `(+2, +2)`, class `−1` near `(−2, −2)`.
pub fn blobs(n: usize, seed: u64) -> Dataset {
    let mut r = rng::seeded(seed);
    let mut y = Vec::with_capacity(n);
    let x = Matrix::from_fn(n, 2, |i, _| {
        if y.len() <= i {
            y.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
        2.0 * sign + 0.6 * rng::standard_normal(&mut r)
    });
    Dataset::new(x, y).expect("generator produces consistent shapes")
}

/// An XOR-patterned dataset: a linear classifier tops out near 75 % (a
/// shifted hyperplane can capture three of the four quadrants, never all),
/// while an RBF kernel separates it almost perfectly — used to demonstrate
/// the nonlinear trainers.
pub fn xor_like(n: usize, seed: u64) -> Dataset {
    let mut r = rng::seeded(seed ^ 0x40B);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let qx = if (i / 2) % 2 == 0 { 1.0 } else { -1.0 };
        let qy = if i % 2 == 0 { 1.0 } else { -1.0 };
        rows.push(vec![
            1.5 * qx + 0.4 * rng::standard_normal(&mut r),
            1.5 * qy + 0.4 * rng::standard_normal(&mut r),
        ]);
        y.push(qx * qy);
    }
    let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    Dataset::new(Matrix::from_rows(&refs).expect("2-wide rows"), y).expect("labels are ±1")
}

/// Returns a copy of `data` with a fraction `rate` of labels flipped
/// (deterministic in `seed`) — the outlier/label-noise regime §III's slack
/// discussion is about: "the slack variable ξ could be used to reject
/// outliers", with `C` trading margin width against tolerance.
///
/// # Panics
///
/// Panics unless `0 ≤ rate ≤ 1`.
pub fn with_label_noise(data: &Dataset, rate: f64, seed: u64) -> Dataset {
    assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
    let mut r = rng::seeded(seed ^ 0x01_5E);
    let flips = (data.len() as f64 * rate).round() as usize;
    let perm = rng::permutation(data.len(), &mut r);
    let mut y = data.y().to_vec();
    for &i in perm.iter().take(flips) {
        y[i] = -y[i];
    }
    Dataset::new(data.x().clone(), y).expect("labels stay in ±1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_paper() {
        assert_eq!(cancer_like(569, 1).features(), 9);
        assert_eq!(higgs_like(100, 1).features(), 28);
        assert_eq!(ocr_like(100, 1).features(), 64);
    }

    #[test]
    fn classes_are_balanced() {
        for ds in [cancer_like(200, 2), higgs_like(200, 2), ocr_like(200, 2)] {
            let (pos, neg) = ds.class_counts();
            assert_eq!(pos, neg);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(cancer_like(50, 9), cancer_like(50, 9));
        assert_ne!(cancer_like(50, 9), cancer_like(50, 10));
    }

    #[test]
    fn separation_ordering_matches_difficulty() {
        // Distance between class means: cancer > higgs, via the projection
        // onto the empirical mean difference.
        let dist = |ds: &Dataset| {
            let k = ds.features();
            let mut mp = vec![0.0; k];
            let mut mn = vec![0.0; k];
            let (mut np, mut nn) = (0.0, 0.0);
            for i in 0..ds.len() {
                let row = ds.sample(i);
                if ds.label(i) > 0.0 {
                    np += 1.0;
                    for (a, b) in mp.iter_mut().zip(row) {
                        *a += b;
                    }
                } else {
                    nn += 1.0;
                    for (a, b) in mn.iter_mut().zip(row) {
                        *a += b;
                    }
                }
            }
            mp.iter()
                .zip(&mn)
                .map(|(a, b)| (a / np - b / nn).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let cancer = dist(&cancer_like(4000, 3));
        let higgs = dist(&higgs_like(4000, 3));
        assert!(
            cancer > higgs + 1.0,
            "cancer {cancer} should separate far more than higgs {higgs}"
        );
        // And the calibration targets: 2Φ⁻¹(.97)≈3.76, 2Φ⁻¹(.73)≈1.23.
        assert!((cancer - 3.76).abs() < 0.4, "cancer separation {cancer}");
        assert!((higgs - 1.23).abs() < 0.4, "higgs separation {higgs}");
    }

    #[test]
    fn ocr_features_are_highly_correlated() {
        let ds = ocr_like(600, 4);
        // Mean |corr| between the first 10 feature pairs should be far above
        // what independent features would give (~0).
        let x = ds.x();
        let n = ds.len() as f64;
        let col_stats = |j: usize| {
            let c = x.col(j);
            let m = c.iter().sum::<f64>() / n;
            let s = (c.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / n).sqrt();
            (c, m, s)
        };
        let mut acc = 0.0;
        let mut cnt = 0.0;
        for a in 0..5 {
            for b in (a + 1)..10 {
                let (ca, ma, sa) = col_stats(a);
                let (cb, mb, sb) = col_stats(b);
                let cov = ca
                    .iter()
                    .zip(&cb)
                    .map(|(u, v)| (u - ma) * (v - mb))
                    .sum::<f64>()
                    / n;
                acc += (cov / (sa * sb)).abs();
                cnt += 1.0;
            }
        }
        let mean_abs_corr = acc / cnt;
        assert!(
            mean_abs_corr > 0.3,
            "expected strong correlation, got {mean_abs_corr}"
        );
    }

    #[test]
    fn xor_defeats_linear_separation() {
        let ds = xor_like(400, 5);
        // The best single linear direction through the origin cannot reach
        // 60%: check the empirical mean difference is tiny relative to blobs.
        let mut mp = [0.0; 2];
        let mut mn = [0.0; 2];
        for i in 0..ds.len() {
            let r = ds.sample(i);
            if ds.label(i) > 0.0 {
                mp[0] += r[0];
                mp[1] += r[1];
            } else {
                mn[0] += r[0];
                mn[1] += r[1];
            }
        }
        let d = ((mp[0] - mn[0]).powi(2) + (mp[1] - mn[1]).powi(2)).sqrt() / ds.len() as f64;
        assert!(d < 0.2, "xor means should coincide, got {d}");
    }

    #[test]
    fn blobs_are_separable() {
        let ds = blobs(100, 8);
        // Perceptron-style check: sign(x1 + x2) classifies nearly all.
        let correct = (0..ds.len())
            .filter(|&i| {
                let s = ds.sample(i);
                ((s[0] + s[1]).signum() - ds.label(i)).abs() < 1e-12
            })
            .count();
        assert!(correct as f64 / ds.len() as f64 > 0.97);
    }

    #[test]
    fn label_noise_flips_exactly_the_requested_fraction() {
        let ds = blobs(100, 3);
        let noisy = with_label_noise(&ds, 0.2, 7);
        let flipped = ds.y().iter().zip(noisy.y()).filter(|(a, b)| a != b).count();
        assert_eq!(flipped, 20);
        // Features untouched.
        assert!(noisy.x().max_abs_diff(ds.x()).unwrap() < 1e-15);
        // Deterministic.
        assert_eq!(noisy, with_label_noise(&ds, 0.2, 7));
        // Degenerate rates.
        assert_eq!(with_label_noise(&ds, 0.0, 1), ds);
        let all = with_label_noise(&ds, 1.0, 1);
        assert!(ds.y().iter().zip(all.y()).all(|(a, b)| a == &-b));
    }

    #[test]
    fn probit_matches_known_values() {
        assert!((inverse_probit(0.95) - 1.6449).abs() < 1e-3);
        assert!((inverse_probit(0.70) - 0.5244).abs() < 1e-3);
        assert!((inverse_probit(0.98) - 2.0537).abs() < 1e-3);
    }
}
