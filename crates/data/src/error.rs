use std::fmt;

/// Errors produced when constructing or partitioning datasets.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// Label vector length differs from the number of rows.
    LabelMismatch {
        /// Rows in the feature matrix.
        rows: usize,
        /// Labels supplied.
        labels: usize,
    },
    /// A label was not `+1` or `-1`.
    BadLabel {
        /// Row index of the offending label.
        index: usize,
        /// The value found.
        value: f64,
    },
    /// Requested more parts than available rows/features, or zero parts.
    BadPartition {
        /// What was requested vs. available.
        reason: String,
    },
    /// A split fraction was outside `(0, 1)` or produced an empty side.
    BadSplit {
        /// The offending fraction.
        fraction: f64,
    },
    /// The dataset is empty where a non-empty one is required.
    Empty,
    /// CSV parse failure.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What failed on it.
        reason: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::LabelMismatch { rows, labels } => {
                write!(f, "{rows} rows but {labels} labels")
            }
            DataError::BadLabel { index, value } => {
                write!(f, "label at row {index} is {value}, expected +1 or -1")
            }
            DataError::BadPartition { reason } => write!(f, "bad partition: {reason}"),
            DataError::BadSplit { fraction } => {
                write!(f, "split fraction {fraction} leaves one side empty")
            }
            DataError::Empty => write!(f, "dataset is empty"),
            DataError::Parse { line, reason } => write!(f, "csv line {line}: {reason}"),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(DataError::Empty.to_string().contains("empty"));
        let e = DataError::BadLabel {
            index: 3,
            value: 0.5,
        };
        assert!(e.to_string().contains("row 3"));
    }
}
