//! Multiclass datasets and one-vs-rest reductions.
//!
//! The paper's OCR workload (optdigits) is natively a 10-class problem that
//! §VI evaluates as binary. This module carries the full multiclass task so
//! the one-vs-rest wrapper in `ppml-core` can train one privacy-preserving
//! binary SVM per class — the standard reduction LIBSVM applies.

use ppml_linalg::Matrix;

use crate::{rng, DataError, Dataset, Result};

/// A labeled multiclass dataset (labels are small class indices).
///
/// # Example
///
/// ```
/// use ppml_data::multiclass::digits_like;
///
/// let ds = digits_like(100, 10, 7);
/// assert_eq!(ds.classes(), 10);
/// assert_eq!(ds.features(), 64);
/// let binary = ds.one_vs_rest(3).unwrap();   // class 3 vs the rest
/// assert_eq!(binary.len(), 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MulticlassDataset {
    x: Matrix,
    labels: Vec<u32>,
    classes: u32,
}

impl MulticlassDataset {
    /// Creates a dataset; labels must all be `< classes`.
    ///
    /// # Errors
    ///
    /// [`DataError::LabelMismatch`] on a length mismatch and
    /// [`DataError::BadLabel`] on an out-of-range label.
    pub fn new(x: Matrix, labels: Vec<u32>, classes: u32) -> Result<Self> {
        if x.rows() != labels.len() {
            return Err(DataError::LabelMismatch {
                rows: x.rows(),
                labels: labels.len(),
            });
        }
        if let Some((i, &l)) = labels.iter().enumerate().find(|(_, &l)| l >= classes) {
            return Err(DataError::BadLabel {
                index: i,
                value: l as f64,
            });
        }
        Ok(MulticlassDataset { x, labels, classes })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features.
    pub fn features(&self) -> usize {
        self.x.cols()
    }

    /// Number of classes.
    pub fn classes(&self) -> u32 {
        self.classes
    }

    /// The feature matrix.
    pub fn x(&self) -> &Matrix {
        &self.x
    }

    /// The label vector.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// One sample's features.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn sample(&self, i: usize) -> &[f64] {
        self.x.row(i)
    }

    /// The binary one-vs-rest view for `class`: label `+1` for members,
    /// `−1` for everything else.
    ///
    /// # Errors
    ///
    /// [`DataError::BadLabel`] when `class >= self.classes()`.
    pub fn one_vs_rest(&self, class: u32) -> Result<Dataset> {
        if class >= self.classes {
            return Err(DataError::BadLabel {
                index: 0,
                value: class as f64,
            });
        }
        let y = self
            .labels
            .iter()
            .map(|&l| if l == class { 1.0 } else { -1.0 })
            .collect();
        Dataset::new(self.x.clone(), y)
    }

    /// Random `(train, test)` split preserving sample/label pairing.
    ///
    /// # Errors
    ///
    /// As [`Dataset::split`].
    pub fn split(&self, fraction: f64, seed: u64) -> Result<(Self, Self)> {
        if self.is_empty() {
            return Err(DataError::Empty);
        }
        let n_train = (self.len() as f64 * fraction).round() as usize;
        if n_train == 0 || n_train >= self.len() {
            return Err(DataError::BadSplit { fraction });
        }
        let perm = rng::permutation(self.len(), &mut rng::seeded(seed));
        let pick = |idx: &[usize]| MulticlassDataset {
            x: self.x.select_rows(idx),
            labels: idx.iter().map(|&i| self.labels[i]).collect(),
            classes: self.classes,
        };
        Ok((pick(&perm[..n_train]), pick(&perm[n_train..])))
    }

    /// Per-class sample counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.classes as usize];
        for &l in &self.labels {
            h[l as usize] += 1;
        }
        h
    }
}

/// Generator mirroring optdigits' full task: `classes` digit classes over
/// 64 correlated features from an 8-dimensional latent space, with class
/// centers placed at random well-separated latent directions.
pub fn digits_like(n: usize, classes: u32, seed: u64) -> MulticlassDataset {
    const LATENT: usize = 8;
    const FEATURES: usize = 64;
    assert!(classes >= 2, "need at least two classes");
    let mut r = rng::seeded(seed ^ 0xD161);
    // Class centers: random latent directions, normalized to radius 4 so
    // classes are well separated (digits are easy to tell apart).
    let centers: Vec<Vec<f64>> = (0..classes)
        .map(|_| {
            let v = rng::normal_vec(LATENT, &mut r);
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            v.iter().map(|x| 4.0 * x / norm).collect()
        })
        .collect();
    let mix = Matrix::from_fn(FEATURES, LATENT, |_, _| {
        rng::standard_normal(&mut r) / (LATENT as f64).sqrt()
    });
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = (i as u32) % classes;
        labels.push(class);
        let z: Vec<f64> = (0..LATENT)
            .map(|d| centers[class as usize][d] + rng::standard_normal(&mut r))
            .collect();
        let mut x = mix.matvec(&z).expect("latent dims match");
        for v in &mut x {
            *v += 0.05 * rng::standard_normal(&mut r);
        }
        rows.push(x);
    }
    let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    MulticlassDataset::new(
        Matrix::from_rows(&refs).expect("equal-length rows"),
        labels,
        classes,
    )
    .expect("labels in range by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_shapes_and_balance() {
        let ds = digits_like(100, 10, 1);
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.classes(), 10);
        assert_eq!(ds.features(), 64);
        let h = ds.class_histogram();
        assert_eq!(h.len(), 10);
        assert!(h.iter().all(|&c| c == 10));
    }

    #[test]
    fn one_vs_rest_labels() {
        let ds = digits_like(40, 4, 2);
        let bin = ds.one_vs_rest(2).unwrap();
        for i in 0..ds.len() {
            let want = if ds.labels()[i] == 2 { 1.0 } else { -1.0 };
            assert_eq!(bin.label(i), want);
        }
        assert!(ds.one_vs_rest(4).is_err());
    }

    #[test]
    fn split_preserves_pairing_and_classes() {
        let ds = digits_like(60, 3, 3);
        let (train, test) = ds.split(0.5, 4).unwrap();
        assert_eq!(train.len() + test.len(), 60);
        assert_eq!(train.classes(), 3);
        // A row in train matches its label from the original.
        let row = train.sample(0).to_vec();
        let idx = (0..ds.len())
            .find(|&i| ds.sample(i) == row.as_slice())
            .expect("row came from the original");
        assert_eq!(ds.labels()[idx], train.labels()[0]);
    }

    #[test]
    fn validation() {
        let x = Matrix::zeros(2, 2);
        assert!(MulticlassDataset::new(x.clone(), vec![0], 2).is_err());
        assert!(MulticlassDataset::new(x, vec![0, 5], 2).is_err());
    }

    #[test]
    fn deterministic() {
        assert_eq!(digits_like(30, 3, 9), digits_like(30, 3, 9));
        assert_ne!(digits_like(30, 3, 9), digits_like(30, 3, 10));
    }
}
