//! Property tests: solver outputs must satisfy the KKT conditions of their
//! problems on random positive-definite instances, and the equality solver
//! must never leave the feasible set.

use ppml_linalg::Matrix;
use ppml_qp::{solve_box, solve_box_eq, QpConfig};
use proptest::prelude::*;

fn spd_and_lin(n: usize) -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (
        proptest::collection::vec(-1.0f64..1.0, n * n),
        proptest::collection::vec(-2.0f64..2.0, n),
    )
        .prop_map(move |(raw, lin)| {
            let b = Matrix::from_vec(n, n, raw).expect("sized");
            let mut q = b.matmul(&b.transpose()).expect("square");
            q.add_diag(0.3);
            (q, lin)
        })
}

fn grad(q: &Matrix, lin: &[f64], x: &[f64]) -> Vec<f64> {
    let mut g = q.matvec(x).unwrap();
    for (gi, &li) in g.iter_mut().zip(lin) {
        *gi += li;
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn box_solution_satisfies_kkt((q, lin) in spd_and_lin(8)) {
        let sol = solve_box(&q, &lin, 0.0, 1.5, &QpConfig::default()).unwrap();
        prop_assert!(sol.converged);
        let g = grad(&q, &lin, &sol.x);
        for i in 0..8 {
            let xi = sol.x[i];
            prop_assert!((-1e-12..=1.5 + 1e-12).contains(&xi));
            if xi < 1e-9 {
                prop_assert!(g[i] >= -1e-6, "lower-bound KKT failed: g={}", g[i]);
            } else if xi > 1.5 - 1e-9 {
                prop_assert!(g[i] <= 1e-6, "upper-bound KKT failed: g={}", g[i]);
            } else {
                prop_assert!(g[i].abs() <= 1e-6, "interior KKT failed: g={}", g[i]);
            }
        }
    }

    #[test]
    fn box_is_no_worse_than_random_feasible_points(
        (q, lin) in spd_and_lin(6),
        probe in proptest::collection::vec(0.0f64..1.0, 6),
    ) {
        let obj = |x: &[f64]| {
            0.5 * ppml_linalg::vecops::dot(&q.matvec(x).unwrap(), x)
                + ppml_linalg::vecops::dot(&lin, x)
        };
        let sol = solve_box(&q, &lin, 0.0, 1.0, &QpConfig::default()).unwrap();
        prop_assert!(obj(&sol.x) <= obj(&probe) + 1e-8);
    }

    #[test]
    fn eq_solution_feasible_and_optimal(
        (q, lin) in spd_and_lin(8),
        signs in proptest::collection::vec(prop_oneof![Just(1.0f64), Just(-1.0f64)], 8),
        t in -2.0f64..2.0,
    ) {
        // Keep the target inside the achievable range of Σ aᵢxᵢ.
        let min: f64 = signs.iter().map(|&s| if s > 0.0 { 0.0 } else { -2.0 }).sum();
        let max: f64 = signs.iter().map(|&s| if s > 0.0 { 2.0 } else { 0.0 }).sum();
        prop_assume!(t > min + 0.1 && t < max - 0.1);
        let sol = solve_box_eq(&q, &lin, 0.0, 2.0, &signs, t, &QpConfig::default()).unwrap();
        // Feasibility.
        let dot: f64 = sol.x.iter().zip(&signs).map(|(x, a)| x * a).sum();
        prop_assert!((dot - t).abs() < 1e-8, "constraint violated: {dot} vs {t}");
        for &xi in &sol.x {
            prop_assert!((-1e-12..=2.0 + 1e-12).contains(&xi));
        }
        // Optimality vs. feasible two-coordinate perturbations.
        let obj = |x: &[f64]| {
            0.5 * ppml_linalg::vecops::dot(&q.matvec(x).unwrap(), x)
                + ppml_linalg::vecops::dot(&lin, x)
        };
        let base = obj(&sol.x);
        for i in 0..8 {
            for j in 0..8 {
                if i == j { continue; }
                for &d in &[1e-4, -1e-4] {
                    let mut y = sol.x.clone();
                    y[i] += signs[i] * d;
                    y[j] -= signs[j] * d;
                    let feasible = y.iter().all(|&v| (0.0..=2.0).contains(&v));
                    if feasible {
                        prop_assert!(obj(&y) >= base - 1e-7,
                            "perturbation ({i},{j},{d}) improved objective");
                    }
                }
            }
        }
    }

    #[test]
    fn box_warm_start_is_consistent((q, lin) in spd_and_lin(6)) {
        let cfg = QpConfig::default();
        let cold = solve_box(&q, &lin, 0.0, 1.0, &cfg).unwrap();
        let warm = ppml_qp::solve_box_from(&q, &lin, 0.0, 1.0, &cold.x, &cfg).unwrap();
        for (a, b) in cold.x.iter().zip(&warm.x) {
            prop_assert!((a - b).abs() < 1e-7);
        }
    }
}
