//! Property tests: solver outputs must satisfy the KKT conditions of their
//! problems on random positive-definite instances, and the equality solver
//! must never leave the feasible set.

use ppml_data::check::{run_cases, Gen};
use ppml_linalg::Matrix;
use ppml_qp::{solve_box, solve_box_eq, QpConfig};

/// Random SPD quadratic term (`B·Bᵀ + 0.3·I`) and linear term.
fn spd_and_lin(g: &mut Gen, n: usize) -> (Matrix, Vec<f64>) {
    let raw = g.vec_f64(-1.0, 1.0, n * n);
    let lin = g.vec_f64(-2.0, 2.0, n);
    let b = Matrix::from_vec(n, n, raw).expect("sized");
    let mut q = b.matmul(&b.transpose()).expect("square");
    q.add_diag(0.3);
    (q, lin)
}

fn grad(q: &Matrix, lin: &[f64], x: &[f64]) -> Vec<f64> {
    let mut g = q.matvec(x).unwrap();
    for (gi, &li) in g.iter_mut().zip(lin) {
        *gi += li;
    }
    g
}

#[test]
fn box_solution_satisfies_kkt() {
    run_cases("box_solution_satisfies_kkt", 64, |g, _| {
        let (q, lin) = spd_and_lin(g, 8);
        let sol = solve_box(&q, &lin, 0.0, 1.5, &QpConfig::default()).unwrap();
        assert!(sol.converged);
        let gr = grad(&q, &lin, &sol.x);
        for (&xi, &gi) in sol.x.iter().zip(&gr) {
            assert!((-1e-12..=1.5 + 1e-12).contains(&xi));
            if xi < 1e-9 {
                assert!(gi >= -1e-6, "lower-bound KKT failed: g={gi}");
            } else if xi > 1.5 - 1e-9 {
                assert!(gi <= 1e-6, "upper-bound KKT failed: g={gi}");
            } else {
                assert!(gi.abs() <= 1e-6, "interior KKT failed: g={gi}");
            }
        }
    });
}

#[test]
fn box_is_no_worse_than_random_feasible_points() {
    run_cases("box_is_no_worse_than_random_feasible_points", 64, |g, _| {
        let (q, lin) = spd_and_lin(g, 6);
        let probe = g.vec_f64(0.0, 1.0, 6);
        let obj = |x: &[f64]| {
            0.5 * ppml_linalg::vecops::dot(&q.matvec(x).unwrap(), x)
                + ppml_linalg::vecops::dot(&lin, x)
        };
        let sol = solve_box(&q, &lin, 0.0, 1.0, &QpConfig::default()).unwrap();
        assert!(obj(&sol.x) <= obj(&probe) + 1e-8);
    });
}

#[test]
fn eq_solution_feasible_and_optimal() {
    run_cases("eq_solution_feasible_and_optimal", 64, |g, _| {
        let (q, lin) = spd_and_lin(g, 8);
        let signs: Vec<f64> = (0..8).map(|_| *g.pick(&[1.0f64, -1.0])).collect();
        let t = g.f64_in(-2.0, 2.0);
        // Keep the target inside the achievable range of Σ aᵢxᵢ.
        let min: f64 = signs
            .iter()
            .map(|&s| if s > 0.0 { 0.0 } else { -2.0 })
            .sum();
        let max: f64 = signs.iter().map(|&s| if s > 0.0 { 2.0 } else { 0.0 }).sum();
        if !(t > min + 0.1 && t < max - 0.1) {
            return; // infeasible target: skip this case
        }
        let sol = solve_box_eq(&q, &lin, 0.0, 2.0, &signs, t, &QpConfig::default()).unwrap();
        // Feasibility.
        let dot: f64 = sol.x.iter().zip(&signs).map(|(x, a)| x * a).sum();
        assert!((dot - t).abs() < 1e-8, "constraint violated: {dot} vs {t}");
        for &xi in &sol.x {
            assert!((-1e-12..=2.0 + 1e-12).contains(&xi));
        }
        // Optimality vs. feasible two-coordinate perturbations.
        let obj = |x: &[f64]| {
            0.5 * ppml_linalg::vecops::dot(&q.matvec(x).unwrap(), x)
                + ppml_linalg::vecops::dot(&lin, x)
        };
        let base = obj(&sol.x);
        for i in 0..8 {
            for j in 0..8 {
                if i == j {
                    continue;
                }
                for &d in &[1e-4, -1e-4] {
                    let mut y = sol.x.clone();
                    y[i] += signs[i] * d;
                    y[j] -= signs[j] * d;
                    let feasible = y.iter().all(|&v| (0.0..=2.0).contains(&v));
                    if feasible {
                        assert!(
                            obj(&y) >= base - 1e-7,
                            "perturbation ({i},{j},{d}) improved objective"
                        );
                    }
                }
            }
        }
    });
}

#[test]
fn box_warm_start_is_consistent() {
    run_cases("box_warm_start_is_consistent", 64, |g, _| {
        let (q, lin) = spd_and_lin(g, 6);
        let cfg = QpConfig::default();
        let cold = solve_box(&q, &lin, 0.0, 1.0, &cfg).unwrap();
        let warm = ppml_qp::solve_box_from(&q, &lin, 0.0, 1.0, &cold.x, &cfg).unwrap();
        for (a, b) in cold.x.iter().zip(&warm.x) {
            assert!((a - b).abs() < 1e-7);
        }
    });
}
