//! Quadratic-programming solvers for the SVM dual problems.
//!
//! Every subproblem in the paper reduces to one of two convex QP shapes:
//!
//! * **Box QP** — `min ½λᵀQλ + qᵀλ` subject to `lo ≤ λᵢ ≤ hi`. This is the
//!   per-mapper dual of the horizontally-partitioned trainers (the bias is
//!   quadratically penalized by ADMM, so no equality constraint survives; see
//!   DESIGN.md §2). Solved by [`solve_box`]: projected cyclic coordinate
//!   descent with an incrementally maintained gradient.
//! * **Box + single equality QP** — the same with one extra constraint
//!   `Σᵢ aᵢλᵢ = t`, `aᵢ ∈ {−1, +1}` (a label vector). This is the reducer's
//!   `z`-subproblem in the vertically-partitioned trainers and the classic
//!   centralized SVM dual. Solved by [`solve_box_eq`]: an SMO-style
//!   maximal-violating-pair method (Platt; Keerthi et al.), the same family
//!   of solver the paper cites via LIBSVM.
//!
//! Both solvers report KKT residuals and support warm starts, which the ADMM
//! outer loop exploits (`*_from` variants).
//!
//! # Example
//!
//! ```
//! use ppml_linalg::Matrix;
//! use ppml_qp::{solve_box, QpConfig};
//!
//! # fn main() -> Result<(), ppml_qp::QpError> {
//! // min ½ x² - x  on [0, 10]  →  x = 1
//! let q = Matrix::from_rows(&[&[1.0]]).unwrap();
//! let sol = solve_box(&q, &[-1.0], 0.0, 10.0, &QpConfig::default())?;
//! assert!((sol.x[0] - 1.0).abs() < 1e-8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
use ppml_linalg::Matrix;
use std::fmt;

/// Errors produced by the QP solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum QpError {
    /// `Q` is not square, or the linear term / constraint vector has the
    /// wrong length.
    ShapeMismatch {
        /// Human-readable description of the offending operand.
        what: &'static str,
        /// Expected length/size.
        expected: usize,
        /// Actual length/size.
        found: usize,
    },
    /// The bounds are inverted (`lo > hi`) or not finite.
    InvalidBounds {
        /// Lower bound supplied.
        lo: f64,
        /// Upper bound supplied.
        hi: f64,
    },
    /// No point in the box satisfies the equality constraint.
    InfeasibleEquality {
        /// The requested right-hand side `t`.
        target: f64,
        /// Smallest achievable `Σ aᵢλᵢ` in the box.
        min: f64,
        /// Largest achievable `Σ aᵢλᵢ` in the box.
        max: f64,
    },
    /// An equality-constraint coefficient was not `+1` or `-1`.
    BadConstraintCoefficient {
        /// Index of the offending coefficient.
        index: usize,
        /// Its value.
        value: f64,
    },
}

impl fmt::Display for QpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QpError::ShapeMismatch {
                what,
                expected,
                found,
            } => write!(f, "{what}: expected length {expected}, found {found}"),
            QpError::InvalidBounds { lo, hi } => write!(f, "invalid bounds [{lo}, {hi}]"),
            QpError::InfeasibleEquality { target, min, max } => write!(
                f,
                "equality target {target} outside achievable range [{min}, {max}]"
            ),
            QpError::BadConstraintCoefficient { index, value } => write!(
                f,
                "constraint coefficient at {index} is {value}, expected +1 or -1"
            ),
        }
    }
}

impl std::error::Error for QpError {}

/// Stopping criteria shared by both solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QpConfig {
    /// Maximum KKT violation at which the solution is accepted.
    pub tol: f64,
    /// Hard cap on iterations (coordinate sweeps for [`solve_box`], pair
    /// updates for [`solve_box_eq`]).
    pub max_iter: usize,
}

impl Default for QpConfig {
    fn default() -> Self {
        QpConfig {
            tol: 1e-8,
            max_iter: 100_000,
        }
    }
}

/// Solution of a QP, with convergence diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct QpSolution {
    /// The minimizer (or best iterate when `converged` is false).
    pub x: Vec<f64>,
    /// Iterations actually used.
    pub iterations: usize,
    /// Final maximum KKT violation.
    pub kkt_violation: f64,
    /// Whether `kkt_violation <= tol` was reached within `max_iter`.
    pub converged: bool,
}

fn validate_common(q: &Matrix, lin: &[f64], lo: f64, hi: f64) -> Result<usize, QpError> {
    let n = q.rows();
    if q.cols() != n {
        return Err(QpError::ShapeMismatch {
            what: "Q must be square",
            expected: n,
            found: q.cols(),
        });
    }
    if lin.len() != n {
        return Err(QpError::ShapeMismatch {
            what: "linear term",
            expected: n,
            found: lin.len(),
        });
    }
    if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
        return Err(QpError::InvalidBounds { lo, hi });
    }
    Ok(n)
}

/// Per-coordinate KKT violation for box constraints: at the lower bound the
/// gradient must be ≥ 0, at the upper bound ≤ 0, in the interior ≈ 0.
fn box_violation(x: f64, g: f64, lo: f64, hi: f64) -> f64 {
    let eps = 1e-12 * (1.0 + hi.abs().max(lo.abs()));
    if x <= lo + eps {
        (-g).max(0.0)
    } else if x >= hi - eps {
        g.max(0.0)
    } else {
        g.abs()
    }
}

/// Solves `min ½xᵀQx + qᵀx` over the box `[lo, hi]ⁿ`, starting from the
/// projection of `x0` onto the box.
///
/// `Q` must be symmetric positive semidefinite; the solver only reads it
/// row-wise and assumes symmetry.
///
/// # Errors
///
/// [`QpError::ShapeMismatch`] or [`QpError::InvalidBounds`] on malformed
/// input.
pub fn solve_box_from(
    q: &Matrix,
    lin: &[f64],
    lo: f64,
    hi: f64,
    x0: &[f64],
    cfg: &QpConfig,
) -> Result<QpSolution, QpError> {
    let n = validate_common(q, lin, lo, hi)?;
    if x0.len() != n {
        return Err(QpError::ShapeMismatch {
            what: "warm start",
            expected: n,
            found: x0.len(),
        });
    }
    let mut x: Vec<f64> = x0.iter().map(|&v| v.clamp(lo, hi)).collect();
    // g = Qx + q, maintained incrementally.
    let mut g = q.matvec(&x).expect("validated shape");
    for (gi, &qi) in g.iter_mut().zip(lin) {
        *gi += qi;
    }
    let mut viol = f64::INFINITY;
    let mut sweeps = 0usize;
    while sweeps < cfg.max_iter {
        sweeps += 1;
        viol = 0.0;
        for i in 0..n {
            let qii = q[(i, i)];
            let v = box_violation(x[i], g[i], lo, hi);
            if v > viol {
                viol = v;
            }
            if v <= cfg.tol || qii <= 0.0 {
                // Zero curvature coordinates are left to the violation check:
                // with Q PSD and qii == 0 the whole row is zero, so the
                // optimum is at a bound determined by sign(g).
                if qii <= 0.0 && v > cfg.tol {
                    let new = if g[i] > 0.0 { lo } else { hi };
                    let delta = new - x[i];
                    if delta != 0.0 {
                        x[i] = new;
                        let row = q.row(i);
                        for (gk, &qk) in g.iter_mut().zip(row) {
                            *gk += delta * qk;
                        }
                    }
                }
                continue;
            }
            let new = (x[i] - g[i] / qii).clamp(lo, hi);
            let delta = new - x[i];
            if delta != 0.0 {
                x[i] = new;
                let row = q.row(i);
                for (gk, &qk) in g.iter_mut().zip(row) {
                    *gk += delta * qk;
                }
            }
        }
        if viol <= cfg.tol {
            break;
        }
    }
    Ok(QpSolution {
        converged: viol <= cfg.tol,
        x,
        iterations: sweeps,
        kkt_violation: viol,
    })
}

/// [`solve_box_from`] started from the zero vector (projected onto the box).
///
/// # Errors
///
/// See [`solve_box_from`].
pub fn solve_box(
    q: &Matrix,
    lin: &[f64],
    lo: f64,
    hi: f64,
    cfg: &QpConfig,
) -> Result<QpSolution, QpError> {
    let zeros = vec![0.0; q.rows()];
    solve_box_from(q, lin, lo, hi, &zeros, cfg)
}

/// Solves `min ½xᵀQx + qᵀx` over `[lo, hi]ⁿ` intersected with the hyperplane
/// `Σᵢ aᵢxᵢ = t`, where every `aᵢ ∈ {−1, +1}` (a label vector).
///
/// Uses SMO with maximal-violating-pair working-set selection; the dual
/// feasibility gap `m(α) − M(α)` (Keerthi et al.) is the reported KKT
/// violation.
///
/// # Errors
///
/// Shape/bounds errors as in [`solve_box`];
/// [`QpError::BadConstraintCoefficient`] if some `aᵢ ∉ {−1, +1}`;
/// [`QpError::InfeasibleEquality`] when no box point satisfies the
/// constraint.
pub fn solve_box_eq(
    q: &Matrix,
    lin: &[f64],
    lo: f64,
    hi: f64,
    a: &[f64],
    target: f64,
    cfg: &QpConfig,
) -> Result<QpSolution, QpError> {
    let n = validate_common(q, lin, lo, hi)?;
    if a.len() != n {
        return Err(QpError::ShapeMismatch {
            what: "constraint vector",
            expected: n,
            found: a.len(),
        });
    }
    for (i, &ai) in a.iter().enumerate() {
        if ai != 1.0 && ai != -1.0 {
            return Err(QpError::BadConstraintCoefficient {
                index: i,
                value: ai,
            });
        }
    }
    // Feasible start: begin at the box corner minimizing Σaᵢxᵢ, then raise
    // coordinates greedily until the target is met.
    let (mut lo_sum, mut hi_sum) = (0.0, 0.0);
    for &ai in a {
        // Contribution range of one coordinate: aᵢxᵢ ∈ [min, max].
        let (cmin, cmax) = if ai > 0.0 { (lo, hi) } else { (-hi, -lo) };
        lo_sum += cmin;
        hi_sum += cmax;
    }
    let tol_feas = 1e-9 * (1.0 + target.abs());
    if target < lo_sum - tol_feas || target > hi_sum + tol_feas {
        return Err(QpError::InfeasibleEquality {
            target,
            min: lo_sum,
            max: hi_sum,
        });
    }
    let mut x: Vec<f64> = a.iter().map(|&ai| if ai > 0.0 { lo } else { hi }).collect();
    let mut need = target - lo_sum; // ≥ 0; each coordinate can add up to hi-lo
    let span = hi - lo;
    for i in 0..n {
        if need <= 0.0 {
            break;
        }
        let add = need.min(span);
        // Moving coordinate i by `add / aᵢ` raises Σaᵢxᵢ by `add`.
        if a[i] > 0.0 {
            x[i] += add;
        } else {
            x[i] -= add;
        }
        need -= add;
    }

    let mut g = q.matvec(&x).expect("validated shape");
    for (gi, &qi) in g.iter_mut().zip(lin) {
        *gi += qi;
    }

    let mut iterations = 0usize;
    let mut gap = f64::INFINITY;
    while iterations < cfg.max_iter {
        iterations += 1;
        // Maximal violating pair: i maximizes −aᵢgᵢ over I_up,
        // j minimizes −aⱼgⱼ over I_low.
        let eps = 1e-12 * (1.0 + hi.abs().max(lo.abs()));
        let mut m_up = f64::NEG_INFINITY;
        let mut m_low = f64::INFINITY;
        let (mut bi, mut bj) = (usize::MAX, usize::MAX);
        for k in 0..n {
            let up = (a[k] > 0.0 && x[k] < hi - eps) || (a[k] < 0.0 && x[k] > lo + eps);
            let low = (a[k] > 0.0 && x[k] > lo + eps) || (a[k] < 0.0 && x[k] < hi - eps);
            let score = -a[k] * g[k];
            if up && score > m_up {
                m_up = score;
                bi = k;
            }
            if low && score < m_low {
                m_low = score;
                bj = k;
            }
        }
        gap = m_up - m_low;
        if bi == usize::MAX || bj == usize::MAX || gap <= cfg.tol {
            if gap.is_infinite() {
                // Degenerate: everything pinned and no movable pair.
                gap = 0.0;
            }
            break;
        }
        let (i, j) = (bi, bj);
        // Optimize along x_i += aᵢδ, x_j -= aⱼδ (keeps Σaᵢxᵢ constant).
        let eta = q[(i, i)] + q[(j, j)] - 2.0 * a[i] * a[j] * q[(i, j)];
        let grad_dir = a[i] * g[i] - a[j] * g[j]; // dObj/dδ at δ=0
        let mut delta = if eta > 1e-12 {
            -grad_dir / eta
        } else {
            // Flat direction: move as far as the box allows, in the
            // descending direction.
            if grad_dir > 0.0 {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            }
        };
        // Clip to the box for both coordinates.
        let (d_lo_i, d_hi_i) = if a[i] > 0.0 {
            (lo - x[i], hi - x[i])
        } else {
            (x[i] - hi, x[i] - lo)
        };
        let (d_lo_j, d_hi_j) = if a[j] > 0.0 {
            (x[j] - hi, x[j] - lo)
        } else {
            (lo - x[j], hi - x[j])
        };
        let d_lo = d_lo_i.max(d_lo_j);
        let d_hi = d_hi_i.min(d_hi_j);
        delta = delta.clamp(d_lo, d_hi);
        if delta == 0.0 || !delta.is_finite() {
            // Numerical dead end: accept current iterate.
            break;
        }
        let di = a[i] * delta;
        let dj = -a[j] * delta;
        x[i] += di;
        x[j] += dj;
        let rowi = q.row(i);
        let rowj = q.row(j);
        for ((gk, &qik), &qjk) in g.iter_mut().zip(rowi).zip(rowj) {
            *gk += di * qik + dj * qjk;
        }
    }
    Ok(QpSolution {
        converged: gap <= cfg.tol,
        x,
        iterations,
        kkt_violation: gap.max(0.0),
    })
}

/// Solves the **separable** box + single-equality QP
/// `min Σᵢ (½·dᵢ·xᵢ² + qᵢ·xᵢ)` subject to `lo ≤ xᵢ ≤ hi`, `Σᵢ aᵢxᵢ = t`,
/// with every `dᵢ > 0` and `aᵢ ∈ {−1, +1}`.
///
/// This is the reducer-side `z`-subproblem of the vertically partitioned
/// trainers (the Hessian there is `(1/ρ)·I`). With a diagonal Hessian the
/// KKT system collapses to a one-dimensional root find on the equality
/// multiplier `ν`: `xᵢ(ν) = clamp(−(qᵢ + ν·aᵢ)/dᵢ)` and
/// `h(ν) = Σ aᵢxᵢ(ν)` is monotone non-increasing, so bisection solves the
/// problem to machine precision in ~100 iterations regardless of size —
/// no `n×n` matrix is ever formed.
///
/// # Errors
///
/// The same error conditions as [`solve_box_eq`]; additionally a diagonal
/// with non-positive or non-finite entries is rejected with
/// [`QpError::ShapeMismatch`] (`what = "diagonal"`).
pub fn solve_separable_eq(
    diag: &[f64],
    lin: &[f64],
    lo: f64,
    hi: f64,
    a: &[f64],
    target: f64,
) -> Result<QpSolution, QpError> {
    let n = diag.len();
    if lin.len() != n {
        return Err(QpError::ShapeMismatch {
            what: "linear term",
            expected: n,
            found: lin.len(),
        });
    }
    if a.len() != n {
        return Err(QpError::ShapeMismatch {
            what: "constraint vector",
            expected: n,
            found: a.len(),
        });
    }
    if diag.iter().any(|&d| d <= 0.0 || !d.is_finite()) {
        return Err(QpError::ShapeMismatch {
            what: "diagonal",
            expected: n,
            found: n,
        });
    }
    if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
        return Err(QpError::InvalidBounds { lo, hi });
    }
    for (i, &ai) in a.iter().enumerate() {
        if ai != 1.0 && ai != -1.0 {
            return Err(QpError::BadConstraintCoefficient {
                index: i,
                value: ai,
            });
        }
    }
    // Feasible range of Σ aᵢxᵢ.
    let (mut lo_sum, mut hi_sum) = (0.0, 0.0);
    for &ai in a {
        let (cmin, cmax) = if ai > 0.0 { (lo, hi) } else { (-hi, -lo) };
        lo_sum += cmin;
        hi_sum += cmax;
    }
    if target < lo_sum - 1e-9 || target > hi_sum + 1e-9 {
        return Err(QpError::InfeasibleEquality {
            target,
            min: lo_sum,
            max: hi_sum,
        });
    }
    let x_of = |nu: f64, out: &mut Vec<f64>| {
        out.clear();
        for i in 0..n {
            out.push(((-(lin[i] + nu * a[i])) / diag[i]).clamp(lo, hi));
        }
    };
    let h = |nu: f64, buf: &mut Vec<f64>| -> f64 {
        x_of(nu, buf);
        buf.iter().zip(a).map(|(x, ai)| x * ai).sum::<f64>() - target
    };
    // Expanding bracket around ν = 0: h is non-increasing in ν.
    let mut buf = Vec::with_capacity(n);
    let (mut lo_nu, mut hi_nu) = (-1.0f64, 1.0f64);
    let mut guard = 0;
    while h(lo_nu, &mut buf) < 0.0 && guard < 200 {
        lo_nu *= 2.0;
        guard += 1;
    }
    guard = 0;
    while h(hi_nu, &mut buf) > 0.0 && guard < 200 {
        hi_nu *= 2.0;
        guard += 1;
    }
    // Bisection.
    let mut iterations = 0usize;
    for _ in 0..200 {
        iterations += 1;
        let mid = 0.5 * (lo_nu + hi_nu);
        if h(mid, &mut buf) > 0.0 {
            lo_nu = mid;
        } else {
            hi_nu = mid;
        }
        if hi_nu - lo_nu < 1e-14 * (1.0 + hi_nu.abs()) {
            break;
        }
    }
    let nu = 0.5 * (lo_nu + hi_nu);
    let mut x = Vec::with_capacity(n);
    x_of(nu, &mut x);
    // Exact-feasibility polish: distribute any residual over interior
    // coordinates (they can absorb it without violating bounds).
    let resid: f64 = target - x.iter().zip(a).map(|(x, ai)| x * ai).sum::<f64>();
    if resid.abs() > 0.0 {
        let interior: Vec<usize> = (0..n)
            .filter(|&i| x[i] > lo + 1e-12 && x[i] < hi - 1e-12)
            .collect();
        if !interior.is_empty() {
            let per = resid / interior.len() as f64;
            for &i in &interior {
                x[i] = (x[i] + per * a[i]).clamp(lo, hi);
            }
        }
    }
    let kkt = (target - x.iter().zip(a).map(|(x, ai)| x * ai).sum::<f64>()).abs();
    Ok(QpSolution {
        x,
        iterations,
        kkt_violation: kkt,
        converged: kkt < 1e-8 * (1.0 + target.abs()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> Matrix {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let b = Matrix::from_fn(n, n, |_, _| next());
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diag(0.5);
        a
    }

    #[test]
    fn box_unconstrained_interior_matches_linear_solve() {
        // Wide bounds → minimizer is -Q⁻¹q.
        let q = spd(6, 2);
        let lin: Vec<f64> = (0..6).map(|i| (i as f64).sin()).collect();
        let sol = solve_box(&q, &lin, -1e6, 1e6, &QpConfig::default()).unwrap();
        assert!(sol.converged);
        let direct = q
            .cholesky()
            .unwrap()
            .solve(&lin.iter().map(|v| -v).collect::<Vec<_>>())
            .unwrap();
        for (a, b) in sol.x.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn box_active_bounds() {
        // min ½x² + 2x on [0, 1] → gradient positive everywhere → x = 0.
        let q = Matrix::identity(1);
        let sol = solve_box(&q, &[2.0], 0.0, 1.0, &QpConfig::default()).unwrap();
        assert_eq!(sol.x[0], 0.0);
        // min ½x² - 5x on [0, 1] → x = 1 (upper bound).
        let sol = solve_box(&q, &[-5.0], 0.0, 1.0, &QpConfig::default()).unwrap();
        assert_eq!(sol.x[0], 1.0);
    }

    #[test]
    fn box_warm_start_converges_faster() {
        let q = spd(20, 5);
        let lin: Vec<f64> = (0..20).map(|i| (i as f64 * 0.71).cos()).collect();
        let cfg = QpConfig::default();
        let cold = solve_box(&q, &lin, 0.0, 10.0, &cfg).unwrap();
        let warm = solve_box_from(&q, &lin, 0.0, 10.0, &cold.x, &cfg).unwrap();
        assert!(warm.converged);
        assert!(warm.iterations <= 2, "warm start took {}", warm.iterations);
    }

    #[test]
    fn box_kkt_certificate_holds() {
        let q = spd(10, 9);
        let lin: Vec<f64> = (0..10).map(|i| i as f64 * 0.3 - 1.5).collect();
        let sol = solve_box(&q, &lin, 0.0, 2.0, &QpConfig::default()).unwrap();
        assert!(sol.converged);
        let mut g = q.matvec(&sol.x).unwrap();
        for (gi, &qi) in g.iter_mut().zip(&lin) {
            *gi += qi;
        }
        for (&xi, &gi) in sol.x.iter().zip(&g) {
            assert!(box_violation(xi, gi, 0.0, 2.0) <= 1e-6);
        }
    }

    #[test]
    fn box_rejects_bad_shapes() {
        let q = Matrix::zeros(2, 3);
        assert!(matches!(
            solve_box(&q, &[0.0; 2], 0.0, 1.0, &QpConfig::default()),
            Err(QpError::ShapeMismatch { .. })
        ));
        let q = Matrix::identity(2);
        assert!(matches!(
            solve_box(&q, &[0.0; 3], 0.0, 1.0, &QpConfig::default()),
            Err(QpError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            solve_box(&q, &[0.0; 2], 1.0, 0.0, &QpConfig::default()),
            Err(QpError::InvalidBounds { .. })
        ));
    }

    #[test]
    fn eq_simple_two_variable() {
        // min ½(x² + y²) s.t. x + y = 1, 0 ≤ x,y ≤ 1 → x = y = ½.
        let q = Matrix::identity(2);
        let sol = solve_box_eq(
            &q,
            &[0.0, 0.0],
            0.0,
            1.0,
            &[1.0, 1.0],
            1.0,
            &QpConfig::default(),
        )
        .unwrap();
        assert!(sol.converged);
        assert!((sol.x[0] - 0.5).abs() < 1e-7 && (sol.x[1] - 0.5).abs() < 1e-7);
    }

    #[test]
    fn eq_constraint_is_maintained_exactly() {
        let q = spd(12, 13);
        let lin: Vec<f64> = (0..12).map(|i| (i as f64).sin() - 0.2).collect();
        let a: Vec<f64> = (0..12)
            .map(|i| if i % 3 == 0 { -1.0 } else { 1.0 })
            .collect();
        let sol = solve_box_eq(&q, &lin, 0.0, 5.0, &a, 2.5, &QpConfig::default()).unwrap();
        let dot: f64 = sol.x.iter().zip(&a).map(|(x, a)| x * a).sum();
        assert!((dot - 2.5).abs() < 1e-9, "constraint drifted: {dot}");
        for &xi in &sol.x {
            assert!((-1e-12..=5.0 + 1e-12).contains(&xi));
        }
    }

    #[test]
    fn eq_infeasible_detected() {
        let q = Matrix::identity(2);
        let err = solve_box_eq(
            &q,
            &[0.0; 2],
            0.0,
            1.0,
            &[1.0, 1.0],
            5.0,
            &QpConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, QpError::InfeasibleEquality { .. }));
    }

    #[test]
    fn eq_bad_coefficient_detected() {
        let q = Matrix::identity(2);
        let err = solve_box_eq(
            &q,
            &[0.0; 2],
            0.0,
            1.0,
            &[1.0, 0.5],
            0.0,
            &QpConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            QpError::BadConstraintCoefficient { index: 1, .. }
        ));
    }

    #[test]
    fn eq_matches_box_when_constraint_inactive_via_lagrange() {
        // For the equality-constrained optimum, there must exist ν with
        // g + ν·a = 0 on interior coordinates (stationarity).
        let q = spd(8, 21);
        let lin: Vec<f64> = (0..8).map(|i| 0.1 * i as f64 - 0.4).collect();
        let a: Vec<f64> = (0..8)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let sol = solve_box_eq(&q, &lin, 0.0, 3.0, &a, 0.0, &QpConfig::default()).unwrap();
        assert!(sol.converged);
        let mut g = q.matvec(&sol.x).unwrap();
        for (gi, &qi) in g.iter_mut().zip(&lin) {
            *gi += qi;
        }
        // Estimate ν from the interior coordinates and check consistency.
        let interior: Vec<usize> = (0..8)
            .filter(|&i| sol.x[i] > 1e-9 && sol.x[i] < 3.0 - 1e-9)
            .collect();
        if interior.len() >= 2 {
            let nu = -g[interior[0]] / a[interior[0]];
            for &i in &interior[1..] {
                assert!(
                    (g[i] + nu * a[i]).abs() < 1e-5,
                    "stationarity failed at {i}: {}",
                    g[i] + nu * a[i]
                );
            }
        }
    }

    #[test]
    fn eq_centralized_svm_toy_dual() {
        // Two points, y = [+1, -1], x = [1], [-1] with linear kernel:
        // Q = yᵢyⱼxᵢxⱼ = [[1,1],[1,1]], dual: min ½λᵀQλ - 1ᵀλ, yᵀλ = 0.
        // Symmetry gives λ1 = λ2 = λ; obj = 2λ² - 2λ ... wait ½·(λ,λ)Q(λ,λ)ᵀ = 2λ²·½·...
        // ½(λ² + 2λ² + λ²)·.. = 2λ² → min 2λ²−2λ → λ = ½.
        let q = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let sol = solve_box_eq(
            &q,
            &[-1.0, -1.0],
            0.0,
            10.0,
            &[1.0, -1.0],
            0.0,
            &QpConfig::default(),
        )
        .unwrap();
        assert!(sol.converged);
        assert!((sol.x[0] - 0.5).abs() < 1e-7, "{:?}", sol.x);
        assert!((sol.x[1] - 0.5).abs() < 1e-7);
    }

    #[test]
    fn separable_matches_smo_on_diagonal_problems() {
        // Q = diag(d): both solvers must agree.
        let n = 12;
        let diag: Vec<f64> = (0..n).map(|i| 0.5 + 0.1 * i as f64).collect();
        let lin: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).sin()).collect();
        let a: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let q = Matrix::from_fn(n, n, |i, j| if i == j { diag[i] } else { 0.0 });
        let smo = solve_box_eq(&q, &lin, 0.0, 3.0, &a, 1.0, &QpConfig::default()).unwrap();
        let fast = solve_separable_eq(&diag, &lin, 0.0, 3.0, &a, 1.0).unwrap();
        assert!(fast.converged);
        for (u, v) in smo.x.iter().zip(&fast.x) {
            assert!((u - v).abs() < 1e-5, "{u} vs {v}");
        }
    }

    #[test]
    fn separable_satisfies_constraint_exactly() {
        let n = 50;
        let diag = vec![0.01; n]; // 1/ρ with ρ = 100
        let lin: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos() - 0.3).collect();
        let a: Vec<f64> = (0..n)
            .map(|i| if i % 3 == 0 { -1.0 } else { 1.0 })
            .collect();
        let sol = solve_separable_eq(&diag, &lin, 0.0, 50.0, &a, 0.0).unwrap();
        let dot: f64 = sol.x.iter().zip(&a).map(|(x, ai)| x * ai).sum();
        assert!(dot.abs() < 1e-8, "constraint residual {dot}");
        assert!(sol.x.iter().all(|&v| (0.0..=50.0).contains(&v)));
    }

    #[test]
    fn separable_rejects_bad_input() {
        assert!(matches!(
            solve_separable_eq(&[1.0, -1.0], &[0.0; 2], 0.0, 1.0, &[1.0, 1.0], 0.0),
            Err(QpError::ShapeMismatch {
                what: "diagonal",
                ..
            })
        ));
        assert!(solve_separable_eq(&[1.0], &[0.0; 2], 0.0, 1.0, &[1.0], 0.0).is_err());
        assert!(matches!(
            solve_separable_eq(&[1.0, 1.0], &[0.0; 2], 0.0, 1.0, &[1.0, 1.0], 10.0),
            Err(QpError::InfeasibleEquality { .. })
        ));
    }

    #[test]
    fn solvers_are_deterministic() {
        let q = spd(10, 31);
        let lin = vec![-1.0; 10];
        let s1 = solve_box(&q, &lin, 0.0, 1.0, &QpConfig::default()).unwrap();
        let s2 = solve_box(&q, &lin, 0.0, 1.0, &QpConfig::default()).unwrap();
        assert_eq!(s1, s2);
    }
}
