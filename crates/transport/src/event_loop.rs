//! Event-driven TCP backend: one I/O thread drives every connection.
//!
//! The legacy [`crate::TcpTransport`] spawns two blocking threads per
//! connection (reader + accept), so a coordinator's thread count grows
//! O(peers) and each half-open peer parks a thread forever. This backend
//! keeps the same wire protocol, handshake and [`Transport`] semantics
//! but multiplexes **all** sockets onto a single I/O thread (see
//! [`crate::poll`] for the readiness model):
//!
//! * thread budget is O(1) — the I/O thread plus whatever the caller
//!   already had, regardless of peer count;
//! * every connection carries an idle-read deadline
//!   ([`EventLoopConfig::idle_timeout`]): a peer that stops producing
//!   bytes is reaped and its resources reclaimed, instead of pinning a
//!   blocked thread;
//! * per-connection state (buffers, pending-send watermarks) is owned
//!   exclusively by the I/O thread — no shared mutex exists to poison —
//!   and per-frame handling is panic-isolated, so a defect triggered by
//!   one peer's traffic closes that connection only;
//! * connection lifecycle is observable: `conn_open` / `conn_close` /
//!   `conn_reaped` telemetry events.
//!
//! Senders talk to the I/O thread over a command channel. While the
//! endpoint's total write backlog sits below `SEND_HIGH_WATER`, a send
//! completes as soon as the frame is queued — one channel push, no
//! thread round-trip — which is what lets a coordinator broadcast to a
//! hundred learners in one loop wakeup. Past the high-water mark the
//! sender falls back to blocking on the per-connection flush watermark,
//! with the same bounded `io_timeout` the legacy backend applied to
//! blocking writes; a frame stuck past that deadline fails its
//! connection either way. On Linux the loop parks in a raw `ppoll`
//! over every socket plus a loopback wake connection — a queued command
//! writes one wake byte, so commands and socket traffic both interrupt
//! the wait instantly and only ready sockets are touched. On targets
//! without the raw syscall the command channel's `recv_timeout` doubles
//! as the idle sleep and sockets are scanned with non-blocking reads.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use ppml_telemetry as telemetry;
use telemetry::EventKind;

use crate::frame::{Frame, Message, PartyId};
use crate::poll::{pin_current_thread, read_scratch, ConnIo, IdleBackoff, ReadSweep};
use crate::retry::RetryPolicy;
use crate::transport::{Envelope, LinkStats, Transport, TransportError};

/// Locks a mutex, recovering the data if a previous holder panicked.
/// Poisoning is advisory; every structure guarded this way is a plain
/// registry that stays consistent across any single operation.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Tuning for the event loop. The defaults suit localhost protocol
/// traffic; tests shrink `idle_timeout` to exercise reaping.
#[derive(Debug, Clone, Copy)]
pub struct EventLoopConfig {
    /// A connection that produces no inbound bytes for this long is
    /// reaped (closed and deregistered). Writes do not refresh the
    /// deadline — a half-open peer absorbs writes into a dead kernel
    /// buffer, so only inbound bytes prove liveness. Learners heartbeat
    /// every 500 ms and the coordinator broadcasts every round, so live
    /// links refresh constantly; the default is deliberately generous.
    pub idle_timeout: Duration,
    /// Best-effort core to pin the I/O thread to (see
    /// [`pin_current_thread`]); `None` leaves scheduling to the OS.
    pub pin_core: Option<usize>,
    /// Shard count for the connected-party registry readers query.
    pub shards: usize,
    /// Scan sleep bounds for `IdleBackoff`: the loop wakes at least
    /// this often when active / at most this rarely when idle.
    pub min_scan_wait: Duration,
    /// See [`EventLoopConfig::min_scan_wait`].
    pub max_scan_wait: Duration,
}

impl Default for EventLoopConfig {
    fn default() -> Self {
        EventLoopConfig {
            idle_timeout: Duration::from_secs(60),
            pin_core: None,
            shards: 8,
            min_scan_wait: Duration::from_micros(50),
            max_scan_wait: Duration::from_millis(2),
        }
    }
}

#[derive(Default)]
struct AtomicStats {
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    retries: AtomicU64,
}

/// Party ids with a live registered connection, sharded so senders on
/// different threads never contend on one lock (and a poisoned shard —
/// impossible to brick, see [`lock_recover`] — would cost one shard,
/// not the registry).
struct ShardedSet {
    shards: Vec<Mutex<HashSet<PartyId>>>,
}

impl ShardedSet {
    fn new(n: usize) -> ShardedSet {
        let n = n.max(1);
        ShardedSet {
            shards: (0..n).map(|_| Mutex::new(HashSet::new())).collect(),
        }
    }

    fn shard(&self, party: PartyId) -> &Mutex<HashSet<PartyId>> {
        &self.shards[party as usize % self.shards.len()]
    }

    fn insert(&self, party: PartyId) {
        lock_recover(self.shard(party)).insert(party);
    }

    fn remove(&self, party: PartyId) {
        lock_recover(self.shard(party)).remove(&party);
    }

    fn contains(&self, party: PartyId) -> bool {
        lock_recover(self.shard(party)).contains(&party)
    }

    fn snapshot(&self) -> Vec<PartyId> {
        let mut all: Vec<PartyId> = Vec::new();
        for shard in &self.shards {
            all.extend(lock_recover(shard).iter().copied());
        }
        all.sort_unstable();
        all
    }
}

/// Total unflushed write-buffer bytes below which sends complete at
/// queue time instead of blocking on their flush watermark.
const SEND_HIGH_WATER: u64 = 1 << 20;

struct Shared {
    party: PartyId,
    connected: ShardedSet,
    stats: AtomicStats,
    shutdown: AtomicBool,
    /// Unflushed bytes across all connections, refreshed by the loop
    /// each iteration. Advisory: senders read it to pick the fast
    /// (queue-and-return) or blocking send path.
    backlog: AtomicU64,
    /// True while the I/O thread is parked in `ppoll`. Senders check it
    /// after pushing a command: only then is a wake byte worth a
    /// syscall. The loop re-checks the command queue *after* setting
    /// this (both ends use `SeqCst`), so a command can never be missed.
    io_sleeping: AtomicBool,
}

/// How one queued send ended, reported back to the sending thread.
enum SendOutcome {
    /// The socket accepted the last byte of the frame.
    Sent,
    /// No registered connection for the destination.
    NotConnected,
    /// The connection failed while the frame was pending.
    Io(std::io::ErrorKind),
}

enum Cmd {
    /// Queue an encoded frame for `to`. With `done` set, answer on it
    /// when flushed or failed (the blocking, backpressured path); with
    /// `done` empty the sender already returned and failures surface
    /// through the connection lifecycle instead.
    Send {
        to: PartyId,
        encoded: Vec<u8>,
        done: Option<mpsc::Sender<SendOutcome>>,
    },
    /// Adopt a freshly dialed (hello already written) outbound stream.
    Register { party: PartyId, stream: TcpStream },
    /// Test hook: panic inside the next frame handled for `party`.
    PanicOnNextFrame { party: PartyId },
    /// Stop the loop.
    Shutdown,
}

/// One frame queued on a connection, awaiting its flush watermark.
struct Pending {
    /// Send completes when the connection's flushed byte total reaches
    /// this.
    watermark: u64,
    /// Encoded frame size, charged to stats on completion.
    bytes: u64,
    /// Past this instant an unflushed frame fails the connection (the
    /// event-loop analogue of the legacy blocking write timeout).
    deadline: Instant,
    /// Present only for blocking sends; fast-path frames settle their
    /// stats here but answer no one.
    done: Option<mpsc::Sender<SendOutcome>>,
}

enum CloseReason {
    /// Peer closed or the socket errored during a read.
    Gone,
    /// The byte stream failed frame decoding.
    Corrupt,
    /// Frame handling panicked (isolated to this connection).
    Panicked,
    /// A write failed or a pending frame outlived its deadline.
    WriteFailed(std::io::ErrorKind),
    /// A newer connection registered for the same party.
    Replaced,
    /// No inbound bytes within the idle deadline.
    Idle(u64),
}

struct Conn {
    io: ConnIo,
    party: Option<PartyId>,
    inbound: bool,
    pending: VecDeque<Pending>,
    panic_next: bool,
    close: Option<CloseReason>,
}

enum FrameFlow {
    Continue,
    CloseCorrupt,
    InboxGone,
}

/// Drains complete frames off one connection: handshakes are handled in
/// place, app messages go to the inbox. Runs under `catch_unwind`, so a
/// panic here (including the injected test panic) costs this connection
/// only.
fn drain_frames(
    shared: &Shared,
    inbox_tx: &mpsc::Sender<Envelope>,
    conn: &mut Conn,
) -> (FrameFlow, Option<PartyId>) {
    let mut registered = None;
    loop {
        let encoded = match conn.io.take_frame() {
            Ok(Some(buf)) => buf,
            Ok(None) => return (FrameFlow::Continue, registered),
            Err(()) => {
                telemetry::emit(shared.party, EventKind::FrameRejected { bytes: 4 });
                return (FrameFlow::CloseCorrupt, registered);
            }
        };
        if conn.panic_next {
            conn.panic_next = false;
            panic!("injected connection-handler panic");
        }
        let frame = match Frame::decode(&encoded) {
            Ok(f) => f,
            Err(_) => {
                telemetry::emit(
                    shared.party,
                    EventKind::FrameRejected {
                        bytes: encoded.len() as u64,
                    },
                );
                return (FrameFlow::CloseCorrupt, registered);
            }
        };
        shared
            .stats
            .bytes_received
            .fetch_add(encoded.len() as u64, Ordering::Relaxed);
        shared.stats.frames_received.fetch_add(1, Ordering::Relaxed);
        telemetry::emit(
            shared.party,
            EventKind::FrameRecv {
                from: frame.from,
                bytes: encoded.len() as u64,
            },
        );
        if frame.to != shared.party {
            continue; // misrouted; ignore
        }
        match frame.msg {
            Message::Hello { party } => {
                conn.party = Some(party);
                registered = Some(party);
                shared.connected.insert(party);
                telemetry::emit(
                    shared.party,
                    EventKind::ConnOpen {
                        peer: party,
                        inbound: conn.inbound,
                    },
                );
                let ack = Frame {
                    flags: 0,
                    from: shared.party,
                    to: party,
                    seq: 0,
                    msg: Message::HelloAck {
                        party: shared.party,
                    },
                }
                .encode();
                conn.io.queue(&ack);
                shared
                    .stats
                    .bytes_sent
                    .fetch_add(ack.len() as u64, Ordering::Relaxed);
                shared.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
            }
            Message::HelloAck { .. } => {}
            msg => {
                let env = Envelope {
                    from: frame.from,
                    seq: frame.seq,
                    flags: frame.flags,
                    msg,
                };
                if inbox_tx.send(env).is_err() {
                    return (FrameFlow::InboxGone, registered);
                }
            }
        }
    }
}

struct IoLoop {
    shared: Arc<Shared>,
    cfg: EventLoopConfig,
    listener: TcpListener,
    cmd_rx: mpsc::Receiver<Cmd>,
    inbox_tx: mpsc::Sender<Envelope>,
    io_timeout: Duration,
    conns: Vec<Conn>,
    /// Read end of the loopback wake connection: senders write a byte
    /// here to interrupt a parked `ppoll`. `None` when the wake pair
    /// could not be set up — the loop then falls back to scanning.
    wake: Option<TcpStream>,
    /// Where the last `Cmd::Send` found its connection. A coordinator
    /// broadcast addresses parties in registration order, so starting
    /// the next lookup here makes the scan O(1) amortized.
    send_hint: usize,
    /// Reused across `poll_ready` calls to keep the hot loop
    /// allocation-free.
    poll_fds: Vec<crate::poll::PollFd>,
    poll_map: Vec<usize>,
    ready_pool: Vec<bool>,
}

/// What one `ppoll` wait observed, indexed alongside `IoLoop::conns`.
struct Ready {
    listener: bool,
    wake: bool,
    any: bool,
    /// Per-connection readable/writable bits; connections registered
    /// after the poll (missing entries) are treated as ready.
    conns: Vec<bool>,
}

impl IoLoop {
    fn run(mut self) {
        if let Some(core) = self.cfg.pin_core {
            let _ = pin_current_thread(core);
        }
        if self.listener.set_nonblocking(true).is_err() {
            return;
        }
        let use_ppoll = crate::poll::PPOLL_SUPPORTED && self.wake.is_some();
        let mut backoff = IdleBackoff::new(self.cfg.min_scan_wait, self.cfg.max_scan_wait);
        let mut scratch = read_scratch();
        loop {
            let mut progress = false;
            let mut stop = false;
            // Wait phase: park in `ppoll` over every socket (a queued
            // command writes a wake byte), or — on targets without the
            // raw syscall — sleep on the command channel and scan.
            let mut ready: Option<Ready> = None;
            if use_ppoll {
                self.shared.io_sleeping.store(true, Ordering::SeqCst);
                match self.cmd_rx.try_recv() {
                    Ok(cmd) => {
                        self.shared.io_sleeping.store(false, Ordering::SeqCst);
                        progress = true;
                        stop = self.handle_cmd(cmd);
                    }
                    Err(mpsc::TryRecvError::Empty) => {
                        // Readiness ends this wait instantly, so unlike
                        // the scan fallback there is no latency reason
                        // to wake early: the timeout only paces
                        // housekeeping (deadlines, reaping).
                        let r = self.poll_ready(self.cfg.max_scan_wait);
                        self.shared.io_sleeping.store(false, Ordering::SeqCst);
                        progress |= r.any;
                        ready = Some(r);
                    }
                    Err(mpsc::TryRecvError::Disconnected) => {
                        self.shared.io_sleeping.store(false, Ordering::SeqCst);
                        stop = true;
                    }
                }
            } else {
                match self.cmd_rx.recv_timeout(backoff.next_wait()) {
                    Ok(cmd) => {
                        progress = true;
                        stop = self.handle_cmd(cmd);
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => stop = true,
                }
            }
            if !stop {
                while let Ok(cmd) = self.cmd_rx.try_recv() {
                    progress = true;
                    if self.handle_cmd(cmd) {
                        stop = true;
                        break;
                    }
                }
            }
            if stop || self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            if use_ppoll && ready.is_none() {
                // Commands were handled without a wait; take a zero-
                // timeout readiness snapshot so the sweep still touches
                // only sockets with actual traffic — and so a sustained
                // command stream cannot starve the read path.
                ready = Some(self.poll_ready(Duration::ZERO));
            }
            if ready.as_ref().is_some_and(|r| r.wake) {
                self.drain_wake();
            }
            if ready.as_ref().is_none_or(|r| r.listener) {
                progress |= self.accept_new();
            }
            progress |= self.sweep(&mut scratch, ready.as_ref());
            progress |= self.flush_backlogged();
            if let Some(r) = ready.take() {
                // Recycle the readiness mask for the next poll.
                self.ready_pool = r.conns;
            }
            self.reap_idle();
            self.cleanup();
            let backlog: u64 = self.conns.iter().map(|c| c.io.backlog() as u64).sum();
            self.shared.backlog.store(backlog, Ordering::Relaxed);
            if progress {
                backoff.reset();
            }
        }
        // Linger: fast-path sends complete at queue time, so "send,
        // then drop the endpoint" must still put the queued bytes on
        // the wire. Bounded by the I/O timeout — a peer that stopped
        // draining its socket cannot wedge shutdown.
        let linger_deadline = Instant::now() + self.io_timeout;
        loop {
            let mut remaining = 0u64;
            for idx in 0..self.conns.len() {
                if self.conns[idx].close.is_some() {
                    continue;
                }
                self.flush_conn(idx);
                let conn = &self.conns[idx];
                if conn.close.is_none() {
                    remaining += conn.io.backlog() as u64;
                }
            }
            if remaining == 0 || Instant::now() >= linger_deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        // Shutdown: deregister everything so `connected_parties` empties
        // and blocked senders learn the endpoint is gone.
        for mut conn in std::mem::take(&mut self.conns) {
            if let Some(party) = conn.party {
                self.shared.connected.remove(party);
            }
            for pending in conn.pending.drain(..) {
                if let Some(done) = pending.done {
                    let _ = done.send(SendOutcome::NotConnected);
                }
            }
        }
    }

    /// Returns `true` when the loop must stop.
    fn handle_cmd(&mut self, cmd: Cmd) -> bool {
        match cmd {
            Cmd::Send { to, encoded, done } => {
                match self.find_conn(to) {
                    Some(idx) => {
                        let conn = &mut self.conns[idx];
                        let watermark = conn.io.queue(&encoded);
                        conn.pending.push_back(Pending {
                            watermark,
                            bytes: encoded.len() as u64,
                            deadline: Instant::now() + self.io_timeout,
                            done,
                        });
                    }
                    None => {
                        if let Some(done) = done {
                            let _ = done.send(SendOutcome::NotConnected);
                        }
                    }
                }
                false
            }
            Cmd::Register { party, stream } => {
                if let Ok(io) = ConnIo::new(stream) {
                    for old in self.conns.iter_mut().filter(|c| c.party == Some(party)) {
                        old.close.get_or_insert(CloseReason::Replaced);
                    }
                    self.conns.push(Conn {
                        io,
                        party: Some(party),
                        inbound: false,
                        pending: VecDeque::new(),
                        panic_next: false,
                        close: None,
                    });
                    self.shared.connected.insert(party);
                    telemetry::emit(
                        self.shared.party,
                        EventKind::ConnOpen {
                            peer: party,
                            inbound: false,
                        },
                    );
                }
                false
            }
            Cmd::PanicOnNextFrame { party } => {
                if let Some(conn) = self.conns.iter_mut().find(|c| c.party == Some(party)) {
                    conn.panic_next = true;
                }
                false
            }
            Cmd::Shutdown => true,
        }
    }

    /// Finds the live connection for `to`, starting at (and updating)
    /// the rotating send hint so in-order broadcasts resolve without a
    /// full scan.
    fn find_conn(&mut self, to: PartyId) -> Option<usize> {
        let n = self.conns.len();
        for step in 0..n {
            let idx = (self.send_hint + step) % n;
            let conn = &self.conns[idx];
            if conn.party == Some(to) && conn.close.is_none() {
                self.send_hint = (idx + 1) % n;
                return Some(idx);
            }
        }
        None
    }

    /// Adopts every connection waiting in the accept queue. Inbound
    /// connections stay anonymous until their [`Message::Hello`] lands.
    fn accept_new(&mut self) -> bool {
        let mut progress = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if let Ok(io) = ConnIo::new(stream) {
                        self.conns.push(Conn {
                            io,
                            party: None,
                            inbound: true,
                            pending: VecDeque::new(),
                            panic_next: false,
                            close: None,
                        });
                        progress = true;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        progress
    }

    /// Blocks in `ppoll` for up to `timeout` over the listener, the
    /// wake socket and every live connection (write interest only where
    /// a backlog exists). Conservative on syscall failure: everything
    /// is reported ready and the iteration degrades to one full sweep.
    fn poll_ready(&mut self, timeout: Duration) -> Ready {
        use crate::poll::{fd_of, ppoll, PollFd, POLLIN, POLLOUT};
        let mut fds = std::mem::take(&mut self.poll_fds);
        let mut map = std::mem::take(&mut self.poll_map);
        let mut conns_ready = std::mem::take(&mut self.ready_pool);
        fds.clear();
        map.clear();
        fds.push(PollFd::new(fd_of(&self.listener), POLLIN));
        let wake_fd = self.wake.as_ref().map_or(-1, fd_of); // <0: ignored
        fds.push(PollFd::new(wake_fd, POLLIN));
        for (idx, conn) in self.conns.iter().enumerate() {
            if conn.close.is_some() {
                continue;
            }
            let mut interest = POLLIN;
            if conn.io.backlog() > 0 {
                interest |= POLLOUT;
            }
            fds.push(PollFd::new(conn.io.raw_fd(), interest));
            map.push(idx);
        }
        let n = ppoll(&mut fds, timeout);
        conns_ready.clear();
        conns_ready.resize(self.conns.len(), n < 0);
        let ready = if n < 0 {
            Ready {
                listener: true,
                wake: true,
                any: true,
                conns: conns_ready,
            }
        } else {
            for (slot, &idx) in map.iter().enumerate() {
                if fds[2 + slot].revents != 0 {
                    conns_ready[idx] = true;
                }
            }
            Ready {
                listener: fds[0].revents != 0,
                wake: fds[1].revents != 0,
                any: n > 0,
                conns: conns_ready,
            }
        };
        self.poll_fds = fds;
        self.poll_map = map;
        ready
    }

    /// Empties the wake socket (each queued command may have written a
    /// nudge byte). EOF means the endpoint handle is gone — shutdown is
    /// already in flight.
    fn drain_wake(&mut self) {
        let Some(wake) = &mut self.wake else { return };
        let mut buf = [0u8; 64];
        loop {
            match Read::read(wake, &mut buf) {
                Ok(0) => {
                    self.wake = None;
                    return;
                }
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.wake = None;
                    return;
                }
            }
        }
    }

    /// Flushes every connection with parked bytes — freshly queued
    /// sends and `POLLOUT`-ready sockets alike — settling watermarks.
    fn flush_backlogged(&mut self) -> bool {
        let mut progress = false;
        for idx in 0..self.conns.len() {
            if self.conns[idx].close.is_none() && self.conns[idx].io.backlog() > 0 {
                progress |= self.flush_conn(idx);
            }
        }
        progress
    }

    /// One readiness pass: read every connection (only the ready ones
    /// when a poll result is supplied), handle its frames
    /// (panic-isolated), flush its write buffer, complete or expire its
    /// pending sends.
    fn sweep(&mut self, scratch: &mut [u8; 64 * 1024], ready: Option<&Ready>) -> bool {
        let mut progress = false;
        let mut registrations: Vec<(usize, PartyId)> = Vec::new();
        for idx in 0..self.conns.len() {
            // Connections registered after the poll snapshot (index
            // beyond the mask) are swept unconditionally.
            if ready.is_some_and(|r| !r.conns.get(idx).copied().unwrap_or(true)) {
                continue;
            }
            let shared = Arc::clone(&self.shared);
            let inbox_tx = self.inbox_tx.clone();
            let conn = &mut self.conns[idx];
            if conn.close.is_some() {
                continue;
            }
            match conn.io.read_sweep(scratch) {
                ReadSweep::Progress => progress = true,
                ReadSweep::Idle => {}
                ReadSweep::Closed => {
                    conn.close = Some(CloseReason::Gone);
                }
            }
            // Drain whatever full frames arrived (even on a connection
            // that just hit EOF — its final bytes are still valid).
            let drained = catch_unwind(AssertUnwindSafe(|| drain_frames(&shared, &inbox_tx, conn)));
            match drained {
                Ok((flow, registered)) => {
                    if let Some(party) = registered {
                        registrations.push((idx, party));
                    }
                    match flow {
                        FrameFlow::Continue => {}
                        FrameFlow::CloseCorrupt => {
                            conn.close.get_or_insert(CloseReason::Corrupt);
                        }
                        FrameFlow::InboxGone => {
                            // The endpoint was dropped; stop everything.
                            self.shared.shutdown.store(true, Ordering::Release);
                            return progress;
                        }
                    }
                }
                Err(_) => {
                    conn.close = Some(CloseReason::Panicked);
                }
            }
            if conn.close.is_none() {
                progress |= self.flush_conn(idx);
            }
        }
        // A party that announced itself on a new connection replaces any
        // older connection registered under the same id.
        for (keep_idx, party) in registrations {
            for (idx, old) in self.conns.iter_mut().enumerate() {
                if idx != keep_idx && old.party == Some(party) {
                    old.close.get_or_insert(CloseReason::Replaced);
                }
            }
        }
        progress
    }

    /// Flushes one connection and settles its pending sends. Returns
    /// whether bytes moved.
    fn flush_conn(&mut self, idx: usize) -> bool {
        let conn = &mut self.conns[idx];
        let before = conn.io.flushed_total();
        if let Err(e) = conn.io.flush() {
            conn.close = Some(CloseReason::WriteFailed(e.kind()));
            return false;
        }
        let flushed = conn.io.flushed_total();
        while let Some(front) = conn.pending.front() {
            if front.watermark > flushed {
                break;
            }
            let settled = conn.pending.pop_front().expect("front exists");
            self.shared
                .stats
                .bytes_sent
                .fetch_add(settled.bytes, Ordering::Relaxed);
            self.shared
                .stats
                .frames_sent
                .fetch_add(1, Ordering::Relaxed);
            if let Some(done) = settled.done {
                let _ = done.send(SendOutcome::Sent);
            }
        }
        if let Some(front) = conn.pending.front() {
            if conn.io.backlog() > 0 && Instant::now() > front.deadline {
                // The peer stopped draining its socket: the event-loop
                // analogue of a blocking write timing out.
                conn.close = Some(CloseReason::WriteFailed(std::io::ErrorKind::TimedOut));
            }
        }
        flushed > before
    }

    /// Closes connections whose peers have produced no bytes within the
    /// idle deadline — the fix for the legacy backend's forever-parked
    /// readers on half-open peers.
    fn reap_idle(&mut self) {
        let now = Instant::now();
        for conn in &mut self.conns {
            if conn.close.is_none() {
                let idle = now.saturating_duration_since(conn.io.last_rx);
                if idle > self.cfg.idle_timeout {
                    conn.close = Some(CloseReason::Idle(idle.as_millis() as u64));
                }
            }
        }
    }

    /// Removes every connection marked for close: fails its pending
    /// sends, deregisters its party, emits the lifecycle event.
    fn cleanup(&mut self) {
        if self.conns.iter().all(|c| c.close.is_none()) {
            return;
        }
        let mut kept = Vec::with_capacity(self.conns.len());
        let mut closing = Vec::new();
        for conn in std::mem::take(&mut self.conns) {
            if conn.close.is_some() {
                closing.push(conn);
            } else {
                kept.push(conn);
            }
        }
        self.conns = kept;
        for mut conn in closing {
            let reason = conn.close.take().expect("marked for close");
            let outcome_kind = match &reason {
                CloseReason::WriteFailed(kind) => Some(*kind),
                _ => None,
            };
            for pending in conn.pending.drain(..) {
                if let Some(done) = pending.done {
                    let _ = done.send(match outcome_kind {
                        Some(kind) => SendOutcome::Io(kind),
                        None => SendOutcome::NotConnected,
                    });
                }
            }
            if let Some(party) = conn.party {
                // Deregister only if no newer connection owns the id.
                if !self.conns.iter().any(|c| c.party == Some(party)) {
                    self.shared.connected.remove(party);
                }
            }
            let peer = conn.party.unwrap_or(telemetry::NO_PARTY);
            match reason {
                CloseReason::Idle(idle_ms) => {
                    telemetry::emit(self.shared.party, EventKind::ConnReaped { peer, idle_ms });
                }
                _ => {
                    telemetry::emit(self.shared.party, EventKind::ConnClose { peer });
                }
            }
        }
    }
}

/// The event-driven TCP endpoint. Same wire protocol, handshake and
/// error mapping as [`crate::TcpTransport`]; O(1) threads instead of
/// O(peers). See the module docs.
pub struct EventTransport {
    shared: Arc<Shared>,
    inbox: mpsc::Receiver<Envelope>,
    cmd_tx: mpsc::Sender<Cmd>,
    peers: HashMap<PartyId, SocketAddr>,
    next_seq: HashMap<PartyId, u64>,
    retry: RetryPolicy,
    io_timeout: Duration,
    local_addr: SocketAddr,
    /// Write end of the loopback wake connection ([`IoLoop::wake`]).
    wake_tx: Option<TcpStream>,
    io_thread: Option<std::thread::JoinHandle<()>>,
}

impl EventTransport {
    /// Binds `party`'s endpoint on `addr` with default
    /// [`EventLoopConfig`]. Mirrors [`crate::TcpTransport::bind`].
    pub fn bind(
        party: PartyId,
        addr: SocketAddr,
        peers: HashMap<PartyId, SocketAddr>,
        retry: RetryPolicy,
        io_timeout: Duration,
    ) -> Result<Self, TransportError> {
        Self::bind_with(
            party,
            addr,
            peers,
            retry,
            io_timeout,
            EventLoopConfig::default(),
        )
    }

    /// [`EventTransport::bind`] with explicit loop tuning.
    pub fn bind_with(
        party: PartyId,
        addr: SocketAddr,
        peers: HashMap<PartyId, SocketAddr>,
        retry: RetryPolicy,
        io_timeout: Duration,
        cfg: EventLoopConfig,
    ) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Wake channel: a loopback self-connection the loop polls
        // alongside peer sockets, so a queued command interrupts a
        // parked `ppoll` instantly. Failure is non-fatal — the loop
        // then sleeps on the command channel and scans instead.
        let mut early: Vec<TcpStream> = Vec::new();
        let wake_pair: Option<(TcpStream, TcpStream)> = if crate::poll::PPOLL_SUPPORTED {
            (|| -> std::io::Result<(TcpStream, TcpStream)> {
                let tx = TcpStream::connect_timeout(&local_addr, Duration::from_secs(1))?;
                tx.set_nonblocking(true)?;
                let me = tx.local_addr()?;
                // The connect above completed its handshake, so our own
                // end already sits in the accept queue — at worst behind
                // a few real peers that raced in on a well-known port;
                // adopt those as ordinary inbound connections.
                for _ in 0..64 {
                    let (rx, peer) = listener.accept()?;
                    if peer == me {
                        rx.set_nonblocking(true)?;
                        return Ok((tx, rx));
                    }
                    early.push(rx);
                }
                Err(std::io::Error::other(
                    "wake connection lost in accept queue",
                ))
            })()
            .ok()
        } else {
            None
        };
        let (wake_tx, wake_rx) = match wake_pair {
            Some((tx, rx)) => (Some(tx), Some(rx)),
            None => (None, None),
        };
        let conns: Vec<Conn> = early
            .into_iter()
            .filter_map(|s| ConnIo::new(s).ok())
            .map(|io| Conn {
                io,
                party: None,
                inbound: true,
                pending: VecDeque::new(),
                panic_next: false,
                close: None,
            })
            .collect();
        let (inbox_tx, inbox) = mpsc::channel();
        let (cmd_tx, cmd_rx) = mpsc::channel();
        let shared = Arc::new(Shared {
            party,
            connected: ShardedSet::new(cfg.shards),
            stats: AtomicStats::default(),
            shutdown: AtomicBool::new(false),
            backlog: AtomicU64::new(0),
            io_sleeping: AtomicBool::new(false),
        });
        let io_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("ppml-io-{party}"))
                .spawn(move || {
                    IoLoop {
                        shared,
                        cfg,
                        listener,
                        cmd_rx,
                        inbox_tx,
                        io_timeout,
                        conns,
                        wake: wake_rx,
                        send_hint: 0,
                        poll_fds: Vec::new(),
                        poll_map: Vec::new(),
                        ready_pool: Vec::new(),
                    }
                    .run()
                })
                .map_err(TransportError::Io)?
        };
        Ok(EventTransport {
            shared,
            inbox,
            cmd_tx,
            peers,
            next_seq: HashMap::new(),
            retry,
            io_timeout,
            local_addr,
            wake_tx,
            io_thread: Some(io_thread),
        })
    }

    /// The address this endpoint is actually listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Parties with a registered live connection (dialed out or dialed
    /// in and hello-handshaken), sorted.
    pub fn connected_parties(&self) -> Vec<PartyId> {
        self.shared.connected.snapshot()
    }

    /// Wakes a parked I/O loop after pushing a command. Skipped (and
    /// free) while the loop is awake; a full or dead wake socket is
    /// also fine — the loop is then guaranteed to drain the queue on
    /// its own.
    fn nudge(&self) {
        if self.shared.io_sleeping.load(Ordering::SeqCst) {
            if let Some(wake) = &self.wake_tx {
                let _ = (&*wake).write(&[1]);
            }
        }
    }

    /// Test hook: the I/O loop panics inside the next frame handled for
    /// `party`, which must close only that connection.
    #[doc(hidden)]
    pub fn debug_panic_on_next_frame(&self, party: PartyId) {
        let _ = self.cmd_tx.send(Cmd::PanicOnNextFrame { party });
        self.nudge();
    }

    /// Dials `to`, writes the hello (blocking, bounded by `io_timeout`)
    /// and hands the stream to the I/O loop. Command-channel FIFO
    /// guarantees the registration lands before any send this thread
    /// queues afterwards.
    fn dial(&self, to: PartyId, addr: SocketAddr) -> Result<(), TransportError> {
        let stream = TcpStream::connect_timeout(&addr, self.io_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        let hello = Frame {
            flags: 0,
            from: self.shared.party,
            to,
            seq: 0,
            msg: Message::Hello {
                party: self.shared.party,
            },
        }
        .encode();
        (&stream).write_all(&hello)?;
        self.shared
            .stats
            .bytes_sent
            .fetch_add(hello.len() as u64, Ordering::Relaxed);
        self.shared
            .stats
            .frames_sent
            .fetch_add(1, Ordering::Relaxed);
        self.cmd_tx
            .send(Cmd::Register { party: to, stream })
            .map_err(|_| TransportError::Closed)?;
        self.nudge();
        Ok(())
    }
}

impl Transport for EventTransport {
    fn party(&self) -> PartyId {
        self.shared.party
    }

    fn next_seq(&mut self, to: PartyId) -> u64 {
        let slot = self.next_seq.entry(to).or_insert(0);
        *slot += 1;
        *slot
    }

    fn send_raw(
        &mut self,
        to: PartyId,
        msg: &Message,
        seq: u64,
        flags: u16,
    ) -> Result<usize, TransportError> {
        // `Option` so the fast path below can hand the buffer to the
        // loop without a copy: every branch past the `take` returns.
        let mut encoded = Some(
            Frame {
                flags,
                from: self.shared.party,
                to,
                seq,
                msg: msg.clone(),
            }
            .encode(),
        );
        let len = encoded.as_ref().map_or(0, Vec::len);
        let mut last_err: Option<TransportError> = None;
        for attempt in 0..self.retry.max_attempts {
            if attempt > 0 {
                self.shared.stats.retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.retry.backoff(attempt - 1));
            }
            if !self.shared.connected.contains(to) {
                match self.peers.get(&to) {
                    Some(&addr) => {
                        if let Err(e) = self.dial(to, addr) {
                            last_err = Some(e);
                            continue;
                        }
                    }
                    // We cannot dial this party; it must dial us. Give
                    // the handshake time to land before retrying.
                    None => {
                        std::thread::sleep(self.retry.backoff(attempt));
                        if !self.shared.connected.contains(to) {
                            last_err = Some(TransportError::Unreachable(to));
                            continue;
                        }
                    }
                }
            }
            // Fast path: below the high-water mark the frame is handed
            // to the loop and the send is complete — no thread
            // round-trip. A frame lost to a connection dying in flight
            // is indistinguishable from one lost on the wire just after
            // a blocking write returned, and the same recovery applies:
            // the courier retransmits, later sends see `NotConnected`,
            // and the receive-side deadlines still bound every wait.
            if self.shared.backlog.load(Ordering::Relaxed) < SEND_HIGH_WATER {
                if self
                    .cmd_tx
                    .send(Cmd::Send {
                        to,
                        encoded: encoded.take().expect("fast path always returns"),
                        done: None,
                    })
                    .is_err()
                {
                    return Err(TransportError::Closed);
                }
                self.nudge();
                telemetry::emit(
                    self.shared.party,
                    EventKind::FrameSent {
                        to,
                        bytes: len as u64,
                        retransmit: flags & crate::frame::FLAG_RETRANSMIT != 0,
                    },
                );
                return Ok(len);
            }
            // Backpressured: block on the flush watermark so a peer that
            // stops draining its socket pushes back on the sender (and
            // eventually fails the connection via the write deadline).
            let (done_tx, done_rx) = mpsc::channel();
            let bytes = encoded.clone().expect("taken only on the fast path");
            if self
                .cmd_tx
                .send(Cmd::Send {
                    to,
                    encoded: bytes,
                    done: Some(done_tx),
                })
                .is_err()
            {
                return Err(TransportError::Closed);
            }
            self.nudge();
            // The loop always answers first: its per-frame deadline is
            // `io_timeout` and its scan tick is bounded by
            // `max_scan_wait`, both well inside this wait.
            match done_rx.recv_timeout(self.io_timeout + Duration::from_secs(1)) {
                Ok(SendOutcome::Sent) => {
                    telemetry::emit(
                        self.shared.party,
                        EventKind::FrameSent {
                            to,
                            bytes: len as u64,
                            retransmit: flags & crate::frame::FLAG_RETRANSMIT != 0,
                        },
                    );
                    return Ok(len);
                }
                Ok(SendOutcome::NotConnected) => {
                    last_err = Some(TransportError::Unreachable(to));
                }
                Ok(SendOutcome::Io(kind)) => {
                    last_err = Some(TransportError::Io(std::io::Error::from(kind)));
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    last_err = Some(TransportError::Io(std::io::Error::from(
                        std::io::ErrorKind::TimedOut,
                    )));
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(TransportError::Closed);
                }
            }
        }
        telemetry::emit(
            self.shared.party,
            EventKind::SendTimeout {
                to,
                attempts: self.retry.max_attempts,
            },
        );
        Err(last_err.unwrap_or(TransportError::Unreachable(to)))
    }

    fn recv(&mut self, timeout: Duration) -> Result<Envelope, TransportError> {
        match self.inbox.recv_timeout(timeout) {
            Ok(env) => Ok(env),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn stats(&self) -> LinkStats {
        let s = &self.shared.stats;
        LinkStats {
            frames_sent: s.frames_sent.load(Ordering::Relaxed),
            frames_received: s.frames_received.load(Ordering::Relaxed),
            bytes_sent: s.bytes_sent.load(Ordering::Relaxed),
            bytes_received: s.bytes_received.load(Ordering::Relaxed),
            retries: s.retries.load(Ordering::Relaxed),
        }
    }
}

impl Drop for EventTransport {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let _ = self.cmd_tx.send(Cmd::Shutdown);
        self.nudge();
        if let Some(handle) = self.io_thread.take() {
            // The loop wakes at least every `max_scan_wait`, so this
            // join is bounded by milliseconds.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::courier::Courier;

    fn loopback_addr() -> SocketAddr {
        "127.0.0.1:0".parse().expect("addr")
    }

    fn bind(party: PartyId, peers: HashMap<PartyId, SocketAddr>) -> EventTransport {
        EventTransport::bind(
            party,
            loopback_addr(),
            peers,
            RetryPolicy::fast_local(),
            Duration::from_secs(2),
        )
        .expect("bind")
    }

    #[test]
    fn dial_in_and_reply_on_same_socket() {
        let mut server = bind(0, HashMap::new());
        let mut client = bind(1, HashMap::from([(0, server.local_addr())]));
        client
            .send(0, &Message::Heartbeat { nonce: 11 })
            .expect("client send");
        let env = server.recv(Duration::from_secs(5)).expect("server recv");
        assert_eq!(env.from, 1);
        assert_eq!(env.msg, Message::Heartbeat { nonce: 11 });
        // The server replies without knowing the client's address.
        server
            .send(1, &Message::Heartbeat { nonce: 22 })
            .expect("server send");
        let env = client.recv(Duration::from_secs(5)).expect("client recv");
        assert_eq!(env.from, 0);
        assert_eq!(env.msg, Message::Heartbeat { nonce: 22 });
    }

    #[test]
    fn unreachable_peer_fails_after_bounded_retries() {
        let mut lone = bind(3, HashMap::new());
        let err = lone.send(9, &Message::Shutdown).unwrap_err();
        assert!(matches!(err, TransportError::Unreachable(9)));
    }

    #[test]
    fn courier_over_event_loop_round_trips() {
        let server = bind(0, HashMap::new());
        let server_addr = server.local_addr();
        let client = bind(1, HashMap::from([(0, server_addr)]));
        let mut sc = Courier::new(server, RetryPolicy::tcp_default());
        let mut cc = Courier::new(client, RetryPolicy::tcp_default());
        let h = std::thread::spawn(move || {
            let env = sc.recv(Duration::from_secs(5)).expect("server recv");
            (env, sc)
        });
        cc.send_reliable(
            0,
            &Message::MaskedShare {
                iteration: 1,
                epoch: 0,
                party: 1,
                payload: vec![1, 2, 3],
            },
        )
        .expect("reliable send");
        let (env, _sc) = h.join().unwrap();
        assert_eq!(
            env.msg,
            Message::MaskedShare {
                iteration: 1,
                epoch: 0,
                party: 1,
                payload: vec![1, 2, 3],
            }
        );
    }

    #[test]
    fn reconnects_after_peer_restart() {
        let mut server = bind(0, HashMap::new());
        let server_addr = server.local_addr();
        let mut client = bind(1, HashMap::from([(0, server_addr)]));
        client.send(0, &Message::Heartbeat { nonce: 1 }).unwrap();
        assert_eq!(
            server.recv(Duration::from_secs(5)).unwrap().msg,
            Message::Heartbeat { nonce: 1 }
        );
        let port_addr = server.local_addr();
        drop(server);
        std::thread::sleep(Duration::from_millis(50));
        let mut server = EventTransport::bind(
            0,
            port_addr,
            HashMap::new(),
            RetryPolicy::fast_local(),
            Duration::from_secs(2),
        )
        .expect("rebind");
        let mut delivered = false;
        for nonce in 2..6 {
            if client.send(0, &Message::Heartbeat { nonce }).is_ok()
                && server.recv(Duration::from_secs(2)).is_ok()
            {
                delivered = true;
                break;
            }
        }
        assert!(delivered, "client never reconnected");
    }

    #[test]
    fn half_open_peer_is_reaped_on_the_idle_deadline() {
        // A raw socket that handshakes then stalls without closing: the
        // legacy backend parked a reader thread on it forever; the event
        // loop must reap it.
        let cfg = EventLoopConfig {
            idle_timeout: Duration::from_millis(150),
            ..EventLoopConfig::default()
        };
        let server = EventTransport::bind_with(
            0,
            loopback_addr(),
            HashMap::new(),
            RetryPolicy::fast_local(),
            Duration::from_secs(2),
            cfg,
        )
        .expect("bind");
        let stalled = TcpStream::connect(server.local_addr()).expect("connect");
        let hello = Frame {
            flags: 0,
            from: 7,
            to: 0,
            seq: 0,
            msg: Message::Hello { party: 7 },
        }
        .encode();
        (&stalled).write_all(&hello).expect("hello");
        // The handshake registers the peer...
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.connected_parties() != vec![7] {
            assert!(Instant::now() < deadline, "peer 7 never registered");
            std::thread::sleep(Duration::from_millis(5));
        }
        // ...and total silence afterwards reaps it. The socket is kept
        // open on our side the whole time: this is idle-reaping, not EOF.
        let deadline = Instant::now() + Duration::from_secs(5);
        while !server.connected_parties().is_empty() {
            assert!(Instant::now() < deadline, "stalled peer never reaped");
            std::thread::sleep(Duration::from_millis(10));
        }
        drop(stalled);
    }

    #[test]
    fn panicked_connection_handler_leaves_other_peers_sendable() {
        let mut server = bind(0, HashMap::new());
        let addr = server.local_addr();
        let mut doomed = bind(1, HashMap::from([(0, addr)]));
        let mut healthy = bind(2, HashMap::from([(0, addr)]));
        doomed.send(0, &Message::Heartbeat { nonce: 1 }).unwrap();
        healthy.send(0, &Message::Heartbeat { nonce: 2 }).unwrap();
        for _ in 0..2 {
            server.recv(Duration::from_secs(5)).expect("announce");
        }
        // Arm the panic and trigger it with traffic from the doomed peer.
        server.debug_panic_on_next_frame(1);
        let _ = doomed.send(0, &Message::Heartbeat { nonce: 3 });
        // The panic closes peer 1's connection only: the server still
        // serves peer 2 in both directions.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.connected_parties().contains(&1) {
            assert!(Instant::now() < deadline, "panicked conn never closed");
            std::thread::sleep(Duration::from_millis(5));
        }
        healthy.send(0, &Message::Heartbeat { nonce: 4 }).unwrap();
        let env = server.recv(Duration::from_secs(5)).expect("healthy recv");
        assert_eq!(env.from, 2);
        server.send(2, &Message::Heartbeat { nonce: 5 }).unwrap();
        let env = healthy.recv(Duration::from_secs(5)).expect("healthy reply");
        assert_eq!(env.from, 0);
    }
}
