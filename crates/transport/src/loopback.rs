//! Deterministic in-memory transport with injectable network faults.
//!
//! All endpoints share a [`LoopbackHub`]: per-destination queues of
//! *encoded* frames behind one mutex, with a condvar for blocking receives.
//! Frames really are encoded and decoded on the way through — the fault
//! injector, the byte counters and the integrity checks all operate on the
//! same bytes TCP would carry, so tests over loopback exercise the full
//! codec path.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ppml_telemetry as telemetry;
use telemetry::EventKind;

use crate::fault::{FaultAction, NetFaultPlan};
use crate::frame::{Frame, Message, PartyId, FLAG_RETRANSMIT};
use crate::transport::{Envelope, LinkStats, Transport, TransportError};

/// Hub-wide traffic accounting (pre-fault, one entry per `send` call).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HubStats {
    /// Frames offered by senders.
    pub frames_offered: u64,
    /// Sum of encoded sizes of offered frames.
    pub bytes_offered: u64,
    /// Frames destroyed by the fault plan.
    pub dropped: u64,
    /// Extra copies injected by the fault plan.
    pub duplicated: u64,
    /// Frames that were held back for reordering.
    pub delayed: u64,
}

struct HubState {
    queues: Vec<VecDeque<Vec<u8>>>,
    /// Held-back frames per destination: (deliveries still to pass, frame).
    delayed: Vec<Vec<(u32, Vec<u8>)>>,
    faults: NetFaultPlan,
    stats: HubStats,
    closed: bool,
}

/// The shared fabric connecting a set of loopback endpoints.
pub struct LoopbackHub {
    state: Mutex<HubState>,
    arrived: Condvar,
    parties: usize,
}

impl LoopbackHub {
    /// A fault-free hub for `parties` endpoints (ids `0..parties`).
    pub fn new(parties: usize) -> Arc<Self> {
        Self::with_faults(parties, NetFaultPlan::none())
    }

    /// A hub whose traffic is filtered through `faults`.
    pub fn with_faults(parties: usize, faults: NetFaultPlan) -> Arc<Self> {
        assert!(parties > 0, "a hub needs at least one party");
        Arc::new(LoopbackHub {
            state: Mutex::new(HubState {
                queues: (0..parties).map(|_| VecDeque::new()).collect(),
                delayed: (0..parties).map(|_| Vec::new()).collect(),
                faults,
                stats: HubStats::default(),
                closed: false,
            }),
            arrived: Condvar::new(),
            parties,
        })
    }

    /// Number of parties the hub routes for.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// The endpoint for `party`.
    ///
    /// # Panics
    ///
    /// Panics if `party` is out of range.
    pub fn endpoint(self: &Arc<Self>, party: PartyId) -> LoopbackTransport {
        assert!(
            (party as usize) < self.parties,
            "party {party} out of range for {} parties",
            self.parties
        );
        LoopbackTransport {
            hub: Arc::clone(self),
            party,
            next_seq: vec![0; self.parties],
            stats: LinkStats::default(),
        }
    }

    /// All endpoints, in party order.
    pub fn endpoints(self: &Arc<Self>) -> Vec<LoopbackTransport> {
        (0..self.parties as PartyId)
            .map(|p| self.endpoint(p))
            .collect()
    }

    /// Snapshot of the hub-wide counters.
    pub fn stats(&self) -> HubStats {
        self.state.lock().expect("hub lock").stats
    }

    /// Replaces the fault plan mid-run — the chaos harness's lever for
    /// healing a partition or clearing a kill so a restarted incarnation
    /// of a party can talk. Frames already queued are unaffected; only
    /// subsequent sends consult the new plan.
    pub fn set_faults(&self, faults: NetFaultPlan) {
        self.state.lock().expect("hub lock").faults = faults;
    }

    /// Marks the fabric closed; blocked receivers wake with
    /// [`TransportError::Closed`] once their queues drain.
    pub fn close(&self) {
        self.state.lock().expect("hub lock").closed = true;
        self.arrived.notify_all();
    }

    /// Enqueues `frame` for `to` and ages that destination's delayed
    /// frames by one delivery slot. Call with the state lock held.
    fn enqueue(state: &mut HubState, to: usize, frame: Vec<u8>) {
        state.queues[to].push_back(frame);
        let mut released = Vec::new();
        state.delayed[to].retain_mut(|(slots, held)| {
            if *slots <= 1 {
                released.push(std::mem::take(held));
                false
            } else {
                *slots -= 1;
                true
            }
        });
        state.queues[to].extend(released);
    }
}

/// One party's endpoint on a [`LoopbackHub`].
pub struct LoopbackTransport {
    hub: Arc<LoopbackHub>,
    party: PartyId,
    next_seq: Vec<u64>,
    stats: LinkStats,
}

impl LoopbackTransport {
    /// The hub this endpoint is attached to.
    pub fn hub(&self) -> &Arc<LoopbackHub> {
        &self.hub
    }
}

impl Transport for LoopbackTransport {
    fn party(&self) -> PartyId {
        self.party
    }

    fn next_seq(&mut self, to: PartyId) -> u64 {
        if (to as usize) >= self.next_seq.len() {
            // Out-of-range destination: send_raw will report Unreachable;
            // hand out a counter anyway so the caller reaches that error.
            self.next_seq.resize(to as usize + 1, 0);
        }
        let slot = &mut self.next_seq[to as usize];
        *slot += 1;
        *slot
    }

    fn send_raw(
        &mut self,
        to: PartyId,
        msg: &Message,
        seq: u64,
        flags: u16,
    ) -> Result<usize, TransportError> {
        if (to as usize) >= self.hub.parties {
            return Err(TransportError::Unreachable(to));
        }
        let frame = Frame {
            flags,
            from: self.party,
            to,
            seq,
            msg: msg.clone(),
        };
        let encoded = frame.encode();
        let bytes = encoded.len();
        let mut state = self.hub.state.lock().expect("hub lock");
        if state.closed {
            return Err(TransportError::Closed);
        }
        state.stats.frames_offered += 1;
        state.stats.bytes_offered += bytes as u64;
        match state.faults.apply(&frame) {
            Some(FaultAction::Drop) => {
                state.stats.dropped += 1;
            }
            Some(FaultAction::Duplicate) => {
                state.stats.duplicated += 1;
                LoopbackHub::enqueue(&mut state, to as usize, encoded.clone());
                LoopbackHub::enqueue(&mut state, to as usize, encoded);
            }
            Some(FaultAction::Delay(slots)) => {
                state.stats.delayed += 1;
                state.delayed[to as usize].push((slots.max(1), encoded));
            }
            None => {
                LoopbackHub::enqueue(&mut state, to as usize, encoded);
            }
        }
        drop(state);
        self.hub.arrived.notify_all();
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        telemetry::emit(
            self.party,
            EventKind::FrameSent {
                to,
                bytes: bytes as u64,
                retransmit: flags & FLAG_RETRANSMIT != 0,
            },
        );
        Ok(bytes)
    }

    fn recv(&mut self, timeout: Duration) -> Result<Envelope, TransportError> {
        let deadline = Instant::now() + timeout;
        let me = self.party as usize;
        let mut state = self.hub.state.lock().expect("hub lock");
        let encoded = loop {
            if let Some(frame) = state.queues[me].pop_front() {
                break frame;
            }
            // Queue drained: flush the most-overdue delayed frame so a
            // delay fault at the tail of a conversation cannot deadlock.
            if !state.delayed[me].is_empty() {
                let idx = state.delayed[me]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (slots, _))| *slots)
                    .map(|(i, _)| i)
                    .expect("non-empty");
                break state.delayed[me].swap_remove(idx).1;
            }
            if state.closed {
                return Err(TransportError::Closed);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(TransportError::Timeout);
            }
            let (next, wait) = self
                .hub
                .arrived
                .wait_timeout(state, deadline - now)
                .expect("hub lock");
            state = next;
            if wait.timed_out() && state.queues[me].is_empty() && state.delayed[me].is_empty() {
                if state.closed {
                    return Err(TransportError::Closed);
                }
                return Err(TransportError::Timeout);
            }
        };
        drop(state);
        let frame = match Frame::decode(&encoded) {
            Ok(frame) => frame,
            Err(e) => {
                telemetry::emit(
                    self.party,
                    EventKind::FrameRejected {
                        bytes: encoded.len() as u64,
                    },
                );
                return Err(e.into());
            }
        };
        self.stats.frames_received += 1;
        self.stats.bytes_received += encoded.len() as u64;
        telemetry::emit(
            self.party,
            EventKind::FrameRecv {
                from: frame.from,
                bytes: encoded.len() as u64,
            },
        );
        Ok(Envelope {
            from: frame.from,
            seq: frame.seq,
            flags: frame.flags,
            msg: frame.msg,
        })
    }

    fn stats(&self) -> LinkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::LinkFilter;
    use crate::transport::Transport;

    const TICK: Duration = Duration::from_millis(200);

    #[test]
    fn frames_route_between_endpoints() {
        let hub = LoopbackHub::new(2);
        let mut a = hub.endpoint(0);
        let mut b = hub.endpoint(1);
        let receipt = a.send(1, &Message::Heartbeat { nonce: 5 }).expect("send");
        assert_eq!(receipt.seq, 1);
        let env = b.recv(TICK).expect("recv");
        assert_eq!(env.from, 0);
        assert_eq!(env.msg, Message::Heartbeat { nonce: 5 });
        // Sent bytes equal received bytes equal hub-offered bytes.
        assert_eq!(a.stats().bytes_sent, b.stats().bytes_received);
        assert_eq!(hub.stats().bytes_offered, a.stats().bytes_sent);
    }

    #[test]
    fn sequence_numbers_are_per_destination() {
        let hub = LoopbackHub::new(3);
        let mut a = hub.endpoint(0);
        assert_eq!(a.send(1, &Message::Shutdown).unwrap().seq, 1);
        assert_eq!(a.send(2, &Message::Shutdown).unwrap().seq, 1);
        assert_eq!(a.send(1, &Message::Shutdown).unwrap().seq, 2);
    }

    #[test]
    fn recv_times_out_when_idle() {
        let hub = LoopbackHub::new(1);
        let mut a = hub.endpoint(0);
        let err = a.recv(Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, TransportError::Timeout));
    }

    #[test]
    fn dropped_frames_never_arrive() {
        let hub =
            LoopbackHub::with_faults(2, NetFaultPlan::none().drop_frames(LinkFilter::any(), 1));
        let mut a = hub.endpoint(0);
        let mut b = hub.endpoint(1);
        a.send(1, &Message::Heartbeat { nonce: 1 }).unwrap();
        a.send(1, &Message::Heartbeat { nonce: 2 }).unwrap();
        let env = b.recv(TICK).unwrap();
        assert_eq!(env.msg, Message::Heartbeat { nonce: 2 });
        assert_eq!(hub.stats().dropped, 1);
    }

    #[test]
    fn duplicated_frames_arrive_twice() {
        let hub = LoopbackHub::with_faults(
            2,
            NetFaultPlan::none().duplicate_frames(LinkFilter::any(), 1),
        );
        let mut a = hub.endpoint(0);
        let mut b = hub.endpoint(1);
        a.send(1, &Message::Heartbeat { nonce: 9 }).unwrap();
        assert_eq!(b.recv(TICK).unwrap().msg, Message::Heartbeat { nonce: 9 });
        assert_eq!(b.recv(TICK).unwrap().msg, Message::Heartbeat { nonce: 9 });
    }

    #[test]
    fn delayed_frames_reorder_past_later_traffic() {
        let hub = LoopbackHub::with_faults(
            2,
            NetFaultPlan::none().delay_frames(LinkFilter::any(), 1, 1),
        );
        let mut a = hub.endpoint(0);
        let mut b = hub.endpoint(1);
        a.send(1, &Message::Heartbeat { nonce: 1 }).unwrap();
        a.send(1, &Message::Heartbeat { nonce: 2 }).unwrap();
        assert_eq!(b.recv(TICK).unwrap().msg, Message::Heartbeat { nonce: 2 });
        assert_eq!(b.recv(TICK).unwrap().msg, Message::Heartbeat { nonce: 1 });
    }

    #[test]
    fn delayed_frame_with_no_later_traffic_still_flushes() {
        let hub = LoopbackHub::with_faults(
            2,
            NetFaultPlan::none().delay_frames(LinkFilter::any(), 1, 100),
        );
        let mut a = hub.endpoint(0);
        let mut b = hub.endpoint(1);
        a.send(1, &Message::Heartbeat { nonce: 7 }).unwrap();
        assert_eq!(b.recv(TICK).unwrap().msg, Message::Heartbeat { nonce: 7 });
    }

    #[test]
    fn faults_are_deterministic() {
        let run = || {
            let hub = LoopbackHub::with_faults(
                2,
                NetFaultPlan::none()
                    .drop_frames(LinkFilter::any().kind(3), 2)
                    .duplicate_frames(LinkFilter::any(), 1),
            );
            let mut a = hub.endpoint(0);
            let mut b = hub.endpoint(1);
            for nonce in 0..6 {
                a.send(1, &Message::Heartbeat { nonce }).unwrap();
            }
            let mut got = Vec::new();
            while let Ok(env) = b.recv(Duration::from_millis(5)) {
                if let Message::Heartbeat { nonce } = env.msg {
                    got.push(nonce);
                }
            }
            got
        };
        assert_eq!(run(), run());
        assert_eq!(run(), vec![2, 2, 3, 4, 5]);
    }

    #[test]
    fn close_wakes_blocked_receivers() {
        let hub = LoopbackHub::new(1);
        let mut a = hub.endpoint(0);
        let h = {
            let hub = Arc::clone(&hub);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                hub.close();
            })
        };
        let err = a.recv(Duration::from_secs(5)).unwrap_err();
        assert!(matches!(err, TransportError::Closed));
        h.join().unwrap();
    }

    #[test]
    fn unreachable_party_is_an_error() {
        let hub = LoopbackHub::new(2);
        let mut a = hub.endpoint(0);
        assert!(matches!(
            a.send(5, &Message::Shutdown),
            Err(TransportError::Unreachable(5))
        ));
    }
}
