//! Bounded exponential backoff shared by the TCP backend and the courier.

use std::time::Duration;

/// Retry schedule: `max_attempts` tries, waiting `base · 2^attempt` between
/// them, clamped to `cap`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (the first try counts as attempt 0).
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
}

impl RetryPolicy {
    /// Builds a policy.
    pub fn new(max_attempts: u32, base: Duration, cap: Duration) -> Self {
        assert!(max_attempts >= 1, "at least one attempt is required");
        RetryPolicy {
            max_attempts,
            base,
            cap,
        }
    }

    /// Tight schedule for in-process loopback tests.
    pub fn fast_local() -> Self {
        RetryPolicy::new(6, Duration::from_millis(2), Duration::from_millis(50))
    }

    /// Default schedule for localhost TCP: six attempts spanning ≈ 3 s.
    /// Meant for the [courier's](crate::Courier) end-to-end ARQ loop.
    pub fn tcp_default() -> Self {
        RetryPolicy::new(6, Duration::from_millis(50), Duration::from_secs(1))
    }

    /// Link-level schedule for [`crate::TcpTransport`] itself: a short
    /// connection-establishment window, not an ARQ. The courier already
    /// retransmits end to end, and its schedule multiplies with this one
    /// (every courier attempt re-enters the transport's internal retry),
    /// so a long link schedule turns one dead peer into a multi-second
    /// stall of the whole broadcast — long enough for healthy peers to
    /// exhaust their own patience. Keep the link snappy and let the
    /// courier own persistence.
    pub fn tcp_link() -> Self {
        RetryPolicy::new(3, Duration::from_millis(50), Duration::from_millis(250))
    }

    /// Backoff to sleep after attempt number `attempt` (0-based) fails.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX);
        self.base.saturating_mul(factor).min(self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy::new(8, Duration::from_millis(10), Duration::from_millis(45));
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(40));
        assert_eq!(p.backoff(3), Duration::from_millis(45));
        assert_eq!(p.backoff(30), Duration::from_millis(45));
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let _ = RetryPolicy::new(0, Duration::ZERO, Duration::ZERO);
    }
}
