//! The backend-independent transport abstraction.

use std::time::Duration;

use crate::frame::{FrameError, Message, PartyId};

/// Transport-layer failure.
#[derive(Debug)]
pub enum TransportError {
    /// No frame arrived within the deadline.
    Timeout,
    /// The endpoint (or its peer set) has shut down.
    Closed,
    /// No route to the destination party.
    Unreachable(PartyId),
    /// A received frame failed decoding or integrity checks.
    Frame(FrameError),
    /// An OS-level socket error.
    Io(std::io::Error),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Timeout => write!(f, "receive deadline elapsed"),
            TransportError::Closed => write!(f, "transport closed"),
            TransportError::Unreachable(p) => write!(f, "party {p} unreachable"),
            TransportError::Frame(e) => write!(f, "bad frame: {e}"),
            TransportError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        TransportError::Frame(e)
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// A delivered message plus its routing metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Sending party.
    pub from: PartyId,
    /// Sequence number the sender assigned on this link.
    pub seq: u64,
    /// Header flags as received.
    pub flags: u16,
    /// The message body.
    pub msg: Message,
}

/// Receipt for one transmitted frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendReceipt {
    /// Sequence number the frame carried.
    pub seq: u64,
    /// Exact encoded frame size in bytes.
    pub bytes: usize,
}

/// Per-endpoint traffic counters. `bytes_*` are sums of exact encoded
/// frame sizes — the numbers `JobMetrics` byte accounting is fed from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames handed to the network, retransmissions included.
    pub frames_sent: u64,
    /// Frames delivered to this endpoint.
    pub frames_received: u64,
    /// Total encoded bytes of sent frames.
    pub bytes_sent: u64,
    /// Total encoded bytes of received frames.
    pub bytes_received: u64,
    /// Send attempts beyond the first (reconnects and retransmits).
    pub retries: u64,
}

impl LinkStats {
    /// Element-wise sum of two counters.
    pub fn merged(self, other: LinkStats) -> LinkStats {
        LinkStats {
            frames_sent: self.frames_sent + other.frames_sent,
            frames_received: self.frames_received + other.frames_received,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            bytes_received: self.bytes_received + other.bytes_received,
            retries: self.retries + other.retries,
        }
    }
}

/// One party's endpoint onto some message fabric.
///
/// Implementations assign sequence numbers per destination starting at 1;
/// [`Transport::send_raw`] exists so a reliability layer can retransmit a
/// frame under its *original* sequence number (with
/// [`crate::FLAG_RETRANSMIT`] set) and the receiver can deduplicate.
pub trait Transport: Send {
    /// This endpoint's party id.
    fn party(&self) -> PartyId;

    /// Reserves and returns the next sequence number toward `to`.
    fn next_seq(&mut self, to: PartyId) -> u64;

    /// Encodes and transmits one frame with an explicit sequence number and
    /// flags. Returns the encoded frame size in bytes.
    fn send_raw(
        &mut self,
        to: PartyId,
        msg: &Message,
        seq: u64,
        flags: u16,
    ) -> Result<usize, TransportError>;

    /// Blocks until a frame arrives or `timeout` elapses.
    fn recv(&mut self, timeout: Duration) -> Result<Envelope, TransportError>;

    /// Traffic counters for this endpoint.
    fn stats(&self) -> LinkStats;

    /// Sends `msg` to `to` with a freshly assigned sequence number.
    fn send(&mut self, to: PartyId, msg: &Message) -> Result<SendReceipt, TransportError> {
        let seq = self.next_seq(to);
        let bytes = self.send_raw(to, msg, seq, 0)?;
        Ok(SendReceipt { seq, bytes })
    }
}

/// Forwarding impl so binaries can pick a backend at runtime and still
/// hand the boxed endpoint to anything generic over [`Transport`] (the
/// [`crate::Courier`], the distributed loops).
impl Transport for Box<dyn Transport> {
    fn party(&self) -> PartyId {
        (**self).party()
    }

    fn next_seq(&mut self, to: PartyId) -> u64 {
        (**self).next_seq(to)
    }

    fn send_raw(
        &mut self,
        to: PartyId,
        msg: &Message,
        seq: u64,
        flags: u16,
    ) -> Result<usize, TransportError> {
        (**self).send_raw(to, msg, seq, flags)
    }

    fn recv(&mut self, timeout: Duration) -> Result<Envelope, TransportError> {
        (**self).recv(timeout)
    }

    fn stats(&self) -> LinkStats {
        (**self).stats()
    }
}
