//! Deterministic network fault injection for the loopback backend.
//!
//! Mirrors the builder idiom of `ppml-mapreduce`'s compute-side `FaultPlan`:
//! a plan is a list of rules, each matching a link (sender, destination,
//! optionally a message kind) with a budget of occurrences. Rules are
//! consulted in insertion order on every send; the first match with budget
//! left fires and consumes one unit. Everything is counter-based, so a test
//! replaying the same traffic sees the same faults.

use crate::frame::{Frame, PartyId, FLAG_RETRANSMIT};

/// What happens to a matched frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The frame vanishes in transit.
    Drop,
    /// The frame is delivered twice.
    Duplicate,
    /// Delivery is held back until `0` more frames have been delivered on
    /// the destination's queue (reordering past later traffic); a held
    /// frame is flushed when the queue drains, so delay never deadlocks.
    Delay(u32),
}

/// Which frames a rule applies to; `None` fields match anything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkFilter {
    from: Option<PartyId>,
    to: Option<PartyId>,
    kind: Option<u8>,
    min_seq: Option<u64>,
}

impl LinkFilter {
    /// Matches every frame.
    pub fn any() -> Self {
        LinkFilter::default()
    }

    /// Restricts to frames sent by `party`.
    pub fn from(mut self, party: PartyId) -> Self {
        self.from = Some(party);
        self
    }

    /// Restricts to frames addressed to `party`.
    pub fn to(mut self, party: PartyId) -> Self {
        self.to = Some(party);
        self
    }

    /// Restricts to frames whose [`crate::Message::kind`] equals `kind`.
    pub fn kind(mut self, kind: u8) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Restricts to frames whose per-link sequence number is at least
    /// `seq`. Data sequence numbers count up from 1 per `(sender,
    /// destination)` link, so this pins a fault to "the `n`-th message and
    /// everything after it" — retransmissions reuse the original sequence
    /// number and are therefore caught by the same rule.
    pub fn seq_at_least(mut self, seq: u64) -> Self {
        self.min_seq = Some(seq);
        self
    }

    fn matches(&self, from: PartyId, to: PartyId, kind: u8, seq: u64) -> bool {
        self.from.is_none_or(|f| f == from)
            && self.to.is_none_or(|t| t == to)
            && self.kind.is_none_or(|k| k == kind)
            && self.min_seq.is_none_or(|s| seq >= s)
    }
}

#[derive(Debug, Clone)]
struct Rule {
    filter: LinkFilter,
    action: FaultAction,
    remaining: u32,
}

/// A party that crashes mid-protocol: once it has offered `after` countable
/// frames (protocol originals only — retransmissions and acks are reactions
/// to peer timing, and heartbeats and clock probes fire on wall-clock
/// schedules, so counting any of them would make the kill point
/// nondeterministic), every subsequent frame from *or to* the party is
/// destroyed. That is what a killed process looks like to the network:
/// nothing more comes out of it, and everything sent its way lands nowhere.
///
/// With `until` set the death is a *window*: the party revives once its
/// countable-frame counter reaches `until`. Frames keep being counted while
/// dead (the process restarting still tries to talk), so the revival point
/// is as deterministic as the kill point — the chaos harness uses this for
/// timed kill-then-restart schedules.
#[derive(Debug, Clone)]
struct KillRule {
    party: PartyId,
    after: u32,
    until: Option<u32>,
    counted: u32,
}

impl KillRule {
    fn dead(&self) -> bool {
        self.counted >= self.after && self.until.is_none_or(|u| self.counted < u)
    }
}

/// An ordered set of fault rules with per-rule budgets.
#[derive(Debug, Clone, Default)]
pub struct NetFaultPlan {
    rules: Vec<Rule>,
    kills: Vec<KillRule>,
}

impl NetFaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        NetFaultPlan::default()
    }

    /// Drops the first `n` frames matching `filter`.
    pub fn drop_frames(mut self, filter: LinkFilter, n: u32) -> Self {
        self.rules.push(Rule {
            filter,
            action: FaultAction::Drop,
            remaining: n,
        });
        self
    }

    /// Duplicates the first `n` frames matching `filter`.
    pub fn duplicate_frames(mut self, filter: LinkFilter, n: u32) -> Self {
        self.rules.push(Rule {
            filter,
            action: FaultAction::Duplicate,
            remaining: n,
        });
        self
    }

    /// Delays the first `n` frames matching `filter` past `slots`
    /// subsequent deliveries to the same destination.
    pub fn delay_frames(mut self, filter: LinkFilter, n: u32, slots: u32) -> Self {
        self.rules.push(Rule {
            filter,
            action: FaultAction::Delay(slots),
            remaining: n,
        });
        self
    }

    /// Kills `party` after it has offered `n_frames` countable frames
    /// (protocol originals; retransmissions, acks, heartbeats and clock
    /// probes are excluded so the kill point is deterministic for a given
    /// protocol run regardless of wall-clock timing). From then on
    /// every frame from or to the party vanishes — the standard way to make
    /// learner dropout reproducible in tests.
    pub fn kill_party_after(mut self, party: PartyId, n_frames: u32) -> Self {
        self.kills.push(KillRule {
            party,
            after: n_frames,
            until: None,
            counted: 0,
        });
        self
    }

    /// Kills `party` for a *window* of its own countable frames: dead from
    /// its `after`-th original frame, revived at its `until`-th (so `until`
    /// must exceed `after` for the window to exist). While dead the party's
    /// protocol frames are destroyed but still counted — a restarted
    /// process keeps emitting (fresh sends, `Join` probes), and those
    /// attempts are what march the counter to the revival point. The chaos
    /// harness scripts deterministic kill-then-restart schedules with this.
    pub fn kill_party_between(mut self, party: PartyId, after: u32, until: u32) -> Self {
        self.kills.push(KillRule {
            party,
            after,
            until: Some(until),
            counted: 0,
        });
        self
    }

    /// Severs the `from → to` direction permanently while leaving the
    /// reverse direction intact — a one-way partition. Built on the same
    /// [`LinkFilter`] machinery as every other rule, so it composes with
    /// kinds and budgets added separately.
    pub fn partition_one_way(self, from: PartyId, to: PartyId) -> Self {
        self.drop_frames(LinkFilter::any().from(from).to(to), u32::MAX)
    }

    /// True when no rule can ever fire.
    pub fn is_empty(&self) -> bool {
        self.rules.iter().all(|r| r.remaining == 0) && self.kills.is_empty()
    }

    /// Decides the fate of one frame, consuming budget from the first
    /// matching rule. `None` means deliver normally. Kill rules take
    /// precedence: a dead party neither sends nor receives.
    pub fn apply(&mut self, frame: &Frame) -> Option<FaultAction> {
        let kind = frame.msg.kind();
        let countable = !matches!(
            frame.msg,
            crate::frame::Message::Ack { .. }
                | crate::frame::Message::Heartbeat { .. }
                | crate::frame::Message::TimeProbe { .. }
                | crate::frame::Message::TimeReply { .. }
        ) && frame.flags & FLAG_RETRANSMIT == 0;
        // The verdict for this frame uses the counters as they stood
        // *before* it: the frame that exhausts a kill budget still passes.
        // Counting never stops, even while dead, so a kill window's
        // revival point stays frame-deterministic.
        let mut killed = false;
        for kill in &mut self.kills {
            if kill.dead() && (frame.from == kill.party || frame.to == kill.party) {
                killed = true;
            }
            if frame.from == kill.party && countable {
                kill.counted += 1;
            }
        }
        if killed {
            return Some(FaultAction::Drop);
        }
        for rule in &mut self.rules {
            if rule.remaining > 0 && rule.filter.matches(frame.from, frame.to, kind, frame.seq) {
                rule.remaining -= 1;
                return Some(rule.action);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Message;

    /// A heartbeat frame (kind 3) for exercising the plan.
    fn probe(from: PartyId, to: PartyId, seq: u64) -> Frame {
        Frame {
            flags: 0,
            from,
            to,
            seq,
            msg: Message::Heartbeat { nonce: 0 },
        }
    }

    fn share(from: PartyId, to: PartyId, seq: u64) -> Frame {
        Frame {
            flags: 0,
            from,
            to,
            seq,
            msg: Message::MaskedShare {
                iteration: 0,
                epoch: 0,
                party: from,
                payload: Vec::new(),
            },
        }
    }

    #[test]
    fn budget_is_consumed_in_order() {
        let mut plan = NetFaultPlan::none()
            .drop_frames(LinkFilter::any().from(1), 2)
            .duplicate_frames(LinkFilter::any(), 1);
        assert_eq!(plan.apply(&share(1, 0, 1)), Some(FaultAction::Drop));
        assert_eq!(plan.apply(&share(1, 0, 2)), Some(FaultAction::Drop));
        // Drop budget exhausted; the catch-all duplicate rule fires next.
        assert_eq!(plan.apply(&share(1, 0, 3)), Some(FaultAction::Duplicate));
        assert_eq!(plan.apply(&share(1, 0, 4)), None);
        assert!(plan.is_empty());
    }

    #[test]
    fn filters_restrict_matches() {
        let mut plan =
            NetFaultPlan::none().drop_frames(LinkFilter::any().from(2).to(0).kind(6), 10);
        assert_eq!(plan.apply(&share(1, 0, 1)), None);
        assert_eq!(plan.apply(&share(2, 1, 1)), None);
        assert_eq!(plan.apply(&probe(2, 0, 1)), None);
        assert_eq!(plan.apply(&share(2, 0, 2)), Some(FaultAction::Drop));
    }

    #[test]
    fn seq_filter_pins_the_tail_of_a_link() {
        let mut plan =
            NetFaultPlan::none().drop_frames(LinkFilter::any().seq_at_least(3), u32::MAX);
        assert_eq!(plan.apply(&share(0, 1, 1)), None);
        assert_eq!(plan.apply(&share(0, 1, 2)), None);
        assert_eq!(plan.apply(&share(0, 1, 3)), Some(FaultAction::Drop));
        assert_eq!(plan.apply(&share(0, 1, 7)), Some(FaultAction::Drop));
    }

    #[test]
    fn empty_plan_delivers_everything() {
        let mut plan = NetFaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.apply(&probe(0, 1, 1)), None);
    }

    #[test]
    fn killed_party_goes_silent_after_its_budget() {
        let mut plan = NetFaultPlan::none().kill_party_after(1, 2);
        // The first two countable frames pass.
        assert_eq!(plan.apply(&share(1, 3, 1)), None);
        assert_eq!(plan.apply(&share(1, 3, 2)), None);
        // Everything after — from it or to it — is destroyed.
        assert_eq!(plan.apply(&share(1, 3, 3)), Some(FaultAction::Drop));
        assert_eq!(plan.apply(&probe(3, 1, 9)), Some(FaultAction::Drop));
        // Unrelated links are untouched.
        assert_eq!(plan.apply(&share(0, 3, 5)), None);
    }

    #[test]
    fn kill_window_revives_the_party_deterministically() {
        let mut plan = NetFaultPlan::none().kill_party_between(1, 2, 4);
        assert_eq!(plan.apply(&share(1, 3, 1)), None);
        assert_eq!(plan.apply(&share(1, 3, 2)), None);
        // Dead: frames are destroyed in both directions, but the party's
        // own originals are still counted toward the revival point.
        assert_eq!(plan.apply(&share(1, 3, 3)), Some(FaultAction::Drop));
        assert_eq!(plan.apply(&probe(3, 1, 9)), Some(FaultAction::Drop));
        assert_eq!(plan.apply(&share(1, 3, 4)), Some(FaultAction::Drop));
        // Counter reached `until`: the party is back in both directions.
        assert_eq!(plan.apply(&share(1, 3, 5)), None);
        assert_eq!(plan.apply(&probe(3, 1, 10)), None);
    }

    #[test]
    fn one_way_partition_severs_exactly_one_direction() {
        let mut plan = NetFaultPlan::none().partition_one_way(0, 2);
        assert_eq!(plan.apply(&share(0, 2, 1)), Some(FaultAction::Drop));
        assert_eq!(plan.apply(&share(0, 2, 9)), Some(FaultAction::Drop));
        assert_eq!(plan.apply(&share(2, 0, 1)), None, "reverse path stays up");
        assert_eq!(plan.apply(&share(0, 1, 1)), None, "other links stay up");
    }

    #[test]
    fn kill_counting_ignores_acks_and_retransmits() {
        let mut plan = NetFaultPlan::none().kill_party_after(1, 1);
        let ack = Frame {
            flags: 0,
            from: 1,
            to: 3,
            seq: 0,
            msg: Message::Ack { of_seq: 4 },
        };
        assert_eq!(plan.apply(&ack), None, "acks are not counted");
        assert_eq!(
            plan.apply(&probe(1, 3, 1)),
            None,
            "liveness heartbeats fire on wall-clock schedules and are not counted"
        );
        let mut retransmit = share(1, 3, 1);
        retransmit.flags = FLAG_RETRANSMIT;
        // The original counts; its retransmission does not re-count but is
        // destroyed because the party is already dead by then.
        assert_eq!(plan.apply(&share(1, 3, 1)), None);
        assert_eq!(plan.apply(&retransmit), Some(FaultAction::Drop));
        assert_eq!(
            plan.apply(&ack),
            Some(FaultAction::Drop),
            "dead parties do not ack"
        );
    }
}
