//! Deterministic network fault injection for the loopback backend.
//!
//! Mirrors the builder idiom of `ppml-mapreduce`'s compute-side `FaultPlan`:
//! a plan is a list of rules, each matching a link (sender, destination,
//! optionally a message kind) with a budget of occurrences. Rules are
//! consulted in insertion order on every send; the first match with budget
//! left fires and consumes one unit. Everything is counter-based, so a test
//! replaying the same traffic sees the same faults.

use crate::frame::PartyId;

/// What happens to a matched frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The frame vanishes in transit.
    Drop,
    /// The frame is delivered twice.
    Duplicate,
    /// Delivery is held back until `0` more frames have been delivered on
    /// the destination's queue (reordering past later traffic); a held
    /// frame is flushed when the queue drains, so delay never deadlocks.
    Delay(u32),
}

/// Which frames a rule applies to; `None` fields match anything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkFilter {
    from: Option<PartyId>,
    to: Option<PartyId>,
    kind: Option<u8>,
}

impl LinkFilter {
    /// Matches every frame.
    pub fn any() -> Self {
        LinkFilter::default()
    }

    /// Restricts to frames sent by `party`.
    pub fn from(mut self, party: PartyId) -> Self {
        self.from = Some(party);
        self
    }

    /// Restricts to frames addressed to `party`.
    pub fn to(mut self, party: PartyId) -> Self {
        self.to = Some(party);
        self
    }

    /// Restricts to frames whose [`crate::Message::kind`] equals `kind`.
    pub fn kind(mut self, kind: u8) -> Self {
        self.kind = Some(kind);
        self
    }

    fn matches(&self, from: PartyId, to: PartyId, kind: u8) -> bool {
        self.from.is_none_or(|f| f == from)
            && self.to.is_none_or(|t| t == to)
            && self.kind.is_none_or(|k| k == kind)
    }
}

#[derive(Debug, Clone)]
struct Rule {
    filter: LinkFilter,
    action: FaultAction,
    remaining: u32,
}

/// An ordered set of fault rules with per-rule budgets.
#[derive(Debug, Clone, Default)]
pub struct NetFaultPlan {
    rules: Vec<Rule>,
}

impl NetFaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        NetFaultPlan::default()
    }

    /// Drops the first `n` frames matching `filter`.
    pub fn drop_frames(mut self, filter: LinkFilter, n: u32) -> Self {
        self.rules.push(Rule {
            filter,
            action: FaultAction::Drop,
            remaining: n,
        });
        self
    }

    /// Duplicates the first `n` frames matching `filter`.
    pub fn duplicate_frames(mut self, filter: LinkFilter, n: u32) -> Self {
        self.rules.push(Rule {
            filter,
            action: FaultAction::Duplicate,
            remaining: n,
        });
        self
    }

    /// Delays the first `n` frames matching `filter` past `slots`
    /// subsequent deliveries to the same destination.
    pub fn delay_frames(mut self, filter: LinkFilter, n: u32, slots: u32) -> Self {
        self.rules.push(Rule {
            filter,
            action: FaultAction::Delay(slots),
            remaining: n,
        });
        self
    }

    /// True when no rule can ever fire.
    pub fn is_empty(&self) -> bool {
        self.rules.iter().all(|r| r.remaining == 0)
    }

    /// Decides the fate of one frame, consuming budget from the first
    /// matching rule. `None` means deliver normally.
    pub fn apply(&mut self, from: PartyId, to: PartyId, kind: u8) -> Option<FaultAction> {
        for rule in &mut self.rules {
            if rule.remaining > 0 && rule.filter.matches(from, to, kind) {
                rule.remaining -= 1;
                return Some(rule.action);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_consumed_in_order() {
        let mut plan = NetFaultPlan::none()
            .drop_frames(LinkFilter::any().from(1), 2)
            .duplicate_frames(LinkFilter::any(), 1);
        assert_eq!(plan.apply(1, 0, 6), Some(FaultAction::Drop));
        assert_eq!(plan.apply(1, 0, 6), Some(FaultAction::Drop));
        // Drop budget exhausted; the catch-all duplicate rule fires next.
        assert_eq!(plan.apply(1, 0, 6), Some(FaultAction::Duplicate));
        assert_eq!(plan.apply(1, 0, 6), None);
        assert!(plan.is_empty());
    }

    #[test]
    fn filters_restrict_matches() {
        let mut plan =
            NetFaultPlan::none().drop_frames(LinkFilter::any().from(2).to(0).kind(6), 10);
        assert_eq!(plan.apply(1, 0, 6), None);
        assert_eq!(plan.apply(2, 1, 6), None);
        assert_eq!(plan.apply(2, 0, 7), None);
        assert_eq!(plan.apply(2, 0, 6), Some(FaultAction::Drop));
    }

    #[test]
    fn empty_plan_delivers_everything() {
        let mut plan = NetFaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.apply(0, 1, 1), None);
    }
}
