//! Readiness primitives for the event-driven TCP backend: buffered
//! non-blocking connection I/O, adaptive idle backoff, and best-effort
//! core pinning — all `std`-only.
//!
//! `std` exposes no portable `epoll`/`kqueue` wrapper and this workspace
//! is dependency-free, so readiness comes in two tiers. On Linux
//! x86-64/aarch64 the loop blocks in a hand-rolled raw `ppoll`
//! syscall (inline assembly, no `libc`) over every socket plus a
//! loopback wake connection, and only touches the fds the kernel
//! reports ready — one wakeup per event, no scanning. Everywhere else
//! readiness is *scanned*, mio-style: every socket is switched to
//! non-blocking mode and the event loop (one thread for all peers, see
//! [`crate::event_loop`]) sweeps them with non-blocking reads and
//! writes. A sweep over an idle socket costs one `read` returning
//! `WouldBlock`; `IdleBackoff` stretches the sleep between sweeps
//! while nothing happens so an idle endpoint converges to a few wakeups
//! per second instead of spinning.
//!
//! `ConnIo` owns exactly one connection's buffers — the "per-peer
//! read/write buffer ownership" rule: bytes read off the socket land in
//! a private reassembly buffer until a whole length-prefixed frame is
//! available, and writes the socket would block on are parked in a
//! private write buffer the loop flushes on later sweeps. Nothing is
//! shared between connections, so a connection that fails (or whose
//! handler panics) can be dropped without touching any other peer's
//! state.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Whether this build can block on kernel readiness ([`ppoll`]) instead
/// of scanning. True on the Linux targets where the raw syscall is
/// wired up; everywhere else the event loop falls back to the scan
/// path described in the module docs.
pub(crate) const PPOLL_SUPPORTED: bool = cfg!(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
));

/// `poll(2)` readiness bits (identical on every Linux ABI).
pub(crate) const POLLIN: i16 = 0x001;
pub(crate) const POLLOUT: i16 = 0x004;

/// One entry of the `ppoll` interest set — layout-compatible with the
/// kernel's `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct PollFd {
    pub(crate) fd: i32,
    pub(crate) events: i16,
    pub(crate) revents: i16,
}

impl PollFd {
    pub(crate) fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }
}

/// The raw fd of any socket-like handle, or `-1` where raw fds do not
/// exist (the `ppoll` path is disabled there anyway).
#[cfg(unix)]
pub(crate) fn fd_of<T: std::os::fd::AsRawFd>(t: &T) -> i32 {
    t.as_raw_fd()
}
#[cfg(not(unix))]
pub(crate) fn fd_of<T>(_t: &T) -> i32 {
    -1
}

#[repr(C)]
struct Timespec {
    sec: i64,
    nsec: i64,
}

/// Blocks until at least one fd in `fds` is ready or `timeout` elapses.
/// Returns the number of ready fds (their `revents` are filled in), `0`
/// on timeout or a caught signal, and a negative errno on real failure.
///
/// This is the raw `ppoll(2)` syscall, hand-rolled with inline assembly
/// because the workspace links neither `libc` nor any event-loop crate.
/// The null sigmask makes it behave exactly like classic `poll(2)` with
/// nanosecond timeout resolution.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
#[allow(unsafe_code)] // raw syscall: the workspace links no libc
pub(crate) fn ppoll(fds: &mut [PollFd], timeout: Duration) -> i32 {
    const SYS_PPOLL: isize = 271;
    let ts = Timespec {
        sec: timeout.as_secs().min(i64::MAX as u64) as i64,
        nsec: i64::from(timeout.subsec_nanos()),
    };
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") SYS_PPOLL => ret,
            in("rdi") fds.as_mut_ptr(),
            in("rsi") fds.len(),
            in("rdx") &raw const ts,
            in("r10") 0usize, // sigmask: null (plain poll semantics)
            in("r8") 8usize,  // sigsetsize for a full sigset_t
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
    }
    const EINTR: isize = -4;
    if ret == EINTR {
        0
    } else {
        ret as i32
    }
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
#[allow(unsafe_code)] // raw syscall: the workspace links no libc
pub(crate) fn ppoll(fds: &mut [PollFd], timeout: Duration) -> i32 {
    const SYS_PPOLL: usize = 73;
    let ts = Timespec {
        sec: timeout.as_secs().min(i64::MAX as u64) as i64,
        nsec: i64::from(timeout.subsec_nanos()),
    };
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") SYS_PPOLL,
            inlateout("x0") fds.as_mut_ptr() as usize => ret,
            in("x1") fds.len(),
            in("x2") &raw const ts,
            in("x3") 0usize,
            in("x4") 8usize,
            options(nostack),
        );
    }
    const EINTR: isize = -4;
    if ret == EINTR {
        0
    } else {
        ret as i32
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub(crate) fn ppoll(_fds: &mut [PollFd], _timeout: Duration) -> i32 {
    -38 // ENOSYS: callers must consult PPOLL_SUPPORTED first
}

/// Ceiling on a single frame (matches the legacy TCP backend): a model
/// broadcast is far below this, so anything larger is a corrupt or
/// hostile length prefix.
pub(crate) const MAX_FRAME: usize = 1 << 28;

/// Chunk size for one non-blocking read. Large enough that a whole
/// burst of shares usually lands in one syscall.
const READ_CHUNK: usize = 64 * 1024;

/// What one read sweep over a connection observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadSweep {
    /// New bytes were appended to the reassembly buffer.
    Progress,
    /// The socket had nothing to offer (`WouldBlock`).
    Idle,
    /// The peer closed the connection (EOF) or the socket failed.
    Closed,
}

/// Buffered non-blocking I/O for one connection.
///
/// The event loop is the only code that touches a `ConnIo`; senders
/// reach it through the loop's command channel. See the module docs for
/// the ownership rule this encodes.
pub(crate) struct ConnIo {
    stream: TcpStream,
    /// Reassembly buffer: raw bytes read but not yet consumed as frames.
    rbuf: Vec<u8>,
    /// Bytes queued for the peer that the socket has not accepted yet.
    wbuf: Vec<u8>,
    /// Consumed prefix of `wbuf` (compacted when fully flushed).
    wpos: usize,
    /// Total bytes ever queued, for send-completion watermarks.
    queued_total: u64,
    /// Total bytes ever accepted by the socket.
    flushed_total: u64,
    /// Last instant the peer was *heard from* (connect or bytes read).
    /// Writes deliberately do not refresh this: a half-open peer happily
    /// absorbs writes into a dead kernel buffer — only inbound bytes
    /// prove it is alive.
    pub(crate) last_rx: Instant,
}

impl ConnIo {
    /// Wraps `stream`, switching it to non-blocking mode.
    pub(crate) fn new(stream: TcpStream) -> std::io::Result<ConnIo> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(ConnIo {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            queued_total: 0,
            flushed_total: 0,
            last_rx: Instant::now(),
        })
    }

    /// Drains whatever the socket has ready into the reassembly buffer.
    pub(crate) fn read_sweep(&mut self, scratch: &mut [u8; READ_CHUNK]) -> ReadSweep {
        let mut progressed = false;
        loop {
            match self.stream.read(scratch) {
                Ok(0) => return ReadSweep::Closed,
                Ok(n) => {
                    self.rbuf.extend_from_slice(&scratch[..n]);
                    self.last_rx = Instant::now();
                    progressed = true;
                    if n < scratch.len() {
                        // Short read: the socket is drained for now.
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadSweep::Closed,
            }
        }
        if progressed {
            ReadSweep::Progress
        } else {
            ReadSweep::Idle
        }
    }

    /// Pops one complete length-prefixed frame (4-byte little-endian
    /// body length, then the body — the buffer returned includes the
    /// prefix, as [`crate::Frame::decode`] expects).
    ///
    /// # Errors
    ///
    /// `Err(())` when the length prefix exceeds [`MAX_FRAME`] — the
    /// stream is corrupt and the connection must be dropped.
    pub(crate) fn take_frame(&mut self) -> Result<Option<Vec<u8>>, ()> {
        if self.rbuf.len() < 4 {
            return Ok(None);
        }
        let body_len = u32::from_le_bytes(self.rbuf[..4].try_into().expect("4 bytes")) as usize;
        if body_len > MAX_FRAME {
            return Err(());
        }
        let total = 4 + body_len;
        if self.rbuf.len() < total {
            return Ok(None);
        }
        let frame = self.rbuf[..total].to_vec();
        self.rbuf.drain(..total);
        Ok(Some(frame))
    }

    /// Queues `bytes` for the peer and returns the completion watermark:
    /// the send is fully on the wire once [`ConnIo::flushed_total`]
    /// reaches it.
    pub(crate) fn queue(&mut self, bytes: &[u8]) -> u64 {
        self.wbuf.extend_from_slice(bytes);
        self.queued_total += bytes.len() as u64;
        self.queued_total
    }

    /// Pushes pending bytes into the socket without blocking.
    ///
    /// # Errors
    ///
    /// Any socket error other than `WouldBlock` — the connection is dead.
    pub(crate) fn flush(&mut self) -> std::io::Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.wpos += n;
                    self.flushed_total += n as u64;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        Ok(())
    }

    /// Raw fd for readiness registration (`-1` off unix, where the
    /// `ppoll` path is disabled anyway).
    pub(crate) fn raw_fd(&self) -> i32 {
        fd_of(&self.stream)
    }

    /// Bytes queued but not yet accepted by the socket.
    pub(crate) fn backlog(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Total bytes the socket has accepted so far (completion watermark
    /// counterpart of [`ConnIo::queue`]).
    pub(crate) fn flushed_total(&self) -> u64 {
        self.flushed_total
    }
}

/// Fresh scratch buffer for [`ConnIo::read_sweep`].
pub(crate) fn read_scratch() -> Box<[u8; READ_CHUNK]> {
    vec![0u8; READ_CHUNK]
        .into_boxed_slice()
        .try_into()
        .expect("exact size")
}

/// Adaptive sleep for the scan loop: nothing happened → wait a little
/// longer next time (up to `max`); anything happened → drop back to
/// busy-adjacent scanning. Keeps active rounds snappy and idle
/// endpoints cheap.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IdleBackoff {
    cur: Duration,
    min: Duration,
    max: Duration,
}

impl IdleBackoff {
    pub(crate) fn new(min: Duration, max: Duration) -> IdleBackoff {
        IdleBackoff { cur: min, min, max }
    }

    /// The wait to use for this idle tick; subsequent idle ticks wait
    /// geometrically longer until `max`.
    pub(crate) fn next_wait(&mut self) -> Duration {
        let wait = self.cur;
        self.cur = (self.cur * 2).min(self.max);
        wait
    }

    /// Call when the loop made progress: scanning resumes at `min`.
    pub(crate) fn reset(&mut self) {
        self.cur = self.min;
    }
}

/// Best-effort pinning of the *calling* thread to `core`.
///
/// `std` exposes no affinity API and this workspace links no `libc`, so
/// on Linux the thread id is recovered from the `/proc/thread-self`
/// symlink (`<pid>/task/<tid>`) and handed to `taskset(1)`. Returns
/// `true` only when the affinity mask was actually applied; on any
/// failure (non-Linux, no `taskset`, containers masking `/proc`) the
/// thread simply stays unpinned — pinning is a throughput hint, never a
/// correctness requirement.
pub fn pin_current_thread(core: usize) -> bool {
    #[cfg(target_os = "linux")]
    {
        let Ok(link) = std::fs::read_link("/proc/thread-self") else {
            return false;
        };
        let Some(tid) = link
            .to_str()
            .and_then(|s| s.rsplit('/').next())
            .and_then(|s| s.parse::<u64>().ok())
        else {
            return false;
        };
        std::process::Command::new("taskset")
            .args(["-p", "-c", &core.to_string(), &tid.to_string()])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .map(|s| s.success())
            .unwrap_or(false)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = core;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    #[test]
    fn frames_reassemble_across_arbitrary_chunk_boundaries() {
        let (tx, rx) = socket_pair();
        let mut conn = ConnIo::new(rx).expect("conn");
        let mut scratch = read_scratch();

        // Two frames, written in awkward slices (including a split
        // straight through the second length prefix).
        let body1 = vec![7u8; 10];
        let body2 = vec![9u8; 3];
        let mut wire = Vec::new();
        wire.extend_from_slice(&(body1.len() as u32).to_le_bytes());
        wire.extend_from_slice(&body1);
        wire.extend_from_slice(&(body2.len() as u32).to_le_bytes());
        wire.extend_from_slice(&body2);

        let mut tx = tx;
        for chunk in wire.chunks(5) {
            tx.write_all(chunk).expect("write");
            tx.flush().expect("flush");
            // Give loopback a moment, then sweep.
            std::thread::sleep(Duration::from_millis(2));
            let _ = conn.read_sweep(&mut scratch);
        }

        let f1 = conn.take_frame().expect("ok").expect("frame 1");
        assert_eq!(&f1[4..], &body1[..]);
        let f2 = conn.take_frame().expect("ok").expect("frame 2");
        assert_eq!(&f2[4..], &body2[..]);
        assert_eq!(conn.take_frame(), Ok(None));
    }

    #[test]
    fn oversized_length_prefix_is_an_error() {
        let (tx, rx) = socket_pair();
        let mut conn = ConnIo::new(rx).expect("conn");
        let mut scratch = read_scratch();
        let mut tx = tx;
        tx.write_all(&u32::MAX.to_le_bytes()).expect("write");
        tx.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(conn.read_sweep(&mut scratch), ReadSweep::Progress);
        assert_eq!(conn.take_frame(), Err(()));
    }

    #[test]
    fn eof_surfaces_as_closed() {
        let (tx, rx) = socket_pair();
        let mut conn = ConnIo::new(rx).expect("conn");
        let mut scratch = read_scratch();
        drop(tx);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(conn.read_sweep(&mut scratch), ReadSweep::Closed);
    }

    #[test]
    fn queued_writes_flush_and_watermark_advances() {
        let (rx, tx) = socket_pair();
        let mut conn = ConnIo::new(tx).expect("conn");
        let watermark = conn.queue(&[1, 2, 3, 4]);
        assert_eq!(watermark, 4);
        conn.flush().expect("flush");
        assert_eq!(conn.flushed_total(), 4);
        assert_eq!(conn.backlog(), 0);
        let mut got = [0u8; 4];
        let mut rx = rx;
        rx.read_exact(&mut got).expect("read");
        assert_eq!(got, [1, 2, 3, 4]);
    }

    #[test]
    fn idle_backoff_doubles_and_resets() {
        let mut b = IdleBackoff::new(Duration::from_micros(50), Duration::from_millis(2));
        assert_eq!(b.next_wait(), Duration::from_micros(50));
        assert_eq!(b.next_wait(), Duration::from_micros(100));
        assert_eq!(b.next_wait(), Duration::from_micros(200));
        for _ in 0..10 {
            b.next_wait();
        }
        assert_eq!(b.next_wait(), Duration::from_millis(2));
        b.reset();
        assert_eq!(b.next_wait(), Duration::from_micros(50));
    }

    #[test]
    fn ppoll_reports_a_readable_socket() {
        if !PPOLL_SUPPORTED {
            return;
        }
        let (mut tx, rx) = socket_pair();
        tx.write_all(&[42]).expect("write");
        tx.flush().expect("flush");
        let mut fds = [PollFd::new(fd_of(&rx), POLLIN)];
        let n = ppoll(&mut fds, Duration::from_secs(5));
        assert_eq!(n, 1, "one fd must be ready");
        assert_ne!(fds[0].revents & POLLIN, 0, "readable bit must be set");
    }

    #[test]
    fn ppoll_times_out_on_an_idle_socket() {
        if !PPOLL_SUPPORTED {
            return;
        }
        let (_tx, rx) = socket_pair();
        let mut fds = [PollFd::new(fd_of(&rx), POLLIN)];
        let before = Instant::now();
        let n = ppoll(&mut fds, Duration::from_millis(30));
        assert_eq!(n, 0, "idle socket must time out");
        assert!(before.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn pinning_never_panics() {
        // Whether it succeeds depends on the host; it must only be
        // best-effort either way.
        let _ = pin_current_thread(0);
    }
}
