//! The byte-level codec: little-endian scalars, length-prefixed vectors.
//!
//! Two pieces live here. [`Wire`] is the encoding half — every value knows
//! its exact serialized size (`byte_len`) and how to append itself to a
//! buffer (`encode_into`). The impls deliberately reproduce the size
//! arithmetic of the old `ppml-mapreduce` `ByteSized` estimator (8-byte
//! length prefixes on vectors and strings, 1-byte `Option` tags), so the
//! byte counters that used to be *estimates* are now the lengths of real
//! encodings. [`Reader`] is the decoding half: a bounds-checked cursor used
//! by the frame codec.

/// A value with an exact wire encoding.
///
/// `byte_len` must equal the number of bytes `encode_into` appends — the
/// frame codec and the metrics layer both rely on that invariant.
pub trait Wire {
    /// Exact number of bytes the encoded value occupies.
    fn byte_len(&self) -> usize;

    /// Appends the little-endian encoding of `self` to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Convenience: encodes into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_len());
        self.encode_into(&mut out);
        out
    }
}

impl Wire for () {
    fn byte_len(&self) -> usize {
        0
    }
    fn encode_into(&self, _out: &mut Vec<u8>) {}
}

macro_rules! scalar_wire {
    ($($t:ty),*) => {
        $(impl Wire for $t {
            fn byte_len(&self) -> usize {
                std::mem::size_of::<$t>()
            }
            fn encode_into(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        })*
    };
}

scalar_wire!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl Wire for usize {
    fn byte_len(&self) -> usize {
        std::mem::size_of::<usize>()
    }
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u64).to_le_bytes());
    }
}

impl Wire for isize {
    fn byte_len(&self) -> usize {
        std::mem::size_of::<isize>()
    }
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as i64).to_le_bytes());
    }
}

impl Wire for bool {
    fn byte_len(&self) -> usize {
        1
    }
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn byte_len(&self) -> usize {
        8 + self.iter().map(Wire::byte_len).sum::<usize>()
    }
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for item in self {
            item.encode_into(out);
        }
    }
}

impl<T: Wire> Wire for Option<T> {
    fn byte_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Wire::byte_len)
    }
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_into(out);
            }
        }
    }
}

impl Wire for String {
    fn byte_len(&self) -> usize {
        8 + self.len()
    }
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        out.extend_from_slice(self.as_bytes());
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn byte_len(&self) -> usize {
        self.0.byte_len() + self.1.byte_len()
    }
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn byte_len(&self) -> usize {
        self.0.byte_len() + self.1.byte_len() + self.2.byte_len()
    }
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
        self.2.encode_into(out);
    }
}

impl<T: Wire + ?Sized> Wire for &T {
    fn byte_len(&self) -> usize {
        (*self).byte_len()
    }
    fn encode_into(&self, out: &mut Vec<u8>) {
        (*self).encode_into(out);
    }
}

/// Decoding failure: the buffer ran out or a length field was absurd.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes remained than the field required.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes actually left.
        available: usize,
    },
    /// A structurally invalid encoding (bad tag, oversized length, …).
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(f, "truncated field: needed {needed} bytes, had {available}")
            }
            WireError::Malformed(what) => write!(f, "malformed encoding: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Bounds-checked little-endian cursor over an encoded buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated {
                needed: n,
                available: self.buf.len(),
            });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a `bool` (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool tag not 0/1")),
        }
    }

    fn vec_len(&mut self) -> Result<usize, WireError> {
        let n = self.u64()?;
        // A length field cannot legitimately exceed the bytes that remain.
        if n > self.buf.len() as u64 {
            return Err(WireError::Malformed("vector length exceeds buffer"));
        }
        Ok(n as usize)
    }

    /// Reads an 8-byte length prefix followed by that many `u32`s.
    pub fn vec_u32(&mut self) -> Result<Vec<u32>, WireError> {
        let n = self.vec_len()?;
        (0..n).map(|_| self.u32()).collect()
    }

    /// Reads an 8-byte length prefix followed by that many `u64`s.
    pub fn vec_u64(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.vec_len()?;
        (0..n).map(|_| self.u64()).collect()
    }

    /// Reads an 8-byte length prefix followed by that many `f64`s.
    pub fn vec_f64(&mut self) -> Result<Vec<f64>, WireError> {
        let n = self.vec_len()?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Reads an 8-byte length prefix followed by that many raw bytes.
    pub fn byte_vec(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.vec_len()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        let bytes = self.byte_vec()?;
        String::from_utf8(bytes).map_err(|_| WireError::Malformed("invalid UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes_match_the_legacy_estimator() {
        assert_eq!(0u64.byte_len(), 8);
        assert_eq!(0f64.byte_len(), 8);
        assert_eq!(true.byte_len(), 1);
        assert_eq!(().byte_len(), 0);
    }

    #[test]
    fn container_sizes_match_the_legacy_estimator() {
        assert_eq!(vec![1.0f64; 4].byte_len(), 8 + 32);
        assert_eq!("abc".to_string().byte_len(), 11);
        assert_eq!((1u64, 2.0f64).byte_len(), 16);
        assert_eq!(Some(1u32).byte_len(), 5);
        assert_eq!(None::<u32>.byte_len(), 1);
    }

    #[test]
    fn nested_sizes_match_the_legacy_estimator() {
        let v: Vec<Vec<f64>> = vec![vec![0.0; 2], vec![0.0; 3]];
        assert_eq!(v.byte_len(), 8 + (8 + 16) + (8 + 24));
    }

    #[test]
    fn byte_len_equals_encoded_len() {
        let vals: Vec<Box<dyn Wire>> = vec![
            Box::new(42u64),
            Box::new(-1.5f64),
            Box::new(vec![1u64, 2, 3]),
            Box::new(vec![0.5f64; 7]),
            Box::new("hello".to_string()),
            Box::new(Some(9u32)),
            Box::new(None::<u64>),
            Box::new((1u8, 2u16, 3u32)),
            Box::new(true),
            Box::new(3usize),
        ];
        for v in &vals {
            assert_eq!(v.encode().len(), v.byte_len());
        }
    }

    #[test]
    fn round_trips() {
        let v = vec![1u64, u64::MAX, 7];
        let enc = v.encode();
        let mut r = Reader::new(&enc);
        assert_eq!(r.vec_u64().unwrap(), v);
        assert_eq!(r.remaining(), 0);

        let f = vec![0.25f64, -1e300, f64::MIN_POSITIVE];
        let enc = f.encode();
        assert_eq!(Reader::new(&enc).vec_f64().unwrap(), f);

        let p = vec![0u32, u32::MAX, 7];
        let enc = p.encode();
        assert_eq!(Reader::new(&enc).vec_u32().unwrap(), p);

        let s = "wire ✓".to_string();
        let enc = s.encode();
        assert_eq!(Reader::new(&enc).string().unwrap(), s);
    }

    #[test]
    fn truncated_reads_fail_cleanly() {
        let enc = vec![1u64, 2, 3].encode();
        assert!(Reader::new(&enc[..enc.len() - 1]).vec_u64().is_err());
        assert!(Reader::new(&[1, 2]).u32().is_err());
    }

    #[test]
    fn absurd_length_prefix_is_malformed_not_oom() {
        let mut enc = Vec::new();
        enc.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            Reader::new(&enc).vec_u64(),
            Err(WireError::Malformed("vector length exceeds buffer"))
        );
    }
}
