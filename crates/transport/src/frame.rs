//! The framed wire format every transport backend speaks.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [u32 len]                                  // bytes after this field
//! [u8 version][u8 kind][u16 flags]           // codec version, payload kind
//! [u32 from][u32 to][u64 seq]                // routing + per-link sequence
//! [payload …]                                // kind-specific, Wire-encoded
//! [u32 crc32]                                // over version … payload
//! ```
//!
//! `len` covers everything after itself (20-byte header remainder, the
//! payload, and the 4-byte CRC), so a stream reader needs exactly two
//! reads per frame. The CRC is IEEE 802.3 CRC-32 over the region between
//! the length prefix and the checksum itself; a corrupted frame decodes to
//! [`FrameError::BadChecksum`] rather than garbage. Unknown versions and
//! kinds are rejected up front so the format can evolve behind the version
//! byte.

use crate::wire::{Reader, Wire, WireError};

/// Current codec version; bump on any incompatible layout change.
/// Version 2 added the re-key epoch to [`Message::MaskedShare`] and the
/// [`Message::Rekey`] frame for dropout recovery. [`Message::Score`] and
/// [`Message::ScoreReply`] are additive within version 2: new kind bytes,
/// no layout change to any existing frame. The secure-aggregation kinds
/// ([`Message::ShamirDist`] through [`Message::CipherSum`]), the
/// observability kind ([`Message::Telemetry`]) and the MapReduce task
/// lifecycle kinds ([`Message::TaskDispatch`] through
/// [`Message::TaskCancel`]) follow the same additive rule.
pub const WIRE_VERSION: u8 = 2;

/// Fixed bytes around every payload: 4 (length prefix) + 20 (version, kind,
/// flags, from, to, seq) + 4 (crc) — i.e. a frame occupies
/// `FRAME_OVERHEAD + payload_len` bytes on the wire.
pub const FRAME_OVERHEAD: usize = 28;

/// Flag bit: this frame is a retransmission of an earlier sequence number.
pub const FLAG_RETRANSMIT: u16 = 1;

/// A participant in the protocol (coordinator is conventionally 0).
pub type PartyId = u32;

/// IEEE 802.3 CRC-32 (reflected, init/final 0xFFFF_FFFF).
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                (c >> 1) ^ 0xEDB8_8320
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Every message the protocol exchanges.
///
/// The first four are control frames; the middle group carries the secure
/// summation / consensus protocol of the paper's §V; [`Message::Blob`] is
/// the escape hatch for application payloads (the MapReduce layer ships its
/// `Wire`-encoded job data through it).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Connection opener: announces the sender's party id.
    Hello {
        /// The dialing party.
        party: PartyId,
    },
    /// Response to [`Message::Hello`].
    HelloAck {
        /// The accepting party.
        party: PartyId,
    },
    /// Liveness probe; echoed nonce correlates request and response.
    Heartbeat {
        /// Opaque echo token.
        nonce: u64,
    },
    /// Acknowledges receipt of the frame with sequence `of_seq`.
    Ack {
        /// Sequence number being acknowledged.
        of_seq: u64,
    },
    /// Pairwise mask exchange (§V): the `Sed`/`Rev` vector one party sends
    /// its pair partner for one iteration.
    MaskExchange {
        /// ADMM iteration the masks belong to.
        iteration: u64,
        /// Mask words over `Z_{2^64}`.
        masks: Vec<u64>,
    },
    /// A learner's masked, fixed-point local model for one iteration.
    MaskedShare {
        /// ADMM iteration the share belongs to.
        iteration: u64,
        /// Re-key generation the masks were derived under. The coordinator
        /// discards shares from superseded epochs: they were masked over a
        /// survivor set that no longer matches, so their masks would not
        /// cancel in the round sum.
        epoch: u64,
        /// Originating learner.
        party: PartyId,
        /// Masked fixed-point words; masks cancel in the modular sum.
        payload: Vec<u64>,
    },
    /// Coordinator-declared dropout: the listed survivors must rebuild
    /// their pairwise masks over the survivor set and re-send their share
    /// for `iteration` tagged with the new `epoch`.
    Rekey {
        /// ADMM iteration being re-collected.
        iteration: u64,
        /// New re-key generation (strictly increasing per training run).
        epoch: u64,
        /// Parties still in the protocol, ascending original ids.
        survivors: Vec<PartyId>,
    },
    /// Consensus state broadcast from the coordinator after each reduce.
    Consensus {
        /// Iteration this state concludes.
        iteration: u64,
        /// The consensus iterate `z`.
        z: Vec<f64>,
        /// Auxiliary state (scaled dual / previous iterate as the flow
        /// requires; empty when unused).
        s: Vec<f64>,
        /// True when the coordinator has declared convergence.
        done: bool,
    },
    /// Threshold-scheme share delivery or partial-sum return (Shamir words).
    Shares {
        /// Protocol round the shares belong to.
        iteration: u64,
        /// Share words over GF(2⁶¹−1).
        values: Vec<u64>,
    },
    /// Application payload: opaque `Wire`-encoded bytes plus a caller tag.
    Blob {
        /// Application-defined discriminator.
        tag: u16,
        /// Encoded body.
        bytes: Vec<u8>,
    },
    /// Orderly teardown.
    Shutdown,
    /// Clock-offset probe (coordinator → learner): the receiver answers
    /// with [`Message::TimeReply`] echoing `nonce` and its own telemetry
    /// clock. `run_id` doubles as the run-identity gossip that stamps
    /// every party's telemetry stream. Additive in wire version 2 — an
    /// old peer rejects the unknown kind, which the prober tolerates.
    TimeProbe {
        /// Echo token correlating probe and reply.
        nonce: u64,
        /// Run identifier minted by the coordinator.
        run_id: u64,
    },
    /// Answer to [`Message::TimeProbe`].
    TimeReply {
        /// The probe's echo token.
        nonce: u64,
        /// Responder's telemetry clock (nanoseconds since its process
        /// telemetry epoch) when the probe was handled.
        t_ns: u64,
    },
    /// A restarted (or previously dropped) learner asking the coordinator
    /// to re-admit it mid-run. Sent repeatedly until a
    /// [`Message::Welcome`] arrives. Additive in wire version 2 — an old
    /// coordinator rejects the unknown kind and the joiner times out.
    Join {
        /// The returning party.
        party: PartyId,
        /// Echo token distinguishing join attempts (a restarted process
        /// picks a fresh one so stale Welcomes can be told apart).
        nonce: u64,
    },
    /// Coordinator's re-admission grant: the full state a rejoiner (or a
    /// learner greeting a resumed coordinator) needs to take part in the
    /// next collection round. Also additive in wire version 2.
    Welcome {
        /// The join nonce being answered (0 when the Welcome is pushed
        /// unsolicited by a resumed coordinator).
        nonce: u64,
        /// Next ADMM iteration the coordinator will broadcast.
        iteration: u64,
        /// Re-key generation in force; the receiver must mask over
        /// `survivors` under this epoch from now on.
        epoch: u64,
        /// Parties in the protocol after re-admission, ascending ids.
        survivors: Vec<PartyId>,
        /// Current consensus iterate `z` (the warm start).
        z: Vec<f64>,
        /// Auxiliary consensus state (matches [`Message::Consensus::s`]).
        s: Vec<f64>,
    },
    /// Batched inference request (client → `ppml-serve`): `rows × features`
    /// samples flattened row-major into `xs`. Additive in wire version 2 —
    /// a training-only peer rejects the unknown kind, which a scoring
    /// client must treat as "this endpoint does not serve".
    Score {
        /// Client-chosen token echoed verbatim in the reply.
        request_id: u64,
        /// Feature count per sample; `xs.len()` must be a multiple of it.
        features: u32,
        /// Row-major flattened samples.
        xs: Vec<f64>,
    },
    /// Answer to [`Message::Score`]. Carries only decision margins — never
    /// model coordinates — per the serving privacy rule. Additive in wire
    /// version 2.
    ScoreReply {
        /// The request's echo token.
        request_id: u64,
        /// True when every row was scored; false when the batch was
        /// rejected (dimension mismatch, empty batch), in which case
        /// `margins` is empty.
        ok: bool,
        /// One decision margin per request row (sign = predicted label).
        margins: Vec<f64>,
    },
    /// Shamir share distribution (learner → coordinator relay): the
    /// sender's pad-blinded share blocks for every *other* learner,
    /// ascending destination id, each block `share_len` field words over
    /// `GF(2⁶¹−1)`. The coordinator forwards blocks without being able to
    /// unblind them. Additive in wire version 2.
    ShamirDist {
        /// Protocol round the shares belong to.
        iteration: u64,
        /// Originating party.
        party: PartyId,
        /// Concatenated blinded destination blocks.
        flat: Vec<u64>,
    },
    /// Shamir share delivery (coordinator → survivor): the blinded blocks
    /// destined for the receiver, one per contributor in `contributors`
    /// order. The receiver unblinds each with the sender-pair pad and
    /// field-sums them into its summed share. Additive in wire version 2.
    ShamirCollect {
        /// Protocol round the shares belong to.
        iteration: u64,
        /// Parties whose blocks are included, ascending ids.
        contributors: Vec<PartyId>,
        /// Concatenated blinded blocks, `contributors` order.
        flat: Vec<u64>,
    },
    /// Paillier encrypted contribution (learner → coordinator): one
    /// fixed-width big-endian ciphertext per model coordinate under the
    /// run's public key. Additive in wire version 2.
    CipherShare {
        /// Protocol round the ciphertexts belong to.
        iteration: u64,
        /// Originating party.
        party: PartyId,
        /// Concatenated fixed-width ciphertexts.
        bytes: Vec<u8>,
    },
    /// Homomorphically folded aggregate (coordinator → key authority):
    /// the coordinate-wise ciphertext products, same fixed-width layout
    /// as [`Message::CipherShare`]. Additive in wire version 2.
    CipherAgg {
        /// Protocol round the aggregate concludes.
        iteration: u64,
        /// Number of contributions folded in (the divisor for averaging).
        contributors: u32,
        /// Concatenated fixed-width aggregate ciphertexts.
        bytes: Vec<u8>,
    },
    /// Decrypted aggregate sums (key authority → coordinator): the
    /// coordinate-wise plaintext *sums* — exactly what the coordinator
    /// learns under every backend, never an individual contribution.
    /// Additive in wire version 2.
    CipherSum {
        /// Protocol round the sums conclude.
        iteration: u64,
        /// Decoded coordinate sums.
        values: Vec<f64>,
    },
    /// In-band observability deltas (learner → coordinator), piggy-backed
    /// at a round boundary. Carries only privacy-typed scalars — sizes,
    /// timings, counts, epochs, the same rule `EventKind` enforces — and
    /// never shares, masks or model coordinates. The coordinator folds
    /// the deltas into its per-learner cluster registry; the frame is
    /// pure observability: it is sent unreliably, never charged to the
    /// run's byte accounting, and losing it costs nothing but a gap in a
    /// gauge. Additive in wire version 2.
    Telemetry {
        /// Protocol round the deltas cover.
        iteration: u64,
        /// Causal correlation id (`mix64(run_id ^ iteration)`): streams
        /// of one run stamp the same span per round, so traces merge by
        /// id instead of clock rebasing.
        span: u64,
        /// Originating party.
        party: PartyId,
        /// Sender's mask epoch at the time of the report.
        epoch: u64,
        /// Frames the sender put on the wire since its last report.
        frames_sent: u64,
        /// Frames the sender received since its last report.
        frames_recv: u64,
        /// Encoded bytes sent since the last report.
        bytes_sent: u64,
        /// Encoded bytes received since the last report.
        bytes_recv: u64,
        /// Send retries (reconnects + retransmits) since the last report.
        retransmits: u64,
        /// The sender's local wall clock for the round, nanoseconds.
        elapsed_ns: u64,
    },
    /// MapReduce task dispatch (driver → worker): one map attempt over a
    /// block the worker already holds. Carries only the task descriptor
    /// and the round's broadcast — never the block's raw data, which is
    /// resident on (or deterministically rematerialised by) the worker.
    /// That asymmetry is the locality argument of DESIGN.md §13.
    /// Additive in wire version 2.
    TaskDispatch {
        /// Iteration (round) the attempt belongs to.
        iteration: u64,
        /// Block id the map task covers.
        block: u64,
        /// 1-based attempt number (retries and speculative copies get
        /// fresh numbers; results are matched on it).
        attempt: u32,
        /// Encoded broadcast payload for the round (shared read-only
        /// input, e.g. the ADMM consensus state).
        broadcast: Vec<u8>,
    },
    /// MapReduce task result (worker → driver): the encoded map output
    /// for one attempt, or a failure report. Deterministic map functions
    /// make `output` bit-identical across attempts, which is what lets
    /// the scheduler accept whichever attempt lands first. Additive in
    /// wire version 2.
    TaskResult {
        /// Iteration the attempt belonged to.
        iteration: u64,
        /// Block id the map task covered.
        block: u64,
        /// Attempt number this result answers.
        attempt: u32,
        /// Whether the map function succeeded; on `false`, `output`
        /// holds the UTF-8 failure reason instead of map output.
        ok: bool,
        /// Worker-side wall clock for the attempt, nanoseconds.
        elapsed_ns: u64,
        /// Encoded map output (or failure reason when `ok` is false).
        output: Vec<u8>,
    },
    /// MapReduce attempt cancellation (driver → worker): best-effort
    /// notice that an attempt's result is no longer wanted — the task
    /// was completed by a sibling attempt (speculation race) or the
    /// round was abandoned. Sent unreliably; a worker that already
    /// replied just has its result deduplicated driver-side. Additive
    /// in wire version 2.
    TaskCancel {
        /// Iteration of the cancelled attempt.
        iteration: u64,
        /// Block id of the cancelled attempt.
        block: u64,
        /// Attempt number to cancel.
        attempt: u32,
    },
}

impl Message {
    /// The kind byte written into the frame header.
    pub fn kind(&self) -> u8 {
        match self {
            Message::Hello { .. } => 1,
            Message::HelloAck { .. } => 2,
            Message::Heartbeat { .. } => 3,
            Message::Ack { .. } => 4,
            Message::MaskExchange { .. } => 5,
            Message::MaskedShare { .. } => 6,
            Message::Consensus { .. } => 7,
            Message::Shares { .. } => 8,
            Message::Blob { .. } => 9,
            Message::Shutdown => 10,
            Message::Rekey { .. } => 11,
            Message::TimeProbe { .. } => 12,
            Message::TimeReply { .. } => 13,
            Message::Join { .. } => 14,
            Message::Welcome { .. } => 15,
            Message::Score { .. } => 16,
            Message::ScoreReply { .. } => 17,
            Message::ShamirDist { .. } => 18,
            Message::ShamirCollect { .. } => 19,
            Message::CipherShare { .. } => 20,
            Message::CipherAgg { .. } => 21,
            Message::CipherSum { .. } => 22,
            Message::Telemetry { .. } => 23,
            Message::TaskDispatch { .. } => 24,
            Message::TaskResult { .. } => 25,
            Message::TaskCancel { .. } => 26,
        }
    }

    /// Exact encoded payload size in bytes.
    pub fn payload_len(&self) -> usize {
        match self {
            Message::Hello { party } | Message::HelloAck { party } => party.byte_len(),
            Message::Heartbeat { nonce } => nonce.byte_len(),
            Message::Ack { of_seq } => of_seq.byte_len(),
            Message::MaskExchange { iteration, masks } => iteration.byte_len() + masks.byte_len(),
            Message::MaskedShare {
                iteration,
                epoch,
                party,
                payload,
            } => iteration.byte_len() + epoch.byte_len() + party.byte_len() + payload.byte_len(),
            Message::Rekey {
                iteration,
                epoch,
                survivors,
            } => iteration.byte_len() + epoch.byte_len() + survivors.byte_len(),
            Message::Consensus {
                iteration,
                z,
                s,
                done,
            } => iteration.byte_len() + z.byte_len() + s.byte_len() + done.byte_len(),
            Message::Shares { iteration, values } => iteration.byte_len() + values.byte_len(),
            Message::Blob { tag, bytes } => tag.byte_len() + bytes.byte_len(),
            Message::Shutdown => 0,
            Message::TimeProbe { nonce, run_id } => nonce.byte_len() + run_id.byte_len(),
            Message::TimeReply { nonce, t_ns } => nonce.byte_len() + t_ns.byte_len(),
            Message::Join { party, nonce } => party.byte_len() + nonce.byte_len(),
            Message::Welcome {
                nonce,
                iteration,
                epoch,
                survivors,
                z,
                s,
            } => {
                nonce.byte_len()
                    + iteration.byte_len()
                    + epoch.byte_len()
                    + survivors.byte_len()
                    + z.byte_len()
                    + s.byte_len()
            }
            Message::Score {
                request_id,
                features,
                xs,
            } => request_id.byte_len() + features.byte_len() + xs.byte_len(),
            Message::ScoreReply {
                request_id,
                ok,
                margins,
            } => request_id.byte_len() + ok.byte_len() + margins.byte_len(),
            Message::ShamirDist {
                iteration,
                party,
                flat,
            } => iteration.byte_len() + party.byte_len() + flat.byte_len(),
            Message::ShamirCollect {
                iteration,
                contributors,
                flat,
            } => iteration.byte_len() + contributors.byte_len() + flat.byte_len(),
            Message::CipherShare {
                iteration,
                party,
                bytes,
            } => iteration.byte_len() + party.byte_len() + bytes.byte_len(),
            Message::CipherAgg {
                iteration,
                contributors,
                bytes,
            } => iteration.byte_len() + contributors.byte_len() + bytes.byte_len(),
            Message::CipherSum { iteration, values } => iteration.byte_len() + values.byte_len(),
            Message::Telemetry {
                iteration,
                span,
                party,
                epoch,
                frames_sent,
                frames_recv,
                bytes_sent,
                bytes_recv,
                retransmits,
                elapsed_ns,
            } => {
                iteration.byte_len()
                    + span.byte_len()
                    + party.byte_len()
                    + epoch.byte_len()
                    + frames_sent.byte_len()
                    + frames_recv.byte_len()
                    + bytes_sent.byte_len()
                    + bytes_recv.byte_len()
                    + retransmits.byte_len()
                    + elapsed_ns.byte_len()
            }
            Message::TaskDispatch {
                iteration,
                block,
                attempt,
                broadcast,
            } => {
                iteration.byte_len() + block.byte_len() + attempt.byte_len() + broadcast.byte_len()
            }
            Message::TaskResult {
                iteration,
                block,
                attempt,
                ok,
                elapsed_ns,
                output,
            } => {
                iteration.byte_len()
                    + block.byte_len()
                    + attempt.byte_len()
                    + ok.byte_len()
                    + elapsed_ns.byte_len()
                    + output.byte_len()
            }
            Message::TaskCancel {
                iteration,
                block,
                attempt,
            } => iteration.byte_len() + block.byte_len() + attempt.byte_len(),
        }
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Message::Hello { party } | Message::HelloAck { party } => party.encode_into(out),
            Message::Heartbeat { nonce } => nonce.encode_into(out),
            Message::Ack { of_seq } => of_seq.encode_into(out),
            Message::MaskExchange { iteration, masks } => {
                iteration.encode_into(out);
                masks.encode_into(out);
            }
            Message::MaskedShare {
                iteration,
                epoch,
                party,
                payload,
            } => {
                iteration.encode_into(out);
                epoch.encode_into(out);
                party.encode_into(out);
                payload.encode_into(out);
            }
            Message::Rekey {
                iteration,
                epoch,
                survivors,
            } => {
                iteration.encode_into(out);
                epoch.encode_into(out);
                survivors.encode_into(out);
            }
            Message::Consensus {
                iteration,
                z,
                s,
                done,
            } => {
                iteration.encode_into(out);
                z.encode_into(out);
                s.encode_into(out);
                done.encode_into(out);
            }
            Message::Shares { iteration, values } => {
                iteration.encode_into(out);
                values.encode_into(out);
            }
            Message::Blob { tag, bytes } => {
                tag.encode_into(out);
                bytes.encode_into(out);
            }
            Message::Shutdown => {}
            Message::TimeProbe { nonce, run_id } => {
                nonce.encode_into(out);
                run_id.encode_into(out);
            }
            Message::TimeReply { nonce, t_ns } => {
                nonce.encode_into(out);
                t_ns.encode_into(out);
            }
            Message::Join { party, nonce } => {
                party.encode_into(out);
                nonce.encode_into(out);
            }
            Message::Welcome {
                nonce,
                iteration,
                epoch,
                survivors,
                z,
                s,
            } => {
                nonce.encode_into(out);
                iteration.encode_into(out);
                epoch.encode_into(out);
                survivors.encode_into(out);
                z.encode_into(out);
                s.encode_into(out);
            }
            Message::Score {
                request_id,
                features,
                xs,
            } => {
                request_id.encode_into(out);
                features.encode_into(out);
                xs.encode_into(out);
            }
            Message::ScoreReply {
                request_id,
                ok,
                margins,
            } => {
                request_id.encode_into(out);
                ok.encode_into(out);
                margins.encode_into(out);
            }
            Message::ShamirDist {
                iteration,
                party,
                flat,
            } => {
                iteration.encode_into(out);
                party.encode_into(out);
                flat.encode_into(out);
            }
            Message::ShamirCollect {
                iteration,
                contributors,
                flat,
            } => {
                iteration.encode_into(out);
                contributors.encode_into(out);
                flat.encode_into(out);
            }
            Message::CipherShare {
                iteration,
                party,
                bytes,
            } => {
                iteration.encode_into(out);
                party.encode_into(out);
                bytes.encode_into(out);
            }
            Message::CipherAgg {
                iteration,
                contributors,
                bytes,
            } => {
                iteration.encode_into(out);
                contributors.encode_into(out);
                bytes.encode_into(out);
            }
            Message::CipherSum { iteration, values } => {
                iteration.encode_into(out);
                values.encode_into(out);
            }
            Message::Telemetry {
                iteration,
                span,
                party,
                epoch,
                frames_sent,
                frames_recv,
                bytes_sent,
                bytes_recv,
                retransmits,
                elapsed_ns,
            } => {
                iteration.encode_into(out);
                span.encode_into(out);
                party.encode_into(out);
                epoch.encode_into(out);
                frames_sent.encode_into(out);
                frames_recv.encode_into(out);
                bytes_sent.encode_into(out);
                bytes_recv.encode_into(out);
                retransmits.encode_into(out);
                elapsed_ns.encode_into(out);
            }
            Message::TaskDispatch {
                iteration,
                block,
                attempt,
                broadcast,
            } => {
                iteration.encode_into(out);
                block.encode_into(out);
                attempt.encode_into(out);
                broadcast.encode_into(out);
            }
            Message::TaskResult {
                iteration,
                block,
                attempt,
                ok,
                elapsed_ns,
                output,
            } => {
                iteration.encode_into(out);
                block.encode_into(out);
                attempt.encode_into(out);
                ok.encode_into(out);
                elapsed_ns.encode_into(out);
                output.encode_into(out);
            }
            Message::TaskCancel {
                iteration,
                block,
                attempt,
            } => {
                iteration.encode_into(out);
                block.encode_into(out);
                attempt.encode_into(out);
            }
        }
    }

    fn decode_payload(kind: u8, r: &mut Reader<'_>) -> Result<Message, WireError> {
        Ok(match kind {
            1 => Message::Hello { party: r.u32()? },
            2 => Message::HelloAck { party: r.u32()? },
            3 => Message::Heartbeat { nonce: r.u64()? },
            4 => Message::Ack { of_seq: r.u64()? },
            5 => Message::MaskExchange {
                iteration: r.u64()?,
                masks: r.vec_u64()?,
            },
            6 => Message::MaskedShare {
                iteration: r.u64()?,
                epoch: r.u64()?,
                party: r.u32()?,
                payload: r.vec_u64()?,
            },
            7 => Message::Consensus {
                iteration: r.u64()?,
                z: r.vec_f64()?,
                s: r.vec_f64()?,
                done: r.bool()?,
            },
            8 => Message::Shares {
                iteration: r.u64()?,
                values: r.vec_u64()?,
            },
            9 => Message::Blob {
                tag: r.u16()?,
                bytes: r.byte_vec()?,
            },
            10 => Message::Shutdown,
            11 => Message::Rekey {
                iteration: r.u64()?,
                epoch: r.u64()?,
                survivors: r.vec_u32()?,
            },
            12 => Message::TimeProbe {
                nonce: r.u64()?,
                run_id: r.u64()?,
            },
            13 => Message::TimeReply {
                nonce: r.u64()?,
                t_ns: r.u64()?,
            },
            14 => Message::Join {
                party: r.u32()?,
                nonce: r.u64()?,
            },
            15 => Message::Welcome {
                nonce: r.u64()?,
                iteration: r.u64()?,
                epoch: r.u64()?,
                survivors: r.vec_u32()?,
                z: r.vec_f64()?,
                s: r.vec_f64()?,
            },
            16 => Message::Score {
                request_id: r.u64()?,
                features: r.u32()?,
                xs: r.vec_f64()?,
            },
            17 => Message::ScoreReply {
                request_id: r.u64()?,
                ok: r.bool()?,
                margins: r.vec_f64()?,
            },
            18 => Message::ShamirDist {
                iteration: r.u64()?,
                party: r.u32()?,
                flat: r.vec_u64()?,
            },
            19 => Message::ShamirCollect {
                iteration: r.u64()?,
                contributors: r.vec_u32()?,
                flat: r.vec_u64()?,
            },
            20 => Message::CipherShare {
                iteration: r.u64()?,
                party: r.u32()?,
                bytes: r.byte_vec()?,
            },
            21 => Message::CipherAgg {
                iteration: r.u64()?,
                contributors: r.u32()?,
                bytes: r.byte_vec()?,
            },
            22 => Message::CipherSum {
                iteration: r.u64()?,
                values: r.vec_f64()?,
            },
            23 => Message::Telemetry {
                iteration: r.u64()?,
                span: r.u64()?,
                party: r.u32()?,
                epoch: r.u64()?,
                frames_sent: r.u64()?,
                frames_recv: r.u64()?,
                bytes_sent: r.u64()?,
                bytes_recv: r.u64()?,
                retransmits: r.u64()?,
                elapsed_ns: r.u64()?,
            },
            24 => Message::TaskDispatch {
                iteration: r.u64()?,
                block: r.u64()?,
                attempt: r.u32()?,
                broadcast: r.byte_vec()?,
            },
            25 => Message::TaskResult {
                iteration: r.u64()?,
                block: r.u64()?,
                attempt: r.u32()?,
                ok: r.bool()?,
                elapsed_ns: r.u64()?,
                output: r.byte_vec()?,
            },
            26 => Message::TaskCancel {
                iteration: r.u64()?,
                block: r.u64()?,
                attempt: r.u32()?,
            },
            _ => return Err(WireError::Malformed("unknown message kind")),
        })
    }
}

/// Frame decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The version byte is not [`WIRE_VERSION`].
    BadVersion(u8),
    /// The CRC trailer did not match the frame contents.
    BadChecksum {
        /// CRC computed over the received bytes.
        computed: u32,
        /// CRC carried in the trailer.
        stored: u32,
    },
    /// Length prefix disagrees with the bytes available.
    BadLength {
        /// Length the prefix declared.
        declared: usize,
        /// Bytes actually present after the prefix.
        available: usize,
    },
    /// The payload failed structural decoding.
    BadPayload(WireError),
    /// Payload bytes were left over after decoding the message.
    TrailingBytes(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            FrameError::BadChecksum { computed, stored } => {
                write!(
                    f,
                    "checksum mismatch: computed {computed:#010x}, stored {stored:#010x}"
                )
            }
            FrameError::BadLength {
                declared,
                available,
            } => write!(f, "length prefix {declared} but {available} bytes present"),
            FrameError::BadPayload(e) => write!(f, "payload: {e}"),
            FrameError::TrailingBytes(n) => write!(f, "{n} trailing payload bytes"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::BadPayload(e)
    }
}

/// One routed, checksummed protocol message.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Header flag bits ([`FLAG_RETRANSMIT`] …).
    pub flags: u16,
    /// Sending party.
    pub from: PartyId,
    /// Destination party.
    pub to: PartyId,
    /// Per-(sender, destination) sequence number. Data frames count up
    /// from 1; control frames that need no deduplication (acks, the TCP
    /// hello handshake) travel at 0.
    pub seq: u64,
    /// The message body.
    pub msg: Message,
}

impl Frame {
    /// Total on-wire size of a frame carrying `msg`.
    pub fn encoded_len_of(msg: &Message) -> usize {
        FRAME_OVERHEAD + msg.payload_len()
    }

    /// Total on-wire size of this frame.
    pub fn encoded_len(&self) -> usize {
        Self::encoded_len_of(&self.msg)
    }

    /// Encodes the complete frame (length prefix through CRC trailer).
    pub fn encode(&self) -> Vec<u8> {
        let payload_len = self.msg.payload_len();
        let body_len = 20 + payload_len + 4; // header remainder + payload + crc
        let mut out = Vec::with_capacity(4 + body_len);
        out.extend_from_slice(&(body_len as u32).to_le_bytes());
        out.push(WIRE_VERSION);
        out.push(self.msg.kind());
        out.extend_from_slice(&self.flags.to_le_bytes());
        out.extend_from_slice(&self.from.to_le_bytes());
        out.extend_from_slice(&self.to.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        self.msg.encode_payload(&mut out);
        debug_assert_eq!(out.len(), 4 + 20 + payload_len);
        let crc = crc32(&out[4..]);
        out.extend_from_slice(&crc.to_le_bytes());
        debug_assert_eq!(out.len(), self.encoded_len());
        out
    }

    /// Decodes a complete frame from `buf` (which must contain exactly one
    /// frame, length prefix included).
    pub fn decode(buf: &[u8]) -> Result<Frame, FrameError> {
        let mut r = Reader::new(buf);
        let declared = r.u32().map_err(FrameError::BadPayload)? as usize;
        if declared != buf.len() - 4 {
            return Err(FrameError::BadLength {
                declared,
                available: buf.len() - 4,
            });
        }
        if declared < 24 {
            return Err(FrameError::BadLength {
                declared,
                available: buf.len() - 4,
            });
        }
        let crc_region = &buf[4..buf.len() - 4];
        let stored = u32::from_le_bytes(buf[buf.len() - 4..].try_into().expect("4 bytes"));
        let computed = crc32(crc_region);
        if computed != stored {
            return Err(FrameError::BadChecksum { computed, stored });
        }
        let version = r.u8()?;
        if version != WIRE_VERSION {
            return Err(FrameError::BadVersion(version));
        }
        let kind = r.u8()?;
        let flags = r.u16()?;
        let from = r.u32()?;
        let to = r.u32()?;
        let seq = r.u64()?;
        let payload_len = declared - 24;
        let payload = &crc_region[20..20 + payload_len];
        let mut pr = Reader::new(payload);
        let msg = Message::decode_payload(kind, &mut pr)?;
        if pr.remaining() != 0 {
            return Err(FrameError::TrailingBytes(pr.remaining()));
        }
        Ok(Frame {
            flags,
            from,
            to,
            seq,
            msg,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Hello { party: 3 },
            Message::HelloAck { party: 0 },
            Message::Heartbeat { nonce: 0xDEAD_BEEF },
            Message::Ack { of_seq: 42 },
            Message::MaskExchange {
                iteration: 7,
                masks: vec![1, u64::MAX, 3],
            },
            Message::MaskedShare {
                iteration: 9,
                epoch: 1,
                party: 2,
                payload: vec![5, 6, 7, 8],
            },
            Message::Rekey {
                iteration: 9,
                epoch: 2,
                survivors: vec![0, 2, 5],
            },
            Message::Consensus {
                iteration: 11,
                z: vec![0.5, -1.25],
                s: vec![3.0],
                done: true,
            },
            Message::Shares {
                iteration: 1,
                values: vec![99, 100],
            },
            Message::Blob {
                tag: 77,
                bytes: vec![1, 2, 3, 4, 5],
            },
            Message::Shutdown,
            Message::TimeProbe {
                nonce: 0xFACE_FEED,
                run_id: u64::MAX,
            },
            Message::TimeReply {
                nonce: 0xFACE_FEED,
                t_ns: 123_456_789_000,
            },
            Message::Join {
                party: 4,
                nonce: 0xBAD_C0DE,
            },
            Message::Welcome {
                nonce: 0xBAD_C0DE,
                iteration: 17,
                epoch: 3,
                survivors: vec![0, 1, 4],
                z: vec![0.25, -8.0],
                s: vec![1.5, 0.0],
            },
            Message::Score {
                request_id: 0xABCD,
                features: 3,
                xs: vec![1.0, -2.5, 0.0, 4.0, 5.0, -6.0],
            },
            Message::ScoreReply {
                request_id: 0xABCD,
                ok: true,
                margins: vec![0.75, -1.25],
            },
            Message::ShamirDist {
                iteration: 4,
                party: 1,
                flat: vec![17, 0, u64::MAX >> 3],
            },
            Message::ShamirCollect {
                iteration: 4,
                contributors: vec![0, 2, 3],
                flat: vec![5, 6, 7, 8, 9, 10],
            },
            Message::CipherShare {
                iteration: 6,
                party: 3,
                bytes: vec![0xAB; 33],
            },
            Message::CipherAgg {
                iteration: 6,
                contributors: 4,
                bytes: vec![0xCD; 33],
            },
            Message::CipherSum {
                iteration: 6,
                values: vec![-12.5, 0.0, 4.25],
            },
            Message::Telemetry {
                iteration: 8,
                span: 0x5EED_CAFE,
                party: 2,
                epoch: 1,
                frames_sent: 40,
                frames_recv: 39,
                bytes_sent: 16_384,
                bytes_recv: 9_000,
                retransmits: 1,
                elapsed_ns: 870_000,
            },
            Message::TaskDispatch {
                iteration: 12,
                block: 5,
                attempt: 2,
                broadcast: vec![9, 8, 7, 6],
            },
            Message::TaskResult {
                iteration: 12,
                block: 5,
                attempt: 2,
                ok: true,
                elapsed_ns: 1_250_000,
                output: vec![0xEE; 17],
            },
            Message::TaskCancel {
                iteration: 12,
                block: 5,
                attempt: 1,
            },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for (i, msg) in sample_messages().into_iter().enumerate() {
            let frame = Frame {
                flags: FLAG_RETRANSMIT,
                from: 1,
                to: 2,
                seq: i as u64 + 1,
                msg,
            };
            let enc = frame.encode();
            assert_eq!(enc.len(), frame.encoded_len(), "length invariant");
            let dec = Frame::decode(&enc).expect("round trip");
            assert_eq!(dec, frame);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let frame = Frame {
            flags: 0,
            from: 0,
            to: 1,
            seq: 1,
            msg: Message::MaskedShare {
                iteration: 3,
                epoch: 0,
                party: 0,
                payload: vec![10, 20, 30],
            },
        };
        let good = frame.encode();
        for i in 4..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(
                Frame::decode(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let frame = Frame {
            flags: 0,
            from: 0,
            to: 1,
            seq: 1,
            msg: Message::Shutdown,
        };
        let mut enc = frame.encode();
        enc[4] = WIRE_VERSION + 1;
        // Recompute the CRC so only the version is wrong.
        let crc = crc32(&enc[4..enc.len() - 4]);
        let n = enc.len();
        enc[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            Frame::decode(&enc),
            Err(FrameError::BadVersion(WIRE_VERSION + 1))
        );
    }

    #[test]
    fn truncation_rejected() {
        let enc = Frame {
            flags: 0,
            from: 0,
            to: 1,
            seq: 5,
            msg: Message::Heartbeat { nonce: 1 },
        }
        .encode();
        assert!(Frame::decode(&enc[..enc.len() - 3]).is_err());
        assert!(Frame::decode(&enc[..10]).is_err());
    }

    #[test]
    fn overhead_constant_is_exact() {
        let enc = Frame {
            flags: 0,
            from: 0,
            to: 0,
            seq: 1,
            msg: Message::Shutdown,
        }
        .encode();
        assert_eq!(enc.len(), FRAME_OVERHEAD);
        let msg = Message::Shares {
            iteration: 0,
            values: vec![0; 10],
        };
        assert_eq!(Frame::encoded_len_of(&msg), FRAME_OVERHEAD + 8 + 8 + 8 * 10);
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    /// Re-frames `msg` with its payload replaced by `payload`, CRC fixed
    /// up so only the payload structure is wrong.
    fn reframe_with_payload(msg: &Message, payload: &[u8]) -> Vec<u8> {
        let body_len = 20 + payload.len() + 4;
        let mut out = Vec::with_capacity(4 + body_len);
        out.extend_from_slice(&(body_len as u32).to_le_bytes());
        out.push(WIRE_VERSION);
        out.push(msg.kind());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&1u64.to_le_bytes());
        out.extend_from_slice(payload);
        let crc = crc32(&out[4..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    #[test]
    fn join_and_welcome_truncated_payloads_rejected() {
        // Every strict prefix of a valid Join / Welcome payload must fail
        // structurally (BadPayload), never decode to garbage.
        for msg in [
            Message::Join {
                party: 2,
                nonce: 99,
            },
            Message::Welcome {
                nonce: 1,
                iteration: 5,
                epoch: 2,
                survivors: vec![0, 2],
                z: vec![1.0],
                s: vec![],
            },
        ] {
            let mut full = Vec::new();
            msg.encode_payload(&mut full);
            for cut in 0..full.len() {
                let framed = reframe_with_payload(&msg, &full[..cut]);
                match Frame::decode(&framed) {
                    Err(FrameError::BadPayload(_)) => {}
                    other => panic!("truncation at {cut} of {msg:?} gave {other:?}"),
                }
            }
        }
    }

    #[test]
    fn join_and_welcome_oversized_payloads_rejected() {
        // Trailing junk after a structurally complete payload must be
        // caught by the trailing-bytes check, and a Welcome whose vector
        // length prefix promises more elements than the payload holds must
        // fail structurally rather than over-read.
        for msg in [
            Message::Join {
                party: 2,
                nonce: 99,
            },
            Message::Welcome {
                nonce: 0,
                iteration: 5,
                epoch: 2,
                survivors: vec![0, 2],
                z: vec![1.0],
                s: vec![2.0],
            },
        ] {
            let mut payload = Vec::new();
            msg.encode_payload(&mut payload);
            payload.extend_from_slice(&[0xAA; 3]);
            let framed = reframe_with_payload(&msg, &payload);
            assert_eq!(Frame::decode(&framed), Err(FrameError::TrailingBytes(3)));
        }
        // Claim 1000 survivors but supply none.
        let mut lying = Vec::new();
        0u64.encode_into(&mut lying); // nonce
        5u64.encode_into(&mut lying); // iteration
        2u64.encode_into(&mut lying); // epoch
        lying.extend_from_slice(&1000u32.to_le_bytes()); // survivors length prefix
        let framed = reframe_with_payload(
            &Message::Welcome {
                nonce: 0,
                iteration: 0,
                epoch: 0,
                survivors: vec![],
                z: vec![],
                s: vec![],
            },
            &lying,
        );
        assert!(matches!(
            Frame::decode(&framed),
            Err(FrameError::BadPayload(_))
        ));
    }

    #[test]
    fn score_truncated_payloads_rejected() {
        // Every strict prefix of a valid Score / ScoreReply payload must
        // fail structurally (BadPayload), never decode to garbage.
        for msg in [
            Message::Score {
                request_id: 7,
                features: 2,
                xs: vec![1.0, 2.0, 3.0, 4.0],
            },
            Message::ScoreReply {
                request_id: 7,
                ok: true,
                margins: vec![-0.5, 0.5],
            },
        ] {
            let mut full = Vec::new();
            msg.encode_payload(&mut full);
            for cut in 0..full.len() {
                let framed = reframe_with_payload(&msg, &full[..cut]);
                match Frame::decode(&framed) {
                    Err(FrameError::BadPayload(_)) => {}
                    other => panic!("truncation at {cut} of {msg:?} gave {other:?}"),
                }
            }
        }
    }

    #[test]
    fn secagg_truncated_payloads_rejected() {
        // Every strict prefix of a valid secure-aggregation payload must
        // fail structurally (BadPayload), never decode to garbage.
        for msg in [
            Message::ShamirDist {
                iteration: 2,
                party: 1,
                flat: vec![3, 4],
            },
            Message::ShamirCollect {
                iteration: 2,
                contributors: vec![0, 3],
                flat: vec![3, 4, 5, 6],
            },
            Message::CipherShare {
                iteration: 2,
                party: 1,
                bytes: vec![9; 5],
            },
            Message::CipherAgg {
                iteration: 2,
                contributors: 3,
                bytes: vec![9; 5],
            },
            Message::CipherSum {
                iteration: 2,
                values: vec![1.0, -1.0],
            },
            Message::Telemetry {
                iteration: 2,
                span: 0xFEED,
                party: 1,
                epoch: 0,
                frames_sent: 10,
                frames_recv: 9,
                bytes_sent: 4_096,
                bytes_recv: 2_048,
                retransmits: 0,
                elapsed_ns: 500_000,
            },
        ] {
            let mut full = Vec::new();
            msg.encode_payload(&mut full);
            for cut in 0..full.len() {
                let framed = reframe_with_payload(&msg, &full[..cut]);
                match Frame::decode(&framed) {
                    Err(FrameError::BadPayload(_)) => {}
                    other => panic!("truncation at {cut} of {msg:?} gave {other:?}"),
                }
            }
            let mut padded = full.clone();
            padded.extend_from_slice(&[0xEE; 2]);
            let framed = reframe_with_payload(&msg, &padded);
            assert_eq!(Frame::decode(&framed), Err(FrameError::TrailingBytes(2)));
        }
    }

    #[test]
    fn mapreduce_truncated_payloads_rejected() {
        // Every strict prefix of a valid task-lifecycle payload must fail
        // structurally (BadPayload), never decode to garbage, and trailing
        // junk must be caught by the trailing-bytes check.
        for msg in [
            Message::TaskDispatch {
                iteration: 3,
                block: 1,
                attempt: 1,
                broadcast: vec![4, 5, 6],
            },
            Message::TaskResult {
                iteration: 3,
                block: 1,
                attempt: 1,
                ok: false,
                elapsed_ns: 77_000,
                output: b"mapper failed".to_vec(),
            },
            Message::TaskCancel {
                iteration: 3,
                block: 1,
                attempt: 2,
            },
        ] {
            let mut full = Vec::new();
            msg.encode_payload(&mut full);
            for cut in 0..full.len() {
                let framed = reframe_with_payload(&msg, &full[..cut]);
                match Frame::decode(&framed) {
                    Err(FrameError::BadPayload(_)) => {}
                    other => panic!("truncation at {cut} of {msg:?} gave {other:?}"),
                }
            }
            let mut padded = full.clone();
            padded.extend_from_slice(&[0xEE; 2]);
            let framed = reframe_with_payload(&msg, &padded);
            assert_eq!(Frame::decode(&framed), Err(FrameError::TrailingBytes(2)));
        }
    }

    #[test]
    fn unknown_kind_above_telemetry_is_rejected_not_misparsed() {
        // Forward compatibility: a frame from a future build using kind 27
        // must come back as an unknown-kind error, exactly like the
        // pre-secagg builds treat kinds 18..=23 and pre-mapreduce builds
        // treat kinds 24..=26.
        let msg = Message::Join { party: 1, nonce: 7 };
        let mut enc = reframe_with_payload(&msg, &{
            let mut p = Vec::new();
            msg.encode_payload(&mut p);
            p
        });
        enc[5] = 27; // kind byte
        let crc = crc32(&enc[4..enc.len() - 4]);
        let n = enc.len();
        enc[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Frame::decode(&enc),
            Err(FrameError::BadPayload(WireError::Malformed(
                "unknown message kind"
            )))
        ));
    }
}
