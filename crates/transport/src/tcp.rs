//! TCP backend over `std::net`: length-prefixed frames on long-lived
//! connections, per-message write timeouts, bounded exponential-backoff
//! dialing and transparent reconnection.
//!
//! Topology is star-friendly: an endpoint only needs listed addresses for
//! the peers it *dials* (learners list the coordinator). Inbound
//! connections identify themselves with a [`Message::Hello`] as their
//! first frame; the acceptor registers the connection's write half under
//! that party id and answers [`Message::HelloAck`], after which frames
//! flow in both directions on the same socket — so learners never open
//! listening ports for the coordinator's replies.
//!
//! Hello/HelloAck are transport-internal on this backend: they are
//! counted in [`LinkStats`] (they really cross the wire) but never
//! surface from [`Transport::recv`].

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use ppml_telemetry as telemetry;
use telemetry::EventKind;

use crate::event_loop::lock_recover;
use crate::frame::{Frame, Message, PartyId};
use crate::retry::RetryPolicy;
use crate::transport::{Envelope, LinkStats, Transport, TransportError};

/// Default idle-read deadline: a connection that produces no bytes for
/// this long is reaped. Learners heartbeat every 500 ms and the
/// coordinator broadcasts every round, so live links refresh constantly.
const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(60);

#[derive(Default)]
struct AtomicStats {
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    retries: AtomicU64,
}

struct Shared {
    party: PartyId,
    conns: Mutex<HashMap<PartyId, TcpStream>>,
    inbox_tx: mpsc::Sender<Envelope>,
    stats: AtomicStats,
    shutdown: AtomicBool,
    io_timeout: Duration,
    /// Idle-read deadline in milliseconds (atomic so tests can shrink it
    /// on a live endpoint).
    idle_timeout_ms: AtomicU64,
}

impl Shared {
    /// The connection registry, recovering from a poisoned lock: a
    /// panicked reader thread must cost its own connection, never brick
    /// sends to every other peer.
    fn conns(&self) -> MutexGuard<'_, HashMap<PartyId, TcpStream>> {
        lock_recover(&self.conns)
    }

    fn idle_timeout(&self) -> Duration {
        Duration::from_millis(self.idle_timeout_ms.load(Ordering::Relaxed))
    }

    fn register(&self, party: PartyId, stream: &TcpStream) {
        if let Ok(write_half) = stream.try_clone() {
            let _ = write_half.set_write_timeout(Some(self.io_timeout));
            let _ = write_half.set_nodelay(true);
            self.conns().insert(party, write_half);
        }
    }

    /// Writes one already-encoded frame, counting it.
    fn write_frame(&self, stream: &mut TcpStream, encoded: &[u8]) -> std::io::Result<()> {
        stream.write_all(encoded)?;
        stream.flush()?;
        self.stats
            .bytes_sent
            .fetch_add(encoded.len() as u64, Ordering::Relaxed);
        self.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// How one bounded read ended.
enum ReadStatus {
    /// The buffer was filled.
    Ok,
    /// EOF, socket error, or shutdown — the connection is done.
    Closed,
    /// No byte arrived within the idle deadline.
    IdleExpired,
}

/// Fills `buf`, blocking in bounded slices (the socket carries a read
/// timeout) so the thread can observe shutdown and enforce the idle
/// deadline instead of parking forever on a half-open peer — the fix
/// for the old `set_read_timeout(None)`.
fn read_full(
    shared: &Shared,
    stream: &mut TcpStream,
    buf: &mut [u8],
    last_data: &mut Instant,
) -> ReadStatus {
    let mut filled = 0;
    while filled < buf.len() {
        if shared.shutdown.load(Ordering::Acquire) {
            return ReadStatus::Closed;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return ReadStatus::Closed,
            Ok(n) => {
                filled += n;
                *last_data = Instant::now();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if last_data.elapsed() > shared.idle_timeout() {
                    return ReadStatus::IdleExpired;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadStatus::Closed,
        }
    }
    ReadStatus::Ok
}

/// Reaps an idle connection: deregisters the write half (only if it is
/// still this very socket — a reconnect may have replaced it) and emits
/// the lifecycle event.
fn reap_idle_conn(
    shared: &Shared,
    stream: &TcpStream,
    registered: Option<PartyId>,
    last_data: Instant,
) {
    if let Some(party) = registered {
        let mut conns = shared.conns();
        let ours = stream.peer_addr().ok();
        let current = conns.get(&party).and_then(|c| c.peer_addr().ok());
        if ours.is_some() && ours == current {
            conns.remove(&party);
        }
    }
    telemetry::emit(
        shared.party,
        EventKind::ConnReaped {
            peer: registered.unwrap_or(telemetry::NO_PARTY),
            idle_ms: last_data.elapsed().as_millis() as u64,
        },
    );
}

/// Reads frames off one socket until EOF/error/idle-expiry, delivering
/// app messages to the inbox and handling the hello handshake in place.
/// `registered` is the party this socket is known to carry (the dialed
/// peer, or whoever said hello).
fn reader_loop(shared: &Arc<Shared>, mut stream: TcpStream, mut registered: Option<PartyId>) {
    // Bounded slices, not a frame deadline: a slow frame keeps making
    // progress as long as bytes trickle in; only full silence past the
    // idle deadline reaps the connection.
    let slice = shared.io_timeout.min(Duration::from_millis(500));
    let _ = stream.set_read_timeout(Some(slice.max(Duration::from_millis(1))));
    let mut last_data = Instant::now();
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut len_buf = [0u8; 4];
        match read_full(shared, &mut stream, &mut len_buf, &mut last_data) {
            ReadStatus::Ok => {}
            ReadStatus::Closed => return, // dialer will reconnect
            ReadStatus::IdleExpired => {
                return reap_idle_conn(shared, &stream, registered, last_data);
            }
        }
        let body_len = u32::from_le_bytes(len_buf) as usize;
        // Defensive ceiling: a single model broadcast is far below this.
        if body_len > 1 << 28 {
            return;
        }
        let mut encoded = vec![0u8; 4 + body_len];
        encoded[..4].copy_from_slice(&len_buf);
        match read_full(shared, &mut stream, &mut encoded[4..], &mut last_data) {
            ReadStatus::Ok => {}
            ReadStatus::Closed => return,
            ReadStatus::IdleExpired => {
                return reap_idle_conn(shared, &stream, registered, last_data);
            }
        }
        let frame = match Frame::decode(&encoded) {
            Ok(f) => f,
            Err(_) => {
                telemetry::emit(
                    shared.party,
                    EventKind::FrameRejected {
                        bytes: encoded.len() as u64,
                    },
                );
                return; // corrupt stream: drop the connection
            }
        };
        shared
            .stats
            .bytes_received
            .fetch_add(encoded.len() as u64, Ordering::Relaxed);
        shared.stats.frames_received.fetch_add(1, Ordering::Relaxed);
        telemetry::emit(
            shared.party,
            EventKind::FrameRecv {
                from: frame.from,
                bytes: encoded.len() as u64,
            },
        );
        if frame.to != shared.party {
            continue; // misrouted; ignore
        }
        match frame.msg {
            Message::Hello { party } => {
                shared.register(party, &stream);
                registered = Some(party);
                telemetry::emit(
                    shared.party,
                    EventKind::ConnOpen {
                        peer: party,
                        inbound: true,
                    },
                );
                let ack = Frame {
                    flags: 0,
                    from: shared.party,
                    to: party,
                    seq: 0,
                    msg: Message::HelloAck {
                        party: shared.party,
                    },
                }
                .encode();
                if let Ok(mut w) = stream.try_clone() {
                    let _ = shared.write_frame(&mut w, &ack);
                }
            }
            Message::HelloAck { .. } => {}
            msg => {
                let env = Envelope {
                    from: frame.from,
                    seq: frame.seq,
                    flags: frame.flags,
                    msg,
                };
                if shared.inbox_tx.send(env).is_err() {
                    return; // endpoint dropped
                }
            }
        }
    }
}

/// A `std::net` TCP endpoint.
pub struct TcpTransport {
    shared: Arc<Shared>,
    inbox: mpsc::Receiver<Envelope>,
    peers: HashMap<PartyId, SocketAddr>,
    next_seq: HashMap<PartyId, u64>,
    retry: RetryPolicy,
    local_addr: SocketAddr,
    listener_addr: SocketAddr,
}

impl TcpTransport {
    /// Binds `party`'s endpoint on `addr` (use port 0 for an ephemeral
    /// port; see [`TcpTransport::local_addr`]). `peers` lists the
    /// addresses this endpoint may dial; parties absent from the map can
    /// still reach us by dialing in.
    pub fn bind(
        party: PartyId,
        addr: SocketAddr,
        peers: HashMap<PartyId, SocketAddr>,
        retry: RetryPolicy,
        io_timeout: Duration,
    ) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let (inbox_tx, inbox) = mpsc::channel();
        let shared = Arc::new(Shared {
            party,
            conns: Mutex::new(HashMap::new()),
            inbox_tx,
            stats: AtomicStats::default(),
            shutdown: AtomicBool::new(false),
            io_timeout,
            idle_timeout_ms: AtomicU64::new(DEFAULT_IDLE_TIMEOUT.as_millis() as u64),
        });
        {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || reader_loop(&shared, stream, None));
                }
            });
        }
        Ok(TcpTransport {
            shared,
            inbox,
            peers,
            next_seq: HashMap::new(),
            retry,
            local_addr,
            listener_addr: local_addr,
        })
    }

    /// The address this endpoint is actually listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Overrides the idle-read deadline (default 60 s). A connection
    /// whose peer produces no bytes for this long is reaped — the
    /// defense against half-open peers parking reader threads forever.
    pub fn set_idle_timeout(&self, idle: Duration) {
        self.shared
            .idle_timeout_ms
            .store(idle.as_millis() as u64, Ordering::Relaxed);
    }

    /// Parties with a registered live connection — peers we dialed plus
    /// peers that dialed in and completed the hello handshake. Lets a
    /// coordinator wait for its learners before the first broadcast.
    pub fn connected_parties(&self) -> Vec<PartyId> {
        let conns = self.shared.conns();
        let mut parties: Vec<PartyId> = conns.keys().copied().collect();
        parties.sort_unstable();
        parties
    }

    /// Dials `to`, performs the hello handshake, spawns the reader, and
    /// registers the write half.
    fn dial(&self, to: PartyId, addr: SocketAddr) -> Result<(), TransportError> {
        let stream = TcpStream::connect_timeout(&addr, self.shared.io_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(self.shared.io_timeout))?;
        let hello = Frame {
            flags: 0,
            from: self.shared.party,
            to,
            seq: 0,
            msg: Message::Hello {
                party: self.shared.party,
            },
        }
        .encode();
        {
            let mut write_half = stream.try_clone()?;
            self.shared.write_frame(&mut write_half, &hello)?;
        }
        {
            let shared = Arc::clone(&self.shared);
            let reader = stream.try_clone()?;
            std::thread::spawn(move || reader_loop(&shared, reader, Some(to)));
        }
        self.shared.register(to, &stream);
        telemetry::emit(
            self.shared.party,
            EventKind::ConnOpen {
                peer: to,
                inbound: false,
            },
        );
        Ok(())
    }

    /// Fetches (establishing if necessary) a write half for `to`.
    fn connection_for(&self, to: PartyId, attempt: u32) -> Result<TcpStream, TransportError> {
        if let Some(conn) = self.shared.conns().get(&to) {
            return Ok(conn.try_clone()?);
        }
        match self.peers.get(&to) {
            Some(&addr) => {
                self.dial(to, addr)?;
                let conns = self.shared.conns();
                Ok(conns
                    .get(&to)
                    .ok_or(TransportError::Unreachable(to))?
                    .try_clone()?)
            }
            // We cannot dial this party; it must dial us. Give the
            // handshake time to land before the caller retries.
            None => {
                std::thread::sleep(self.retry.backoff(attempt));
                let conns = self.shared.conns();
                conns
                    .get(&to)
                    .ok_or(TransportError::Unreachable(to))?
                    .try_clone()
                    .map_err(TransportError::Io)
            }
        }
    }
}

impl Transport for TcpTransport {
    fn party(&self) -> PartyId {
        self.shared.party
    }

    fn next_seq(&mut self, to: PartyId) -> u64 {
        let slot = self.next_seq.entry(to).or_insert(0);
        *slot += 1;
        *slot
    }

    fn send_raw(
        &mut self,
        to: PartyId,
        msg: &Message,
        seq: u64,
        flags: u16,
    ) -> Result<usize, TransportError> {
        let encoded = Frame {
            flags,
            from: self.shared.party,
            to,
            seq,
            msg: msg.clone(),
        }
        .encode();
        let mut last_err: Option<TransportError> = None;
        for attempt in 0..self.retry.max_attempts {
            if attempt > 0 {
                self.shared.stats.retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.retry.backoff(attempt - 1));
            }
            match self.connection_for(to, attempt) {
                Ok(mut conn) => match self.shared.write_frame(&mut conn, &encoded) {
                    Ok(()) => {
                        telemetry::emit(
                            self.shared.party,
                            EventKind::FrameSent {
                                to,
                                bytes: encoded.len() as u64,
                                retransmit: flags & crate::frame::FLAG_RETRANSMIT != 0,
                            },
                        );
                        return Ok(encoded.len());
                    }
                    Err(e) => {
                        // Connection went stale: forget it and redial.
                        self.shared.conns().remove(&to);
                        last_err = Some(TransportError::Io(e));
                    }
                },
                Err(e) => last_err = Some(e),
            }
        }
        telemetry::emit(
            self.shared.party,
            EventKind::SendTimeout {
                to,
                attempts: self.retry.max_attempts,
            },
        );
        Err(last_err.unwrap_or(TransportError::Unreachable(to)))
    }

    fn recv(&mut self, timeout: Duration) -> Result<Envelope, TransportError> {
        match self.inbox.recv_timeout(timeout) {
            Ok(env) => Ok(env),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn stats(&self) -> LinkStats {
        let s = &self.shared.stats;
        LinkStats {
            frames_sent: s.frames_sent.load(Ordering::Relaxed),
            frames_received: s.frames_received.load(Ordering::Relaxed),
            bytes_sent: s.bytes_sent.load(Ordering::Relaxed),
            bytes_received: s.bytes_received.load(Ordering::Relaxed),
            retries: s.retries.load(Ordering::Relaxed),
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Nudge the accept loop awake so it observes the flag.
        let _ = TcpStream::connect_timeout(&self.listener_addr, Duration::from_millis(100));
        // Closing the write halves makes reader threads see EOF.
        self.shared.conns().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::courier::Courier;

    fn loopback_addr() -> SocketAddr {
        "127.0.0.1:0".parse().expect("addr")
    }

    fn bind(party: PartyId, peers: HashMap<PartyId, SocketAddr>) -> TcpTransport {
        TcpTransport::bind(
            party,
            loopback_addr(),
            peers,
            RetryPolicy::fast_local(),
            Duration::from_secs(2),
        )
        .expect("bind")
    }

    #[test]
    fn dial_in_and_reply_on_same_socket() {
        let mut server = bind(0, HashMap::new());
        let mut client = bind(1, HashMap::from([(0, server.local_addr())]));
        client
            .send(0, &Message::Heartbeat { nonce: 11 })
            .expect("client send");
        let env = server.recv(Duration::from_secs(5)).expect("server recv");
        assert_eq!(env.from, 1);
        assert_eq!(env.msg, Message::Heartbeat { nonce: 11 });
        // The server replies without knowing the client's address.
        server
            .send(1, &Message::Heartbeat { nonce: 22 })
            .expect("server send");
        let env = client.recv(Duration::from_secs(5)).expect("client recv");
        assert_eq!(env.from, 0);
        assert_eq!(env.msg, Message::Heartbeat { nonce: 22 });
    }

    #[test]
    fn unreachable_peer_fails_after_bounded_retries() {
        let mut lone = bind(3, HashMap::new());
        let err = lone.send(9, &Message::Shutdown).unwrap_err();
        assert!(matches!(err, TransportError::Unreachable(9)));
    }

    #[test]
    fn courier_over_tcp_round_trips() {
        let server = bind(0, HashMap::new());
        let server_addr = server.local_addr();
        let client = bind(1, HashMap::from([(0, server_addr)]));
        let mut sc = Courier::new(server, RetryPolicy::tcp_default());
        let mut cc = Courier::new(client, RetryPolicy::tcp_default());
        let h = std::thread::spawn(move || {
            let env = sc.recv(Duration::from_secs(5)).expect("server recv");
            (env, sc)
        });
        cc.send_reliable(
            0,
            &Message::MaskedShare {
                iteration: 1,
                epoch: 0,
                party: 1,
                payload: vec![1, 2, 3],
            },
        )
        .expect("reliable send");
        let (env, _sc) = h.join().unwrap();
        assert_eq!(
            env.msg,
            Message::MaskedShare {
                iteration: 1,
                epoch: 0,
                party: 1,
                payload: vec![1, 2, 3],
            }
        );
    }

    #[test]
    fn half_open_peer_is_reaped_instead_of_parking_a_thread() {
        // A raw socket that handshakes then stalls without closing. With
        // `set_read_timeout(None)` the reader thread parked forever and
        // the connection was never reaped; now the bounded slices let the
        // idle deadline fire.
        let server = bind(0, HashMap::new());
        server.set_idle_timeout(Duration::from_millis(150));
        let stalled = TcpStream::connect(server.local_addr()).expect("connect");
        let hello = Frame {
            flags: 0,
            from: 7,
            to: 0,
            seq: 0,
            msg: Message::Hello { party: 7 },
        }
        .encode();
        (&stalled).write_all(&hello).expect("hello");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.connected_parties() != vec![7] {
            assert!(
                std::time::Instant::now() < deadline,
                "peer 7 never registered"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        // Total silence afterwards reaps it; our side keeps the socket
        // open the whole time, so this is idle-reaping, not EOF.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !server.connected_parties().is_empty() {
            assert!(
                std::time::Instant::now() < deadline,
                "stalled half-open peer never reaped"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        drop(stalled);
    }

    #[test]
    fn poisoned_conns_mutex_leaves_other_peers_sendable() {
        // A thread that panics while holding the registry lock poisons
        // it; every lock site must recover instead of propagating the
        // panic to all peers.
        let mut server = bind(0, HashMap::new());
        let mut client = bind(1, HashMap::from([(0, server.local_addr())]));
        client.send(0, &Message::Heartbeat { nonce: 1 }).unwrap();
        server.recv(Duration::from_secs(5)).expect("announce");

        let shared = Arc::clone(&server.shared);
        let _ = std::thread::spawn(move || {
            let _guard = shared.conns.lock().expect("clean lock");
            panic!("deliberate panic while holding the conns lock");
        })
        .join();
        assert!(
            server.shared.conns.lock().is_err(),
            "mutex should be poisoned by the panicked holder"
        );

        // Both directions still work through the poisoned mutex.
        client.send(0, &Message::Heartbeat { nonce: 2 }).unwrap();
        assert_eq!(
            server.recv(Duration::from_secs(5)).unwrap().msg,
            Message::Heartbeat { nonce: 2 }
        );
        server.send(1, &Message::Heartbeat { nonce: 3 }).unwrap();
        assert_eq!(
            client.recv(Duration::from_secs(5)).unwrap().msg,
            Message::Heartbeat { nonce: 3 }
        );
        assert_eq!(server.connected_parties(), vec![1]);
    }

    #[test]
    fn reconnects_after_peer_restart() {
        let mut server = bind(0, HashMap::new());
        let server_addr = server.local_addr();
        let mut client = bind(1, HashMap::from([(0, server_addr)]));
        client.send(0, &Message::Heartbeat { nonce: 1 }).unwrap();
        assert_eq!(
            server.recv(Duration::from_secs(5)).unwrap().msg,
            Message::Heartbeat { nonce: 1 }
        );
        // Restart the server on the same port.
        let port_addr = server.local_addr();
        drop(server);
        std::thread::sleep(Duration::from_millis(50));
        let mut server = TcpTransport::bind(
            0,
            port_addr,
            HashMap::new(),
            RetryPolicy::fast_local(),
            Duration::from_secs(2),
        )
        .expect("rebind");
        // The client's cached connection is dead; send_raw must notice the
        // failure, redial and deliver.
        let mut delivered = false;
        for nonce in 2..6 {
            if client.send(0, &Message::Heartbeat { nonce }).is_ok()
                && server.recv(Duration::from_secs(2)).is_ok()
            {
                delivered = true;
                break;
            }
        }
        assert!(delivered, "client never reconnected");
    }
}
