//! Message transport for the distributed learners (ISSUE 1 tentpole).
//!
//! The paper's protocol is learners exchanging *messages*: masked local
//! models `wᵢ + Sedᵢ − Revᵢ` flowing to the reducer and consensus state
//! broadcast back each ADMM iteration (§V). This crate provides the wire
//! and delivery machinery for that exchange, with zero dependencies
//! outside `std`:
//!
//! * [`wire`] — exact-size little-endian codec ([`Wire`]) and bounds-checked
//!   decoding ([`Reader`]); the size arithmetic deliberately matches the
//!   byte estimator the MapReduce metrics used before, so counters are now
//!   backed by real encodings;
//! * [`frame`] — the versioned, length-prefixed, CRC-checksummed frame
//!   format and the protocol [`Message`] set (mask exchange, masked-share
//!   gather, consensus broadcast, hello/heartbeat/ack control frames);
//! * [`Transport`] — the backend trait, with two implementations:
//!   [`LoopbackTransport`] (deterministic in-memory fabric with
//!   [`NetFaultPlan`] drop/duplicate/delay injection) and [`TcpTransport`]
//!   (`std::net`, per-message timeouts, exponential-backoff dialing,
//!   reconnection);
//! * [`Courier`] — stop-and-wait reliability on top of any backend: acks,
//!   retransmission under [`RetryPolicy`], and duplicate suppression.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use ppml_transport::{Courier, LoopbackHub, Message, RetryPolicy};
//!
//! let hub = LoopbackHub::new(2);
//! let mut tx = Courier::new(hub.endpoint(0), RetryPolicy::fast_local());
//! let mut rx = Courier::new(hub.endpoint(1), RetryPolicy::fast_local());
//!
//! let handle = std::thread::spawn(move || {
//!     rx.recv(Duration::from_secs(1)).expect("delivery").msg
//! });
//! tx.send_reliable(1, &Message::Heartbeat { nonce: 7 }).expect("acked");
//! assert_eq!(handle.join().unwrap(), Message::Heartbeat { nonce: 7 });
//! ```

// The sole unsafe surface in this crate is the raw `ppoll(2)` syscall
// in `poll` (the workspace links no `libc`); everything else stays
// lint-enforced safe.
#![deny(unsafe_code)]

pub mod courier;
pub mod event_loop;
pub mod fault;
pub mod frame;
pub mod loopback;
pub mod poll;
pub mod retry;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use courier::Courier;
pub use event_loop::{EventLoopConfig, EventTransport};
pub use fault::{FaultAction, LinkFilter, NetFaultPlan};
pub use frame::{
    crc32, Frame, FrameError, Message, PartyId, FLAG_RETRANSMIT, FRAME_OVERHEAD, WIRE_VERSION,
};
pub use loopback::{HubStats, LoopbackHub, LoopbackTransport};
pub use poll::pin_current_thread;
pub use retry::RetryPolicy;
pub use tcp::TcpTransport;
pub use transport::{Envelope, LinkStats, SendReceipt, Transport, TransportError};
pub use wire::{Reader, Wire, WireError};
