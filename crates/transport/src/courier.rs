//! Reliable delivery over any [`Transport`]: acknowledgements,
//! retransmission with bounded exponential backoff, and duplicate
//! suppression.
//!
//! The underlying fabrics are allowed to drop, duplicate and reorder
//! frames (the loopback backend does so on purpose; TCP reconnection can
//! lose a frame in flight). `Courier` layers a stop-and-wait ARQ on top:
//! every non-ack frame is acknowledged by the receiver with
//! [`Message::Ack`] carrying the frame's sequence number; the sender
//! retransmits under the *same* sequence number (flagged
//! [`FLAG_RETRANSMIT`]) until the ack arrives or the retry budget is
//! spent; receivers track a per-sender contiguous watermark plus a small
//! out-of-order window, re-ack duplicates, and deliver each message
//! exactly once in arrival order.
//!
//! Acknowledgement frames travel at sequence number 0 (like the TCP
//! backend's transport-internal Hello frames): they are identified by
//! their message kind, never deduplicated, and never acked themselves, so
//! data sequence numbers stay contiguous per link — which is what lets the
//! duplicate-suppression state stay O(1) per sender instead of growing
//! with every frame ever delivered.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::time::{Duration, Instant};

use ppml_telemetry as telemetry;
use telemetry::EventKind;

use crate::frame::{Message, PartyId, FLAG_RETRANSMIT};
use crate::retry::RetryPolicy;
use crate::transport::{Envelope, Transport, TransportError};

/// Upper bound on out-of-order sequence numbers remembered per sender.
/// Stop-and-wait keeps at most a handful of frames in flight per link, so
/// the window only fills when a peer misbehaves; overflowing it advances
/// the floor, treating the oldest gaps as lost.
const DEDUP_WINDOW: usize = 64;

/// Per-sender duplicate-suppression state: every data sequence number
/// `<= watermark` has been delivered; `window` holds delivered numbers
/// above the watermark (out-of-order arrivals), bounded by
/// [`DEDUP_WINDOW`].
#[derive(Debug, Default)]
struct DedupState {
    watermark: u64,
    window: BTreeSet<u64>,
}

impl DedupState {
    /// Records `seq`; returns `true` when it is fresh (first delivery).
    fn record(&mut self, seq: u64) -> bool {
        if seq <= self.watermark || self.window.contains(&seq) {
            return false;
        }
        self.window.insert(seq);
        while self.window.remove(&(self.watermark + 1)) {
            self.watermark += 1;
        }
        while self.window.len() > DEDUP_WINDOW {
            // Overflow: declare the oldest gap lost and advance the floor.
            // A frame below the new floor would now be mistaken for a
            // duplicate, but with stop-and-wait ARQ the sender gave up on
            // anything that far back long ago.
            let oldest = *self.window.iter().next().expect("non-empty window");
            self.watermark = oldest;
            self.window.remove(&oldest);
            while self.window.remove(&(self.watermark + 1)) {
                self.watermark += 1;
            }
        }
        true
    }

    fn footprint(&self) -> usize {
        self.window.len()
    }
}

/// Exactly-once messaging over a lossy transport.
pub struct Courier<T: Transport> {
    transport: T,
    policy: RetryPolicy,
    /// Messages received (and acked) while waiting for our own acks.
    inbox: VecDeque<Envelope>,
    /// Duplicate-suppression state, per sender.
    seen: HashMap<PartyId, DedupState>,
    /// Acks that arrived before we looked for them: (peer, seq).
    acks: BTreeSet<(PartyId, u64)>,
}

impl<T: Transport> Courier<T> {
    /// Wraps `transport` with retry schedule `policy`.
    pub fn new(transport: T, policy: RetryPolicy) -> Self {
        Courier {
            transport,
            policy,
            inbox: VecDeque::new(),
            seen: HashMap::new(),
            acks: BTreeSet::new(),
        }
    }

    /// This endpoint's party id.
    pub fn party(&self) -> PartyId {
        self.transport.party()
    }

    /// Number of out-of-order sequence numbers currently held for `from`
    /// (diagnostics; the contiguous watermark itself is O(1)). Bounded by
    /// a small constant however much traffic the link has carried.
    pub fn dedup_footprint(&self, from: PartyId) -> usize {
        self.seen.get(&from).map_or(0, DedupState::footprint)
    }

    /// Read-only access to the wrapped transport (stats, hub handles …).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Forgets all duplicate-suppression and pending-ack state for
    /// `peer`, as if this endpoint had never heard from it — including
    /// any of its frames still queued in the inbox.
    ///
    /// Useful when a peer *process* is known to have restarted: its
    /// transport sequence counters reset to 1, so stale state would
    /// swallow its frames as duplicates. Note that absorbing a
    /// [`Message::Join`] or [`Message::Welcome`] already clears the
    /// dedup watermark on its own (see `absorb`), so protocol handlers
    /// reacting to those must NOT call this — it would also delete
    /// legitimately queued frames that followed the rendezvous. The
    /// coordinator calls it when re-admitting a rejoiner, before any
    /// fresh-incarnation traffic beyond Join probes can exist.
    pub fn reset_peer(&mut self, peer: PartyId) {
        self.seen.remove(&peer);
        self.acks.retain(|&(p, _)| p != peer);
        self.inbox.retain(|env| env.from != peer);
    }

    /// Unwraps the courier.
    pub fn into_inner(self) -> T {
        self.transport
    }

    /// Sends `msg` and blocks until the destination acknowledges it,
    /// retransmitting per the retry policy. Returns the total bytes put on
    /// the wire for this message (retransmissions included).
    ///
    /// Messages arriving while we wait are acknowledged, deduplicated and
    /// queued for [`Courier::recv`] — two parties can therefore
    /// `send_reliable` to each other simultaneously without deadlock.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] when the retry budget is exhausted
    /// without an acknowledgement; any transport error is propagated.
    pub fn send_reliable(&mut self, to: PartyId, msg: &Message) -> Result<usize, TransportError> {
        let seq = self.transport.next_seq(to);
        let mut total = 0usize;
        for attempt in 0..self.policy.max_attempts {
            let flags = if attempt == 0 {
                0
            } else {
                telemetry::emit(self.party(), EventKind::ArqRetransmit { to, seq, attempt });
                FLAG_RETRANSMIT
            };
            total += self.transport.send_raw(to, msg, seq, flags)?;
            if self.await_ack(to, seq, self.policy.backoff(attempt))? {
                return Ok(total);
            }
        }
        telemetry::emit(
            self.party(),
            EventKind::SendTimeout {
                to,
                attempts: self.policy.max_attempts,
            },
        );
        Err(TransportError::Timeout)
    }

    /// Waits for an ack of `(to, seq)` until `window` elapses, processing
    /// (and acking) whatever else arrives meanwhile.
    fn await_ack(
        &mut self,
        to: PartyId,
        seq: u64,
        window: Duration,
    ) -> Result<bool, TransportError> {
        if self.acks.remove(&(to, seq)) {
            return Ok(true);
        }
        let deadline = Instant::now() + window;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Ok(false);
            }
            match self.transport.recv(deadline - now) {
                Ok(env) => {
                    self.absorb(env)?;
                    if self.acks.remove(&(to, seq)) {
                        return Ok(true);
                    }
                }
                Err(TransportError::Timeout) => return Ok(false),
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends `msg` once, without waiting for an acknowledgement. Returns
    /// the bytes put on the wire.
    ///
    /// The receiver still acks it (it cannot know the sender isn't
    /// waiting); the ack is simply absorbed and ignored. Use this for
    /// messages whose loss the protocol tolerates by design — e.g. a
    /// threshold-sharing submission, where a lost submission is
    /// indistinguishable from the sender dropping out and the round
    /// reconstructs from the survivors.
    ///
    /// # Errors
    ///
    /// Any transport error is propagated.
    pub fn send_unreliable(&mut self, to: PartyId, msg: &Message) -> Result<usize, TransportError> {
        let seq = self.transport.next_seq(to);
        self.transport.send_raw(to, msg, seq, 0)
    }

    /// Receives the next new (non-duplicate, non-ack) message.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] when nothing new arrives in time.
    pub fn recv(&mut self, timeout: Duration) -> Result<Envelope, TransportError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(env) = self.inbox.pop_front() {
                return Ok(env);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(TransportError::Timeout);
            }
            let env = self.transport.recv(deadline - now)?;
            self.absorb(env)?;
        }
    }

    /// Routes one raw envelope: acks are recorded, fresh messages are
    /// acked and queued, duplicates are re-acked and discarded.
    fn absorb(&mut self, env: Envelope) -> Result<(), TransportError> {
        if let Message::Ack { of_seq } = env.msg {
            self.acks.insert((env.from, of_seq));
            return Ok(());
        }
        // Always acknowledge — the sender may have missed the last ack.
        // Acks ride at seq 0 so data sequence numbers stay contiguous.
        // An unreachable peer does NOT fail the receive: the frame may
        // have been the sender's last breath before dying (the event
        // backend deregisters the connection on EOF and fails the send
        // fast, where a TCP write into a freshly half-closed socket
        // succeeds silently). Dropping an ack is always safe under
        // stop-and-wait — a live sender retransmits and the duplicate
        // is re-acked; a dead one no longer cares. Only [`Closed`]
        // (our own transport shut down) still propagates.
        let ack = Message::Ack { of_seq: env.seq };
        match self.transport.send_raw(env.from, &ack, 0, 0) {
            Ok(_) => {}
            Err(TransportError::Closed) => return Err(TransportError::Closed),
            Err(_) => telemetry::emit(
                self.party(),
                EventKind::AckDropped {
                    to: env.from,
                    of_seq: env.seq,
                },
            ),
        }
        // Join/Welcome announce a *restarted* peer whose sequence counters
        // started over; judged against the old watermark they would be
        // "duplicates" and the rendezvous could never happen. Both bypass
        // dedup entirely AND clear the sender's dedup state right here,
        // at absorb time: the frames *behind* the rendezvous are already
        // in the fresh sequence space, and they may be absorbed before
        // the protocol layer gets around to reacting to the Welcome —
        // waiting for it to reset would swallow them as replays. Both
        // messages are idempotent, so repeats (and the re-deliveries a
        // repeat's reset can cause) are tolerated at the protocol layer
        // by design.
        if matches!(env.msg, Message::Join { .. } | Message::Welcome { .. }) {
            self.seen.remove(&env.from);
            self.inbox.push_back(env);
            return Ok(());
        }
        let fresh = self.seen.entry(env.from).or_default().record(env.seq);
        if fresh {
            self.inbox.push_back(env);
        } else {
            telemetry::emit(
                self.party(),
                EventKind::DedupDrop {
                    from: env.from,
                    seq: env.seq,
                },
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{LinkFilter, NetFaultPlan};
    use crate::loopback::LoopbackHub;

    const TICK: Duration = Duration::from_millis(500);

    fn pair(
        plan: NetFaultPlan,
    ) -> (
        Courier<crate::LoopbackTransport>,
        Courier<crate::LoopbackTransport>,
    ) {
        let hub = LoopbackHub::with_faults(2, plan);
        (
            Courier::new(hub.endpoint(0), RetryPolicy::fast_local()),
            Courier::new(hub.endpoint(1), RetryPolicy::fast_local()),
        )
    }

    /// Drives `b` as a responder in a background thread while the closure
    /// runs `a`'s side; the responder echoes nothing, just receives `n`
    /// messages.
    fn receive_n_in_background(
        mut b: Courier<crate::LoopbackTransport>,
        n: usize,
    ) -> std::thread::JoinHandle<Vec<Envelope>> {
        std::thread::spawn(move || {
            (0..n)
                .map(|_| b.recv(TICK).expect("responder recv"))
                .collect()
        })
    }

    #[test]
    fn lossless_round_trip() {
        let (mut a, b) = pair(NetFaultPlan::none());
        let rx = receive_n_in_background(b, 1);
        a.send_reliable(1, &Message::Heartbeat { nonce: 3 })
            .unwrap();
        let got = rx.join().unwrap();
        assert_eq!(got[0].msg, Message::Heartbeat { nonce: 3 });
    }

    #[test]
    fn dropped_first_transmission_is_recovered_by_retry() {
        // Drop the first data frame 0→1; the retransmit must get through.
        let plan = NetFaultPlan::none().drop_frames(LinkFilter::any().from(0).kind(3), 1);
        let (mut a, b) = pair(plan);
        let rx = receive_n_in_background(b, 1);
        let bytes = a
            .send_reliable(1, &Message::Heartbeat { nonce: 8 })
            .unwrap();
        let got = rx.join().unwrap();
        assert_eq!(got[0].msg, Message::Heartbeat { nonce: 8 });
        assert_eq!(got[0].flags, FLAG_RETRANSMIT);
        // Two transmissions were paid for.
        let one = crate::Frame::encoded_len_of(&Message::Heartbeat { nonce: 8 });
        assert_eq!(bytes, 2 * one);
    }

    #[test]
    fn dropped_ack_does_not_duplicate_delivery() {
        // The data frame arrives, but the first ack 1→0 is destroyed: the
        // sender retransmits, the receiver re-acks but must deliver once.
        let plan = NetFaultPlan::none().drop_frames(LinkFilter::any().from(1).kind(4), 1);
        let (mut a, mut b) = pair(plan);
        let rx = std::thread::spawn(move || {
            let first = b.recv(TICK).expect("first delivery");
            let second = b.recv(Duration::from_millis(100));
            (first, second, b)
        });
        a.send_reliable(1, &Message::Heartbeat { nonce: 4 })
            .unwrap();
        let (first, second, _b) = rx.join().unwrap();
        assert_eq!(first.msg, Message::Heartbeat { nonce: 4 });
        assert!(
            matches!(second, Err(TransportError::Timeout)),
            "duplicate was delivered: {second:?}"
        );
    }

    #[test]
    fn duplicated_data_frame_is_delivered_once() {
        let plan = NetFaultPlan::none().duplicate_frames(LinkFilter::any().from(0).kind(3), 1);
        let (mut a, mut b) = pair(plan);
        let rx = std::thread::spawn(move || {
            let first = b.recv(TICK).expect("delivery");
            let second = b.recv(Duration::from_millis(100));
            (first, second)
        });
        a.send_reliable(1, &Message::Heartbeat { nonce: 6 })
            .unwrap();
        let (first, second) = rx.join().unwrap();
        assert_eq!(first.msg, Message::Heartbeat { nonce: 6 });
        assert!(matches!(second, Err(TransportError::Timeout)));
    }

    #[test]
    fn unacked_send_times_out_after_budget() {
        // Destroy every data frame; the courier must give up cleanly.
        let plan = NetFaultPlan::none().drop_frames(LinkFilter::any().from(0).kind(3), u32::MAX);
        let (mut a, _b) = pair(plan);
        let err = a
            .send_reliable(1, &Message::Heartbeat { nonce: 1 })
            .unwrap_err();
        assert!(matches!(err, TransportError::Timeout));
    }

    #[test]
    fn simultaneous_bidirectional_sends_do_not_deadlock() {
        let (mut a, mut b) = pair(NetFaultPlan::none());
        let ha = std::thread::spawn(move || {
            a.send_reliable(1, &Message::Heartbeat { nonce: 10 })
                .unwrap();
            a.recv(TICK).unwrap()
        });
        let hb = std::thread::spawn(move || {
            b.send_reliable(0, &Message::Heartbeat { nonce: 20 })
                .unwrap();
            b.recv(TICK).unwrap()
        });
        assert_eq!(ha.join().unwrap().msg, Message::Heartbeat { nonce: 20 });
        assert_eq!(hb.join().unwrap().msg, Message::Heartbeat { nonce: 10 });
    }

    #[test]
    fn dedup_state_stays_bounded_over_many_sends() {
        // The old implementation remembered every delivered (sender, seq)
        // pair forever; the watermark must keep the footprint at zero for
        // in-order traffic no matter how many frames cross the link.
        let (mut a, mut b) = pair(NetFaultPlan::none());
        let rx = std::thread::spawn(move || {
            for _ in 0..500 {
                b.recv(TICK).expect("delivery");
            }
            b
        });
        for nonce in 0..500 {
            a.send_reliable(1, &Message::Heartbeat { nonce }).unwrap();
        }
        let b = rx.join().unwrap();
        assert_eq!(
            b.dedup_footprint(0),
            0,
            "in-order traffic must not accumulate state"
        );
    }

    #[test]
    fn dedup_window_absorbs_reordering_then_drains() {
        // Delay every odd frame past its successor: the window briefly
        // holds the out-of-order arrival, then the watermark catches up.
        let plan = NetFaultPlan::none().delay_frames(LinkFilter::any().from(0).kind(3), 50, 1);
        let (mut a, mut b) = pair(plan);
        let rx = std::thread::spawn(move || {
            let mut nonces = Vec::new();
            for _ in 0..100 {
                if let Message::Heartbeat { nonce } = b.recv(TICK).expect("delivery").msg {
                    nonces.push(nonce);
                }
                assert!(
                    b.dedup_footprint(0) <= super::DEDUP_WINDOW,
                    "window exceeded its bound"
                );
            }
            (nonces, b)
        });
        for nonce in 0..100 {
            a.send_reliable(1, &Message::Heartbeat { nonce }).unwrap();
        }
        let (mut nonces, b) = rx.join().unwrap();
        nonces.sort_unstable();
        assert_eq!(nonces, (0..100).collect::<Vec<_>>());
        assert_eq!(b.dedup_footprint(0), 0, "window must drain once gaps fill");
    }

    #[test]
    fn dedup_record_overflow_advances_the_floor() {
        let mut state = super::DedupState::default();
        // Seq 1 never arrives; everything above it piles into the window.
        for seq in 2..(2 + super::DEDUP_WINDOW as u64 + 10) {
            assert!(state.record(seq));
            assert!(state.footprint() <= super::DEDUP_WINDOW);
        }
        // Delivered numbers are still recognized as duplicates.
        assert!(!state.record(2 + super::DEDUP_WINDOW as u64));
    }

    #[test]
    fn ack_at_reserved_seq_zero_never_collides_with_the_dedup_window() {
        // Acks ride at seq 0 and must never enter the dedup state: if they
        // did, the first ack would set watermark ≥ 0 trivially, but worse,
        // an ack would be "recorded" and a later data frame at a low seq
        // could be mistaken for its duplicate. Drive a full reliable
        // exchange and then check the receiver's dedup state saw only data
        // sequence numbers (which start at 1).
        let (mut a, mut b) = pair(NetFaultPlan::none());
        let rx = std::thread::spawn(move || {
            let env = b.recv(TICK).expect("delivery");
            assert!(env.seq >= 1, "data frames start at seq 1, got {}", env.seq);
            // Seq 0 must still be deliverable *as data* conceptually: the
            // dedup state never recorded it, so a (hostile) frame at seq 0
            // would be judged `0 <= watermark` — i.e. the reserved number
            // is structurally outside the data space. Check the watermark
            // only ever advanced on real data.
            assert_eq!(b.dedup_footprint(0), 0);
            (env, b)
        });
        a.send_reliable(1, &Message::Heartbeat { nonce: 5 })
            .unwrap();
        let (env, _b) = rx.join().unwrap();
        assert_eq!(env.msg, Message::Heartbeat { nonce: 5 });
        // The sender's own ack bookkeeping is empty afterwards: the ack
        // was consumed, not retained under (peer, 0).
        assert!(a.acks.is_empty(), "{:?}", a.acks);
    }

    #[test]
    fn duplicated_acks_do_not_poison_later_deliveries() {
        // Duplicate every ack 1→0: the sender sees the same (1, seq) ack
        // twice; the second insert is a no-op on the BTreeSet and must not
        // make a *future* send at the same seq considered pre-acked for a
        // different message. With per-link monotone sequence numbers that
        // can only happen if acks leaked into dedup — assert they did not.
        let plan = NetFaultPlan::none().duplicate_frames(LinkFilter::any().from(1).kind(4), 8);
        let (mut a, b) = pair(plan);
        let rx = receive_n_in_background(b, 3);
        for nonce in 0..3 {
            a.send_reliable(1, &Message::Heartbeat { nonce }).unwrap();
        }
        let got = rx.join().unwrap();
        assert_eq!(got.len(), 3);
        // Stray duplicate acks for already-consumed seqs may remain; none
        // of them may claim seq 0 or a seq we never sent (≤ 3).
        for &(peer, seq) in &a.acks {
            assert_eq!(peer, 1);
            assert!((1..=3).contains(&seq), "phantom ack for seq {seq}");
        }
    }

    #[test]
    fn reset_peer_lets_a_restarted_sender_start_over_at_seq_one() {
        let hub = LoopbackHub::new(2);
        let mut a = Courier::new(hub.endpoint(0), RetryPolicy::fast_local());
        let mut b = Courier::new(hub.endpoint(1), RetryPolicy::fast_local());
        // First incarnation of party 0 delivers seqs 1..=3.
        let rx = std::thread::spawn(move || {
            for _ in 0..3 {
                b.recv(TICK).expect("delivery");
            }
            b
        });
        for nonce in 0..3 {
            a.send_reliable(1, &Message::Heartbeat { nonce }).unwrap();
        }
        let mut b = rx.join().unwrap();
        drop(a);
        // "Restarted" party 0: fresh endpoint, sequence counter back at 1.
        let mut a2 = Courier::new(hub.endpoint(0), RetryPolicy::fast_local());
        b.reset_peer(0);
        let rx = std::thread::spawn(move || b.recv(TICK).expect("post-restart delivery"));
        a2.send_reliable(1, &Message::Heartbeat { nonce: 99 })
            .unwrap();
        assert_eq!(rx.join().unwrap().msg, Message::Heartbeat { nonce: 99 });
    }

    #[test]
    fn join_and_welcome_bypass_dedup_without_reset() {
        // Even before anyone calls reset_peer, a restarted peer's Join at
        // a low sequence number must reach the protocol layer.
        let hub = LoopbackHub::new(2);
        let mut a = Courier::new(hub.endpoint(0), RetryPolicy::fast_local());
        let mut b = Courier::new(hub.endpoint(1), RetryPolicy::fast_local());
        let rx = std::thread::spawn(move || {
            for _ in 0..3 {
                b.recv(TICK).expect("delivery");
            }
            b
        });
        for nonce in 0..3 {
            a.send_reliable(1, &Message::Heartbeat { nonce }).unwrap();
        }
        let mut b = rx.join().unwrap();
        drop(a);
        let mut a2 = Courier::new(hub.endpoint(0), RetryPolicy::fast_local());
        let rx = std::thread::spawn(move || b.recv(TICK).expect("join delivery"));
        a2.send_reliable(1, &Message::Join { party: 0, nonce: 7 })
            .unwrap();
        assert_eq!(rx.join().unwrap().msg, Message::Join { party: 0, nonce: 7 });
    }

    #[test]
    fn frames_behind_a_welcome_from_a_restarted_sender_are_not_swallowed() {
        // A restarted coordinator sends Welcome then immediately the next
        // round's traffic, all in its fresh sequence space. Both may be
        // absorbed before the receiver's protocol layer reacts to the
        // Welcome, so the Welcome itself must re-sync the dedup watermark
        // at absorb time — no reset_peer involved.
        let hub = LoopbackHub::new(2);
        let mut a = Courier::new(hub.endpoint(0), RetryPolicy::fast_local());
        let mut b = Courier::new(hub.endpoint(1), RetryPolicy::fast_local());
        let rx = std::thread::spawn(move || {
            for _ in 0..3 {
                b.recv(TICK).expect("delivery");
            }
            b
        });
        for nonce in 0..3 {
            a.send_reliable(1, &Message::Heartbeat { nonce }).unwrap();
        }
        let mut b = rx.join().unwrap();
        drop(a);
        // Restarted incarnation: Welcome at seq 1, data frame at seq 2 —
        // both below the watermark (3) the dead incarnation left behind.
        let mut a2 = Courier::new(hub.endpoint(0), RetryPolicy::fast_local());
        let rx = std::thread::spawn(move || {
            let first = b.recv(TICK).expect("welcome delivery").msg;
            let second = b.recv(TICK).expect("follow-up delivery").msg;
            (first, second)
        });
        a2.send_reliable(
            1,
            &Message::Welcome {
                nonce: 7,
                iteration: 4,
                epoch: 9,
                survivors: vec![1],
                z: vec![0.0],
                s: vec![0.0],
            },
        )
        .unwrap();
        a2.send_reliable(1, &Message::Heartbeat { nonce: 99 })
            .unwrap();
        let (first, second) = rx.join().unwrap();
        assert!(matches!(first, Message::Welcome { nonce: 7, .. }));
        assert_eq!(second, Message::Heartbeat { nonce: 99 });
    }

    #[test]
    fn backoff_saturates_without_overflow_at_max_attempts() {
        // Satellite: RetryPolicy::backoff must be monotone non-decreasing
        // up to its cap and never overflow, even for absurd attempt
        // numbers far past any real retry budget.
        for policy in [
            RetryPolicy::fast_local(),
            RetryPolicy::tcp_default(),
            RetryPolicy::tcp_link(),
        ] {
            let mut prev = Duration::ZERO;
            for attempt in 0..policy.max_attempts {
                let d = policy.backoff(attempt);
                assert!(d >= prev, "backoff regressed at attempt {attempt}");
                prev = d;
            }
            // Saturation: astronomical attempt counts clamp to the cap
            // instead of wrapping the shift or multiplication.
            let cap = policy.backoff(u32::MAX);
            assert_eq!(policy.backoff(u32::MAX - 1), cap);
            assert!(policy.backoff(policy.max_attempts.saturating_mul(1000)) <= cap);
            assert!(cap > Duration::ZERO);
        }
    }

    /// A transport whose inbox holds one last frame from a peer that has
    /// since vanished: every send toward it fails fast with
    /// [`TransportError::Unreachable`], the way the event backend does
    /// once EOF deregisters the connection.
    struct DeadPeerTransport {
        queued: VecDeque<Envelope>,
        acks_attempted: u32,
    }

    impl Transport for DeadPeerTransport {
        fn party(&self) -> PartyId {
            0
        }
        fn next_seq(&mut self, _to: PartyId) -> u64 {
            1
        }
        fn send_raw(
            &mut self,
            to: PartyId,
            _msg: &Message,
            _seq: u64,
            _flags: u16,
        ) -> Result<usize, TransportError> {
            self.acks_attempted += 1;
            Err(TransportError::Unreachable(to))
        }
        fn recv(&mut self, _timeout: Duration) -> Result<Envelope, TransportError> {
            self.queued.pop_front().ok_or(TransportError::Timeout)
        }
        fn stats(&self) -> crate::LinkStats {
            crate::LinkStats::default()
        }
    }

    #[test]
    fn dead_letter_frame_still_delivers_when_the_ack_cannot() {
        // The peer's last frame before dying must reach the protocol
        // layer even though acking it fails — a dropped ack is always
        // safe under stop-and-wait, while failing the receive here used
        // to kill a coordinator that had already survived the dropout.
        let transport = DeadPeerTransport {
            queued: VecDeque::from([Envelope {
                from: 1,
                seq: 1,
                flags: 0,
                msg: Message::Heartbeat { nonce: 9 },
            }]),
            acks_attempted: 0,
        };
        let mut courier = Courier::new(transport, RetryPolicy::fast_local());
        let env = courier.recv(TICK).expect("frame from a dead peer");
        assert_eq!(env.from, 1);
        assert!(matches!(env.msg, Message::Heartbeat { nonce: 9 }));
        assert!(
            courier.transport().acks_attempted >= 1,
            "the ack must still be attempted"
        );
        // Nothing further queued: back to an ordinary timeout, not an
        // error.
        assert!(matches!(
            courier.recv(Duration::from_millis(10)),
            Err(TransportError::Timeout)
        ));
    }

    #[test]
    fn reordered_frames_both_arrive() {
        let plan = NetFaultPlan::none().delay_frames(LinkFilter::any().from(0).kind(3), 1, 1);
        let (mut a, b) = pair(plan);
        let rx = receive_n_in_background(b, 2);
        a.send_reliable(1, &Message::Heartbeat { nonce: 1 })
            .unwrap();
        a.send_reliable(1, &Message::Heartbeat { nonce: 2 })
            .unwrap();
        let mut nonces: Vec<u64> = rx
            .join()
            .unwrap()
            .into_iter()
            .map(|e| match e.msg {
                Message::Heartbeat { nonce } => nonce,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        nonces.sort_unstable();
        assert_eq!(nonces, vec![1, 2]);
    }
}
