//! Integration drills for the event-loop transport backend: connection
//! churn at a scale the thread-per-connection backend cannot sustain
//! cheaply, and retransmission parity with the loopback reference
//! fabric.
//!
//! The churn test is the operational core of the backend's promise: one
//! I/O thread regardless of peer count, and no thread or file-descriptor
//! leak when peers die mid-round. Both resources are read straight from
//! `/proc/self`, so these assertions are Linux-only and skip elsewhere.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ppml_transport::{
    Courier, EventTransport, Frame, LinkFilter, LoopbackHub, Message, NetFaultPlan, PartyId,
    RetryPolicy, Transport, FLAG_RETRANSMIT,
};

/// The thread/fd-count assertions below measure process-wide state, so
/// the tests in this binary must not overlap in time.
static SERIAL: Mutex<()> = Mutex::new(());

fn loopback_addr() -> SocketAddr {
    "127.0.0.1:0".parse().expect("addr")
}

fn bind(party: PartyId, peers: HashMap<PartyId, SocketAddr>) -> EventTransport {
    EventTransport::bind(
        party,
        loopback_addr(),
        peers,
        RetryPolicy::fast_local(),
        Duration::from_secs(5),
    )
    .expect("bind")
}

/// `Threads:` from `/proc/self/status`, or `None` off Linux.
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Open file descriptors, or `None` off Linux.
fn fd_count() -> Option<usize> {
    Some(std::fs::read_dir("/proc/self/fd").ok()?.count())
}

/// Blocking-reads one length-prefixed frame off a raw socket.
fn read_frame(stream: &mut TcpStream) -> Frame {
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix).expect("frame prefix");
    let len = u32::from_le_bytes(prefix) as usize;
    let mut full = vec![0u8; 4 + len];
    full[..4].copy_from_slice(&prefix);
    stream.read_exact(&mut full[4..]).expect("frame body");
    Frame::decode(&full).expect("frame decode")
}

fn wait_connected(transport: &EventTransport, want: usize, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while transport.connected_parties().len() != want {
        assert!(
            Instant::now() < deadline,
            "{what}: expected {want} connected, have {:?}",
            transport.connected_parties()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// 32 ephemeral peers dial in, half are killed mid-round, and the
/// survivors' round still completes — all on ONE coordinator I/O thread,
/// with every descriptor of the dead half reclaimed. This is exactly the
/// load shape that made the thread-per-connection backend accumulate
/// parked reader threads.
#[test]
fn churn_32_peers_kill_half_without_thread_or_fd_leak() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    const PEERS: usize = 32;
    const COORD: PartyId = 1000;

    let threads_before = thread_count();
    let mut coordinator = bind(COORD, HashMap::new());
    let addr = coordinator.local_addr();
    if let (Some(before), Some(after)) = (threads_before, thread_count()) {
        assert_eq!(
            after,
            before + 1,
            "the backend must cost exactly one thread"
        );
    }

    // Ephemeral peers: raw sockets speaking the wire handshake, so the
    // only event-loop machinery under test is the coordinator's.
    let mut peers: Vec<TcpStream> = (0..PEERS as PartyId)
        .map(|party| {
            let stream = TcpStream::connect(addr).expect("peer connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .expect("read timeout");
            let hello = Frame {
                flags: 0,
                from: party,
                to: COORD,
                seq: 0,
                msg: Message::Hello { party },
            }
            .encode();
            (&stream).write_all(&hello).expect("hello");
            stream
        })
        .collect();
    wait_connected(&coordinator, PEERS, "after dial-in");

    // 32 live connections, still exactly one I/O thread.
    if let (Some(before), Some(now)) = (threads_before, thread_count()) {
        assert_eq!(now, before + 1, "{PEERS} peers must not add threads");
    }
    let fds_peak = fd_count();

    // Open a round: one heartbeat to every peer...
    for party in 0..PEERS as PartyId {
        coordinator
            .send(
                party,
                &Message::Heartbeat {
                    nonce: party as u64,
                },
            )
            .expect("broadcast");
    }
    // ...then SIGKILL-equivalent for the first half: drop the sockets
    // before they answer.
    let mut survivors = peers.split_off(PEERS / 2);
    drop(peers);

    // The survivors' round completes: each reads past its HelloAck to
    // the heartbeat and echoes it back. The sockets stay open until the
    // end of the test: survivors must not be reaped alongside the dead.
    for (i, stream) in survivors.iter_mut().enumerate() {
        let party = (PEERS / 2 + i) as PartyId;
        let nonce = loop {
            match read_frame(stream).msg {
                Message::HelloAck { .. } => continue,
                Message::Heartbeat { nonce } => break nonce,
                other => panic!("peer {party}: unexpected frame {other:?}"),
            }
        };
        assert_eq!(nonce, party as u64);
        let reply = Frame {
            flags: 0,
            from: party,
            to: COORD,
            seq: 1,
            msg: Message::Heartbeat { nonce },
        }
        .encode();
        (&*stream).write_all(&reply).expect("reply");
    }

    let mut replied: Vec<PartyId> = (0..PEERS / 2)
        .map(|_| {
            let env = coordinator
                .recv(Duration::from_secs(10))
                .expect("survivor reply");
            assert_eq!(
                env.msg,
                Message::Heartbeat {
                    nonce: env.from as u64
                }
            );
            env.from
        })
        .collect();
    replied.sort_unstable();
    let want: Vec<PartyId> = (PEERS as PartyId / 2..PEERS as PartyId).collect();
    assert_eq!(replied, want, "every survivor's round must complete");

    // The dead half is reaped: connection count halves, the thread
    // budget is untouched, and their descriptors come back.
    wait_connected(&coordinator, PEERS / 2, "after killing half");
    if let (Some(before), Some(now)) = (threads_before, thread_count()) {
        assert_eq!(now, before + 1, "churn must not leak threads");
    }
    if let Some(peak) = fds_peak {
        // Half the peer-side sockets were dropped outright and the
        // coordinator closed its side of each dead connection; demand
        // most of those descriptors back (small slack for /proc reads).
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let now = fd_count().expect("fd count");
            if now + PEERS <= peak + 4 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "fd leak after churn: peak {peak}, now {now}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// A dropped first transmission must look identical at the courier
/// level on the event loop and on the loopback reference fabric: the
/// receiver sees exactly one delivery, flagged as a retransmission,
/// with the same sequence number. On loopback the drop is injected by
/// the fault plan; on the event loop it is forced by panicking the
/// handler for that frame, which closes the connection and makes the
/// courier redial and retransmit.
#[test]
fn courier_retransmit_parity_with_loopback_reference() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let payload = Message::MaskedShare {
        iteration: 4,
        epoch: 1,
        party: 1,
        payload: vec![10, 20, 30],
    };

    // Reference: loopback, drop the first data frame from 1 to 0.
    let reference = {
        let hub = LoopbackHub::new(2);
        let mut receiver = hub.endpoint(0);
        let mut sender = Courier::new(hub.endpoint(1), RetryPolicy::fast_local());
        sender
            .send_unreliable(0, &Message::Heartbeat { nonce: 1 })
            .expect("announce");
        receiver.recv(Duration::from_secs(5)).expect("announce rx");
        hub.set_faults(NetFaultPlan::none().drop_frames(LinkFilter::any().from(1).to(0), 1));
        let mut receiver = Courier::new(receiver, RetryPolicy::fast_local());
        let h = std::thread::spawn(move || receiver.recv(Duration::from_secs(10)).expect("data"));
        sender.send_reliable(0, &payload).expect("reliable send");
        h.join().expect("receiver thread")
    };

    // Event loop: same exchange, drop forced through the panic hook.
    let delivered = {
        let mut server = bind(0, HashMap::new());
        let addr = server.local_addr();
        let mut sender = Courier::new(
            bind(1, HashMap::from([(0, addr)])),
            RetryPolicy::tcp_default(),
        );
        sender
            .send_unreliable(0, &Message::Heartbeat { nonce: 1 })
            .expect("announce");
        server.recv(Duration::from_secs(5)).expect("announce rx");
        server.debug_panic_on_next_frame(1);
        let mut receiver = Courier::new(server, RetryPolicy::tcp_default());
        let h = std::thread::spawn(move || receiver.recv(Duration::from_secs(10)).expect("data"));
        sender.send_reliable(0, &payload).expect("reliable send");
        h.join().expect("receiver thread")
    };

    assert_eq!(
        delivered, reference,
        "courier delivery must be identical across fabrics"
    );
    assert_eq!(
        delivered.flags & FLAG_RETRANSMIT,
        FLAG_RETRANSMIT,
        "the surviving delivery must be the retransmission"
    );
}
