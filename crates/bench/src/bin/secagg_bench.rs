//! Secure-aggregation backend comparison: bytes per round and CPU per
//! round for `pairwise` vs `shamir` vs `paillier` as the learner count
//! grows (ISSUE 8 bench).
//!
//! ```text
//! cargo run -p ppml-bench --bin secagg_bench --release
//! ```
//!
//! For each backend × m in {4, 8, 16, 32, 64}, the bench drives a real
//! distributed run — m learner threads and a coordinator over the
//! loopback hub, the same `ppml_core::secagg` code paths the binaries
//! use — and reads the per-round costs straight from the backend's own
//! [`SecAggRound`] telemetry: `bytes` is the coordinator-observed wire
//! traffic per round (broadcasts plus collected shares), `elapsed_ns`
//! the coordinator's wall-clock per round. CPU per round is the whole
//! process (scheduler-accounted, all threads), so it includes the
//! learners' QP work — that part is identical across backends, so the
//! *difference* between rows is the crypto cost: mask streams for
//! pairwise, split/blind/reconstruct for Shamir, modular
//! exponentiations for Paillier.
//!
//! Results go to stdout and `BENCH_secagg.json` in the working
//! directory. `PPML_BENCH_QUICK=1` shrinks the grid to m in {4, 8} for
//! CI smoke runs; `PPML_BENCH_M=8,64` overrides the grid outright.
//!
//! [`SecAggRound`]: ppml_telemetry::EventKind::SecAggRound

use std::fmt::Write as _;
use std::thread;
use std::time::Duration;

use ppml_core::distributed::feature_count;
use ppml_core::secagg::{coordinate_linear_secagg, learn_linear_secagg};
use ppml_core::{AdmmConfig, DistributedTiming, SecAggConfig, SecAggKind};
use ppml_data::{synth, Partition};
use ppml_telemetry::{self as telemetry, EventKind, RingSink};
use ppml_transport::{Courier, LoopbackHub, PartyId, RetryPolicy};

/// ADMM rounds per cell — every round costs one full aggregation.
const ROUNDS: usize = 5;
/// Mask/crypto seed; the model is backend-independent, so the seed only
/// picks the mask streams.
const SEED: u64 = 11;

fn quick() -> bool {
    std::env::var_os("PPML_BENCH_QUICK").is_some()
}

fn learner_counts() -> Vec<usize> {
    if let Ok(grid) = std::env::var("PPML_BENCH_M") {
        let m: Vec<usize> = grid
            .split(',')
            .filter_map(|v| v.trim().parse().ok())
            .collect();
        if !m.is_empty() {
            return m;
        }
    }
    if quick() {
        vec![4, 8]
    } else {
        vec![4, 8, 16, 32, 64]
    }
}

/// CPU time this process has consumed, in microseconds: nanosecond
/// `sum_exec_runtime` summed over every thread, with a jiffies fallback
/// where schedstats are compiled out (0 off Linux).
fn self_cpu_us() -> u64 {
    if let Ok(tasks) = std::fs::read_dir("/proc/self/task") {
        let mut total_ns: u64 = 0;
        let mut seen = false;
        for task in tasks.flatten() {
            let path = task.path().join("schedstat");
            if let Some(ns) = std::fs::read_to_string(path).ok().and_then(|s| {
                s.split_whitespace()
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
            }) {
                total_ns += ns;
                seen = true;
            }
        }
        if seen {
            return total_ns / 1_000;
        }
    }
    let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else {
        return 0;
    };
    let Some(rest) = stat.rsplit(')').next() else {
        return 0;
    };
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = fields.get(11).and_then(|v| v.parse().ok()).unwrap_or(0);
    let stime: u64 = fields.get(12).and_then(|v| v.parse().ok()).unwrap_or(0);
    (utime + stime) * 10_000
}

struct Row {
    backend: &'static str,
    m: usize,
    threshold: usize,
    rounds_completed: usize,
    bytes_per_round: f64,
    round_ms_mean: f64,
    cpu_ms_per_round: f64,
    ok: bool,
}

fn run_cell(secagg: SecAggConfig, m: usize) -> Row {
    let backend = secagg.kind.as_str();
    let ds = synth::blobs(512, 7);
    let parts = Partition::horizontal(&ds, m, 2).expect("partition");
    let cfg = AdmmConfig::default()
        .with_max_iter(ROUNDS)
        .with_seed(SEED)
        .with_tol(1e-12);
    let timing = DistributedTiming::default()
        .with_round_deadline(Duration::from_secs(30))
        .with_learner_patience(Duration::from_secs(60));
    let hub = LoopbackHub::new(m + 1);
    let ring = RingSink::new(1 << 16);
    telemetry::install(ring.clone());
    let cpu_before = self_cpu_us();
    let handles: Vec<_> = parts
        .iter()
        .enumerate()
        .map(|(p, part)| {
            let mut courier = Courier::new(hub.endpoint(p as PartyId), RetryPolicy::fast_local());
            let part = part.clone();
            thread::spawn(move || learn_linear_secagg(&mut courier, m, &part, &cfg, timing, secagg))
        })
        .collect();
    let mut courier = Courier::new(hub.endpoint(m as PartyId), RetryPolicy::fast_local());
    let features = feature_count(&parts).expect("partitions");
    let outcome = coordinate_linear_secagg(&mut courier, m, features, &cfg, None, timing, secagg);
    let mut ok = outcome.is_ok();
    for h in handles {
        ok &= h.join().expect("learner thread").is_ok();
    }
    let cpu_after = self_cpu_us();
    telemetry::uninstall();

    let rounds: Vec<(u64, u64)> = ring
        .snapshot()
        .iter()
        .filter(|e| e.party == m as u32)
        .filter_map(|e| match e.kind {
            EventKind::SecAggRound {
                backend: b,
                bytes,
                elapsed_ns,
                ..
            } if b == backend => Some((bytes, elapsed_ns)),
            _ => None,
        })
        .collect();
    let completed = rounds.len();
    let denom = completed.max(1) as f64;
    Row {
        backend,
        m,
        threshold: match secagg.kind {
            SecAggKind::Shamir => secagg.effective_threshold(m),
            _ => 0,
        },
        rounds_completed: completed,
        bytes_per_round: rounds.iter().map(|&(b, _)| b as f64).sum::<f64>() / denom,
        round_ms_mean: rounds.iter().map(|&(_, ns)| ns as f64 / 1e6).sum::<f64>() / denom,
        cpu_ms_per_round: cpu_after.saturating_sub(cpu_before) as f64 / 1_000.0 / denom,
        ok: ok && completed == ROUNDS,
    }
}

fn main() -> std::io::Result<()> {
    let mut rows = Vec::new();
    for &m in &learner_counts() {
        for secagg in [
            SecAggConfig::pairwise(),
            SecAggConfig::shamir(),
            SecAggConfig::paillier(),
        ] {
            let row = run_cell(secagg, m);
            println!(
                "secagg/{:<8}/m={:<3} rounds {}/{ROUNDS}  bytes {:>10.0}/round  \
                 wall {:>8.2}ms/round  cpu {:>8.2}ms/round  {}",
                row.backend,
                row.m,
                row.rounds_completed,
                row.bytes_per_round,
                row.round_ms_mean,
                row.cpu_ms_per_round,
                if row.ok { "ok" } else { "INCOMPLETE" }
            );
            rows.push(row);
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"secagg\",");
    let _ = writeln!(json, "  \"rounds\": {ROUNDS},");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"backend\": \"{}\", \"m\": {}, \"threshold\": {}, \
             \"rounds_completed\": {}, \"bytes_per_round\": {:.1}, \
             \"round_ms_mean\": {:.3}, \"cpu_ms_per_round\": {:.3}, \"ok\": {}}}{comma}",
            r.backend,
            r.m,
            r.threshold,
            r.rounds_completed,
            r.bytes_per_round,
            r.round_ms_mean,
            r.cpu_ms_per_round,
            r.ok
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write("BENCH_secagg.json", &json)?;
    println!("wrote BENCH_secagg.json");
    Ok(())
}
