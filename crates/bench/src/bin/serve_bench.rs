//! Serving throughput and latency: `ppml-serve`'s two fronts under
//! concurrent load (ISSUE 6 bench).
//!
//! ```text
//! cargo run -p ppml-bench --bin serve_bench --release
//! ```
//!
//! Grid: {linear, kernel-rbf} model × {http, frames} front × batch size
//! {1, 16, 256}, each cell driven by 4 client threads issuing whole
//! batches and timing each request round trip. Reported per cell:
//! throughput (rows/s across all threads) and p50/p99 request latency.
//! One-line results go to stdout; machine-readable results are written
//! to `BENCH_serve.json` in the working directory.
//!
//! `PPML_BENCH_QUICK=1` shrinks the request count for CI smoke runs.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppml_data::synth;
use ppml_kernel::Kernel;
use ppml_serve::{router, Engine, FrameScoreClient, FrameServer, SavedModel};
use ppml_svm::{KernelSvm, LinearSvm, SvmParams};
use ppml_telemetry::{request, HttpServer, MetricsRegistry};

/// Client threads per cell.
const THREADS: usize = 4;
/// Batch sizes in the grid.
const BATCHES: [usize; 3] = [1, 16, 256];

fn requests_per_thread() -> usize {
    if std::env::var_os("PPML_BENCH_QUICK").is_some() {
        10
    } else {
        50
    }
}

struct Cell {
    model: &'static str,
    front: &'static str,
    batch: usize,
    rows_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile(sorted: &[Duration], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx].as_nanos() as f64 / 1e3
}

/// One text body for `POST /score`: `batch` rows of `features` columns.
fn http_body(features: usize, batch: usize) -> Vec<u8> {
    let mut body = String::with_capacity(batch * features * 8);
    for i in 0..batch {
        for j in 0..features {
            if j > 0 {
                body.push(',');
            }
            let _ = write!(body, "{:.4}", ((i * features + j) as f64).sin());
        }
        body.push('\n');
    }
    body.into_bytes()
}

/// One flattened frame batch of the same probe rows.
fn frame_batch(features: usize, batch: usize) -> Vec<f64> {
    (0..batch * features).map(|k| (k as f64).sin()).collect()
}

fn drive(
    model: &'static str,
    front: &'static str,
    batch: usize,
    per_request: impl Fn() -> Duration + Send + Sync,
) -> Cell {
    let n = requests_per_thread();
    let per_request = &per_request;
    let wall = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| scope.spawn(move || (0..n).map(|_| per_request()).collect::<Vec<_>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = wall.elapsed();
    latencies.sort_unstable();
    let rows = (THREADS * n * batch) as f64;
    let cell = Cell {
        model,
        front,
        batch,
        rows_per_sec: rows / wall.as_secs_f64(),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
    };
    println!(
        "serve/{}/{}/batch-{:<4} {:>12.0} rows/s   p50 {:>9.1}µs   p99 {:>9.1}µs",
        cell.model, cell.front, cell.batch, cell.rows_per_sec, cell.p50_us, cell.p99_us
    );
    cell
}

fn bench_model(name: &'static str, model: SavedModel, out: &mut Vec<Cell>) {
    let features = model.features();
    let engine = Engine::new(model, 0);
    let registry = Arc::new(MetricsRegistry::new());
    let http = HttpServer::serve("127.0.0.1:0", router(engine.clone(), registry)).expect("bind");
    let frames = FrameServer::serve("127.0.0.1:0", engine.clone()).expect("bind");
    let http_addr = http.local_addr().to_string();
    let frames_addr = frames.local_addr().to_string();

    for batch in BATCHES {
        let body = http_body(features, batch);
        out.push(drive(name, "http", batch, || {
            let start = Instant::now();
            let (status, _) = request(&http_addr, "POST", "/score", &body).expect("http score");
            assert_eq!(status, 200);
            start.elapsed()
        }));
    }
    for batch in BATCHES {
        let xs = frame_batch(features, batch);
        // One persistent connection per thread, like a real client.
        out.push(drive(name, "frames", batch, || {
            thread_local! {
                static CLIENT: std::cell::RefCell<Option<FrameScoreClient>> =
                    const { std::cell::RefCell::new(None) };
            }
            let xs = xs.clone();
            let addr = frames_addr.clone();
            CLIENT.with(|slot| {
                let mut slot = slot.borrow_mut();
                if slot.is_none() {
                    *slot = Some(FrameScoreClient::connect(&addr).expect("connect"));
                }
                let client = slot.as_mut().expect("client");
                let start = Instant::now();
                let margins = client.score(features as u32, xs).expect("frame score");
                assert_eq!(margins.len(), batch);
                start.elapsed()
            })
        }));
    }
    http.shutdown();
    frames.shutdown();
}

fn main() -> std::io::Result<()> {
    let train = synth::cancer_like(400, 7);
    let linear = SavedModel::Linear(LinearSvm::train(&train, 50.0).expect("train linear"));

    let kernel_train = synth::xor_like(300, 9);
    let params = SvmParams {
        kernel: Kernel::Rbf { gamma: 0.5 },
        ..Default::default()
    };
    let kernel = SavedModel::Kernel(KernelSvm::train(&kernel_train, &params).expect("train rbf"));

    let mut cells = Vec::new();
    bench_model("linear", linear, &mut cells);
    bench_model("kernel-rbf", kernel, &mut cells);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve\",");
    let _ = writeln!(json, "  \"threads\": {THREADS},");
    let _ = writeln!(
        json,
        "  \"requests_per_thread\": {},",
        requests_per_thread()
    );
    let _ = writeln!(json, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"model\": \"{}\", \"front\": \"{}\", \"batch\": {}, \
             \"rows_per_sec\": {:.0}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}}{comma}",
            c.model, c.front, c.batch, c.rows_per_sec, c.p50_us, c.p99_us
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write("BENCH_serve.json", &json)?;
    println!("wrote BENCH_serve.json");
    Ok(())
}
