//! Coordinator scaling: round latency and coordinator CPU as the
//! learner count grows, old (thread-per-connection) versus new
//! (event-loop) transport backend (ISSUE 7 bench).
//!
//! ```text
//! cargo run -p ppml-bench --bin scale_bench --release
//! ```
//!
//! For each backend × m in {8, 32, 64, 128, 256, 512}, the parent
//! process binds a
//! coordinator transport, spawns m echo children (separate OS processes,
//! so the coordinator's CPU is measured alone), and drives R
//! consensus-shaped rounds: broadcast a `Consensus` iterate to every
//! learner, collect one `MaskedShare` from each. Reported per cell:
//! p50/p99 round latency, coordinator CPU milliseconds per round
//! (nanosecond-resolution `sum_exec_runtime` from
//! `/proc/self/task/*/schedstat`, summed over every thread), and the
//! coordinator's thread count mid-run. Results go to stdout and to
//! `BENCH_scale.json` in the working directory.
//!
//! The children always run the event-loop backend, so the only variable
//! across cells is the coordinator's side of the fabric.
//!
//! `PPML_BENCH_QUICK=1` shrinks the grid to m in {8, 32} and fewer
//! rounds for CI smoke runs. `PPML_BENCH_M=64,256` overrides the m grid
//! outright, and `PPML_BENCH_THREADPROF=1` prints a per-thread CPU
//! breakdown of each cell to stderr.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ppml_transport::{
    EventTransport, Message, PartyId, RetryPolicy, TcpTransport, Transport, TransportError,
};

/// The coordinator's party id; children learn it from their argv.
const COORD: PartyId = 10_000;
/// Words per broadcast iterate and per masked share (8 bytes each).
const SHARE_WORDS: usize = 16;

fn quick() -> bool {
    std::env::var_os("PPML_BENCH_QUICK").is_some()
}

fn learner_counts() -> Vec<usize> {
    if let Ok(grid) = std::env::var("PPML_BENCH_M") {
        let m: Vec<usize> = grid
            .split(',')
            .filter_map(|v| v.trim().parse().ok())
            .collect();
        if !m.is_empty() {
            return m;
        }
    }
    if quick() {
        vec![8, 32]
    } else {
        // 8..128 are the required comparison rows; 256 and 512 chart
        // the legacy backend past its breaking point (at 512 it cannot
        // even form the cluster on a small host).
        vec![8, 32, 64, 128, 256, 512]
    }
}

fn rounds() -> usize {
    if quick() {
        15
    } else {
        40
    }
}

/// CPU time this process has consumed, in microseconds.
///
/// Prefers the scheduler's nanosecond-resolution `sum_exec_runtime`
/// (`/proc/self/task/*/schedstat`, summed over every thread — reader
/// threads included, which is the whole point of the comparison); falls
/// back to `utime + stime` jiffies from `/proc/self/stat` where
/// schedstats are compiled out. Returns 0 off Linux — the bench still
/// runs, the CPU column is just meaningless there.
/// Debug aid (`PPML_BENCH_THREADPROF=1`): per-thread (tid, comm,
/// cpu-ns). Keyed by tid — reader-pool threads all share one comm.
fn thread_cpu_snapshot() -> Vec<(u64, String, u64)> {
    let mut out = Vec::new();
    if let Ok(tasks) = std::fs::read_dir("/proc/self/task") {
        for task in tasks.flatten() {
            let Some(tid) = task
                .file_name()
                .to_str()
                .and_then(|v| v.parse::<u64>().ok())
            else {
                continue;
            };
            let comm = std::fs::read_to_string(task.path().join("comm"))
                .unwrap_or_default()
                .trim()
                .to_string();
            let ns = std::fs::read_to_string(task.path().join("schedstat"))
                .ok()
                .and_then(|s| {
                    s.split_whitespace()
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                })
                .unwrap_or(0);
            out.push((tid, comm, ns));
        }
    }
    out
}

fn self_cpu_us() -> u64 {
    if let Ok(tasks) = std::fs::read_dir("/proc/self/task") {
        let mut total_ns: u64 = 0;
        let mut seen = false;
        for task in tasks.flatten() {
            let path = task.path().join("schedstat");
            if let Some(ns) = std::fs::read_to_string(path).ok().and_then(|s| {
                s.split_whitespace()
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
            }) {
                total_ns += ns;
                seen = true;
            }
        }
        if seen {
            return total_ns / 1_000;
        }
    }
    let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else {
        return 0;
    };
    // Fields after the parenthesised comm (which may contain spaces):
    // state is index 0 there, utime is index 11, stime index 12.
    let Some(rest) = stat.rsplit(')').next() else {
        return 0;
    };
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = fields.get(11).and_then(|v| v.parse().ok()).unwrap_or(0);
    let stime: u64 = fields.get(12).and_then(|v| v.parse().ok()).unwrap_or(0);
    (utime + stime) * 10_000
}

/// `Threads:` from `/proc/self/status` (0 off Linux).
fn self_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

/// Echo child: dials the coordinator, answers every `Consensus`
/// broadcast with one `MaskedShare`, exits on `Shutdown` or when the
/// coordinator goes silent.
fn child(party: PartyId, coordinator: SocketAddr) {
    let mut transport = EventTransport::bind(
        party,
        "127.0.0.1:0".parse().expect("loopback"),
        HashMap::from([(COORD, coordinator)]),
        RetryPolicy::tcp_link(),
        Duration::from_secs(5),
    )
    .expect("child bind");
    transport
        .send(COORD, &Message::Heartbeat { nonce: u64::MAX })
        .expect("announce");
    let share = vec![party as u64; SHARE_WORDS];
    loop {
        match transport.recv(Duration::from_secs(60)) {
            Ok(env) => match env.msg {
                Message::Consensus { iteration, .. } => {
                    let reply = Message::MaskedShare {
                        iteration,
                        epoch: 0,
                        party,
                        payload: share.clone(),
                    };
                    if transport.send(COORD, &reply).is_err() {
                        return;
                    }
                }
                Message::Shutdown => return,
                _ => {}
            },
            Err(_) => return,
        }
    }
}

struct Row {
    backend: &'static str,
    m: usize,
    rounds_completed: usize,
    round_ms_p50: f64,
    round_ms_p99: f64,
    coord_cpu_ms_per_round: f64,
    coord_threads: usize,
    ok: bool,
}

fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx].as_nanos() as f64 / 1e6
}

/// The few inherent accessors the phase driver needs on top of the
/// `Transport` trait, present on both backends.
trait CoordinatorSide: Transport {
    fn addr(&self) -> SocketAddr;
    fn connected(&self) -> usize;
}

impl CoordinatorSide for EventTransport {
    fn addr(&self) -> SocketAddr {
        self.local_addr()
    }
    fn connected(&self) -> usize {
        self.connected_parties().len()
    }
}

impl CoordinatorSide for TcpTransport {
    fn addr(&self) -> SocketAddr {
        self.local_addr()
    }
    fn connected(&self) -> usize {
        self.connected_parties().len()
    }
}

/// Drives R rounds against m spawned echo children and tears everything
/// down. A round that cannot complete (send failure or a reply missing
/// past the deadline) ends the phase with `ok: false` — at the biggest
/// m the legacy backend is *expected* to be the one that breaks first.
fn run_phase<T: CoordinatorSide>(
    backend: &'static str,
    mut transport: T,
    m: usize,
    exe: &std::path::Path,
) -> Row {
    let addr = transport.addr();
    let mut children: Vec<Child> = (0..m)
        .map(|party| {
            Command::new(exe)
                .args(["scale-echo", &party.to_string(), &addr.to_string()])
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn echo child")
        })
        .collect();

    let deadline = Instant::now() + Duration::from_secs(60);
    let mut connected = true;
    while transport.connected() < m {
        if Instant::now() >= deadline {
            // The backend could not even form the cluster — the
            // qualitative failure this bench exists to expose. Record
            // the cell as incomplete instead of aborting the sweep.
            eprintln!(
                "scale/{backend}/m={m}: only {}/{m} children connected within 60s",
                transport.connected()
            );
            connected = false;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let coord_threads = self_threads();

    let z: Vec<f64> = (0..SHARE_WORDS).map(|k| k as f64 * 0.5).collect();
    let total = rounds();
    let mut latencies: Vec<Duration> = Vec::with_capacity(total);
    let cpu_before = self_cpu_us();
    let prof_before = thread_cpu_snapshot();
    let mut ok = connected;
    'rounds: for r in 0..(if connected { total } else { 0 }) {
        let start = Instant::now();
        let broadcast = Message::Consensus {
            iteration: r as u64,
            z: z.clone(),
            s: Vec::new(),
            done: false,
        };
        for party in 0..m as PartyId {
            if transport.send(party, &broadcast).is_err() {
                ok = false;
                break 'rounds;
            }
        }
        let mut seen = vec![false; m];
        let mut have = 0usize;
        while have < m {
            match transport.recv(Duration::from_secs(60)) {
                Ok(env) => {
                    if let Message::MaskedShare {
                        iteration, party, ..
                    } = env.msg
                    {
                        let p = party as usize;
                        if iteration == r as u64 && p < m && !seen[p] {
                            seen[p] = true;
                            have += 1;
                        }
                    }
                }
                Err(TransportError::Timeout) | Err(_) => {
                    ok = false;
                    break 'rounds;
                }
            }
        }
        latencies.push(start.elapsed());
    }
    let cpu_after = self_cpu_us();
    if std::env::var("PPML_BENCH_THREADPROF").is_ok() {
        let after = thread_cpu_snapshot();
        let mut rollup: HashMap<&str, (usize, u64)> = HashMap::new();
        for (tid, comm, ns) in &after {
            let before = prof_before
                .iter()
                .find(|(t, _, _)| t == tid)
                .map_or(0, |(_, _, n)| *n);
            let slot = rollup.entry(comm.as_str()).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += ns.saturating_sub(before);
        }
        for (comm, (count, ns)) in rollup {
            eprintln!(
                "threadprof {backend}/m={m}: {comm} x{count} {:.2}ms",
                ns as f64 / 1e6
            );
        }
    }

    for party in 0..m as PartyId {
        let _ = transport.send(party, &Message::Shutdown);
    }
    drop(transport);
    // One global grace window for the whole brood: a cell that failed
    // to form (hundreds of children that never saw Shutdown) must not
    // serialize a per-child timeout.
    let grace = Instant::now() + Duration::from_secs(5);
    for child in &mut children {
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < grace => std::thread::sleep(Duration::from_millis(10)),
                _ => {
                    let _ = child.kill();
                    let _ = child.wait();
                    break;
                }
            }
        }
    }

    latencies.sort_unstable();
    let completed = latencies.len();
    let row = Row {
        backend,
        m,
        rounds_completed: completed,
        round_ms_p50: percentile_ms(&latencies, 0.50),
        round_ms_p99: percentile_ms(&latencies, 0.99),
        coord_cpu_ms_per_round: if completed > 0 {
            (cpu_after.saturating_sub(cpu_before)) as f64 / 1_000.0 / completed as f64
        } else {
            0.0
        },
        coord_threads,
        ok: ok && completed == total,
    };
    println!(
        "scale/{}/m={:<4} rounds {:>3}/{}  p50 {:>8.2}ms  p99 {:>8.2}ms  cpu {:>7.2}ms/round  threads {:>4}  {}",
        row.backend,
        row.m,
        row.rounds_completed,
        total,
        row.round_ms_p50,
        row.round_ms_p99,
        row.coord_cpu_ms_per_round,
        row.coord_threads,
        if row.ok { "ok" } else { "INCOMPLETE" }
    );
    row
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("scale-echo") {
        let party: PartyId = args[2].parse().expect("party");
        let coordinator: SocketAddr = args[3].parse().expect("coordinator addr");
        child(party, coordinator);
        return Ok(());
    }

    let exe = std::env::current_exe().expect("current exe");
    let loopback: SocketAddr = "127.0.0.1:0".parse().expect("loopback");
    let mut rows = Vec::new();
    for &m in &learner_counts() {
        for backend in ["threads", "event"] {
            let row = match backend {
                "threads" => {
                    let t = TcpTransport::bind(
                        COORD,
                        loopback,
                        HashMap::new(),
                        RetryPolicy::tcp_link(),
                        Duration::from_secs(5),
                    )
                    .expect("bind threads coordinator");
                    run_phase("threads", t, m, &exe)
                }
                _ => {
                    let t = EventTransport::bind(
                        COORD,
                        loopback,
                        HashMap::new(),
                        RetryPolicy::tcp_link(),
                        Duration::from_secs(5),
                    )
                    .expect("bind event coordinator");
                    run_phase("event", t, m, &exe)
                }
            };
            rows.push(row);
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"scale\",");
    let _ = writeln!(json, "  \"rounds\": {},", rounds());
    let _ = writeln!(json, "  \"share_bytes\": {},", SHARE_WORDS * 8);
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"backend\": \"{}\", \"m\": {}, \"rounds_completed\": {}, \
             \"round_ms_p50\": {:.3}, \"round_ms_p99\": {:.3}, \
             \"coord_cpu_ms_per_round\": {:.3}, \"coord_threads\": {}, \"ok\": {}}}{comma}",
            r.backend,
            r.m,
            r.rounds_completed,
            r.round_ms_p50,
            r.round_ms_p99,
            r.coord_cpu_ms_per_round,
            r.coord_threads,
            r.ok
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write("BENCH_scale.json", &json)?;
    println!("wrote BENCH_scale.json");
    Ok(())
}
