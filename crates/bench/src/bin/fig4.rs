//! Regenerates the paper's evaluation artifacts (Fig. 4 a–h, the §VI
//! baselines, and the data-locality numbers) as CSV.
//!
//! ```text
//! cargo run -p ppml-bench --bin fig4 --release -- --panel all
//! cargo run -p ppml-bench --bin fig4 --release -- --panel a        # Fig. 4(a)+(e) run
//! cargo run -p ppml-bench --bin fig4 --release -- --panel baseline
//! cargo run -p ppml-bench --bin fig4 --release -- --panel locality
//! PPML_SCALE=full cargo run -p ppml-bench --bin fig4 --release -- --panel all
//! cargo run -p ppml-bench --bin fig4 --release -- --panel a --telemetry fig4.jsonl
//! ```
//!
//! Output goes to stdout and to `results/<panel>.csv`. With
//! `--telemetry PATH` the harness streams structured events (trainer
//! iterations, cluster task attempts, phase timings) as JSONL to `PATH`
//! and prints the summary at exit.

use std::fs;
use std::path::Path;
use std::sync::Arc;

use ppml_bench::{
    panel_to_csv, run_baseline, run_comparison, run_locality, run_panel, ExperimentScale, Panel,
};
use ppml_telemetry::{self as telemetry, FanoutSink, JsonlSink, Sink, SummarySink};

fn usage() -> ! {
    eprintln!(
        "usage: fig4 [--panel <a|b|c|d|e|f|g|h|linear_horizontal|kernel_horizontal|\
         linear_vertical|kernel_vertical|baseline|locality|comparison|all>]\n            \
         [--telemetry EVENTS.jsonl]"
    );
    std::process::exit(2)
}

fn panel_for(arg: &str) -> Option<Panel> {
    match arg {
        "a" | "e" | "linear_horizontal" => Some(Panel::LinearHorizontal),
        "b" | "f" | "kernel_horizontal" => Some(Panel::KernelHorizontal),
        "c" | "g" | "linear_vertical" => Some(Panel::LinearVertical),
        "d" | "h" | "kernel_vertical" => Some(Panel::KernelVertical),
        _ => None,
    }
}

fn write_result(name: &str, contents: &str) -> std::io::Result<()> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{name}.csv")), contents)
}

fn emit_panel(panel: Panel, scale: &ExperimentScale) -> Result<(), Box<dyn std::error::Error>> {
    let (fig_conv, fig_acc) = panel.figures();
    eprintln!(
        "# running {} (Fig. {fig_conv} convergence, Fig. {fig_acc} accuracy)...",
        panel.id()
    );
    let start = std::time::Instant::now();
    let result = run_panel(panel, scale)?;
    let csv = panel_to_csv(&result);
    print!("{csv}");
    write_result(panel.id(), &csv)?;
    for s in &result.series {
        eprintln!(
            "#   {:>7}: Δz² {:.2e} -> {:.2e}, accuracy {:.3} -> {:.3}",
            s.dataset,
            s.z_delta.first().copied().unwrap_or(f64::NAN),
            s.z_delta.last().copied().unwrap_or(f64::NAN),
            s.accuracy.first().copied().unwrap_or(f64::NAN),
            s.accuracy.last().copied().unwrap_or(f64::NAN),
        );
    }
    eprintln!("# {} done in {:.1?}", panel.id(), start.elapsed());
    Ok(())
}

fn emit_baseline(scale: &ExperimentScale) -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("# running centralized baselines (§VI: ≈0.95 / ≈0.70 / ≈0.98)...");
    let rows = run_baseline(scale)?;
    let mut csv = String::from("dataset,centralized_accuracy\n");
    for (name, acc) in &rows {
        csv.push_str(&format!("{name},{acc}\n"));
        eprintln!("#   {name:>7}: {acc:.3}");
    }
    print!("{csv}");
    write_result("baseline", &csv)?;
    Ok(())
}

fn emit_comparison(scale: &ExperimentScale) -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("# running method comparison (E12)...");
    let rows = run_comparison(scale)?;
    let mut csv = String::from(
        "dataset,centralized_linear,centralized_kernel,random_kernel,\
         horizontal_linear,horizontal_kernel,vertical_linear,vertical_kernel\n",
    );
    for r in &rows {
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            r.dataset,
            r.centralized_linear,
            r.centralized_kernel,
            r.random_kernel,
            r.horizontal_linear,
            r.horizontal_kernel,
            r.vertical_linear,
            r.vertical_kernel
        ));
        eprintln!(
            "#   {:>7}: central {:.3}/{:.3}  randkern {:.3}  HL {:.3} HK {:.3} VL {:.3} VK {:.3}",
            r.dataset,
            r.centralized_linear,
            r.centralized_kernel,
            r.random_kernel,
            r.horizontal_linear,
            r.horizontal_kernel,
            r.vertical_linear,
            r.vertical_kernel
        );
    }
    print!("{csv}");
    write_result("comparison", &csv)?;
    Ok(())
}

fn emit_locality(scale: &ExperimentScale) -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("# running data-locality experiment (E11)...");
    let reports = run_locality(scale)?;
    let mut csv = String::from(
        "dataset,raw_bytes,shuffle_bytes_per_iter,broadcast_bytes_per_iter,locality_ratio,task_retries\n",
    );
    for r in &reports {
        csv.push_str(&format!(
            "{},{},{},{},{},{}\n",
            r.dataset,
            r.raw_bytes,
            r.shuffle_bytes_per_iter,
            r.broadcast_bytes_per_iter,
            r.locality_ratio,
            r.task_retries
        ));
        eprintln!(
            "#   {:>7}: raw {} B, shuffle {} B/iter ({}x smaller), locality {:.2}",
            r.dataset,
            r.raw_bytes,
            r.shuffle_bytes_per_iter,
            r.raw_bytes / r.shuffle_bytes_per_iter.max(1),
            r.locality_ratio
        );
    }
    print!("{csv}");
    write_result("locality", &csv)?;
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let mut panel_arg = "all".to_string();
    let mut telemetry_path: Option<String> = None;
    let mut it = args.iter().skip(1);
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else { usage() };
        match flag.as_str() {
            "--panel" => panel_arg = value.clone(),
            "--telemetry" => telemetry_path = Some(value.clone()),
            _ => usage(),
        }
    }
    let summary = match telemetry_path.as_deref() {
        Some(path) => {
            let jsonl = JsonlSink::create(Path::new(path))?;
            let summary = SummarySink::new();
            telemetry::install(FanoutSink::new(vec![
                jsonl as Arc<dyn Sink>,
                summary.clone(),
            ]));
            Some(summary)
        }
        None => None,
    };
    let scale = ExperimentScale::from_env();
    eprintln!(
        "# scale: cancer {} / higgs {} / ocr {}, {} iterations, M = {}",
        scale.cancer_n,
        scale.higgs_n,
        scale.ocr_n,
        scale.iterations,
        ppml_bench::M_LEARNERS
    );
    match panel_arg.as_str() {
        "all" => {
            for p in Panel::ALL {
                emit_panel(p, &scale)?;
            }
            emit_baseline(&scale)?;
            emit_locality(&scale)?;
            emit_comparison(&scale)?;
        }
        "baseline" => emit_baseline(&scale)?,
        "locality" => emit_locality(&scale)?,
        "comparison" => emit_comparison(&scale)?,
        other => match panel_for(other) {
            Some(p) => emit_panel(p, &scale)?,
            None => usage(),
        },
    }
    if let Some(summary) = summary {
        telemetry::uninstall();
        eprint!("{}", summary.render());
        eprintln!(
            "# telemetry written to {}",
            telemetry_path.as_deref().unwrap_or_default()
        );
    }
    Ok(())
}
