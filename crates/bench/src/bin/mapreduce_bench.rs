//! Multi-process MapReduce scheduling: round wall-clock versus worker
//! count with an injected straggler, speculation off versus on
//! (ISSUE 10 bench).
//!
//! ```text
//! cargo run -p ppml-bench --bin mapreduce_bench --release
//! ```
//!
//! For each worker count m, three cells over the CPU-bound `spin` job:
//!
//! * `baseline` — m healthy workers, speculation on at the default
//!   threshold (it should stay close to zero firings — a large count
//!   here means the threshold is mis-tuned, and the column reports it);
//! * `straggler` — the last worker sleeps `STRAGGLER_MS` before every
//!   task, speculation *off*: every round eats the full injected lag;
//! * `speculate` — same straggler, speculation *on*: the scheduler
//!   duplicates the straggling attempt onto a healthy worker and the
//!   round finishes at roughly baseline speed, which is the entire
//!   argument for speculative re-execution.
//!
//! Workers are separate OS processes (the bench re-executes itself with
//! `mr-worker <party> <addr> <m> <blocks> <lag_ms>`), so a straggler
//! sleeps in its own process and the driver's liveness machinery sees
//! the same thing it would in production. Every cell also re-checks the
//! round output against `run_local` — a scheduling bench that returned
//! wrong bytes would be measuring noise.
//!
//! Results go to stdout and `BENCH_mapreduce.json`. `PPML_BENCH_QUICK=1`
//! shrinks the grid for CI smoke runs.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ppml_mapreduce::{
    process_job, run_local, spin_broadcast, TaskPolicy, TaskScheduler, WorkerOptions,
};
use ppml_transport::{Courier, EventTransport, PartyId, RetryPolicy};

const SEED: u64 = 4242;
const STRAGGLER_MS: u64 = 120;
/// Spin rounds per map task — enough CPU per task that scheduling
/// overhead is not the whole measurement.
const SPIN_ROUNDS: u64 = 200;

fn quick() -> bool {
    std::env::var_os("PPML_BENCH_QUICK").is_some()
}

fn worker_counts() -> Vec<usize> {
    if quick() {
        vec![2, 4]
    } else {
        vec![2, 4, 8]
    }
}

fn rounds() -> usize {
    if quick() {
        4
    } else {
        10
    }
}

/// Worker child: serves map tasks until the driver shuts it down.
fn worker(party: usize, driver: SocketAddr, workers: usize, blocks: u64, lag_ms: u64) {
    let transport = EventTransport::bind(
        party as PartyId,
        "127.0.0.1:0".parse().expect("loopback"),
        HashMap::from([(0 as PartyId, driver)]),
        RetryPolicy::tcp_link(),
        Duration::from_secs(5),
    )
    .expect("worker bind");
    let mut courier = Courier::new(transport, RetryPolicy::tcp_default());
    let job = process_job("spin").expect("spin job");
    let resident: Vec<u64> = (0..blocks)
        .filter(|b| 1 + (b % workers as u64) as usize == party)
        .collect();
    let opts = WorkerOptions {
        lag: Duration::from_millis(lag_ms),
        idle_timeout: Duration::from_secs(60),
        ..Default::default()
    };
    ppml_mapreduce::worker::serve(&mut courier, 0, job.as_ref(), SEED, &resident, &opts)
        .expect("worker serve");
}

struct Row {
    cell: &'static str,
    m: usize,
    straggler_ms: u64,
    speculate: bool,
    rounds_completed: usize,
    round_ms_p50: f64,
    round_ms_p99: f64,
    speculations: usize,
    ok: bool,
}

fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx].as_nanos() as f64 / 1e6
}

fn run_cell(
    cell: &'static str,
    m: usize,
    straggler_ms: u64,
    speculate: bool,
    exe: &std::path::Path,
) -> Row {
    let blocks_total = 2 * m as u64;
    let blocks: Vec<u64> = (0..blocks_total).collect();
    let broadcast = spin_broadcast(SPIN_ROUNDS);
    let job = process_job("spin").expect("spin job");
    let reference = run_local(job.as_ref(), SEED, &blocks, &broadcast);

    let transport = EventTransport::bind(
        0,
        "127.0.0.1:0".parse().expect("loopback"),
        HashMap::new(),
        RetryPolicy::tcp_link(),
        Duration::from_secs(5),
    )
    .expect("driver bind");
    let addr = transport.local_addr();
    let mut children: Vec<Child> = (1..=m)
        .map(|party| {
            let lag = if straggler_ms > 0 && party == m {
                straggler_ms
            } else {
                0
            };
            Command::new(exe)
                .args([
                    "mr-worker",
                    &party.to_string(),
                    &addr.to_string(),
                    &m.to_string(),
                    &blocks_total.to_string(),
                    &lag.to_string(),
                ])
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn worker child")
        })
        .collect();

    let courier = Courier::new(transport, RetryPolicy::tcp_default());
    let policy = TaskPolicy {
        speculate,
        // The straggler cells use an aggressive duplication threshold so
        // the injected lag is reliably caught; the baseline keeps the
        // default so its speculation count measures false positives.
        speculation_factor: if straggler_ms > 0 {
            1.5
        } else {
            TaskPolicy::default().speculation_factor
        },
        ..TaskPolicy::default()
    };
    let mut sched = TaskScheduler::new(courier, job, policy);
    sched
        .register_workers(m, Duration::from_secs(30))
        .expect("workers register");

    let total = rounds();
    let mut latencies: Vec<Duration> = Vec::with_capacity(total);
    let mut ok = true;
    for _ in 0..total {
        let start = Instant::now();
        match sched.run_round(&blocks, &broadcast) {
            Ok(out) if out == reference => latencies.push(start.elapsed()),
            Ok(_) => {
                eprintln!("mapreduce/{cell}/m={m}: round output diverged from run_local");
                ok = false;
                break;
            }
            Err(e) => {
                eprintln!("mapreduce/{cell}/m={m}: round failed: {e:?}");
                ok = false;
                break;
            }
        }
    }
    let speculations = sched.metrics.task_speculations;
    sched.shutdown();
    let grace = Instant::now() + Duration::from_secs(5);
    for child in &mut children {
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < grace => std::thread::sleep(Duration::from_millis(10)),
                _ => {
                    let _ = child.kill();
                    let _ = child.wait();
                    break;
                }
            }
        }
    }

    latencies.sort_unstable();
    let row = Row {
        cell,
        m,
        straggler_ms,
        speculate,
        rounds_completed: latencies.len(),
        round_ms_p50: percentile_ms(&latencies, 0.50),
        round_ms_p99: percentile_ms(&latencies, 0.99),
        speculations,
        ok: ok && latencies.len() == total,
    };
    println!(
        "mapreduce/{:<9}/m={:<2} rounds {:>2}/{}  p50 {:>8.2}ms  p99 {:>8.2}ms  speculations {:>2}  {}",
        row.cell,
        row.m,
        row.rounds_completed,
        total,
        row.round_ms_p50,
        row.round_ms_p99,
        row.speculations,
        if row.ok { "ok" } else { "INCOMPLETE" }
    );
    row
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("mr-worker") {
        let party: usize = args[2].parse().expect("party");
        let driver: SocketAddr = args[3].parse().expect("driver addr");
        let m: usize = args[4].parse().expect("worker count");
        let blocks: u64 = args[5].parse().expect("block count");
        let lag_ms: u64 = args[6].parse().expect("lag ms");
        worker(party, driver, m, blocks, lag_ms);
        return Ok(());
    }

    let exe = std::env::current_exe().expect("current exe");
    let mut rows = Vec::new();
    for &m in &worker_counts() {
        rows.push(run_cell("baseline", m, 0, true, &exe));
        rows.push(run_cell("straggler", m, STRAGGLER_MS, false, &exe));
        rows.push(run_cell("speculate", m, STRAGGLER_MS, true, &exe));
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"mapreduce\",");
    let _ = writeln!(json, "  \"rounds\": {},", rounds());
    let _ = writeln!(json, "  \"spin_rounds\": {SPIN_ROUNDS},");
    let _ = writeln!(json, "  \"straggler_ms\": {STRAGGLER_MS},");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"cell\": \"{}\", \"m\": {}, \"straggler_ms\": {}, \"speculate\": {}, \
             \"rounds_completed\": {}, \"round_ms_p50\": {:.3}, \"round_ms_p99\": {:.3}, \
             \"speculations\": {}, \"ok\": {}}}{comma}",
            r.cell,
            r.m,
            r.straggler_ms,
            r.speculate,
            r.rounds_completed,
            r.round_ms_p50,
            r.round_ms_p99,
            r.speculations,
            r.ok
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write("BENCH_mapreduce.json", &json)?;
    println!("wrote BENCH_mapreduce.json");
    Ok(())
}
