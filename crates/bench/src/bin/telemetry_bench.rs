//! Measures what telemetry costs the hot path — the "free when off"
//! claim, quantified — plus the latency of rendering the Prometheus
//! exposition.
//!
//! ```text
//! cargo run -p ppml-bench --bin telemetry_bench --release
//! ```
//!
//! Four cases, each timed over a batch of representative events (the mix
//! a distributed round actually produces — frames, round opens/closes,
//! ADMM residuals, phase spans):
//!
//! - `emit_disabled` — no sink installed; the per-event cost is one
//!   relaxed atomic load and a branch.
//! - `emit_metrics_sink` — the live [`MetricsSink`] registry: atomics
//!   only, no allocation, what `--metrics-addr` pays.
//! - `emit_jsonl_sink` — full JSONL serialization to a file, what
//!   `--telemetry` pays.
//! - `render_exposition` — one render of a populated registry to
//!   Prometheus text, what each scrape pays.
//!
//! One-line medians go to stdout; machine-readable results are written to
//! `BENCH_telemetry.json` in the working directory.

use std::fmt::Write as _;
use std::sync::Arc;

use ppml_bench::timing::{bench, FAST_SAMPLES};
use ppml_telemetry::{self as telemetry, Event, EventKind, MetricsRegistry, MetricsSink};

/// Events per timed batch: large enough that the per-event figure is not
/// dominated by loop overhead, small enough that a JSONL batch stays in
/// page cache.
const BATCH: usize = 10_000;

/// The event mix of one distributed round, repeated to fill a batch.
fn round_mix() -> Vec<EventKind> {
    vec![
        EventKind::FrameSent {
            to: 3,
            bytes: 512,
            retransmit: false,
        },
        EventKind::FrameRecv { from: 3, bytes: 96 },
        EventKind::RoundOpen {
            iteration: 7,
            epoch: 0,
        },
        EventKind::AdmmIteration {
            iteration: 7,
            primal_sq: 1.25e-3,
            dual_sq: 8.0e-4,
            z_delta: 3.0e-5,
            objective: Some(41.5),
        },
        EventKind::PhaseElapsed {
            phase: "collect",
            elapsed_ns: 840_000,
        },
        EventKind::RoundClose {
            iteration: 7,
            epoch: 0,
            shares: 3,
            elapsed_ns: 910_000,
        },
    ]
}

fn emit_batch(mix: &[EventKind]) {
    for i in 0..BATCH {
        telemetry::emit(0, mix[i % mix.len()]);
    }
}

struct Case {
    name: &'static str,
    median_ns_per_event: f64,
}

fn main() -> std::io::Result<()> {
    let mix = round_mix();
    let mut cases = Vec::new();
    let per_event = |d: std::time::Duration| d.as_nanos() as f64 / BATCH as f64;

    // The sink slot is process-global, so the cases run strictly one
    // after another: off → metrics → jsonl.
    telemetry::uninstall();
    cases.push(Case {
        name: "emit_disabled",
        median_ns_per_event: per_event(bench(
            "telemetry/emit/disabled (batch of 10k)",
            FAST_SAMPLES,
            || emit_batch(&mix),
        )),
    });

    let metrics: Arc<MetricsSink> = MetricsSink::new();
    telemetry::install(metrics);
    cases.push(Case {
        name: "emit_metrics_sink",
        median_ns_per_event: per_event(bench(
            "telemetry/emit/metrics-sink (batch of 10k)",
            FAST_SAMPLES,
            || emit_batch(&mix),
        )),
    });
    telemetry::uninstall();

    let jsonl_path =
        std::env::temp_dir().join(format!("ppml-telemetry-bench-{}.jsonl", std::process::id()));
    let jsonl = telemetry::JsonlSink::create(&jsonl_path)?;
    telemetry::install(jsonl);
    cases.push(Case {
        name: "emit_jsonl_sink",
        median_ns_per_event: per_event(bench(
            "telemetry/emit/jsonl-sink (batch of 10k)",
            FAST_SAMPLES,
            || emit_batch(&mix),
        )),
    });
    telemetry::uninstall();
    let _ = std::fs::remove_file(&jsonl_path);

    // Exposition render over a registry populated with the same mix.
    let registry = MetricsRegistry::new();
    for i in 0..BATCH {
        registry.record(Event {
            t_ns: i as u64,
            party: 0,
            kind: mix[i % mix.len()],
        });
    }
    let render_median = bench("telemetry/render-exposition", FAST_SAMPLES, || {
        registry.render().len()
    });
    let render_ns = render_median.as_nanos() as f64;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"telemetry\",");
    let _ = writeln!(json, "  \"samples\": {FAST_SAMPLES},");
    let _ = writeln!(json, "  \"events_per_batch\": {BATCH},");
    let _ = writeln!(json, "  \"emit_ns_per_event\": {{");
    for (i, case) in cases.iter().enumerate() {
        let comma = if i + 1 < cases.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{}\": {:.2}{comma}",
            case.name, case.median_ns_per_event
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"render_exposition_ns\": {render_ns:.0}");
    json.push_str("}\n");
    std::fs::write("BENCH_telemetry.json", &json)?;
    println!("wrote BENCH_telemetry.json");
    Ok(())
}
