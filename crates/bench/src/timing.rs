//! A tiny wall-clock measurement harness for the `benches/` binaries.
//!
//! The workspace previously used `criterion`, which the offline build
//! cannot resolve. These benches only need honest medians printed to
//! stdout — run once to warm up, time `samples` runs, report
//! median/min/max. Output is one line per case, grep-friendly:
//!
//! ```text
//! securesum/pairwise-masking/256        median 12.84µs  min 12.31µs  max 14.02µs  (n=50)
//! ```

use std::time::{Duration, Instant};

/// Samples per case for fast (microsecond-scale) workloads.
pub const FAST_SAMPLES: usize = 50;
/// Samples per case for slow (whole-training-run) workloads.
pub const SLOW_SAMPLES: usize = 10;

/// Times `f` over `samples` runs (after one untimed warm-up) and prints a
/// one-line report labelled `name`. Returns the median.
pub fn bench<T>(name: &str, samples: usize, mut f: impl FnMut() -> T) -> Duration {
    std::hint::black_box(f()); // warm-up: page in data, fill caches
    let mut times: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    let median = times[times.len() / 2];
    println!(
        "{name:<44} median {:>10}  min {:>10}  max {:>10}  (n={})",
        fmt(median),
        fmt(times[0]),
        fmt(*times.last().expect("non-empty")),
        times.len(),
    );
    median
}

fn fmt(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.2}µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2}s", nanos as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_a_plausible_median() {
        let m = bench("noop", 5, || 1 + 1);
        assert!(m < Duration::from_millis(100));
    }

    #[test]
    fn fmt_scales_units() {
        assert_eq!(fmt(Duration::from_nanos(12)), "12ns");
        assert_eq!(fmt(Duration::from_micros(12)), "12.00µs");
        assert_eq!(fmt(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt(Duration::from_secs(12)), "12.00s");
    }
}
