//! Experiment harness regenerating the paper's evaluation (§VI).
//!
//! Fig. 4 has eight panels — `‖z^{t+1} − z^t‖²` and correct-classification
//! ratio, for {linear, nonlinear} × {horizontal, vertical}, each over the
//! three datasets — plus the §VI centralized baselines. Every one maps to a
//! [`Panel`] here; the `fig4` binary renders them as CSV, and
//! `EXPERIMENTS.md` records paper-vs-measured values.
//!
//! Scales: the paper uses breast-cancer (569), HIGGS (11 000 of 11M) and
//! optdigits (5 620). [`ExperimentScale::default`] shrinks HIGGS/OCR so a
//! full Fig. 4 regeneration finishes in minutes on a laptop;
//! `PPML_SCALE=full` reproduces the paper's sizes, `PPML_SCALE=quick` is
//! for smoke tests. Convergence *shape* is scale-invariant — that is what
//! the reproduction is judged on.

#![forbid(unsafe_code)]
pub mod timing;

use ppml_core::jobs::{train_linear_on_cluster, ClusterTuning};
use ppml_core::{
    AdmmConfig, HorizontalKernelSvm, HorizontalLinearSvm, VerticalKernelSvm, VerticalLinearSvm,
};
use ppml_data::{synth, Dataset, Partition};
use ppml_kernel::Kernel;
use ppml_svm::{KernelSvm, SvmParams};

/// The three evaluation datasets of §VI (synthetic stand-ins; see
/// `ppml_data::synth`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Breast-cancer stand-in: 9 features, easy (~95 %).
    Cancer,
    /// HIGGS stand-in: 28 features, hard (~70 %).
    Higgs,
    /// Optdigits stand-in: 64 correlated features, easy (~98 %).
    Ocr,
}

impl DatasetKind {
    /// All three, in the paper's plotting order.
    pub const ALL: [DatasetKind; 3] = [DatasetKind::Ocr, DatasetKind::Cancer, DatasetKind::Higgs];

    /// Label used in figures.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Cancer => "cancer",
            DatasetKind::Higgs => "higgs",
            DatasetKind::Ocr => "ocr",
        }
    }

    /// Generates the dataset at size `n`.
    pub fn generate(self, n: usize, seed: u64) -> Dataset {
        match self {
            DatasetKind::Cancer => synth::cancer_like(n, seed),
            DatasetKind::Higgs => synth::higgs_like(n, seed),
            DatasetKind::Ocr => synth::ocr_like(n, seed),
        }
    }

    /// An RBF bandwidth that works across the dataset's dimensionality
    /// (γ ≈ 1/k, the common median-heuristic ballpark).
    pub fn rbf(self) -> Kernel {
        let gamma = match self {
            DatasetKind::Cancer => 1.0 / 9.0,
            DatasetKind::Higgs => 1.0 / 28.0,
            DatasetKind::Ocr => 1.0 / 64.0,
        };
        Kernel::Rbf { gamma }
    }
}

/// Dataset sizes and iteration budget for one harness run.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Samples drawn for the cancer stand-in.
    pub cancer_n: usize,
    /// Samples drawn for the HIGGS stand-in.
    pub higgs_n: usize,
    /// Samples drawn for the OCR stand-in.
    pub ocr_n: usize,
    /// ADMM iterations (the paper plots 100).
    pub iterations: usize,
    /// Test samples used for per-iteration accuracy (kernel evaluation per
    /// iteration is quadratic; the curve shape needs only a few hundred).
    pub eval_subsample: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExperimentScale {
    /// Laptop scale: paper-sized cancer, shrunk HIGGS/OCR.
    fn default() -> Self {
        ExperimentScale {
            cancer_n: 569,
            higgs_n: 2000,
            ocr_n: 1200,
            iterations: 100,
            eval_subsample: 300,
            seed: 2015,
        }
    }
}

impl ExperimentScale {
    /// The paper's sizes (§VI): 569 / 11 000 / 5 620, 100 iterations.
    pub fn full() -> Self {
        ExperimentScale {
            cancer_n: 569,
            higgs_n: 11_000,
            ocr_n: 5_620,
            ..Default::default()
        }
    }

    /// Smoke-test scale for CI and the timed bench binaries.
    pub fn quick() -> Self {
        ExperimentScale {
            cancer_n: 160,
            higgs_n: 200,
            ocr_n: 160,
            iterations: 15,
            eval_subsample: 80,
            seed: 2015,
        }
    }

    /// Reads `PPML_SCALE` (`quick` | `default` | `full`) from the
    /// environment.
    pub fn from_env() -> Self {
        match std::env::var("PPML_SCALE").as_deref() {
            Ok("full") => Self::full(),
            Ok("quick") => Self::quick(),
            _ => Self::default(),
        }
    }

    fn n_for(&self, kind: DatasetKind) -> usize {
        match kind {
            DatasetKind::Cancer => self.cancer_n,
            DatasetKind::Higgs => self.higgs_n,
            DatasetKind::Ocr => self.ocr_n,
        }
    }
}

/// The paper's figure panels (plus the §VI baseline row and the locality
/// experiment, which the paper argues in prose).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Panel {
    /// Fig. 4(a)/(e): linear, horizontal.
    LinearHorizontal,
    /// Fig. 4(b)/(f): nonlinear, horizontal.
    KernelHorizontal,
    /// Fig. 4(c)/(g): linear, vertical.
    LinearVertical,
    /// Fig. 4(d)/(h): nonlinear, vertical.
    KernelVertical,
}

impl Panel {
    /// All four trainer panels.
    pub const ALL: [Panel; 4] = [
        Panel::LinearHorizontal,
        Panel::KernelHorizontal,
        Panel::LinearVertical,
        Panel::KernelVertical,
    ];

    /// Which Fig. 4 sub-figures this run regenerates.
    pub fn figures(self) -> (&'static str, &'static str) {
        match self {
            Panel::LinearHorizontal => ("4a", "4e"),
            Panel::KernelHorizontal => ("4b", "4f"),
            Panel::LinearVertical => ("4c", "4g"),
            Panel::KernelVertical => ("4d", "4h"),
        }
    }

    /// Short id used in CSV filenames.
    pub fn id(self) -> &'static str {
        match self {
            Panel::LinearHorizontal => "linear_horizontal",
            Panel::KernelHorizontal => "kernel_horizontal",
            Panel::LinearVertical => "linear_vertical",
            Panel::KernelVertical => "kernel_vertical",
        }
    }
}

/// One convergence curve: a dataset's trace under one trainer.
#[derive(Debug, Clone)]
pub struct PanelSeries {
    /// Dataset label.
    pub dataset: &'static str,
    /// `‖z^{t+1} − z^t‖²` per iteration.
    pub z_delta: Vec<f64>,
    /// Test accuracy per iteration.
    pub accuracy: Vec<f64>,
}

/// All three curves of one panel.
#[derive(Debug, Clone)]
pub struct PanelResult {
    /// The panel that was run.
    pub panel: Panel,
    /// One series per dataset, in [`DatasetKind::ALL`] order.
    pub series: Vec<PanelSeries>,
}

/// The paper's shared evaluation parameters: `M = 4`, `C = 50`, `ρ = 100`,
/// 50/50 split.
pub const M_LEARNERS: usize = 4;

fn admm_config(scale: &ExperimentScale, kind: DatasetKind) -> AdmmConfig {
    // Landmarks are subsampled from learner 0's rows; cap them so even the
    // quick scale (tens of rows per learner) stays feasible.
    let per_learner = scale.n_for(kind) / 2 / M_LEARNERS;
    let landmarks = (per_learner / 2).clamp(3, 30);
    AdmmConfig::default()
        .with_max_iter(scale.iterations)
        .with_kernel(kind.rbf())
        .with_landmarks(landmarks)
        .with_seed(scale.seed)
}

fn prepare(
    scale: &ExperimentScale,
    kind: DatasetKind,
) -> Result<(Dataset, Dataset, Dataset), ppml_data::DataError> {
    let ds = kind.generate(scale.n_for(kind), scale.seed);
    let (train, test) = ds.split(0.5, scale.seed ^ 0x51)?;
    let eval = if test.len() > scale.eval_subsample {
        test.select(&(0..scale.eval_subsample).collect::<Vec<_>>())
    } else {
        test.clone()
    };
    Ok((train, test, eval))
}

/// Runs one panel over the three datasets.
///
/// # Errors
///
/// Any trainer/data error, boxed.
pub fn run_panel(
    panel: Panel,
    scale: &ExperimentScale,
) -> Result<PanelResult, Box<dyn std::error::Error>> {
    let mut series = Vec::new();
    for kind in DatasetKind::ALL {
        let (train, _test, eval) = prepare(scale, kind)?;
        let cfg = admm_config(scale, kind);
        let history = match panel {
            Panel::LinearHorizontal => {
                let parts = Partition::horizontal(&train, M_LEARNERS, scale.seed)?;
                HorizontalLinearSvm::train(&parts, &cfg, Some(&eval))?.history
            }
            Panel::KernelHorizontal => {
                let parts = Partition::horizontal(&train, M_LEARNERS, scale.seed)?;
                HorizontalKernelSvm::train(&parts, &cfg, Some(&eval))?.history
            }
            Panel::LinearVertical => {
                let view = Partition::vertical(&train, M_LEARNERS, scale.seed)?;
                VerticalLinearSvm::train(&view, &cfg, Some(&eval))?.history
            }
            Panel::KernelVertical => {
                let view = Partition::vertical(&train, M_LEARNERS, scale.seed)?;
                // Paper-scale N makes the exact N×N per-node Gram operator
                // prohibitive; switch to the Nyström factor (see DESIGN.md).
                let cfg = if train.len() > 2000 {
                    cfg.with_nystrom(300)
                } else {
                    cfg
                };
                VerticalKernelSvm::train(&view, &cfg, Some(&eval))?.history
            }
        };
        series.push(PanelSeries {
            dataset: kind.name(),
            z_delta: history.z_delta,
            accuracy: history.accuracy,
        });
    }
    Ok(PanelResult { panel, series })
}

/// Caps a baseline training set: SMO at the paper's `C = 50` needs a
/// super-linear iteration budget in `n` (≈2M pair updates at `n = 5500`),
/// while its accuracy saturates by ~2 000 samples — so the centralized
/// baseline trains on at most that many rows. The distributed trainers
/// always use the full partitioned data.
fn baseline_train(train: &Dataset) -> Dataset {
    const CAP: usize = 2000;
    if train.len() > CAP {
        train.select(&(0..CAP).collect::<Vec<_>>())
    } else {
        train.clone()
    }
}

/// §VI's centralized baseline row: accuracy of the plain SVM per dataset.
///
/// # Errors
///
/// Any trainer/data error, boxed.
pub fn run_baseline(
    scale: &ExperimentScale,
) -> Result<Vec<(&'static str, f64)>, Box<dyn std::error::Error>> {
    let mut out = Vec::new();
    for kind in DatasetKind::ALL {
        let (train, test, _) = prepare(scale, kind)?;
        let model = KernelSvm::train(&baseline_train(&train), &SvmParams::default())?;
        out.push((kind.name(), model.accuracy(&test)));
    }
    Ok(out)
}

/// One row of the method-comparison table (E12): every trainer and
/// baseline on one dataset, final test accuracy.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Dataset label.
    pub dataset: &'static str,
    /// Centralized linear SVM (§VI's benchmark).
    pub centralized_linear: f64,
    /// Centralized RBF-kernel SVM.
    pub centralized_kernel: f64,
    /// The §II related-work baseline (Mangasarian-style random kernel).
    pub random_kernel: f64,
    /// Horizontal linear consensus trainer.
    pub horizontal_linear: f64,
    /// Horizontal kernel consensus trainer.
    pub horizontal_kernel: f64,
    /// Vertical linear trainer.
    pub vertical_linear: f64,
    /// Vertical kernel trainer.
    pub vertical_kernel: f64,
}

/// E12: accuracy of every method on every dataset — the summary comparison
/// the paper argues in prose (privacy costs almost no accuracy).
///
/// # Errors
///
/// Any trainer/data error, boxed.
pub fn run_comparison(
    scale: &ExperimentScale,
) -> Result<Vec<ComparisonRow>, Box<dyn std::error::Error>> {
    let mut rows = Vec::new();
    for kind in DatasetKind::ALL {
        let (train, test, _) = prepare(scale, kind)?;
        let cfg = admm_config(scale, kind);
        let btrain = baseline_train(&train);
        let central_linear = ppml_svm::LinearSvm::train(&btrain, cfg.c)?.accuracy(&test);
        let central_kernel = KernelSvm::train(
            &btrain,
            &SvmParams {
                kernel: kind.rbf(),
                ..Default::default()
            },
        )?
        .accuracy(&test);
        let random_kernel = ppml_svm::RandomKernelSvm::train(
            &btrain,
            kind.rbf(),
            30.min(btrain.len()),
            cfg.c,
            scale.seed,
        )?
        .accuracy(&test);
        let hparts = Partition::horizontal(&train, M_LEARNERS, scale.seed)?;
        let hl = HorizontalLinearSvm::train(&hparts, &cfg, None)?
            .model
            .accuracy(&test);
        let hk = HorizontalKernelSvm::train(&hparts, &cfg, None)?
            .model
            .accuracy(&test);
        let view = Partition::vertical(&train, M_LEARNERS, scale.seed)?;
        let vl = VerticalLinearSvm::train(&view, &cfg, None)?
            .model
            .accuracy(&test);
        let vk = VerticalKernelSvm::train(&view, &cfg, None)?
            .model
            .accuracy(&test);
        rows.push(ComparisonRow {
            dataset: kind.name(),
            centralized_linear: central_linear,
            centralized_kernel: central_kernel,
            random_kernel,
            horizontal_linear: hl,
            horizontal_kernel: hk,
            vertical_linear: vl,
            vertical_kernel: vk,
        });
    }
    Ok(rows)
}

/// Summary of the E11 data-locality experiment.
#[derive(Debug, Clone)]
pub struct LocalityReport {
    /// Dataset label.
    pub dataset: &'static str,
    /// Bytes of raw training data (which never move).
    pub raw_bytes: usize,
    /// Bytes of shuffle traffic per iteration.
    pub shuffle_bytes_per_iter: usize,
    /// Bytes of broadcast traffic per iteration.
    pub broadcast_bytes_per_iter: usize,
    /// Fraction of map tasks that ran data-local.
    pub locality_ratio: f64,
    /// Map attempts retried due to (injected or real) failures.
    pub task_retries: usize,
}

/// E11: drives the linear trainer on the MapReduce cluster and reports the
/// network traffic relative to the raw data size.
///
/// # Errors
///
/// Any trainer/data error, boxed.
pub fn run_locality(
    scale: &ExperimentScale,
) -> Result<Vec<LocalityReport>, Box<dyn std::error::Error>> {
    let mut out = Vec::new();
    for kind in DatasetKind::ALL {
        let (train, _, _) = prepare(scale, kind)?;
        let parts = Partition::horizontal(&train, M_LEARNERS, scale.seed)?;
        let cfg = admm_config(scale, kind).with_max_iter(scale.iterations.min(20));
        let (_, metrics) = train_linear_on_cluster(&parts, &cfg, None, ClusterTuning::default())?;
        let iters = metrics.iterations.max(1);
        out.push(LocalityReport {
            dataset: kind.name(),
            raw_bytes: 8 * train.len() * (train.features() + 1),
            shuffle_bytes_per_iter: metrics.bytes_shuffled / iters,
            broadcast_bytes_per_iter: metrics.bytes_broadcast / iters,
            locality_ratio: metrics.locality_ratio(),
            task_retries: metrics.task_retries,
        });
    }
    Ok(out)
}

/// Renders a panel as CSV: `dataset,iteration,z_delta,accuracy`.
pub fn panel_to_csv(result: &PanelResult) -> String {
    let mut out = String::from("dataset,iteration,z_delta,accuracy\n");
    for s in &result.series {
        for (i, d) in s.z_delta.iter().enumerate() {
            let acc = s.accuracy.get(i).copied().unwrap_or(f64::NAN);
            out.push_str(&format!("{},{},{:e},{}\n", s.dataset, i + 1, d, acc));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_panel_runs_and_converges() {
        let scale = ExperimentScale::quick();
        let result = run_panel(Panel::LinearHorizontal, &scale).unwrap();
        assert_eq!(result.series.len(), 3);
        for s in &result.series {
            assert_eq!(s.z_delta.len(), scale.iterations);
            assert_eq!(s.accuracy.len(), scale.iterations);
            // Movement must shrink substantially over the run.
            assert!(
                s.z_delta.last().unwrap() < &(s.z_delta[0] * 0.5 + 1e-12),
                "{}: {:?}",
                s.dataset,
                &s.z_delta[..3]
            );
        }
    }

    #[test]
    fn baseline_orders_datasets_by_difficulty() {
        let scale = ExperimentScale::quick();
        let rows = run_baseline(&scale).unwrap();
        let acc = |name: &str| rows.iter().find(|(n, _)| *n == name).unwrap().1;
        assert!(acc("higgs") < acc("cancer"));
        assert!(acc("higgs") < acc("ocr"));
    }

    #[test]
    fn locality_report_shows_data_staying_put() {
        let scale = ExperimentScale::quick();
        let reports = run_locality(&scale).unwrap();
        for r in reports {
            assert_eq!(
                r.locality_ratio, 1.0,
                "{}: remote reads happened",
                r.dataset
            );
            assert!(r.raw_bytes > 0);
            assert!(r.shuffle_bytes_per_iter > 0);
        }
    }

    #[test]
    fn comparison_table_is_complete_and_sane() {
        let scale = ExperimentScale::quick();
        let rows = run_comparison(&scale).unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            for acc in [
                r.centralized_linear,
                r.centralized_kernel,
                r.random_kernel,
                r.horizontal_linear,
                r.horizontal_kernel,
                r.vertical_linear,
                r.vertical_kernel,
            ] {
                assert!((0.4..=1.0).contains(&acc), "{}: {acc}", r.dataset);
            }
        }
    }

    #[test]
    fn csv_rendering_has_all_rows() {
        let scale = ExperimentScale::quick();
        let result = run_panel(Panel::LinearHorizontal, &scale).unwrap();
        let csv = panel_to_csv(&result);
        assert_eq!(csv.lines().count(), 1 + 3 * scale.iterations);
        assert!(csv.starts_with("dataset,iteration,"));
    }

    #[test]
    fn scale_env_parsing() {
        // from_env only reads the var; exercise the constructors directly.
        assert!(ExperimentScale::full().higgs_n > ExperimentScale::default().higgs_n);
        assert!(ExperimentScale::quick().iterations < ExperimentScale::default().iterations);
    }
}
