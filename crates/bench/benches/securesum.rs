//! E10: cost of the secure-summation backends at the Reduce step.
//!
//! Quantifies the paper's claim that its masking protocol keeps
//! "cryptographic operations … minimized": pairwise masking and additive
//! sharing cost microseconds per aggregation, the homomorphic (Paillier)
//! baseline costs milliseconds — three to four orders of magnitude.

use ppml_bench::timing::{bench, FAST_SAMPLES, SLOW_SAMPLES};
use ppml_crypto::{AdditiveSharing, PaillierAggregation, PairwiseMasking, PlainSum, SecureSum};

fn inputs(parties: usize, len: usize) -> Vec<Vec<f64>> {
    (0..parties)
        .map(|p| {
            (0..len)
                .map(|i| ((p * len + i) as f64 * 0.7).sin())
                .collect()
        })
        .collect()
}

fn main() {
    for &len in &[16usize, 256] {
        let data = inputs(4, len);
        bench(&format!("securesum/plain/{len}"), FAST_SAMPLES, || {
            PlainSum.aggregate(&data).unwrap()
        });
        let masking = PairwiseMasking::new(7);
        bench(
            &format!("securesum/pairwise-masking/{len}"),
            FAST_SAMPLES,
            || masking.aggregate(&data).unwrap(),
        );
        let sharing = AdditiveSharing::new(7);
        bench(
            &format!("securesum/additive-sharing/{len}"),
            FAST_SAMPLES,
            || sharing.aggregate(&data).unwrap(),
        );
    }
    // Paillier is orders of magnitude slower; bench a short vector only.
    let paillier = PaillierAggregation::keygen(256, 7).expect("keygen");
    let data = inputs(4, 16);
    bench("securesum/paillier/16", SLOW_SAMPLES, || {
        paillier.aggregate(&data).unwrap()
    });

    for &parties in &[2usize, 4, 8, 16] {
        let data = inputs(parties, 64);
        let masking = PairwiseMasking::new(5);
        bench(
            &format!("securesum_parties/pairwise-masking/{parties}"),
            FAST_SAMPLES,
            || masking.aggregate(&data).unwrap(),
        );
    }
}
