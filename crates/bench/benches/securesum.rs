//! E10: cost of the secure-summation backends at the Reduce step.
//!
//! Quantifies the paper's claim that its masking protocol keeps
//! "cryptographic operations … minimized": pairwise masking and additive
//! sharing cost microseconds per aggregation, the homomorphic (Paillier)
//! baseline costs milliseconds — three to four orders of magnitude.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppml_crypto::{AdditiveSharing, PairwiseMasking, PaillierAggregation, PlainSum, SecureSum};

fn inputs(parties: usize, len: usize) -> Vec<Vec<f64>> {
    (0..parties)
        .map(|p| (0..len).map(|i| ((p * len + i) as f64 * 0.7).sin()).collect())
        .collect()
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("securesum");
    for &len in &[16usize, 256] {
        let data = inputs(4, len);
        group.bench_with_input(BenchmarkId::new("plain", len), &data, |b, d| {
            b.iter(|| PlainSum.aggregate(d).unwrap())
        });
        let masking = PairwiseMasking::new(7);
        group.bench_with_input(BenchmarkId::new("pairwise-masking", len), &data, |b, d| {
            b.iter(|| masking.aggregate(d).unwrap())
        });
        let sharing = AdditiveSharing::new(7);
        group.bench_with_input(BenchmarkId::new("additive-sharing", len), &data, |b, d| {
            b.iter(|| sharing.aggregate(d).unwrap())
        });
    }
    // Paillier is orders of magnitude slower; bench a short vector only.
    let paillier = PaillierAggregation::keygen(256, 7).expect("keygen");
    let data = inputs(4, 16);
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("paillier", 16), &data, |b, d| {
        b.iter(|| paillier.aggregate(d).unwrap())
    });
    group.finish();
}

fn bench_party_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("securesum_parties");
    for &parties in &[2usize, 4, 8, 16] {
        let data = inputs(parties, 64);
        let masking = PairwiseMasking::new(5);
        group.bench_with_input(
            BenchmarkId::new("pairwise-masking", parties),
            &data,
            |b, d| b.iter(|| masking.aggregate(d).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_protocols, bench_party_scaling);
criterion_main!(benches);
