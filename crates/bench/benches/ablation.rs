//! Ablations over the design choices DESIGN.md calls out:
//!
//! * `ρ` — the paper's §VI discussion: high `ρ` privileges consensus speed
//!   over the max-margin property;
//! * landmark count `l` — quality/cost of the reduced consensus space;
//! * learner count `M` — scaling the collaboration.
//!
//! Criterion reports time; the accompanying accuracy numbers are printed by
//! the `fig4` binary runs recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppml_core::{AdmmConfig, HorizontalKernelSvm, HorizontalLinearSvm};
use ppml_data::{synth, Partition};
use ppml_kernel::Kernel;

fn bench_rho(c: &mut Criterion) {
    let ds = synth::cancer_like(240, 3);
    let parts = Partition::horizontal(&ds, 4, 1).expect("partition");
    let mut group = c.benchmark_group("ablation_rho");
    group.sample_size(10);
    for &rho in &[1.0f64, 10.0, 100.0] {
        // Time to drive Δz² below 1e-5 (capped at 200 iterations).
        let cfg = AdmmConfig::default()
            .with_rho(rho)
            .with_max_iter(200)
            .with_tol(1e-5);
        group.bench_with_input(BenchmarkId::from_parameter(rho), &cfg, |b, cfg| {
            b.iter(|| HorizontalLinearSvm::train(&parts, cfg, None).unwrap())
        });
    }
    group.finish();
}

fn bench_landmarks(c: &mut Criterion) {
    let ds = synth::xor_like(240, 5);
    let parts = Partition::horizontal(&ds, 4, 1).expect("partition");
    let mut group = c.benchmark_group("ablation_landmarks");
    group.sample_size(10);
    for &l in &[5usize, 15, 40] {
        let cfg = AdmmConfig::default()
            .with_kernel(Kernel::Rbf { gamma: 0.5 })
            .with_landmarks(l)
            .with_max_iter(20);
        group.bench_with_input(BenchmarkId::from_parameter(l), &cfg, |b, cfg| {
            b.iter(|| HorizontalKernelSvm::train(&parts, cfg, None).unwrap())
        });
    }
    group.finish();
}

fn bench_learner_count(c: &mut Criterion) {
    let ds = synth::cancer_like(320, 3);
    let mut group = c.benchmark_group("ablation_learners");
    group.sample_size(10);
    for &m in &[2usize, 4, 8, 16] {
        let parts = Partition::horizontal(&ds, m, 1).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(20);
        group.bench_with_input(BenchmarkId::from_parameter(m), &parts, |b, p| {
            b.iter(|| HorizontalLinearSvm::train(p, &cfg, None).unwrap())
        });
    }
    group.finish();
}

fn bench_nystrom(c: &mut Criterion) {
    use ppml_core::VerticalKernelSvm;
    let ds = synth::cancer_like(400, 7);
    let view = Partition::vertical(&ds, 4, 2).expect("partition");
    let mut group = c.benchmark_group("ablation_nystrom");
    group.sample_size(10);
    let base = AdmmConfig::default()
        .with_max_iter(10)
        .with_kernel(Kernel::Rbf { gamma: 1.0 / 9.0 });
    group.bench_function("exact", |b| {
        b.iter(|| VerticalKernelSvm::train(&view, &base, None).unwrap())
    });
    for &rank in &[20usize, 60] {
        let cfg = base.with_nystrom(rank);
        group.bench_with_input(BenchmarkId::new("rank", rank), &cfg, |b, cfg| {
            b.iter(|| VerticalKernelSvm::train(&view, cfg, None).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rho, bench_landmarks, bench_learner_count, bench_nystrom);
criterion_main!(benches);
