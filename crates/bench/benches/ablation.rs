//! Ablations over the design choices DESIGN.md calls out:
//!
//! * `ρ` — the paper's §VI discussion: high `ρ` privileges consensus speed
//!   over the max-margin property;
//! * landmark count `l` — quality/cost of the reduced consensus space;
//! * learner count `M` — scaling the collaboration.
//!
//! This harness reports time; the accompanying accuracy numbers are
//! printed by the `fig4` binary runs recorded in EXPERIMENTS.md.

use ppml_bench::timing::{bench, SLOW_SAMPLES};
use ppml_core::{AdmmConfig, HorizontalKernelSvm, HorizontalLinearSvm, VerticalKernelSvm};
use ppml_data::{synth, Partition};
use ppml_kernel::Kernel;

fn main() {
    let ds = synth::cancer_like(240, 3);
    let parts = Partition::horizontal(&ds, 4, 1).expect("partition");
    for &rho in &[1.0f64, 10.0, 100.0] {
        // Time to drive Δz² below 1e-5 (capped at 200 iterations).
        let cfg = AdmmConfig::default()
            .with_rho(rho)
            .with_max_iter(200)
            .with_tol(1e-5);
        bench(&format!("ablation_rho/{rho}"), SLOW_SAMPLES, || {
            HorizontalLinearSvm::train(&parts, &cfg, None).unwrap()
        });
    }

    let xor = synth::xor_like(240, 5);
    let xor_parts = Partition::horizontal(&xor, 4, 1).expect("partition");
    for &l in &[5usize, 15, 40] {
        let cfg = AdmmConfig::default()
            .with_kernel(Kernel::Rbf { gamma: 0.5 })
            .with_landmarks(l)
            .with_max_iter(20);
        bench(&format!("ablation_landmarks/{l}"), SLOW_SAMPLES, || {
            HorizontalKernelSvm::train(&xor_parts, &cfg, None).unwrap()
        });
    }

    let big = synth::cancer_like(320, 3);
    for &m in &[2usize, 4, 8, 16] {
        let parts = Partition::horizontal(&big, m, 1).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(20);
        bench(&format!("ablation_learners/{m}"), SLOW_SAMPLES, || {
            HorizontalLinearSvm::train(&parts, &cfg, None).unwrap()
        });
    }

    let wide = synth::cancer_like(400, 7);
    let view = Partition::vertical(&wide, 4, 2).expect("partition");
    let base = AdmmConfig::default()
        .with_max_iter(10)
        .with_kernel(Kernel::Rbf { gamma: 1.0 / 9.0 });
    bench("ablation_nystrom/exact", SLOW_SAMPLES, || {
        VerticalKernelSvm::train(&view, &base, None).unwrap()
    });
    for &rank in &[20usize, 60] {
        let cfg = base.with_nystrom(rank);
        bench(
            &format!("ablation_nystrom/rank/{rank}"),
            SLOW_SAMPLES,
            || VerticalKernelSvm::train(&view, &cfg, None).unwrap(),
        );
    }
}
