//! E11: MapReduce engine throughput and the data-locality scheduling
//! effect.
//!
//! Benches one ADMM MapReduce round at different cluster widths, and the
//! same workload with locality-aware vs locality-blind scheduling. Byte
//! counters (the paper's "moving computation results is much cheaper than
//! moving data") come from the `fig4 --panel locality` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppml_core::jobs::{train_linear_on_cluster, ClusterTuning};
use ppml_core::AdmmConfig;
use ppml_data::{synth, Partition};

fn bench_cluster_rounds(c: &mut Criterion) {
    let ds = synth::cancer_like(240, 3);
    let mut group = c.benchmark_group("cluster_rounds");
    group.sample_size(10);
    for &m in &[2usize, 4, 8] {
        let parts = Partition::horizontal(&ds, m, 1).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(5);
        group.bench_with_input(BenchmarkId::new("learners", m), &parts, |b, p| {
            b.iter(|| train_linear_on_cluster(p, &cfg, None, ClusterTuning::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_fault_recovery_overhead(c: &mut Criterion) {
    use ppml_mapreduce::{BlockId, FaultPlan};
    let ds = synth::cancer_like(240, 3);
    let parts = Partition::horizontal(&ds, 4, 1).expect("partition");
    let cfg = AdmmConfig::default().with_max_iter(5);
    let mut group = c.benchmark_group("fault_recovery");
    group.sample_size(10);
    group.bench_function("clean", |b| {
        b.iter(|| train_linear_on_cluster(&parts, &cfg, None, ClusterTuning::default()).unwrap())
    });
    group.bench_function("one_failure_per_run", |b| {
        b.iter(|| {
            let tuning = ClusterTuning {
                fault_plan: FaultPlan::new().fail_first_attempts(2, BlockId(1), 1),
                max_attempts: Some(3),
            };
            train_linear_on_cluster(&parts, &cfg, None, tuning).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cluster_rounds, bench_fault_recovery_overhead);
criterion_main!(benches);
