//! E11: MapReduce engine throughput and the data-locality scheduling
//! effect.
//!
//! Benches one ADMM MapReduce round at different cluster widths, and the
//! same workload with and without injected task failures. Byte counters
//! (the paper's "moving computation results is much cheaper than moving
//! data") come from the `fig4 --panel locality` binary.

use ppml_bench::timing::{bench, SLOW_SAMPLES};
use ppml_core::jobs::{train_linear_on_cluster, ClusterTuning};
use ppml_core::AdmmConfig;
use ppml_data::{synth, Partition};
use ppml_mapreduce::{BlockId, FaultPlan};

fn main() {
    let ds = synth::cancer_like(240, 3);
    let cfg = AdmmConfig::default().with_max_iter(5);
    for &m in &[2usize, 4, 8] {
        let parts = Partition::horizontal(&ds, m, 1).expect("partition");
        bench(
            &format!("cluster_rounds/learners/{m}"),
            SLOW_SAMPLES,
            || train_linear_on_cluster(&parts, &cfg, None, ClusterTuning::default()).unwrap(),
        );
    }

    let parts = Partition::horizontal(&ds, 4, 1).expect("partition");
    bench("fault_recovery/clean", SLOW_SAMPLES, || {
        train_linear_on_cluster(&parts, &cfg, None, ClusterTuning::default()).unwrap()
    });
    bench("fault_recovery/one_failure_per_run", SLOW_SAMPLES, || {
        let tuning = ClusterTuning {
            fault_plan: FaultPlan::new().fail_first_attempts(2, BlockId(1), 1),
            max_attempts: Some(3),
        };
        train_linear_on_cluster(&parts, &cfg, None, tuning).unwrap()
    });
}
