//! Timing harness for the four Fig. 4 trainer configurations.
//!
//! Criterion measures the wall-clock of a full (quick-scale) training run
//! per trainer; the *data* for the figures comes from the `fig4` binary
//! (`cargo run -p ppml-bench --bin fig4 --release`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppml_bench::{run_panel, ExperimentScale, Panel};

fn bench_panels(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for panel in Panel::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(panel.id()), &panel, |b, &p| {
            b.iter(|| run_panel(p, &scale).expect("panel run"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_panels);
criterion_main!(benches);
