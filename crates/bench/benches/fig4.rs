//! Timing harness for the four Fig. 4 trainer configurations.
//!
//! Measures the wall-clock of a full (quick-scale) training run per
//! trainer; the *data* for the figures comes from the `fig4` binary
//! (`cargo run -p ppml-bench --bin fig4 --release`).

use ppml_bench::timing::{bench, SLOW_SAMPLES};
use ppml_bench::{run_panel, ExperimentScale, Panel};

fn main() {
    let scale = ExperimentScale::quick();
    for panel in Panel::ALL {
        bench(&format!("fig4/{}", panel.id()), SLOW_SAMPLES, || {
            run_panel(panel, &scale).expect("panel run")
        });
    }
}
