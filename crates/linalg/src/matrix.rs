use std::fmt;
use std::ops::{Index, IndexMut};

use crate::{Cholesky, LinalgError, Lu, Result};

/// A dense, row-major, `f64` matrix.
///
/// `Matrix` is the workhorse type of the workspace: kernel Gram matrices,
/// ADMM subproblem Hessians and data partitions are all `Matrix` values.
/// Storage is a single contiguous `Vec<f64>` in row-major order; `row(i)`
/// is therefore a free slice borrow, which the per-sample loops in the SVM
/// solvers rely on.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), ppml_linalg::LinalgError> {
/// use ppml_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(i, j)` at every position.
    ///
    /// ```
    /// use ppml_linalg::Matrix;
    /// let hilbert = Matrix::from_fn(3, 3, |i, j| 1.0 / (i + j + 1) as f64);
    /// assert_eq!(hilbert[(0, 0)], 1.0);
    /// ```
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of equally-long rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::RaggedRows`] if the rows differ in length.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * ncols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(LinalgError::RaggedRows {
                    first: ncols,
                    row: i,
                    len: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols: ncols,
            data,
        })
    }

    /// Creates a matrix that takes ownership of a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (rows, cols),
                found: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows row `i` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(
            i < self.rows,
            "row {i} out of bounds for {} rows",
            self.rows
        );
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(
            i < self.rows,
            "row {i} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a fresh `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.cols,
            "col {j} out of bounds for {} cols",
            self.cols
        );
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Borrows the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix and returns the row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let r = self.row(i);
            for (j, &v) in r.iter().enumerate() {
                t[(j, i)] = v;
            }
        }
        t
    }

    /// Matrix product `self * rhs`, blocked for cache friendliness.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, rhs.cols),
                found: (rhs.rows, rhs.cols),
            });
        }
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        // i-k-j loop order: the inner loop is a contiguous axpy over rows of
        // `rhs` and `out`, which vectorizes well without an explicit
        // transpose. Block over k to keep the touched rows of `rhs` hot.
        const KB: usize = 64;
        for k0 in (0..k).step_by(KB) {
            let kend = (k0 + KB).min(k);
            for i in 0..m {
                let arow = self.row(i);
                let orow = &mut out.data[i * n..(i + 1) * n];
                for (kk, &aik) in arow.iter().enumerate().take(kend).skip(k0) {
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &rhs.data[kk * n..(kk + 1) * n];
                    for (o, &b) in orow.iter_mut().zip(brow) {
                        *o += aik * b;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Product `selfᵀ * rhs` without materializing the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `self.rows() != rhs.rows()`.
    pub fn t_matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, rhs.cols),
                found: (rhs.rows, rhs.cols),
            });
        }
        let (m, k, n) = (self.cols, self.rows, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        for kk in 0..k {
            let arow = self.row(kk);
            let brow = rhs.row(kk);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| crate::vecops::dot(self.row(i), x))
            .collect())
    }

    /// Transposed matrix-vector product `selfᵀ * x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != self.rows()`.
    pub fn t_matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, 1),
                found: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += xi * a;
            }
        }
        Ok(out)
    }

    /// Entry-wise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Entry-wise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, |a, b| a - b)
    }

    fn zip_with<F: Fn(f64, f64) -> f64>(&self, rhs: &Matrix, f: F) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                expected: self.shape(),
                found: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `self` scaled by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| v * s).collect(),
        }
    }

    /// Adds `s` to every diagonal entry in place (`self + s·I`).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diag(&mut self, s: f64) {
        assert_eq!(self.rows, self.cols, "add_diag requires a square matrix");
        for i in 0..self.rows {
            self[(i, i)] += s;
        }
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute entry-wise difference to `rhs`, or `None` on shape
    /// mismatch. Convenient for tests.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> Option<f64> {
        if self.shape() != rhs.shape() {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }

    /// Cholesky factorization of a symmetric positive-definite matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] or
    /// [`LinalgError::NotPositiveDefinite`].
    pub fn cholesky(&self) -> Result<Cholesky> {
        Cholesky::new(self)
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::Singular`].
    pub fn lu(&self) -> Result<Lu> {
        Lu::new(self)
    }

    /// Builds the sub-matrix formed by the given row indices (rows may repeat
    /// and appear in any order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(idx.len() * self.cols);
        for &i in idx {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: idx.len(),
            cols: self.cols,
            data,
        }
    }

    /// Builds the sub-matrix formed by the given column indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_cols(&self, idx: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(idx.len() * self.rows);
        for i in 0..self.rows {
            let r = self.row(i);
            for &j in idx {
                data.push(r[j]);
            }
        }
        Matrix {
            rows: self.rows,
            cols: idx.len(),
            data,
        }
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (other.rows, self.cols),
                found: other.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for i in 0..show {
            write!(f, "  [")?;
            let cols = self.cols.min(8);
            for j in 0..cols {
                write!(f, "{:10.4}", self[(i, j)])?;
                if j + 1 < cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.shape(), (2, 3));
        approx(m[(1, 2)], 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::RaggedRows { row: 1, .. }));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_fn(5, 3, |i, j| (i * 7 + j) as f64 * 0.1 - 0.4);
        let b = Matrix::from_fn(5, 4, |i, j| (i + 2 * j) as f64 * 0.3);
        let fast = a.t_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-12);
    }

    #[test]
    fn matvec_and_t_matvec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.t_matvec(&[1.0, 1.0, 1.0]).unwrap(), vec![9.0, 12.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.t_matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_is_involution() {
        let a = Matrix::from_fn(4, 6, |i, j| (i * j) as f64 + 0.5);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 5.0]]).unwrap();
        assert_eq!(
            a.add(&b).unwrap(),
            Matrix::from_rows(&[&[4.0, 7.0]]).unwrap()
        );
        assert_eq!(
            b.sub(&a).unwrap(),
            Matrix::from_rows(&[&[2.0, 3.0]]).unwrap()
        );
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0]]).unwrap());
    }

    #[test]
    fn add_diag_shifts_eigenvalues() {
        let mut a = Matrix::zeros(3, 3);
        a.add_diag(2.5);
        assert_eq!(a, Matrix::identity(3).scale(2.5));
    }

    #[test]
    fn select_rows_and_cols() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]).unwrap();
        let r = a.select_rows(&[2, 0]);
        assert_eq!(
            r,
            Matrix::from_rows(&[&[7.0, 8.0, 9.0], &[1.0, 2.0, 3.0]]).unwrap()
        );
        let c = a.select_cols(&[1]);
        assert_eq!(c, Matrix::from_rows(&[&[2.0], &[5.0], &[8.0]]).unwrap());
    }

    #[test]
    fn vstack_checks_columns() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(2, 2);
        assert_eq!(a.vstack(&b).unwrap().shape(), (3, 2));
        assert!(a.vstack(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", Matrix::zeros(1, 1));
        assert!(!s.is_empty());
        // Large matrices are elided, not dumped.
        let s = format!("{:?}", Matrix::zeros(100, 100));
        assert!(s.contains("..."));
    }

    #[test]
    fn fro_norm_known() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        approx(a.fro_norm(), 5.0);
    }
}
