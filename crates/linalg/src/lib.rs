//! Dense linear algebra for the `ppml` workspace.
//!
//! The privacy-preserving SVM trainers in `ppml-core` only need a small,
//! predictable slice of dense linear algebra: row-major matrices, matrix
//! products, Cholesky and LU factorizations, and triangular solves. Rather
//! than pulling a BLAS binding into the offline dependency set, this crate
//! implements that slice directly with an emphasis on correctness (every
//! factorization is property-tested against its defining identity) and
//! reasonable cache behaviour (GEMM is blocked and walks `B` row-wise).
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), ppml_linalg::LinalgError> {
//! use ppml_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let chol = a.cholesky()?;
//! let x = chol.solve(&[1.0, 2.0])?;
//! // A x = b
//! let b = a.matvec(&x)?;
//! assert!((b[0] - 1.0).abs() < 1e-12 && (b[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
mod chol;
mod error;
mod lu;
mod matrix;
pub mod vecops;

pub use chol::Cholesky;
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
