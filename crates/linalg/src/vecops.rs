//! Free functions over `&[f64]` slices.
//!
//! The ADMM update loops spend most of their time in these primitives, so
//! they are kept allocation-free where possible and written so the compiler
//! can vectorize the inner loops.
//!
//! All binary operations panic on length mismatch: a mismatch here is always
//! a programming error in a solver, never recoverable input.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if `a.len() != b.len()`.
///
/// ```
/// assert_eq!(ppml_linalg::vecops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Element-wise sum `a + b` as a new vector.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x + y).collect()
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// `a` scaled by `s` as a new vector.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|&x| x * s).collect()
}

/// Squared Euclidean norm `‖a‖²`.
pub fn norm_sq(a: &[f64]) -> f64 {
    a.iter().map(|&x| x * x).sum()
}

/// Euclidean norm `‖a‖`.
pub fn norm(a: &[f64]) -> f64 {
    norm_sq(a).sqrt()
}

/// Squared Euclidean distance `‖a - b‖²`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist_sq: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Arithmetic mean of equal-length vectors; `None` when `vs` is empty.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn mean<'a, I>(vs: I) -> Option<Vec<f64>>
where
    I: IntoIterator<Item = &'a [f64]>,
{
    let mut it = vs.into_iter();
    let first = it.next()?;
    let mut acc = first.to_vec();
    let mut count = 1usize;
    for v in it {
        axpy(1.0, v, &mut acc);
        count += 1;
    }
    let inv = 1.0 / count as f64;
    for a in &mut acc {
        *a *= inv;
    }
    Some(acc)
}

/// Clamps every entry of `x` into `[lo, hi]` in place.
pub fn clamp_in_place(x: &mut [f64], lo: f64, hi: f64) {
    for v in x {
        *v = v.clamp(lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn add_sub_scale_roundtrip() {
        let a = [1.0, -2.0, 3.0];
        let b = [0.5, 0.5, 0.5];
        assert_eq!(sub(&add(&a, &b), &b), a.to_vec());
        assert_eq!(scale(&a, -1.0), vec![-1.0, 2.0, -3.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(dist_sq(&[1.0, 1.0], &[4.0, 5.0]), 25.0);
    }

    #[test]
    fn mean_of_vectors() {
        let vs: Vec<Vec<f64>> = vec![vec![1.0, 3.0], vec![3.0, 5.0]];
        let m = mean(vs.iter().map(|v| v.as_slice())).unwrap();
        assert_eq!(m, vec![2.0, 4.0]);
        assert!(mean(std::iter::empty::<&[f64]>()).is_none());
    }

    #[test]
    fn clamp_clamps() {
        let mut x = vec![-1.0, 0.5, 2.0];
        clamp_in_place(&mut x, 0.0, 1.0);
        assert_eq!(x, vec![0.0, 0.5, 1.0]);
    }
}
