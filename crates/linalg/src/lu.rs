use crate::{LinalgError, Matrix, Result};

/// LU factorization with partial pivoting: `P·A = L·U`.
///
/// Used for the general (not necessarily positive-definite) systems that
/// appear in landmark preconditioning and in tests as an independent check
/// on [`crate::Cholesky`].
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), ppml_linalg::LinalgError> {
/// use ppml_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]])?; // needs pivoting
/// let lu = a.lu()?;
/// let x = lu.solve(&[2.0, 2.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed L (unit diagonal, below) and U (on/above diagonal).
    lu: Matrix,
    /// Row permutation: factored row `i` came from original row `perm[i]`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    sign: f64,
}

impl Lu {
    /// Factors `a` with partial (row) pivoting.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] for rectangular input;
    /// [`LinalgError::Singular`] when no usable pivot exists in some column.
    pub fn new(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Pivot search in column k.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best == 0.0 || !best.is_finite() {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                perm.swap(p, k);
                sign = -sign;
                // Swap rows p and k.
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let u = lu[(k, j)];
                        lu[(i, j)] -= m * u;
                    }
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Size of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, 1),
                found: (b.len(), 1),
            });
        }
        // Apply permutation, then forward/backward substitution.
        let mut y: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 0..n {
            let row = self.lu.row(i);
            let s = crate::vecops::dot(&row[..i], &y[..i]);
            y[i] -= s; // unit diagonal in L
        }
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let s = crate::vecops::dot(&row[i + 1..], &y[i + 1..]);
            y[i] = (y[i] - s) / row[i];
        }
        Ok(y)
    }

    /// Solves `A X = B` column-by-column.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, b.cols()),
                found: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let x = self.solve(&b.col(j))?;
            for (i, v) in x.into_iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        Ok(out)
    }

    /// Explicit inverse `A⁻¹`.
    pub fn inverse(&self) -> Matrix {
        let id = Matrix::identity(self.dim());
        self.solve_matrix(&id).expect("identity has matching shape")
    }

    /// Determinant of `A`, from the pivot product and permutation sign.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(n: usize, seed: u64) -> Matrix {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        // Diagonally dominated so it is comfortably nonsingular.
        let mut m = Matrix::from_fn(n, n, |_, _| next());
        m.add_diag(n as f64);
        m
    }

    #[test]
    fn solve_residual_small() {
        let a = dense(10, 5);
        let lu = a.lu().unwrap();
        let b: Vec<f64> = (0..10).map(|i| (i as f64).cos()).collect();
        let x = lu.solve(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a.lu().unwrap().solve(&[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![4.0, 3.0]);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn det_of_permutation_matrix() {
        // Swap matrix has determinant -1.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let d = a.lu().unwrap().det();
        assert!((d + 1.0).abs() < 1e-12);
    }

    #[test]
    fn det_matches_diagonal_product() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        assert!((a.lu().unwrap().det() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_is_inverse() {
        let a = dense(7, 11);
        let inv = a.lu().unwrap().inverse();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(7)).unwrap() < 1e-8);
    }

    #[test]
    fn agrees_with_cholesky_on_spd() {
        // SPD system: both factorizations must produce the same solution.
        let b = dense(6, 17);
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diag(6.0);
        let rhs: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let x1 = a.lu().unwrap().solve(&rhs).unwrap();
        let x2 = a.cholesky().unwrap().solve(&rhs).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            Matrix::zeros(3, 2).lu(),
            Err(LinalgError::NotSquare { .. })
        ));
    }
}
