use crate::{LinalgError, Matrix, Result};

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite matrix.
///
/// The factor is computed once and can then solve any number of right-hand
/// sides in `O(n²)` each — the kernelized trainers in `ppml-core` factor
/// `(I + ρK)` once per training run and reuse the factor every ADMM
/// iteration.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), ppml_linalg::LinalgError> {
/// use ppml_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0],
///                             &[15.0, 18.0,  0.0],
///                             &[-5.0,  0.0, 11.0]])?;
/// let chol = a.cholesky()?;
/// let x = chol.solve(&[1.0, 2.0, 3.0])?;
/// let r = a.matvec(&x)?;
/// assert!((r[0] - 1.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored dense (upper part zero).
    l: Matrix,
}

impl Cholesky {
    /// Factors `a`.
    ///
    /// Only the lower triangle of `a` is read, so slightly asymmetric inputs
    /// (e.g. Gram matrices with round-off) are accepted.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] for rectangular input, and
    /// [`LinalgError::NotPositiveDefinite`] when a pivot is not strictly
    /// positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal entry.
            let mut d = a[(j, j)];
            for k in 0..j {
                let v = l[(j, k)];
                d -= v * v;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                // dot of rows i and j of L, first j entries
                let (ri, rj) = (i * n, j * n);
                let li = &l.as_slice()[ri..ri + j];
                let lj = &l.as_slice()[rj..rj + j];
                s -= crate::vecops::dot(li, lj);
                l[(i, j)] = s / dj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Size of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, 1),
                found: (b.len(), 1),
            });
        }
        // Forward: L y = b
        let mut y = b.to_vec();
        for i in 0..n {
            let row = self.l.row(i);
            let s = crate::vecops::dot(&row[..i], &y[..i]);
            y[i] = (y[i] - s) / row[i];
        }
        // Backward: Lᵀ x = y
        for i in (0..n).rev() {
            let mut s = y[i];
            for (k, &yk) in y.iter().enumerate().skip(i + 1) {
                s -= self.l[(k, i)] * yk;
            }
            y[i] = s / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Solves `A X = B` column-by-column.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, b.cols()),
                found: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for (i, v) in x.into_iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        Ok(out)
    }

    /// Explicit inverse `A⁻¹`. Prefer [`Cholesky::solve`] where possible;
    /// the kernel trainers need the explicit inverse because it is applied
    /// inside matrix products whose other factor changes every iteration.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let id = Matrix::identity(n);
        // solve_matrix on identity cannot fail: shapes match by construction.
        self.solve_matrix(&id).expect("identity has matching shape")
    }

    /// `log(det(A))`, computed stably from the factor diagonal.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> Matrix {
        // A = B Bᵀ + n I is SPD for any B.
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let b = Matrix::from_fn(n, n, |_, _| next());
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diag(n as f64);
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd(8, 42);
        let c = a.cholesky().unwrap();
        let l = c.factor();
        let back = l.matmul(&l.transpose()).unwrap();
        assert!(a.max_abs_diff(&back).unwrap() < 1e-9);
    }

    #[test]
    fn solve_residual_small() {
        let a = spd(12, 7);
        let c = a.cholesky().unwrap();
        let b: Vec<f64> = (0..12).map(|i| (i as f64).sin()).collect();
        let x = c.solve(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_is_inverse() {
        let a = spd(6, 3);
        let inv = a.cholesky().unwrap().inverse();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(6)).unwrap() < 1e-9);
    }

    #[test]
    fn rejects_non_spd() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // indefinite
        assert!(matches!(
            a.cholesky(),
            Err(LinalgError::NotPositiveDefinite { pivot: 1 })
        ));
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            Matrix::zeros(2, 3).cholesky(),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn solve_checks_rhs_length() {
        let c = spd(4, 1).cholesky().unwrap();
        assert!(c.solve(&[1.0; 3]).is_err());
    }

    #[test]
    fn log_det_of_identity_is_zero() {
        let c = Matrix::identity(5).cholesky().unwrap();
        assert!(c.log_det().abs() < 1e-12);
    }

    #[test]
    fn one_by_one() {
        let c = Matrix::from_rows(&[&[4.0]]).unwrap().cholesky().unwrap();
        assert_eq!(c.solve(&[8.0]).unwrap(), vec![2.0]);
    }
}
