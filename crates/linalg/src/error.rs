use std::fmt;

/// Errors produced by dense linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    ///
    /// The payload is `(expected, found)` rendered as `rows x cols`.
    ShapeMismatch {
        /// Shape the operation required.
        expected: (usize, usize),
        /// Shape that was actually supplied.
        found: (usize, usize),
    },
    /// An operation that requires a square matrix was given a rectangular one.
    NotSquare {
        /// The offending shape.
        shape: (usize, usize),
    },
    /// Cholesky factorization failed: the matrix is not (numerically)
    /// symmetric positive definite. Carries the pivot index where the
    /// factorization broke down.
    NotPositiveDefinite {
        /// Pivot index at which a non-positive diagonal was encountered.
        pivot: usize,
    },
    /// LU factorization or solve encountered an (exactly or numerically)
    /// singular matrix. Carries the pivot column where no usable pivot exists.
    Singular {
        /// Column index at which the matrix was found singular.
        pivot: usize,
    },
    /// A matrix constructor was given rows of unequal length.
    RaggedRows {
        /// Length of the first row.
        first: usize,
        /// Index of the first row whose length differs.
        row: usize,
        /// That row's length.
        len: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, found } => write!(
                f,
                "shape mismatch: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix is not square: {}x{}", shape.0, shape.1)
            }
            LinalgError::NotPositiveDefinite { pivot } => write!(
                f,
                "matrix is not positive definite (breakdown at pivot {pivot})"
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (no pivot in column {pivot})")
            }
            LinalgError::RaggedRows { first, row, len } => write!(
                f,
                "ragged rows: row 0 has {first} entries but row {row} has {len}"
            ),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = LinalgError::ShapeMismatch {
            expected: (2, 3),
            found: (3, 2),
        };
        assert_eq!(e.to_string(), "shape mismatch: expected 2x3, found 3x2");
        let e = LinalgError::NotPositiveDefinite { pivot: 4 };
        assert!(e.to_string().contains("pivot 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
