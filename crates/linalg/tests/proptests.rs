//! Property tests for the dense linear-algebra kernels: every factorization
//! must satisfy its defining identity on random well-conditioned inputs, and
//! the algebraic laws of the matrix/vector operations must hold.

use ppml_data::check::{run_cases, Gen};
use ppml_linalg::{vecops, Matrix};

/// Random matrix of the given shape with entries in [-1, 1].
fn matrix(g: &mut Gen, rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(rows, cols, g.vec_f64(-1.0, 1.0, rows * cols)).expect("sized by construction")
}

/// Random SPD matrix built as `B·Bᵀ + (n+1)·I`.
fn spd(g: &mut Gen, n: usize) -> Matrix {
    let b = matrix(g, n, n);
    let mut a = b.matmul(&b.transpose()).expect("square");
    a.add_diag(n as f64 + 1.0);
    a
}

#[test]
fn matmul_associative() {
    run_cases("matmul_associative", 64, |g, _| {
        let (a, b, c) = (matrix(g, 4, 3), matrix(g, 3, 5), matrix(g, 5, 2));
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        assert!(left.max_abs_diff(&right).unwrap() < 1e-10);
    });
}

#[test]
fn matmul_distributes_over_add() {
    run_cases("matmul_distributes_over_add", 64, |g, _| {
        let (a, b, c) = (matrix(g, 3, 4), matrix(g, 4, 3), matrix(g, 4, 3));
        let left = a.matmul(&b.add(&c).unwrap()).unwrap();
        let right = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        assert!(left.max_abs_diff(&right).unwrap() < 1e-10);
    });
}

#[test]
fn transpose_reverses_product() {
    run_cases("transpose_reverses_product", 64, |g, _| {
        let (a, b) = (matrix(g, 3, 5), matrix(g, 5, 4));
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        assert!(left.max_abs_diff(&right).unwrap() < 1e-12);
    });
}

#[test]
fn t_matmul_equals_transpose_then_matmul() {
    run_cases("t_matmul_equals_transpose_then_matmul", 64, |g, _| {
        let (a, b) = (matrix(g, 6, 3), matrix(g, 6, 4));
        let fast = a.t_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-12);
    });
}

#[test]
fn matvec_matches_matmul() {
    run_cases("matvec_matches_matmul", 64, |g, _| {
        let a = matrix(g, 5, 3);
        let x = g.vec_f64(-1.0, 1.0, 3);
        let xm = Matrix::from_vec(3, 1, x.clone()).unwrap();
        let v = a.matvec(&x).unwrap();
        let m = a.matmul(&xm).unwrap();
        for i in 0..5 {
            assert!((v[i] - m[(i, 0)]).abs() < 1e-12);
        }
    });
}

#[test]
fn cholesky_reconstructs() {
    run_cases("cholesky_reconstructs", 64, |g, _| {
        let a = spd(g, 6);
        let l = a.cholesky().unwrap();
        let back = l.factor().matmul(&l.factor().transpose()).unwrap();
        assert!(a.max_abs_diff(&back).unwrap() < 1e-8);
    });
}

#[test]
fn cholesky_solve_residual() {
    run_cases("cholesky_solve_residual", 64, |g, _| {
        let a = spd(g, 6);
        let b = g.vec_f64(-1.0, 1.0, 6);
        let x = a.cholesky().unwrap().solve(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-8);
        }
    });
}

#[test]
fn lu_solve_residual() {
    run_cases("lu_solve_residual", 64, |g, _| {
        let a = spd(g, 5);
        let b = g.vec_f64(-1.0, 1.0, 5);
        // SPD implies nonsingular, so LU must succeed too.
        let x = a.lu().unwrap().solve(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-8);
        }
    });
}

#[test]
fn lu_and_cholesky_agree() {
    run_cases("lu_and_cholesky_agree", 64, |g, _| {
        let a = spd(g, 5);
        let b = g.vec_f64(-1.0, 1.0, 5);
        let x1 = a.lu().unwrap().solve(&b).unwrap();
        let x2 = a.cholesky().unwrap().solve(&b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-7);
        }
    });
}

#[test]
fn dot_is_bilinear() {
    run_cases("dot_is_bilinear", 64, |g, _| {
        let a = g.vec_f64(-1.0, 1.0, 8);
        let b = g.vec_f64(-1.0, 1.0, 8);
        let c = g.vec_f64(-1.0, 1.0, 8);
        let s = g.f64_in(-2.0, 2.0);
        let lhs = vecops::dot(&vecops::add(&a, &vecops::scale(&b, s)), &c);
        let rhs = vecops::dot(&a, &c) + s * vecops::dot(&b, &c);
        assert!((lhs - rhs).abs() < 1e-10);
    });
}

#[test]
fn norm_triangle_inequality() {
    run_cases("norm_triangle_inequality", 64, |g, _| {
        let a = g.vec_f64(-1.0, 1.0, 8);
        let b = g.vec_f64(-1.0, 1.0, 8);
        assert!(vecops::norm(&vecops::add(&a, &b)) <= vecops::norm(&a) + vecops::norm(&b) + 1e-12);
    });
}

#[test]
fn select_rows_roundtrip() {
    run_cases("select_rows_roundtrip", 64, |g, _| {
        let a = matrix(g, 5, 3);
        let idx: Vec<usize> = (0..5).collect();
        assert_eq!(a.select_rows(&idx), a.clone());
    });
}

#[test]
fn mean_is_between_min_and_max() {
    run_cases("mean_is_between_min_and_max", 64, |g, _| {
        let rows = g.usize_in(1, 6);
        let vs: Vec<Vec<f64>> = (0..rows).map(|_| g.vec_f64(-1.0, 1.0, 4)).collect();
        let m = vecops::mean(vs.iter().map(|v| v.as_slice())).unwrap();
        for j in 0..4 {
            let lo = vs.iter().map(|v| v[j]).fold(f64::INFINITY, f64::min);
            let hi = vs.iter().map(|v| v[j]).fold(f64::NEG_INFINITY, f64::max);
            assert!(m[j] >= lo - 1e-12 && m[j] <= hi + 1e-12);
        }
    });
}
