//! Property tests for the dense linear-algebra kernels: every factorization
//! must satisfy its defining identity on random well-conditioned inputs, and
//! the algebraic laws of the matrix/vector operations must hold.

use ppml_linalg::{vecops, Matrix};
use proptest::prelude::*;

/// Strategy: matrix of the given shape with entries in [-1, 1].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f64..1.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).expect("sized by construction"))
}

/// Strategy: SPD matrix built as `B·Bᵀ + n·I`.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    matrix(n, n).prop_map(move |b| {
        let mut a = b.matmul(&b.transpose()).expect("square");
        a.add_diag(n as f64 + 1.0);
        a
    })
}

proptest! {
    #[test]
    fn matmul_associative(a in matrix(4, 3), b in matrix(3, 5), c in matrix(5, 2)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.max_abs_diff(&right).unwrap() < 1e-10);
    }

    #[test]
    fn matmul_distributes_over_add(a in matrix(3, 4), b in matrix(4, 3), c in matrix(4, 3)) {
        let left = a.matmul(&b.add(&c).unwrap()).unwrap();
        let right = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.max_abs_diff(&right).unwrap() < 1e-10);
    }

    #[test]
    fn transpose_reverses_product(a in matrix(3, 5), b in matrix(5, 4)) {
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(left.max_abs_diff(&right).unwrap() < 1e-12);
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul(a in matrix(6, 3), b in matrix(6, 4)) {
        let fast = a.t_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        prop_assert!(fast.max_abs_diff(&slow).unwrap() < 1e-12);
    }

    #[test]
    fn matvec_matches_matmul(a in matrix(5, 3), x in proptest::collection::vec(-1.0f64..1.0, 3)) {
        let xm = Matrix::from_vec(3, 1, x.clone()).unwrap();
        let v = a.matvec(&x).unwrap();
        let m = a.matmul(&xm).unwrap();
        for i in 0..5 {
            prop_assert!((v[i] - m[(i, 0)]).abs() < 1e-12);
        }
    }

    #[test]
    fn cholesky_reconstructs(a in spd(6)) {
        let l = a.cholesky().unwrap();
        let back = l.factor().matmul(&l.factor().transpose()).unwrap();
        prop_assert!(a.max_abs_diff(&back).unwrap() < 1e-8);
    }

    #[test]
    fn cholesky_solve_residual(a in spd(6), b in proptest::collection::vec(-1.0f64..1.0, 6)) {
        let x = a.cholesky().unwrap().solve(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-8);
        }
    }

    #[test]
    fn lu_solve_residual(a in spd(5), b in proptest::collection::vec(-1.0f64..1.0, 5)) {
        // SPD implies nonsingular, so LU must succeed too.
        let x = a.lu().unwrap().solve(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-8);
        }
    }

    #[test]
    fn lu_and_cholesky_agree(a in spd(5), b in proptest::collection::vec(-1.0f64..1.0, 5)) {
        let x1 = a.lu().unwrap().solve(&b).unwrap();
        let x2 = a.cholesky().unwrap().solve(&b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            prop_assert!((u - v).abs() < 1e-7);
        }
    }

    #[test]
    fn dot_is_bilinear(
        a in proptest::collection::vec(-1.0f64..1.0, 8),
        b in proptest::collection::vec(-1.0f64..1.0, 8),
        c in proptest::collection::vec(-1.0f64..1.0, 8),
        s in -2.0f64..2.0,
    ) {
        let lhs = vecops::dot(&vecops::add(&a, &vecops::scale(&b, s)), &c);
        let rhs = vecops::dot(&a, &c) + s * vecops::dot(&b, &c);
        prop_assert!((lhs - rhs).abs() < 1e-10);
    }

    #[test]
    fn norm_triangle_inequality(
        a in proptest::collection::vec(-1.0f64..1.0, 8),
        b in proptest::collection::vec(-1.0f64..1.0, 8),
    ) {
        prop_assert!(vecops::norm(&vecops::add(&a, &b)) <= vecops::norm(&a) + vecops::norm(&b) + 1e-12);
    }

    #[test]
    fn select_rows_roundtrip(a in matrix(5, 3)) {
        let idx: Vec<usize> = (0..5).collect();
        prop_assert_eq!(a.select_rows(&idx), a.clone());
    }

    #[test]
    fn mean_is_between_min_and_max(vs in proptest::collection::vec(proptest::collection::vec(-1.0f64..1.0, 4), 1..6)) {
        let m = vecops::mean(vs.iter().map(|v| v.as_slice())).unwrap();
        for j in 0..4 {
            let lo = vs.iter().map(|v| v[j]).fold(f64::INFINITY, f64::min);
            let hi = vs.iter().map(|v| v[j]).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m[j] >= lo - 1e-12 && m[j] <= hi + 1e-12);
        }
    }
}
