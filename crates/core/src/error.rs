use std::fmt;

/// Errors surfaced while training a distributed SVM.
#[derive(Debug)]
pub enum TrainError {
    /// A partition was empty, single-class where that is unsupported, or
    /// otherwise unusable.
    BadPartition {
        /// Which learner and what was wrong.
        reason: String,
    },
    /// A configuration value is out of range.
    BadConfig {
        /// What is wrong.
        reason: String,
    },
    /// The local dual QP failed.
    Qp(ppml_qp::QpError),
    /// A dense factorization failed (e.g. a kernel operator that is not
    /// positive definite).
    Linalg(ppml_linalg::LinalgError),
    /// The secure aggregation protocol failed.
    Crypto(ppml_crypto::CryptoError),
    /// The MapReduce runtime failed.
    MapReduce(ppml_mapreduce::MapReduceError),
    /// Dataset handling failed.
    Data(ppml_data::DataError),
    /// The centralized reference model failed to train (baseline paths).
    Svm(ppml_svm::SvmError),
    /// The wire transport failed (timeout, peer gone, corrupt frame).
    Transport(ppml_transport::TransportError),
    /// A peer sent a frame that violates the coordination protocol.
    Protocol {
        /// What arrived and why it was unacceptable.
        reason: String,
    },
    /// Every learner dropped out before distributed training could
    /// finish; the run has no quorum left to re-key over.
    Dropped {
        /// Parties declared dead, in the order they were dropped.
        parties: Vec<u32>,
    },
    /// A checkpoint could not be written, read or validated.
    Checkpoint {
        /// The path (when known) and what went wrong with it.
        reason: String,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::BadPartition { reason } => write!(f, "bad partition: {reason}"),
            TrainError::BadConfig { reason } => write!(f, "bad config: {reason}"),
            TrainError::Qp(e) => write!(f, "local qp failed: {e}"),
            TrainError::Linalg(e) => write!(f, "factorization failed: {e}"),
            TrainError::Crypto(e) => write!(f, "secure aggregation failed: {e}"),
            TrainError::MapReduce(e) => write!(f, "mapreduce failed: {e}"),
            TrainError::Data(e) => write!(f, "data handling failed: {e}"),
            TrainError::Svm(e) => write!(f, "baseline svm failed: {e}"),
            TrainError::Transport(e) => write!(f, "transport failed: {e}"),
            TrainError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
            TrainError::Dropped { parties } => {
                write!(f, "all learners dropped out (in order: {parties:?})")
            }
            TrainError::Checkpoint { reason } => write!(f, "checkpoint failed: {reason}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Qp(e) => Some(e),
            TrainError::Linalg(e) => Some(e),
            TrainError::Crypto(e) => Some(e),
            TrainError::MapReduce(e) => Some(e),
            TrainError::Data(e) => Some(e),
            TrainError::Svm(e) => Some(e),
            TrainError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

macro_rules! from_impl {
    ($($ty:ty => $variant:ident),*) => {
        $(impl From<$ty> for TrainError {
            fn from(e: $ty) -> Self {
                TrainError::$variant(e)
            }
        })*
    };
}

from_impl!(
    ppml_qp::QpError => Qp,
    ppml_linalg::LinalgError => Linalg,
    ppml_crypto::CryptoError => Crypto,
    ppml_mapreduce::MapReduceError => MapReduce,
    ppml_data::DataError => Data,
    ppml_svm::SvmError => Svm,
    ppml_transport::TransportError => Transport
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: TrainError = ppml_qp::QpError::InvalidBounds { lo: 1.0, hi: 0.0 }.into();
        assert!(matches!(e, TrainError::Qp(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("qp"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<TrainError>();
    }
}
