//! The trainers as MapReduce jobs (the paper's Fig. 1 deployment).
//!
//! Learner `m`'s partition is loaded as a block **pinned to node `m`**
//! (data locality: the raw rows never move). The per-learner ADMM state —
//! dual variables `λ_m, γ_m/r_m, β_m` — lives in the block's persistent
//! mapper state, exactly the long-running-mapper model of Twister. Each
//! iteration the driver broadcasts the consensus `(z, s)`; every Map task
//! first takes its scaled-dual step against the fresh consensus, then
//! solves its local subproblem and emits **only a masked share** of
//! `[w_m + γ_m ; b_m + β_m]`; the Reduce step wrapping-sums the shares,
//! which cancels every mask ([`crate::SeededMasker`]) and yields exactly
//! the sum the average needs — the reducer never sees an individual model.
//!
//! Given the same seed, the cluster execution and the in-process trainer
//! produce identical iterates: the fixed-point sums are mask-independent.
//!
//! # Example
//!
//! ```
//! use ppml_core::jobs::{train_linear_on_cluster, ClusterTuning};
//! use ppml_core::AdmmConfig;
//! use ppml_data::{synth, Partition};
//!
//! # fn main() -> Result<(), ppml_core::TrainError> {
//! let ds = synth::blobs(80, 1);
//! let parts = Partition::horizontal(&ds, 4, 2)?;
//! let cfg = AdmmConfig::default().with_max_iter(15);
//! let (outcome, metrics) =
//!     train_linear_on_cluster(&parts, &cfg, None, ClusterTuning::default())?;
//! assert!(outcome.model.accuracy(&ds) > 0.9);
//! assert_eq!(metrics.remote_reads, 0); // every map ran on its data node
//! # Ok(())
//! # }
//! ```

use std::sync::Mutex;

use ppml_data::Dataset;
use ppml_mapreduce::{
    BlockId, ByteSized, Cluster, ClusterConfig, FaultPlan, IterativeJob, JobMetrics, NodeId,
};
use ppml_qp::QpConfig;
use ppml_svm::LinearSvm;

use crate::horizontal::kernel::{HkLearner, HorizontalKernelSvm, KernelOutcome};
use crate::horizontal::linear::{validate_parts, HlLearner, LinearOutcome};
use crate::masks::SeededMasker;
use crate::{AdmmConfig, ConvergenceHistory, Result, TrainError};

/// Cluster knobs exposed to the training drivers (node count is always the
/// learner count, and block placement is always 1:1 — those are the paper's
/// architecture, not tunables).
#[derive(Debug, Clone, Default)]
pub struct ClusterTuning {
    /// Injected faults (exercises the re-execution path mid-training).
    pub fault_plan: FaultPlan,
    /// Per-task retry budget; `None` = runtime default.
    pub max_attempts: Option<usize>,
}

/// Map-side ADMM behaviour shared by the linear and kernel learners.
pub(crate) trait ConsensusLearner: Send + 'static {
    fn local_step(&mut self, z: &[f64], s: f64, qp: &QpConfig) -> Result<()>;
    fn share(&self) -> Vec<f64>;
    fn dual_update(&mut self, z: &[f64], s: f64);
}

impl ConsensusLearner for HlLearner {
    fn local_step(&mut self, z: &[f64], s: f64, qp: &QpConfig) -> Result<()> {
        HlLearner::local_step(self, z, s, qp)
    }
    fn share(&self) -> Vec<f64> {
        HlLearner::share(self)
    }
    fn dual_update(&mut self, z: &[f64], s: f64) {
        HlLearner::dual_update(self, z, s)
    }
}

impl ConsensusLearner for HkLearner {
    fn local_step(&mut self, z: &[f64], s: f64, qp: &QpConfig) -> Result<()> {
        HkLearner::local_step(self, z, s, qp)
    }
    fn share(&self) -> Vec<f64> {
        HkLearner::share(self)
    }
    fn dual_update(&mut self, z: &[f64], s: f64) {
        HkLearner::dual_update(self, z, s)
    }
}

/// Block payload: one learner's private partition.
///
/// The wrapper gives the runtime a wire-size estimate for remote reads —
/// which the 1:1 placement never triggers, and the metrics prove it.
pub struct LearnerBlock(pub Dataset);

impl ByteSized for LearnerBlock {
    fn byte_len(&self) -> usize {
        8 * self.0.len() * (self.0.features() + 1)
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        // Row-major features followed by the label, dimensions implied by
        // the block descriptor: exactly `byte_len()` bytes.
        for i in 0..self.0.len() {
            for v in self.0.sample(i) {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out.extend_from_slice(&self.0.label(i).to_le_bytes());
        }
    }
}

/// Broadcast state: the consensus variables plus the iteration counter the
/// maskers key their pads on.
#[derive(Debug, Clone)]
pub struct ConsensusBroadcast {
    /// Consensus weight image (`z`).
    pub z: Vec<f64>,
    /// Consensus bias (`s`).
    pub s: f64,
    /// ADMM iteration index.
    pub iteration: u64,
}

impl ByteSized for ConsensusBroadcast {
    fn byte_len(&self) -> usize {
        self.z.byte_len() + 16
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.z.encode_into(out);
        self.s.encode_into(out);
        self.iteration.encode_into(out);
    }
}

/// The generic consensus-ADMM MapReduce job.
pub(crate) struct ConsensusJob<L: ConsensusLearner> {
    qp: QpConfig,
    parties: usize,
    mask_seed: u64,
    /// Learners pre-built (and pre-validated) by the driver; `init_state`
    /// claims them one block at a time.
    prebuilt: Mutex<Vec<Option<L>>>,
}

impl<L: ConsensusLearner> ConsensusJob<L> {
    fn new(learners: Vec<L>, cfg: &AdmmConfig) -> Self {
        ConsensusJob {
            qp: cfg.qp,
            parties: learners.len(),
            mask_seed: cfg.seed,
            prebuilt: Mutex::new(learners.into_iter().map(Some).collect()),
        }
    }
}

/// Mapper state: the learner plus its masking endpoint.
pub(crate) struct ConsensusState<L> {
    pub(crate) learner: L,
    masker: SeededMasker,
}

impl<L: ConsensusLearner> IterativeJob for ConsensusJob<L> {
    type BlockPayload = LearnerBlock;
    type MapperState = ConsensusState<L>;
    type Broadcast = ConsensusBroadcast;
    type Key = ();
    type MapOut = Vec<u64>;
    type ReduceOut = Vec<u64>;

    fn init_state(&self, block: BlockId, _payload: &LearnerBlock) -> ConsensusState<L> {
        let party = block.0 as usize;
        let learner = self.prebuilt.lock().expect("prebuilt lock")[party]
            .take()
            .expect("one mapper state per block");
        ConsensusState {
            learner,
            masker: SeededMasker::new(self.mask_seed, party, self.parties),
        }
    }

    fn map(
        &self,
        _node: NodeId,
        _payload: &LearnerBlock,
        state: &mut ConsensusState<L>,
        broadcast: &ConsensusBroadcast,
    ) -> Vec<((), Vec<u64>)> {
        // The scaled-dual step uses the consensus just received (for the
        // first iteration both z and the local model are zero, so the step
        // is a no-op) — the same sequence as the in-process trainer.
        if broadcast.iteration > 0 {
            state.learner.dual_update(&broadcast.z, broadcast.s);
        }
        // Input shapes were validated by the driver before the cluster was
        // built, so a failure here is a bug, not bad input.
        state
            .learner
            .local_step(&broadcast.z, broadcast.s, &self.qp)
            .expect("local ADMM step failed on validated input");
        let share = state.learner.share();
        let masked = state
            .masker
            .mask_share(&share, broadcast.iteration)
            .expect("consensus values exceeded the fixed-point range");
        vec![((), masked)]
    }

    fn reduce(&self, _key: &(), values: Vec<Vec<u64>>) -> Vec<u64> {
        // Wrapping sum cancels all masks; the driver decodes.
        let len = values.first().map_or(0, Vec::len);
        (0..len)
            .map(|i| values.iter().fold(0u64, |acc, v| acc.wrapping_add(v[i])))
            .collect()
    }
}

fn cluster_config(m: usize, tuning: &ClusterTuning) -> ClusterConfig {
    let mut cc = ClusterConfig {
        nodes: m,
        replication: 1,
        fault_plan: tuning.fault_plan.clone(),
        ..Default::default()
    };
    if let Some(a) = tuning.max_attempts {
        cc.max_attempts = a;
    }
    cc
}

/// Boots a cluster for `learners`, pins each partition to its node, and
/// drives `cfg.max_iter` ADMM rounds. `snapshot` turns the cluster + fresh
/// consensus into a per-iteration accuracy (when evaluating).
#[allow(clippy::type_complexity)]
fn drive<L, FSnap>(
    parts: &[Dataset],
    learners: Vec<L>,
    share_len: usize,
    cfg: &AdmmConfig,
    tuning: &ClusterTuning,
    mut snapshot: FSnap,
) -> Result<(Cluster<ConsensusJob<L>>, Vec<f64>, f64, ConvergenceHistory)>
where
    L: ConsensusLearner,
    FSnap: FnMut(&Cluster<ConsensusJob<L>>, &[f64], f64) -> Result<Option<f64>>,
{
    let m = parts.len();
    let job = ConsensusJob::new(learners, cfg);
    let mut cluster = Cluster::new(cluster_config(m, tuning), job)?;
    for (i, p) in parts.iter().enumerate() {
        cluster.load_block_on(LearnerBlock(p.clone()), NodeId(i))?;
    }
    let codec = ppml_crypto::FixedPointCodec::default();
    let mut z = vec![0.0; share_len - 1];
    let mut s = 0.0;
    let mut history = ConvergenceHistory::default();
    for iteration in 0..cfg.max_iter as u64 {
        let out = cluster.run_iteration(&ConsensusBroadcast {
            z: z.clone(),
            s,
            iteration,
        })?;
        let summed = &out
            .outputs
            .first()
            .ok_or_else(|| TrainError::BadPartition {
                reason: "reduce produced no output".to_string(),
            })?
            .1;
        if summed.len() != share_len {
            return Err(TrainError::BadPartition {
                reason: format!(
                    "share length mismatch: expected {share_len}, got {}",
                    summed.len()
                ),
            });
        }
        let z_new: Vec<f64> = summed[..share_len - 1]
            .iter()
            .map(|&v| codec.decode_u64(v) / m as f64)
            .collect();
        let s_new = codec.decode_u64(summed[share_len - 1]) / m as f64;
        let delta = ppml_linalg::vecops::dist_sq(&z_new, &z);
        z = z_new;
        s = s_new;
        history.z_delta.push(delta);
        if let Some(acc) = snapshot(&cluster, &z, s)? {
            history.accuracy.push(acc);
        }
        if let Some(tol) = cfg.tol {
            if delta < tol {
                break;
            }
        }
    }
    Ok((cluster, z, s, history))
}

/// Runs the horizontally partitioned **linear** trainer on a simulated
/// cluster: one node per learner, pinned blocks, masked shares at Reduce.
///
/// Returns the trained outcome plus the cluster's cost metrics (locality,
/// shuffle bytes — benchmark E11 reads these).
///
/// # Errors
///
/// As [`crate::HorizontalLinearSvm::train`], plus
/// [`TrainError::MapReduce`] for runtime failures (e.g. a fault plan that
/// exhausts its retry budget).
pub fn train_linear_on_cluster(
    parts: &[Dataset],
    cfg: &AdmmConfig,
    eval: Option<&Dataset>,
    tuning: ClusterTuning,
) -> Result<(LinearOutcome, JobMetrics)> {
    cfg.validate()?;
    let k = validate_parts(parts)?;
    let m = parts.len();
    let learners = parts
        .iter()
        .map(|p| HlLearner::new(p, m, cfg))
        .collect::<Result<Vec<_>>>()?;
    let (cluster, z, s, history) = drive(parts, learners, k + 1, cfg, &tuning, |_cl, z, s| {
        Ok(eval.map(|ds| LinearSvm::from_parts(z.to_vec(), s).accuracy(ds)))
    })?;
    let local_models = cluster
        .store()
        .block_ids()
        .into_iter()
        .map(|b| {
            let st = cluster.mapper_state(b).expect("state persists");
            LinearSvm::from_parts(st.learner.w.clone(), st.learner.b)
        })
        .collect();
    let metrics = cluster.metrics().clone();
    Ok((
        LinearOutcome {
            model: LinearSvm::from_parts(z, s),
            local_models,
            history,
        },
        metrics,
    ))
}

/// Runs the horizontally partitioned **kernel** trainer on a simulated
/// cluster. See [`train_linear_on_cluster`].
///
/// # Errors
///
/// As [`crate::HorizontalKernelSvm::train`] plus MapReduce runtime errors.
pub fn train_kernel_on_cluster(
    parts: &[Dataset],
    cfg: &AdmmConfig,
    eval: Option<&Dataset>,
    tuning: ClusterTuning,
) -> Result<(KernelOutcome, JobMetrics)> {
    cfg.validate()?;
    let k = validate_parts(parts)?;
    let landmarks = HorizontalKernelSvm::choose_landmarks(parts, k, cfg)?;
    let m = parts.len();
    let learners = parts
        .iter()
        .map(|p| HkLearner::new(p, m, &landmarks, cfg))
        .collect::<Result<Vec<_>>>()?;
    let l = landmarks.len();
    let lm = &landmarks;
    let (cluster, _z, _s, history) =
        drive(
            parts,
            learners,
            l + 1,
            cfg,
            &tuning,
            |cl, _z, _s| match eval {
                None => Ok(None),
                Some(ds) => {
                    let first = cl.store().block_ids()[0];
                    let st = cl.mapper_state(first).expect("state persists");
                    Ok(Some(st.learner.model(lm)?.accuracy(ds)))
                }
            },
        )?;
    let first = cluster.store().block_ids()[0];
    let model = cluster
        .mapper_state(first)
        .expect("state persists")
        .learner
        .model(&landmarks)?;
    let metrics = cluster.metrics().clone();
    Ok((
        KernelOutcome {
            model,
            history,
            landmarks,
        },
        metrics,
    ))
}

// ---------------------------------------------------------------------------
// Vertical deployment
// ---------------------------------------------------------------------------

/// Node-local behaviour shared by the two vertical learners.
pub(crate) trait VerticalNode: Send + 'static {
    fn step(&mut self, gap: &[f64]) -> Result<()>;
    fn contribution(&self) -> &[f64];
}

impl VerticalNode for crate::vertical::linear::VlNode {
    fn step(&mut self, gap: &[f64]) -> Result<()> {
        crate::vertical::linear::VlNode::step(self, gap)
    }
    fn contribution(&self) -> &[f64] {
        &self.c
    }
}

impl VerticalNode for crate::vertical::kernel::VkNode {
    fn step(&mut self, gap: &[f64]) -> Result<()> {
        crate::vertical::kernel::VkNode::step(self, gap)
    }
    fn contribution(&self) -> &[f64] {
        &self.c
    }
}

/// Block payload for a vertical learner: its column slice (all rows, its
/// features only). Labels stay with the driver/reducer, as §IV-C assumes
/// they are shared.
pub struct VerticalBlock(pub ppml_linalg::Matrix);

impl ByteSized for VerticalBlock {
    fn byte_len(&self) -> usize {
        8 * self.0.rows() * self.0.cols()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        for v in self.0.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Broadcast for the vertical schemes: the consensus gap `z − c̄ + r`.
#[derive(Debug, Clone)]
pub struct VerticalBroadcast {
    /// `z − c̄ + r`, length `N`.
    pub gap: Vec<f64>,
    /// ADMM iteration index (keys the masking pads).
    pub iteration: u64,
}

impl ByteSized for VerticalBroadcast {
    fn byte_len(&self) -> usize {
        self.gap.byte_len() + 8
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.gap.encode_into(out);
        self.iteration.encode_into(out);
    }
}

/// The vertical consensus MapReduce job: Map emits a masked share of
/// `c_m = X_m w_m`; Reduce cancels the masks into `c̄`; the driver (playing
/// the paper's Reducer role for the `z`-subproblem) updates `z, r, b`.
pub(crate) struct VerticalJob<L: VerticalNode> {
    parties: usize,
    mask_seed: u64,
    prebuilt: Mutex<Vec<Option<L>>>,
}

/// Mapper state for the vertical job.
pub(crate) struct VerticalState<L> {
    pub(crate) node: L,
    masker: SeededMasker,
}

impl<L: VerticalNode> IterativeJob for VerticalJob<L> {
    type BlockPayload = VerticalBlock;
    type MapperState = VerticalState<L>;
    type Broadcast = VerticalBroadcast;
    type Key = ();
    type MapOut = Vec<u64>;
    type ReduceOut = Vec<u64>;

    fn init_state(&self, block: BlockId, _payload: &VerticalBlock) -> VerticalState<L> {
        let party = block.0 as usize;
        let node = self.prebuilt.lock().expect("prebuilt lock")[party]
            .take()
            .expect("one mapper state per block");
        VerticalState {
            node,
            masker: SeededMasker::new(self.mask_seed, party, self.parties),
        }
    }

    fn map(
        &self,
        _node: NodeId,
        _payload: &VerticalBlock,
        state: &mut VerticalState<L>,
        broadcast: &VerticalBroadcast,
    ) -> Vec<((), Vec<u64>)> {
        state
            .node
            .step(&broadcast.gap)
            .expect("vertical node step failed on validated input");
        let masked = state
            .masker
            .mask_share(state.node.contribution(), broadcast.iteration)
            .expect("contribution exceeded the fixed-point range");
        vec![((), masked)]
    }

    fn reduce(&self, _key: &(), values: Vec<Vec<u64>>) -> Vec<u64> {
        let len = values.first().map_or(0, Vec::len);
        (0..len)
            .map(|i| values.iter().fold(0u64, |acc, v| acc.wrapping_add(v[i])))
            .collect()
    }
}

fn drive_vertical<L, FSnap>(
    view: &ppml_data::VerticalView,
    nodes: Vec<L>,
    cfg: &AdmmConfig,
    tuning: &ClusterTuning,
    mut snapshot: FSnap,
) -> Result<(
    Cluster<VerticalJob<L>>,
    crate::vertical::linear::VerticalReducer,
    ConvergenceHistory,
)>
where
    L: VerticalNode,
    FSnap: FnMut(&Cluster<VerticalJob<L>>, f64) -> Result<Option<f64>>,
{
    let m = view.learners();
    let n = view.rows();
    let job = VerticalJob {
        parties: m,
        mask_seed: cfg.seed,
        prebuilt: Mutex::new(nodes.into_iter().map(Some).collect()),
    };
    let mut cluster = Cluster::new(cluster_config(m, tuning), job)?;
    for p in 0..m {
        cluster.load_block_on(VerticalBlock(view.part(p).clone()), NodeId(p))?;
    }
    let codec = ppml_crypto::FixedPointCodec::default();
    let mut reducer = crate::vertical::linear::VerticalReducer::new(view.y().to_vec(), cfg)?;
    let mut gap = vec![0.0; n];
    let mut history = ConvergenceHistory::default();
    for iteration in 0..cfg.max_iter as u64 {
        let out = cluster.run_iteration(&VerticalBroadcast {
            gap: gap.clone(),
            iteration,
        })?;
        let summed = &out
            .outputs
            .first()
            .ok_or_else(|| TrainError::BadPartition {
                reason: "reduce produced no output".to_string(),
            })?
            .1;
        if summed.len() != n {
            return Err(TrainError::BadPartition {
                reason: format!(
                    "contribution length mismatch: expected {n}, got {}",
                    summed.len()
                ),
            });
        }
        let cbar: Vec<f64> = summed.iter().map(|&v| codec.decode_u64(v)).collect();
        let delta = reducer.step(&cbar)?;
        gap = reducer.gap(&cbar);
        history.z_delta.push(delta);
        if let Some(acc) = snapshot(&cluster, reducer.bias)? {
            history.accuracy.push(acc);
        }
        if let Some(tol) = cfg.tol {
            if delta < tol {
                break;
            }
        }
    }
    Ok((cluster, reducer, history))
}

/// Runs the vertically partitioned **linear** trainer on a simulated
/// cluster: learner `m`'s column slice is pinned to node `m`, masked
/// contributions meet only at the Reduce step, and the driver solves the
/// `z`-subproblem (the paper's Reducer role in §IV-C).
///
/// # Errors
///
/// As [`crate::VerticalLinearSvm::train`] plus MapReduce runtime errors.
pub fn train_vertical_linear_on_cluster(
    view: &ppml_data::VerticalView,
    cfg: &AdmmConfig,
    eval: Option<&Dataset>,
    tuning: ClusterTuning,
) -> Result<(crate::vertical::linear::VerticalOutcome, JobMetrics)> {
    cfg.validate()?;
    let m = view.learners();
    let nodes = (0..m)
        .map(|p| crate::vertical::linear::VlNode::new(view.part(p), cfg.rho))
        .collect::<Result<Vec<_>>>()?;
    let (cluster, reducer, history) =
        drive_vertical(view, nodes, cfg, &tuning, |cl, bias| match eval {
            None => Ok(None),
            Some(ds) => {
                let w = collect_vl_weights(cl);
                let model = crate::vertical::linear::assemble(view, &w, bias);
                Ok(Some(model.accuracy(ds)))
            }
        })?;
    let w = collect_vl_weights(&cluster);
    let metrics = cluster.metrics().clone();
    Ok((
        crate::vertical::linear::VerticalOutcome {
            model: crate::vertical::linear::assemble(view, &w, reducer.bias),
            history,
        },
        metrics,
    ))
}

fn collect_vl_weights(
    cluster: &Cluster<VerticalJob<crate::vertical::linear::VlNode>>,
) -> Vec<Vec<f64>> {
    cluster
        .store()
        .block_ids()
        .into_iter()
        .map(|b| {
            cluster
                .mapper_state(b)
                .expect("state persists")
                .node
                .w
                .clone()
        })
        .collect()
}

/// Runs the vertically partitioned **kernel** trainer on a simulated
/// cluster. See [`train_vertical_linear_on_cluster`].
///
/// # Errors
///
/// As [`crate::VerticalKernelSvm::train`] plus MapReduce runtime errors.
pub fn train_vertical_kernel_on_cluster(
    view: &ppml_data::VerticalView,
    cfg: &AdmmConfig,
    eval: Option<&Dataset>,
    tuning: ClusterTuning,
) -> Result<(crate::vertical::kernel::VerticalKernelOutcome, JobMetrics)> {
    cfg.validate()?;
    let m = view.learners();
    let nodes = (0..m)
        .map(|p| crate::vertical::kernel::VkNode::new(view.part(p), cfg.kernel, cfg))
        .collect::<Result<Vec<_>>>()?;
    let (cluster, reducer, history) =
        drive_vertical(view, nodes, cfg, &tuning, |cl, bias| match eval {
            None => Ok(None),
            Some(ds) => {
                let expansions = collect_vk_expansions(cl);
                let model = crate::vertical::kernel::assemble(view, cfg.kernel, expansions, bias);
                Ok(Some(model.accuracy(ds)))
            }
        })?;
    let expansions = collect_vk_expansions(&cluster);
    let metrics = cluster.metrics().clone();
    Ok((
        crate::vertical::kernel::VerticalKernelOutcome {
            model: crate::vertical::kernel::assemble(view, cfg.kernel, expansions, reducer.bias),
            history,
        },
        metrics,
    ))
}

fn collect_vk_expansions(
    cluster: &Cluster<VerticalJob<crate::vertical::kernel::VkNode>>,
) -> Vec<(ppml_linalg::Matrix, Vec<f64>)> {
    cluster
        .store()
        .block_ids()
        .into_iter()
        .map(|b| {
            cluster
                .mapper_state(b)
                .expect("state persists")
                .node
                .expansion()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppml_data::{synth, Partition};
    use ppml_kernel::Kernel;

    fn parts4() -> (Vec<Dataset>, Dataset, Dataset) {
        let ds = synth::blobs(160, 1);
        let (train, test) = ds.split(0.5, 2).unwrap();
        let parts = Partition::horizontal(&train, 4, 3).unwrap();
        (parts, train, test)
    }

    #[test]
    fn cluster_linear_matches_in_process() {
        let (parts, _, test) = parts4();
        let cfg = AdmmConfig::default().with_max_iter(12);
        let (on_cluster, metrics) =
            train_linear_on_cluster(&parts, &cfg, Some(&test), ClusterTuning::default()).unwrap();
        let in_process = crate::HorizontalLinearSvm::train(&parts, &cfg, Some(&test)).unwrap();
        // The fixed-point sums are mask-independent → identical iterates.
        for (a, b) in on_cluster
            .model
            .weights()
            .iter()
            .zip(in_process.model.weights())
        {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert_eq!(on_cluster.history.accuracy, in_process.history.accuracy);
        assert_eq!(metrics.iterations, 12);
    }

    #[test]
    fn all_map_tasks_are_data_local() {
        let (parts, _, _) = parts4();
        let cfg = AdmmConfig::default().with_max_iter(5);
        let (_, metrics) =
            train_linear_on_cluster(&parts, &cfg, None, ClusterTuning::default()).unwrap();
        assert_eq!(metrics.remote_reads, 0);
        assert_eq!(metrics.locality_hits, 4 * 5);
        assert_eq!(metrics.bytes_remote_read, 0);
    }

    #[test]
    fn shuffle_traffic_is_tiny_compared_to_raw_data() {
        // The data-locality claim (E11): per-iteration shuffle is O(k·M)
        // frames, raw data is O(N·k). Use enough rows that the per-frame
        // overhead (28 bytes each) cannot blur the asymptotic gap.
        let ds = synth::blobs(640, 1);
        let (train, _test) = ds.split(0.5, 2).unwrap();
        let parts = Partition::horizontal(&train, 4, 3).unwrap();
        let cfg = AdmmConfig::default().with_max_iter(10);
        let (_, metrics) =
            train_linear_on_cluster(&parts, &cfg, None, ClusterTuning::default()).unwrap();
        let raw_bytes = 8 * train.len() * (train.features() + 1);
        let shuffled_per_iter = metrics.bytes_shuffled / 10;
        assert!(
            shuffled_per_iter < raw_bytes / 10,
            "shuffle {shuffled_per_iter} should be far below raw {raw_bytes}"
        );
    }

    #[test]
    fn survives_injected_task_failures() {
        let (parts, _, _) = parts4();
        let cfg = AdmmConfig::default().with_max_iter(6);
        let tuning = ClusterTuning {
            fault_plan: FaultPlan::new()
                .fail_first_attempts(2, BlockId(1), 1)
                .fail_first_attempts(4, BlockId(3), 1),
            max_attempts: Some(3),
        };
        let (faulty, metrics) = train_linear_on_cluster(&parts, &cfg, None, tuning).unwrap();
        let (clean, _) =
            train_linear_on_cluster(&parts, &cfg, None, ClusterTuning::default()).unwrap();
        assert_eq!(metrics.task_retries, 2);
        // Re-execution must not change the result.
        for (a, b) in faulty.model.weights().iter().zip(clean.model.weights()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn cluster_vertical_linear_matches_in_process() {
        let ds = synth::cancer_like(160, 7);
        let (train, test) = ds.split(0.5, 8).unwrap();
        let view = Partition::vertical(&train, 3, 9).unwrap();
        let cfg = AdmmConfig::default().with_max_iter(25);
        let (on_cluster, metrics) =
            train_vertical_linear_on_cluster(&view, &cfg, Some(&test), ClusterTuning::default())
                .unwrap();
        let in_process = crate::VerticalLinearSvm::train(&view, &cfg, Some(&test)).unwrap();
        assert_eq!(on_cluster.history.accuracy, in_process.history.accuracy);
        for m in 0..3 {
            for (a, b) in on_cluster
                .model
                .weight_slice(m)
                .iter()
                .zip(in_process.model.weight_slice(m))
            {
                assert!((a - b).abs() < 1e-6, "{a} vs {b}");
            }
        }
        assert_eq!(metrics.remote_reads, 0, "column slices must not move");
    }

    #[test]
    fn cluster_vertical_kernel_trains() {
        let ds = synth::blobs(100, 17);
        let (train, test) = ds.split(0.5, 18).unwrap();
        let view = Partition::vertical(&train, 2, 19).unwrap();
        let cfg = AdmmConfig::default()
            .with_max_iter(30)
            .with_kernel(Kernel::Rbf { gamma: 0.5 });
        let (out, metrics) =
            train_vertical_kernel_on_cluster(&view, &cfg, Some(&test), ClusterTuning::default())
                .unwrap();
        let acc = out.model.accuracy(&test);
        assert!(acc > 0.85, "cluster vertical kernel accuracy {acc}");
        assert_eq!(metrics.locality_hits, 2 * 30);
        // In-process agreement.
        let in_process = crate::VerticalKernelSvm::train(&view, &cfg, Some(&test)).unwrap();
        assert_eq!(out.history.accuracy, in_process.history.accuracy);
    }

    #[test]
    fn cluster_kernel_matches_in_process() {
        let ds = synth::xor_like(160, 4);
        let (train, test) = ds.split(0.5, 5).unwrap();
        let parts = Partition::horizontal(&train, 4, 6).unwrap();
        let cfg = AdmmConfig::default()
            .with_max_iter(10)
            .with_landmarks(10)
            .with_kernel(Kernel::Rbf { gamma: 0.5 });
        let (on_cluster, metrics) =
            train_kernel_on_cluster(&parts, &cfg, Some(&test), ClusterTuning::default()).unwrap();
        let in_process = crate::HorizontalKernelSvm::train(&parts, &cfg, Some(&test)).unwrap();
        assert_eq!(on_cluster.history.accuracy, in_process.history.accuracy);
        let acc = on_cluster.model.accuracy(&test);
        assert!(acc > 0.8, "cluster kernel accuracy {acc}");
        assert_eq!(metrics.remote_reads, 0);
    }
}
