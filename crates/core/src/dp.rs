//! Differential privacy for the released model (extension).
//!
//! The paper's §V acknowledges "the specified result itself reveals
//! sensitive aspects of the training data" and leaves mitigation to the
//! learners' policy ("the learners … agree that the joint machine learning
//! result does not reveal their private training sets"). The related work
//! (§II) points at the principled fix: Chaudhuri & Monteleoni's
//! ε-differentially-private ERM. This module implements the **output
//! perturbation** variant for the linear consensus model: noise calibrated
//! to the L2 sensitivity of the regularized-SVM minimizer is added to
//! `(w, b)` before release.
//!
//! Sensitivity: for L2-regularized ERM with an `L`-Lipschitz loss and
//! feature norms `‖x‖ ≤ R`, the minimizer's L2 sensitivity to one record
//! is `Δ₂ = 2LR/(nλ)` (Chaudhuri–Monteleoni–Sarwate 2011). The paper's SVM
//! objective `½‖w‖² + C·Σ hinge` corresponds to `λ = 1/(nC)`, giving
//! `Δ₂ = 2·C·R` — which is why *meaningful DP requires small `C`*;
//! [`OutputPerturbation::privatize`] makes that trade-off explicit rather
//! than hiding it.

use ppml_data::rng;
use ppml_svm::LinearSvm;

use crate::{Result, TrainError};

/// Output-perturbation release of a linear model.
///
/// # Example
///
/// ```
/// use ppml_core::dp::OutputPerturbation;
/// use ppml_svm::LinearSvm;
///
/// # fn main() -> Result<(), ppml_core::TrainError> {
/// let model = LinearSvm::from_parts(vec![1.0, -2.0], 0.5);
/// let mech = OutputPerturbation::new(1.0)?.with_feature_bound(1.0);
/// // n = 1000 records, C = 0.05.
/// let private = mech.privatize(&model, 1000, 0.05, 7)?;
/// assert_eq!(private.weights().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutputPerturbation {
    epsilon: f64,
    /// Bound `R` on the feature-vector norm (1 after standardization to the
    /// unit ball; callers must clip or scale to enforce it).
    feature_bound: f64,
}

impl OutputPerturbation {
    /// Creates a mechanism with privacy budget `ε`.
    ///
    /// # Errors
    ///
    /// [`TrainError::BadConfig`] unless `ε > 0` and finite.
    pub fn new(epsilon: f64) -> Result<Self> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(TrainError::BadConfig {
                reason: format!("epsilon must be positive and finite, got {epsilon}"),
            });
        }
        Ok(OutputPerturbation {
            epsilon,
            feature_bound: 1.0,
        })
    }

    /// Sets the feature-norm bound `R` (default 1).
    pub fn with_feature_bound(mut self, r: f64) -> Self {
        self.feature_bound = r;
        self
    }

    /// The privacy budget `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// L2 sensitivity of the SVM minimizer under this mechanism's feature
    /// bound: `Δ₂ = 2LR/(nλ) = 2·C·R` with the paper's `C`-parameterized
    /// objective (hinge loss, `L = 1`).
    ///
    /// Note the *absence* of `n`: in the `C` parameterization the effective
    /// regularization weakens as data grows, so the per-record influence
    /// does not shrink. DP-oriented deployments should scale `C ∝ 1/n`.
    pub fn sensitivity(&self, c: f64) -> f64 {
        2.0 * c * self.feature_bound
    }

    /// Releases an `ε`-differentially-private copy of `model`, adding
    /// spherically symmetric noise with Gamma-distributed radius
    /// (the standard high-dimensional Laplace mechanism for L2
    /// sensitivity): `‖η‖ ~ Γ(d, Δ₂/ε)`, direction uniform.
    ///
    /// `n_records` is accepted for API symmetry and future objective-
    /// perturbation variants; the output-perturbation sensitivity in the
    /// `C` parameterization does not depend on it.
    ///
    /// # Errors
    ///
    /// [`TrainError::BadConfig`] when `c` is not positive.
    pub fn privatize(
        &self,
        model: &LinearSvm,
        n_records: usize,
        c: f64,
        seed: u64,
    ) -> Result<LinearSvm> {
        if c.is_nan() || c <= 0.0 {
            return Err(TrainError::BadConfig {
                reason: format!("C must be positive, got {c}"),
            });
        }
        let _ = n_records;
        let d = model.weights().len() + 1; // weights + bias
        let scale = self.sensitivity(c) / self.epsilon;
        let mut r = rng::seeded(seed ^ 0xD1FF);
        // Direction: uniform on the sphere via normalized Gaussian.
        let mut dir = rng::normal_vec(d, &mut r);
        let norm = dir.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
        for v in &mut dir {
            *v /= norm;
        }
        // Radius: Γ(d, scale) as a sum of d Exp(scale) draws.
        let mut radius = 0.0;
        for _ in 0..d {
            let u: f64 = r.unit_f64().max(f64::MIN_POSITIVE);
            radius += -scale * u.ln();
        }
        let mut w = model.weights().to_vec();
        for (wi, di) in w.iter_mut().zip(&dir) {
            *wi += radius * di;
        }
        let b = model.bias() + radius * dir[d - 1];
        Ok(LinearSvm::from_parts(w, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppml_data::{synth, Partition};

    #[test]
    fn rejects_bad_parameters() {
        assert!(OutputPerturbation::new(0.0).is_err());
        assert!(OutputPerturbation::new(-1.0).is_err());
        assert!(OutputPerturbation::new(f64::NAN).is_err());
        let mech = OutputPerturbation::new(1.0).unwrap();
        let m = LinearSvm::from_parts(vec![0.0], 0.0);
        assert!(mech.privatize(&m, 10, 0.0, 1).is_err());
    }

    #[test]
    fn noise_shrinks_with_epsilon() {
        let model = LinearSvm::from_parts(vec![1.0; 8], 0.0);
        let dist = |eps: f64| {
            // Average perturbation over several seeds.
            (0..20)
                .map(|s| {
                    let p = OutputPerturbation::new(eps)
                        .unwrap()
                        .privatize(&model, 100, 0.1, s)
                        .unwrap();
                    p.weights()
                        .iter()
                        .zip(model.weights())
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt()
                })
                .sum::<f64>()
                / 20.0
        };
        let loose = dist(0.1);
        let tight = dist(10.0);
        assert!(
            loose > tight * 10.0,
            "ε=0.1 noise {loose} should dwarf ε=10 noise {tight}"
        );
    }

    #[test]
    fn sensitivity_formula() {
        let mech = OutputPerturbation::new(1.0)
            .unwrap()
            .with_feature_bound(2.0);
        assert_eq!(mech.sensitivity(0.5), 2.0);
        assert_eq!(mech.epsilon(), 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let model = LinearSvm::from_parts(vec![1.0, 2.0], 0.5);
        let mech = OutputPerturbation::new(1.0).unwrap();
        let a = mech.privatize(&model, 50, 0.1, 9).unwrap();
        let b = mech.privatize(&model, 50, 0.1, 9).unwrap();
        assert_eq!(a, b);
        let c = mech.privatize(&model, 50, 0.1, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn private_training_pipeline_retains_utility_at_modest_epsilon() {
        // End-to-end: standardize securely, train distributed with small C
        // (the DP-friendly regime), release with ε = 2.
        let ds = synth::cancer_like(400, 23);
        let (train, test) = ds.split(0.5, 24).unwrap();
        let parts = Partition::horizontal(&train, 4, 25).unwrap();
        let scaler = crate::preprocessing::SecureStandardizer::fit(&parts, 26).unwrap();
        let scaled: Vec<_> = parts.iter().map(|p| scaler.transform(p).unwrap()).collect();
        let test_scaled = scaler.transform(&test).unwrap();
        let cfg = crate::AdmmConfig::default().with_c(0.05).with_max_iter(60);
        let out = crate::HorizontalLinearSvm::train(&scaled, &cfg, None).unwrap();
        let clean_acc = out.model.accuracy(&test_scaled);
        let private = OutputPerturbation::new(2.0)
            .unwrap()
            .privatize(&out.model, train.len(), 0.05, 27)
            .unwrap();
        let private_acc = private.accuracy(&test_scaled);
        assert!(clean_acc > 0.88, "clean accuracy {clean_acc}");
        assert!(
            private_acc > clean_acc - 0.2,
            "ε=2 release lost too much: {clean_acc} -> {private_acc}"
        );
    }
}
