//! Nonlinear (kernel) SVM over horizontally partitioned data (§IV-B).
//!
//! The local models `w_m` live in the (possibly infinite-dimensional) RKHS,
//! so exact consensus `w_m = z` is not exchangeable. The paper's device is
//! a **reduced consensus space**: a shared set of `l` landmark points `X_g`
//! defines `G = φ(X_g)`, and consensus is required only on the projections
//! `G·w_m = z ∈ Rˡ`. Everything stays kernelized through the
//! Sherman–Morrison–Woodbury identity; with `K_g = I + ρM·K(X_g, X_g)`
//! (coefficient re-derived — see DESIGN.md §2) the push-through identity
//! collapses the paper's eq. (21)–(25) to:
//!
//! * dual Hessian: `Q = M·Y·[K(X,X) − ρM·K(X,X_g)K_g⁻¹K(X_g,X)]·Y
//!   + (1/ρ)·y·yᵀ`  (constant per learner, factored once);
//! * linear term:  `q = ρM·Y·K(X,X_g)·K_g⁻¹(z−r) + (s−β)·y − 1`;
//! * reduced image: `G·w = M·K_g⁻¹K(X_g,X)·Yλ + ρM·K(X_g,X_g)·K_g⁻¹(z−r)`;
//! * discriminant: `f(x) = K(x,X)·α + K(x,X_g)·η + b` with
//!   `α = M·Yλ`, `η = ρM·K_g⁻¹(z−r) − ρM²·K_g⁻¹K(X_g,X)·Yλ`.
//!
//! The Reduce step again only averages `[G·w_m + r_m ; b_m + β_m]` through a
//! [`SecureSum`] protocol.

use ppml_crypto::SecureSum;
use ppml_data::Dataset;
use ppml_kernel::{Kernel, LandmarkSet, LandmarkStrategy};
use ppml_linalg::{vecops, Cholesky, Matrix};
use ppml_qp::{solve_box_from, QpConfig};
use ppml_telemetry as telemetry;
use telemetry::{EventKind, NO_PARTY};

use crate::horizontal::linear::validate_parts;
use crate::{AdmmConfig, ConvergenceHistory, Result, TrainError};

/// The nonlinear consensus classifier of one learner after training.
///
/// The decision function references the learner's own training points and
/// the shared landmarks only: `f(x) = K(x, X_m)·α + K(x, X_g)·η + b`
/// (paper eq. (25), simplified).
#[derive(Debug, Clone)]
pub struct KernelConsensusModel {
    kernel: Kernel,
    local_points: Matrix,
    alpha: Vec<f64>,
    landmarks: Matrix,
    eta: Vec<f64>,
    bias: f64,
}

impl KernelConsensusModel {
    /// Decision value `f(x)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong feature dimension.
    pub fn decision(&self, x: &[f64]) -> f64 {
        let kx = self.kernel.eval_row(x, &self.local_points);
        let kg = self.kernel.eval_row(x, &self.landmarks);
        vecops::dot(&kx, &self.alpha) + vecops::dot(&kg, &self.eta) + self.bias
    }

    /// Predicted label in `{−1, +1}`.
    ///
    /// # Panics
    ///
    /// As [`KernelConsensusModel::decision`].
    pub fn classify(&self, x: &[f64]) -> f64 {
        if self.decision(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Correct-classification ratio on a dataset.
    ///
    /// # Panics
    ///
    /// As [`KernelConsensusModel::decision`].
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        ppml_svm::accuracy((0..data.len()).map(|i| (self.classify(data.sample(i)), data.label(i))))
    }

    /// The bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Number of local expansion points (the learner's own rows).
    pub fn local_expansion_len(&self) -> usize {
        self.alpha.len()
    }

    /// Number of landmark expansion points (`l`).
    pub fn landmark_expansion_len(&self) -> usize {
        self.eta.len()
    }

    /// Collapses the two-part expansion
    /// `f(x) = K(x, X_m)·α + K(x, X_g)·η + b` into a single
    /// [`ppml_svm::KernelSvm`] whose "support vectors" are the local
    /// points stacked on the landmarks — the persistable form the binary
    /// model format and `ppml-serve` consume. The decision function is
    /// identical term-for-term.
    ///
    /// # Errors
    ///
    /// [`ppml_svm::SvmError`] if the stacked expansion is inconsistent
    /// (cannot happen for a model produced by the trainer).
    pub fn to_kernel_svm(&self) -> ppml_svm::Result<ppml_svm::KernelSvm> {
        let support = Matrix::vstack(&self.local_points, &self.landmarks).map_err(|_| {
            ppml_svm::SvmError::DimensionMismatch {
                expected: self.local_points.cols(),
                found: self.landmarks.cols(),
            }
        })?;
        let mut coeffs = self.alpha.clone();
        coeffs.extend_from_slice(&self.eta);
        ppml_svm::KernelSvm::from_parts(self.kernel, support, coeffs, self.bias)
    }
}

/// One learner's persistent state for the kernel trainer.
pub(crate) struct HkLearner {
    kernel: Kernel,
    points: Matrix,
    y: Vec<f64>,
    /// `K(X_m, X_g)`, `N_m × l`.
    kmg: Matrix,
    /// `S = K_g⁻¹ K(X_g, X_m)`, `l × N_m`.
    s: Matrix,
    /// Constant dual Hessian.
    q: Matrix,
    kg_chol: Cholesky,
    kgg: Matrix,
    lambda: Vec<f64>,
    pub(crate) r: Vec<f64>,
    pub(crate) beta: f64,
    /// Last computed reduced image `G·w_m`.
    pub(crate) gw: Vec<f64>,
    pub(crate) b: f64,
    m: f64,
    rho: f64,
    c: f64,
    /// `z − r` frozen at the last local step (the discriminant needs it).
    last_c: Vec<f64>,
}

impl HkLearner {
    pub(crate) fn new(
        data: &Dataset,
        m_learners: usize,
        landmarks: &LandmarkSet,
        cfg: &AdmmConfig,
    ) -> Result<Self> {
        if data.is_empty() {
            return Err(TrainError::BadPartition {
                reason: "empty learner partition".to_string(),
            });
        }
        let kernel = cfg.kernel;
        let rho = cfg.rho;
        let m = m_learners as f64;
        let kgg = landmarks.gram(kernel);
        let kg = landmarks.kg(kernel, rho, m_learners);
        let kg_chol = kg.cholesky()?;
        let kmg = kernel.cross_gram(data.x(), landmarks.points());
        let s = kg_chol.solve_matrix(&kmg.transpose())?;
        let kmm = kernel.gram(data.x());
        // K_eff = K(X,X) − ρM·K(X,X_g)·S
        let corr = kmg.matmul(&s)?;
        let y = data.y().to_vec();
        let n = data.len();
        let q = Matrix::from_fn(n, n, |i, j| {
            let keff = kmm[(i, j)] - rho * m * corr[(i, j)];
            m * y[i] * keff * y[j] + y[i] * y[j] / rho
        });
        let l = landmarks.len();
        Ok(HkLearner {
            kernel,
            points: data.x().clone(),
            y,
            kmg,
            s,
            q,
            kg_chol,
            kgg,
            lambda: vec![0.0; n],
            r: vec![0.0; l],
            beta: 0.0,
            gw: vec![0.0; l],
            b: 0.0,
            m,
            rho,
            c: cfg.c,
            last_c: vec![0.0; l],
        })
    }

    /// Solves the local dual given consensus `(z, s)`; refreshes `G·w`, `b`.
    pub(crate) fn local_step(&mut self, z: &[f64], s_cons: f64, qp: &QpConfig) -> Result<()> {
        let c_vec = vecops::sub(z, &self.r);
        let d = s_cons - self.beta;
        let u = self.kg_chol.solve(&c_vec)?; // K_g⁻¹(z − r)
                                             // q_i = ρM·y_i·(K(X,X_g)u)_i + d·y_i − 1
        let kmgu = self.kmg.matvec(&u)?;
        let lin: Vec<f64> = (0..self.y.len())
            .map(|i| self.rho * self.m * self.y[i] * kmgu[i] + d * self.y[i] - 1.0)
            .collect();
        let sol = solve_box_from(&self.q, &lin, 0.0, self.c, &self.lambda, qp)?;
        self.lambda = sol.x;
        // G·w = M·S·(Yλ) + ρM·K_gg·u
        let ylam: Vec<f64> = self
            .lambda
            .iter()
            .zip(&self.y)
            .map(|(l, y)| l * y)
            .collect();
        let s_ylam = self.s.matvec(&ylam)?;
        let kgg_u = self.kgg.matvec(&u)?;
        self.gw = (0..self.gw.len())
            .map(|i| self.m * s_ylam[i] + self.rho * self.m * kgg_u[i])
            .collect();
        let t = vecops::dot(&self.lambda, &self.y);
        self.b = d + t / self.rho;
        self.last_c = c_vec;
        Ok(())
    }

    /// Contribution to the secure average: `[G·w + r ; b + β]`.
    pub(crate) fn share(&self) -> Vec<f64> {
        let mut out = vecops::add(&self.gw, &self.r);
        out.push(self.b + self.beta);
        out
    }

    /// Scaled-dual ascent after receiving the new consensus.
    pub(crate) fn dual_update(&mut self, z: &[f64], s_cons: f64) {
        for ((r, &gw), &zj) in self.r.iter_mut().zip(&self.gw).zip(z) {
            *r += gw - zj;
        }
        self.beta += self.b - s_cons;
    }

    /// Snapshot of this learner's current discriminant (paper eq. (25)).
    pub(crate) fn model(&self, landmarks: &LandmarkSet) -> Result<KernelConsensusModel> {
        let ylam: Vec<f64> = self
            .lambda
            .iter()
            .zip(&self.y)
            .map(|(l, y)| l * y)
            .collect();
        let alpha = vecops::scale(&ylam, self.m);
        let u = self.kg_chol.solve(&self.last_c)?;
        let s_ylam = self.s.matvec(&ylam)?;
        // η = ρM·K_g⁻¹(z−r) − ρM²·S·(Yλ)
        let eta: Vec<f64> = (0..u.len())
            .map(|i| self.rho * self.m * u[i] - self.rho * self.m * self.m * s_ylam[i])
            .collect();
        Ok(KernelConsensusModel {
            kernel: self.kernel,
            local_points: self.points.clone(),
            alpha,
            landmarks: landmarks.points().clone(),
            eta,
            bias: self.b,
        })
    }
}

/// Result of distributed kernel training.
#[derive(Debug, Clone)]
pub struct KernelOutcome {
    /// Learner 0's consensus discriminant (the paper evaluates "at learner
    /// 1"; all learners' discriminants agree after convergence).
    pub model: KernelConsensusModel,
    /// Per-iteration trace (Fig. 4 panels b/f).
    pub history: ConvergenceHistory,
    /// The shared landmark set actually used.
    pub landmarks: LandmarkSet,
}

/// Trainer for kernel SVMs over horizontally partitioned data.
#[derive(Debug, Clone, Copy)]
pub struct HorizontalKernelSvm;

impl HorizontalKernelSvm {
    /// Trains with the paper's §V masking protocol.
    ///
    /// # Errors
    ///
    /// As [`crate::HorizontalLinearSvm::train`]; additionally
    /// [`TrainError::BadConfig`] when the landmark count exceeds the first
    /// learner's rows under [`LandmarkStrategy::SubsampleRows`].
    pub fn train(
        parts: &[Dataset],
        cfg: &AdmmConfig,
        eval: Option<&Dataset>,
    ) -> Result<KernelOutcome> {
        let masking = ppml_crypto::PairwiseMasking::new(cfg.seed);
        Self::train_with(parts, cfg, eval, &masking)
    }

    /// Trains with an explicit secure-aggregation backend.
    ///
    /// # Errors
    ///
    /// As [`HorizontalKernelSvm::train`].
    pub fn train_with(
        parts: &[Dataset],
        cfg: &AdmmConfig,
        eval: Option<&Dataset>,
        aggregator: &dyn SecureSum,
    ) -> Result<KernelOutcome> {
        cfg.validate()?;
        let k = validate_parts(parts)?;
        let landmarks = Self::choose_landmarks(parts, k, cfg)?;
        let m = parts.len();
        let l = landmarks.len();
        let mut learners = parts
            .iter()
            .map(|p| HkLearner::new(p, m, &landmarks, cfg))
            .collect::<Result<Vec<_>>>()?;

        let mut z = vec![0.0; l];
        let mut s = 0.0;
        let mut history = ConvergenceHistory::default();
        for iteration in 0..cfg.max_iter {
            for learner in &mut learners {
                learner.local_step(&z, s, &cfg.qp)?;
            }
            let shares: Vec<Vec<f64>> = learners.iter().map(HkLearner::share).collect();
            let sum = aggregator.aggregate(&shares)?;
            let mut z_new = vecops::scale(&sum[..l], 1.0 / m as f64);
            let s_new = sum[l] / m as f64;
            let delta = vecops::dist_sq(&z_new, &z);
            for learner in &mut learners {
                learner.dual_update(&z_new, s_new);
            }
            std::mem::swap(&mut z, &mut z_new);
            s = s_new;
            if telemetry::enabled() {
                // Aggregate norms in the reduced consensus space only.
                let primal_sq: f64 = learners
                    .iter()
                    .map(|lr| vecops::dist_sq(&lr.gw, &z) + (lr.b - s) * (lr.b - s))
                    .sum();
                telemetry::emit(
                    NO_PARTY,
                    EventKind::AdmmIteration {
                        iteration: iteration as u64,
                        primal_sq,
                        dual_sq: cfg.rho * cfg.rho * m as f64 * delta,
                        z_delta: delta,
                        objective: None,
                    },
                );
            }
            history.z_delta.push(delta);
            if let Some(ds) = eval {
                history
                    .accuracy
                    .push(learners[0].model(&landmarks)?.accuracy(ds));
            }
            if let Some(tol) = cfg.tol {
                if delta < tol {
                    break;
                }
            }
        }
        Ok(KernelOutcome {
            model: learners[0].model(&landmarks)?,
            history,
            landmarks,
        })
    }

    /// Picks the shared landmark set per the configured strategy. With
    /// [`LandmarkStrategy::SubsampleRows`] the landmarks are drawn from the
    /// first learner's rows (in deployment: any learner volunteers a
    /// non-sensitive summary, or a public reference set is used).
    pub(crate) fn choose_landmarks(
        parts: &[Dataset],
        features: usize,
        cfg: &AdmmConfig,
    ) -> Result<LandmarkSet> {
        match cfg.landmark_strategy {
            LandmarkStrategy::SubsampleRows => {
                if cfg.landmarks > parts[0].len() {
                    return Err(TrainError::BadConfig {
                        reason: format!(
                            "{} landmarks but learner 0 has only {} rows",
                            cfg.landmarks,
                            parts[0].len()
                        ),
                    });
                }
                Ok(LandmarkSet::subsample(
                    parts[0].x(),
                    cfg.landmarks,
                    cfg.seed,
                ))
            }
            LandmarkStrategy::GaussianNoise => {
                Ok(LandmarkSet::gaussian(cfg.landmarks, features, cfg.seed))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppml_data::{synth, Partition};

    fn cfg_small() -> AdmmConfig {
        AdmmConfig::default()
            .with_max_iter(40)
            .with_landmarks(15)
            .with_kernel(Kernel::Rbf { gamma: 0.5 })
    }

    #[test]
    fn solves_xor_with_rbf() {
        let ds = synth::xor_like(240, 4);
        let (train, test) = ds.split(0.5, 5).unwrap();
        let parts = Partition::horizontal(&train, 4, 6).unwrap();
        let out = HorizontalKernelSvm::train(&parts, &cfg_small(), Some(&test)).unwrap();
        let acc = out.model.accuracy(&test);
        assert!(acc > 0.9, "distributed rbf should solve xor, got {acc}");
        let first = out.history.z_delta[0];
        let last = out.history.final_delta().unwrap();
        assert!(last < first * 1e-2, "no convergence: {first} -> {last}");
    }

    #[test]
    fn to_kernel_svm_matches_the_expansion_decision() {
        let ds = synth::xor_like(160, 4);
        let (train, test) = ds.split(0.5, 5).unwrap();
        let parts = Partition::horizontal(&train, 3, 6).unwrap();
        let out = HorizontalKernelSvm::train(&parts, &cfg_small(), None).unwrap();
        let collapsed = out.model.to_kernel_svm().unwrap();
        assert_eq!(
            collapsed.support_vector_count(),
            out.model.local_expansion_len() + out.model.landmark_expansion_len()
        );
        for i in 0..test.len() {
            let x = test.sample(i);
            let a = collapsed.decision(x).unwrap();
            let b = out.model.decision(x);
            // Same terms, one fused summation vs two partial sums — equal
            // up to float re-association only.
            assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn linear_kernel_reduces_to_linear_trainer() {
        // With a full-rank linear landmark set, reduced consensus is
        // equivalent to w-space consensus, so the kernel trainer must match
        // the linear trainer's accuracy.
        let ds = synth::blobs(160, 8);
        let (train, test) = ds.split(0.5, 9).unwrap();
        let parts = Partition::horizontal(&train, 4, 10).unwrap();
        let cfg = AdmmConfig::default()
            .with_max_iter(40)
            .with_kernel(Kernel::Linear)
            .with_landmarks(8);
        let kernel_out = HorizontalKernelSvm::train(&parts, &cfg, None).unwrap();
        let linear_out = crate::HorizontalLinearSvm::train(
            &parts,
            &AdmmConfig::default().with_max_iter(40),
            None,
        )
        .unwrap();
        let ak = kernel_out.model.accuracy(&test);
        let al = linear_out.model.accuracy(&test);
        assert!((ak - al).abs() < 0.06, "kernel {ak} vs linear {al}");
        assert!(ak > 0.93);
    }

    #[test]
    fn per_iteration_accuracy_improves() {
        let ds = synth::xor_like(200, 7);
        let (train, test) = ds.split(0.5, 8).unwrap();
        let parts = Partition::horizontal(&train, 4, 9).unwrap();
        let out = HorizontalKernelSvm::train(&parts, &cfg_small(), Some(&test)).unwrap();
        let early = out.history.accuracy[0];
        let late = out.history.final_accuracy().unwrap();
        assert!(
            late >= early - 0.02,
            "accuracy should not degrade: {early} -> {late}"
        );
        assert!(late > 0.85);
    }

    #[test]
    fn gaussian_landmarks_also_work() {
        let ds = synth::xor_like(200, 2);
        let (train, test) = ds.split(0.5, 3).unwrap();
        let parts = Partition::horizontal(&train, 4, 4).unwrap();
        let cfg = cfg_small().with_landmark_strategy(LandmarkStrategy::GaussianNoise);
        let out = HorizontalKernelSvm::train(&parts, &cfg, None).unwrap();
        assert!(out.model.accuracy(&test) > 0.8);
        assert_eq!(out.landmarks.len(), 15);
    }

    #[test]
    fn landmark_count_validated() {
        let ds = synth::blobs(12, 1);
        let parts = Partition::horizontal(&ds, 4, 1).unwrap();
        let cfg = AdmmConfig::default().with_landmarks(100);
        assert!(matches!(
            HorizontalKernelSvm::train(&parts, &cfg, None),
            Err(TrainError::BadConfig { .. })
        ));
    }

    #[test]
    fn more_landmarks_do_not_hurt() {
        // The reduced space approximates w̃; more landmarks → better or
        // equal accuracy (the landmark-count ablation bench sweeps this).
        let ds = synth::xor_like(300, 6);
        let (train, test) = ds.split(0.5, 7).unwrap();
        let parts = Partition::horizontal(&train, 3, 8).unwrap();
        let acc_few = HorizontalKernelSvm::train(&parts, &cfg_small().with_landmarks(3), None)
            .unwrap()
            .model
            .accuracy(&test);
        let acc_many = HorizontalKernelSvm::train(&parts, &cfg_small().with_landmarks(30), None)
            .unwrap()
            .model
            .accuracy(&test);
        assert!(
            acc_many + 0.05 >= acc_few,
            "landmarks hurt: {acc_few} -> {acc_many}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = synth::xor_like(120, 2);
        let parts = Partition::horizontal(&ds, 3, 3).unwrap();
        let cfg = cfg_small().with_max_iter(6);
        let a = HorizontalKernelSvm::train(&parts, &cfg, None).unwrap();
        let b = HorizontalKernelSvm::train(&parts, &cfg, None).unwrap();
        assert_eq!(a.history, b.history);
    }
}
